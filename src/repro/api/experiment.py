"""Declarative experiments: one cell, a grid, or a full sweep.

The runner closes the loop the paper draws between theory and execution:
each cell generates a workload, asks the planner for predictions and the
Theorem 3.6 lower bound, runs the algorithm through a pluggable execution
engine, and lands everything in a structured :class:`RunRecord`.

* :class:`WorkloadSpec` — a deterministic workload generator
  (kind × m × skew × seed) for a query's relations.
* :class:`Experiment` — one workload × one ``p`` × some algorithms.
* :class:`Sweep` — the full grid ``p x m x skew x seed x stats x
  rounds x algorithm`` (the ``stats`` axis switches the statistics pass
  between exact frequencies and the one-pass Count-Sketch estimates;
  the ``rounds`` axis varies the planner's round budget, admitting the
  multi-round algorithms of :mod:`repro.rounds` when it exceeds 1);
  ``run(max_workers=N)`` farms the cells through the fault-isolated
  executor in :mod:`repro.service.jobs` (the same one ``repro serve``
  uses), which is safe because cells are declarative and therefore
  picklable.  A cell that raises yields a structured ``failed:<reason>``
  record, a cell past ``cell_timeout`` yields a ``timeout`` record (its
  worker process is replaced), and every healthy record is returned in
  grid order regardless.

Everything here is importable-state free: a cell is a frozen dataclass of
primitives, so sweeps can be generated on one machine and executed on
another.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import product
from typing import Callable, Sequence

from ..data.generators import (
    matching_relation,
    single_value_relation,
    uniform_relation,
    zipf_relation,
)
from ..mpc.engine.base import EngineError, available_engines
from ..mpc.execution import run_one_round
from ..obs import MetricsRegistry, Observation, Tracer, maybe_timed
from ..query.atoms import ConjunctiveQuery
from ..query.parser import parse_query
from ..rounds.base import MultiRoundAlgorithm
from ..rounds.executor import MultiRoundResult, run_rounds
from ..seq.relation import Database
from ..stats.heavy_hitters import HeavyHitterStatistics
from .planner import STATS_METHODS, plan
from .records import RunRecord, records_to_csv, records_to_json
from .registry import algorithm_keys, get_spec

class ExperimentError(ValueError):
    """Raised for unsatisfiable experiment/sweep specifications."""


WORKLOAD_KINDS = ("uniform", "zipf", "worst", "matching")


@dataclass(frozen=True)
class WorkloadSpec:
    """A deterministic workload for a query: one relation per atom.

    ``kind`` selects the generator family (mirroring the CLI):

    * ``uniform`` — distinct uniform tuples over a domain of ``8 m``;
    * ``zipf`` — Zipf(``skew``) values on the last-but-one position over a
      domain of ``4 m`` (the skewed workloads of experiment E6);
    * ``worst`` — every tuple shares one join value (Example 3.3);
    * ``matching`` — every value occurs at most once per attribute (the
      skew-free instances of Lemma 3.1).

    ``domain`` overrides the kind's default domain size.
    """

    kind: str = "uniform"
    m: int = 1000
    skew: float = 1.0
    seed: int = 0
    domain: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ExperimentError(
                f"unknown workload kind {self.kind!r}; "
                f"choose from {', '.join(WORKLOAD_KINDS)}"
            )
        if self.m < 1:
            raise ExperimentError("workloads need m >= 1 tuples per relation")
        if self.domain is not None and self.domain < 1:
            raise ExperimentError("domain must be >= 1 when given")

    @property
    def domain_size(self) -> int:
        if self.domain is not None:
            return self.domain
        return 4 * self.m if self.kind == "zipf" else 8 * self.m

    def build(self, query: ConjunctiveQuery) -> Database:
        """Generate the database (deterministic in the spec + query)."""
        domain = self.domain_size
        relations = []
        for i, atom in enumerate(query.atoms):
            seed = self.seed + i
            if self.kind == "uniform":
                relations.append(uniform_relation(
                    atom.name, self.m, domain, arity=atom.arity, seed=seed
                ))
            elif self.kind == "zipf":
                relations.append(zipf_relation(
                    atom.name, self.m, domain, arity=atom.arity,
                    skew=self.skew, seed=seed,
                ))
            elif self.kind == "worst":
                relations.append(single_value_relation(
                    atom.name, self.m, domain, arity=atom.arity,
                    fixed_position=atom.arity - 1, seed=seed,
                ))
            else:  # matching
                relations.append(matching_relation(
                    atom.name, self.m, domain, arity=atom.arity, seed=seed
                ))
        return Database.from_relations(relations)


@dataclass(frozen=True)
class Cell:
    """One fully-resolved sweep cell — primitives only, hence picklable."""

    query: str
    workload: str
    m: int
    skew: float
    seed: int
    p: int
    algorithm: str            # a registry key, or "auto" for the planner pick
    engine: str = "batched"
    compute_answers: bool = False
    verify: bool = False
    domain: int | None = None  # generator domain override (kind default else)
    observe: bool = False      # collect a per-cell metrics block on the record
    stats: str = "exact"       # statistics method: "exact" or "sketch"
    rounds: int = 1            # the plan's round budget (max_rounds)


def _coordinates(cell: Cell) -> tuple:
    """The part of a cell that determines its database, stats and plan."""
    return (cell.query, cell.workload, cell.m, cell.skew, cell.seed,
            cell.domain, cell.p, cell.stats, cell.rounds)


def _validate_stats_method(stats: str) -> None:
    if stats not in STATS_METHODS:
        raise ExperimentError(
            f"unknown stats method {stats!r}; "
            f"choose from {', '.join(STATS_METHODS)}"
        )


def _build_statistics(query, db, p: int, stats_method: str,
                      obs: Observation | None = None):
    """The cell's statistics pass: exact frequencies or the sketch pass."""
    if stats_method == "sketch":
        from ..sketch import SketchedHeavyHitterStatistics

        return SketchedHeavyHitterStatistics.of(query, db, p, obs=obs)
    return HeavyHitterStatistics.of(query, db, p)


def _prepare(cells: Sequence[Cell], obs: Observation | None = None):
    """Shared (db, plan) context for cells at the same grid coordinates.

    Plans only the algorithms the cells actually mention ("auto" needs
    the full registry), so a single-algorithm cell never pays for
    cost-estimating the algorithms it is not running.  The statistics
    pass honors the cells' ``stats`` method and, when observing, lands
    its wall clock in the ``stats.build.seconds`` histogram.
    """
    first = cells[0]
    _validate_stats_method(first.stats)
    query = parse_query(first.query)
    workload = WorkloadSpec(
        kind=first.workload, m=first.m, skew=first.skew, seed=first.seed,
        domain=first.domain,
    )
    db = workload.build(query)
    with maybe_timed(obs, "stats.build", method=first.stats):
        stats = _build_statistics(query, db, first.p, first.stats, obs=obs)
    keys = {cell.algorithm for cell in cells}
    # ``rounds`` is the planner's budget.  Explicitly requesting a
    # multi-round algorithm opts into its round count, so the budget
    # lifts to admit every named key; only the "auto" pick is gated.
    max_rounds = first.rounds
    for key in sorted(keys - {"auto"}):
        spec = get_spec(key)
        reason = spec.applicability(query)
        if reason is not None:
            raise ExperimentError(
                f"algorithm {key!r} is not applicable to "
                f"{first.query!r}: {reason}"
            )
        max_rounds = max(max_rounds, spec.rounds(query))
    if "auto" in keys:
        query_plan = plan(query, stats, first.p, max_rounds=max_rounds)
    else:
        query_plan = plan(query, stats, first.p, algorithms=sorted(keys),
                          max_rounds=max_rounds)
    return db, query_plan


def _execute(
    cell: Cell, db: Database, query_plan,
    obs: Observation | None = None,
) -> RunRecord:
    """Run one cell's algorithm in a prepared context; build the record.

    Observability: when the cell asks for it (``cell.observe``) or a
    sweep-level ``obs`` is supplied, the round runs against a *fresh*
    per-cell :class:`~repro.obs.MetricsRegistry` whose digest becomes the
    record's ``metrics`` block; the per-cell registry is then folded into
    the sweep-level one (counters add, histograms concatenate), so both
    granularities stay exact.  Spans share the sweep tracer when there is
    one.
    """
    key = query_plan.chosen.key if cell.algorithm == "auto" else cell.algorithm
    prediction = query_plan.prediction(key)
    algorithm = query_plan.instantiate(key)
    cell_obs: Observation | None = None
    if cell.observe or obs is not None:
        cell_obs = Observation(
            tracer=obs.tracer if obs is not None else Tracer(),
            metrics=MetricsRegistry(),
        )
    started = time.perf_counter()
    with maybe_timed(
        cell_obs, "sweep.cell",
        algorithm=key, engine=cell.engine, p=cell.p, m=cell.m,
        skew=cell.skew, seed=cell.seed, workload=cell.workload,
    ):
        if isinstance(algorithm, MultiRoundAlgorithm):
            result = run_rounds(
                algorithm,
                db,
                cell.p,
                seed=cell.seed,
                compute_answers=cell.compute_answers or cell.verify,
                verify=cell.verify,
                engine=cell.engine,
                obs=cell_obs,
            )
        else:
            result = run_one_round(
                algorithm,
                db,
                cell.p,
                seed=cell.seed,
                compute_answers=cell.compute_answers or cell.verify,
                verify=cell.verify,
                engine=cell.engine,
                obs=cell_obs,
            )
    wall = time.perf_counter() - started
    if isinstance(result, MultiRoundResult):
        rounds_used = result.round_count
        round_loads = [float(x) for x in result.round_load_bits]
        replication = result.replication_rate
        balance = result.balance
    else:
        rounds_used = 1
        round_loads = None
        replication = result.report.replication_rate
        balance = result.report.balance
    metrics_block = None
    if cell_obs is not None:
        metrics_block = cell_obs.metrics.to_dict()
        if obs is not None:
            obs.metrics.merge(cell_obs.metrics)
    return RunRecord(
        query=cell.query,
        workload=cell.workload,
        m=cell.m,
        skew=cell.skew,
        seed=cell.seed,
        domain=db.domain_size,
        p=cell.p,
        algorithm=key,
        algorithm_name=algorithm.name,
        engine=cell.engine,
        stats=cell.stats,
        predicted_load_bits=float(prediction.predicted_load_bits or 0.0),
        # Per-algorithm bound: Theorem 3.6 for one-round predictions
        # (where it equals the plan-level bound), the repartition bound
        # for multi-round ones — the one-round bound does not gate
        # algorithms that reshuffle intermediates.
        lower_bound_bits=float(prediction.lower_bound_bits
                               if prediction.lower_bound_bits is not None
                               else query_plan.lower_bound_bits),
        max_load_bits=result.max_load_bits,
        max_load_tuples=result.max_load_tuples,
        replication_rate=replication,
        balance=balance,
        wall_seconds=wall,
        answer_count=result.answer_count,
        complete=result.is_complete,
        rounds=rounds_used,
        round_load_bits=round_loads,
        metrics=metrics_block,
    )


def failure_record(
    cell: Cell, status: str, wall_seconds: float = 0.0
) -> RunRecord:
    """A structured record for a cell that could not produce measurements.

    ``status`` is ``"failed:<reason>"`` or ``"timeout"``.  Measurements
    are zeroed (the schema keeps them non-null so exports stay flat);
    the cell coordinates survive, so a failed cell is still addressable
    in the exported grid.
    """
    try:
        domain = WorkloadSpec(
            kind=cell.workload, m=cell.m, skew=cell.skew, seed=cell.seed,
            domain=cell.domain,
        ).domain_size
    except ExperimentError:
        domain = cell.domain if cell.domain is not None else 0
    return RunRecord(
        query=cell.query,
        workload=cell.workload,
        m=cell.m,
        skew=cell.skew,
        seed=cell.seed,
        domain=domain,
        p=cell.p,
        algorithm=cell.algorithm,
        algorithm_name=cell.algorithm,
        engine=cell.engine,
        stats=cell.stats,
        status=status,
        predicted_load_bits=0.0,
        lower_bound_bits=0.0,
        max_load_bits=0.0,
        max_load_tuples=0,
        replication_rate=0.0,
        balance=0.0,
        wall_seconds=wall_seconds,
    )


def _validate_engine(engine: str) -> None:
    """Reject unknown engine names before any cell runs, with the list of
    valid names — not as a traceback from the middle of a grid."""
    if engine not in available_engines():
        raise EngineError(
            f"unknown execution engine {engine!r}; "
            f"available: {', '.join(available_engines())}"
        )


def run_cell(cell: Cell) -> RunRecord:
    """Execute one cell end to end: generate, plan, run, record.

    Module-level (not a method) so process pools can ship it to workers.
    A cell with ``observe=True`` carries its metrics digest back on the
    record — the only channel a pool worker has.
    """
    db, query_plan = _prepare([cell])
    return _execute(cell, db, query_plan)


def _resolve_algorithms(
    query: ConjunctiveQuery, algorithms: str | Sequence[str],
    max_rounds: int = 1,
) -> tuple[str, ...]:
    """Algorithm keys for a cell grid.

    ``"auto"`` keeps the single planner-chosen cell; ``"applicable"``
    expands to every registered algorithm that declares itself applicable
    *within the round budget* (``max_rounds``); an explicit sequence is
    validated (requesting an inapplicable algorithm is an error, not a
    silent skip — and naming a multi-round algorithm opts into its round
    count regardless of the budget).
    """
    if algorithms == "auto":
        return ("auto",)
    if algorithms == "applicable":
        return tuple(
            key for key in algorithm_keys()
            if get_spec(key).is_applicable(query)
            and get_spec(key).rounds(query) <= max_rounds
        )
    if isinstance(algorithms, str):
        raise ExperimentError(
            f"algorithms must be 'auto', 'applicable', or a list of keys; "
            f"got {algorithms!r}; registered: {', '.join(algorithm_keys())}"
        )
    try:
        keys = tuple(algorithms)
    except TypeError:
        # e.g. algorithms=None, or a bare int — a raw "'NoneType' object
        # is not iterable" here used to escape to the caller.
        raise ExperimentError(
            f"algorithms must be 'auto', 'applicable', or a sequence of "
            f"registry keys; got {algorithms!r}; "
            f"registered: {', '.join(algorithm_keys())}"
        ) from None
    for key in keys:
        if not isinstance(key, str):
            raise ExperimentError(
                f"algorithm keys must be strings ('auto', 'applicable', "
                f"or registry keys); got {key!r} in {algorithms!r}"
            )
        if key == "auto":
            continue
        reason = get_spec(key).applicability(query)
        if reason is not None:
            raise ExperimentError(
                f"algorithm {key!r} is not applicable to "
                f"{query.name!r}: {reason}"
            )
    return keys


@dataclass(frozen=True)
class SweepResult:
    """The records of an executed grid, with export and rollup helpers."""

    records: tuple[RunRecord, ...]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def to_json(self, indent: int = 2) -> str:
        return records_to_json(self.records, indent=indent)

    def to_csv(self) -> str:
        return records_to_csv(self.records)

    def best_per_cell(self) -> dict[tuple, RunRecord]:
        """Minimum measured load per (workload, m, skew, seed, p, stats)
        cell."""
        best: dict[tuple, RunRecord] = {}
        for record in self.records:
            cell = (record.workload, record.m, record.skew, record.seed,
                    record.p, record.stats)
            current = best.get(cell)
            if current is None or record.max_load_bits < current.max_load_bits:
                best[cell] = record
        return best

    def summary(self) -> str:
        """A compact table: one row per record, sorted like the grid."""
        header = (
            f"{'workload':>9} {'m':>6} {'skew':>5} {'p':>4} {'stats':>7} "
            f"{'algorithm':>20} {'predicted':>12} {'measured':>12} "
            f"{'bound':>12} {'gap':>6}"
        )
        lines = [header, "-" * len(header)]
        for r in self.records:
            gap = r.optimality_gap
            lines.append(
                f"{r.workload:>9} {r.m:>6} {r.skew:>5.2f} {r.p:>4} "
                f"{r.stats:>7} "
                f"{r.algorithm:>20} {r.predicted_load_bits:>12,.0f} "
                f"{r.max_load_bits:>12,.0f} {r.lower_bound_bits:>12,.0f} "
                f"{'     -' if gap is None else format(gap, '6.2f')}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    """One workload × one ``p`` × a set of algorithms.

    The smallest unit of the experiment API::

        records = Experiment(
            "q(x, y, z) :- S1(x, z), S2(y, z)",
            workload=WorkloadSpec("zipf", m=2000, skew=1.4),
            p=32,
            algorithms="applicable",
        ).run()
    """

    query: str | ConjunctiveQuery
    workload: WorkloadSpec = WorkloadSpec()
    p: int = 16
    algorithms: str | Sequence[str] = "auto"
    engine: str = "batched"
    compute_answers: bool = False
    verify: bool = False
    observe: bool = False      # attach a metrics block to every record
    stats: str = "exact"       # statistics method: "exact" or "sketch"
    rounds: int = 1            # the planner's round budget (max_rounds)

    def _query(self) -> ConjunctiveQuery:
        if isinstance(self.query, str):
            return parse_query(self.query)
        return self.query

    def cells(self) -> list[Cell]:
        query = self._query()
        _validate_engine(self.engine)
        _validate_stats_method(self.stats)
        if self.rounds < 1:
            raise ExperimentError(f"rounds must be >= 1, got {self.rounds}")
        return [
            Cell(
                query=str(query),
                workload=self.workload.kind,
                m=self.workload.m,
                skew=self.workload.skew,
                seed=self.workload.seed,
                p=self.p,
                algorithm=key,
                engine=self.engine,
                compute_answers=self.compute_answers,
                verify=self.verify,
                domain=self.workload.domain,
                observe=self.observe,
                stats=self.stats,
                rounds=self.rounds,
            )
            for key in _resolve_algorithms(
                query, self.algorithms, max_rounds=self.rounds
            )
        ]

    def run(self, obs: Observation | None = None) -> list[RunRecord]:
        cells = self.cells()
        if not cells:
            return []
        # All cells share one workload x p point: build it once.
        with maybe_timed(obs, "experiment.prepare", query=str(self.query)):
            db, query_plan = _prepare(cells, obs=obs)
        return [_execute(cell, db, query_plan, obs=obs) for cell in cells]


@dataclass(frozen=True)
class Sweep:
    """The full grid: ``p_values x m_values x skews x seeds x rounds x
    algorithms``.

    ``run(max_workers=N)`` executes cells through a ``fork``-first process
    pool; with ``max_workers=None`` (or 1) the grid runs in-process.
    """

    query: str | ConjunctiveQuery
    workload: str = "zipf"
    p_values: Sequence[int] = (16,)
    m_values: Sequence[int] = (1000,)
    skews: Sequence[float] = (1.0,)
    seeds: Sequence[int] = (0,)
    algorithms: str | Sequence[str] = "applicable"
    engine: str = "batched"
    compute_answers: bool = False
    verify: bool = False
    domain: int | None = None
    observe: bool = False      # attach a metrics block to every record
    stats: str | Sequence[str] = "exact"   # one method, or an axis of them
    rounds: int | Sequence[int] = 1        # one round budget, or an axis

    def _stats_axis(self) -> tuple[str, ...]:
        methods = ((self.stats,) if isinstance(self.stats, str)
                   else tuple(self.stats))
        if not methods:
            raise ExperimentError("the stats axis is empty")
        for method in methods:
            _validate_stats_method(method)
        return methods

    def _rounds_axis(self) -> tuple[int, ...]:
        budgets = ((self.rounds,) if isinstance(self.rounds, int)
                   else tuple(self.rounds))
        if not budgets:
            raise ExperimentError("the rounds axis is empty")
        for budget in budgets:
            if not isinstance(budget, int) or budget < 1:
                raise ExperimentError(
                    f"round budgets must be integers >= 1, got {budget!r}"
                )
        return budgets

    def cells(self) -> list[Cell]:
        query = self._query()
        _validate_engine(self.engine)
        stats_methods = self._stats_axis()
        rounds_axis = self._rounds_axis()
        # The "applicable" expansion depends on the round budget, so the
        # key set is per-budget (an explicit list is budget-independent).
        keys_by_budget = {
            budget: _resolve_algorithms(query, self.algorithms,
                                        max_rounds=budget)
            for budget in rounds_axis
        }
        # Validate the grid axes up front: a bad value must fail here,
        # not as a traceback from the middle of a half-finished run.
        for p in self.p_values:
            if p < 1:
                raise ExperimentError(f"p must be >= 1, got {p}")
        for m in self.m_values:
            WorkloadSpec(kind=self.workload, m=m, skew=self.skews[0]
                         if self.skews else 1.0, domain=self.domain)
        text = str(query)
        return [
            Cell(
                query=text,
                workload=self.workload,
                m=m,
                skew=skew,
                seed=seed,
                p=p,
                algorithm=key,
                engine=self.engine,
                compute_answers=self.compute_answers,
                verify=self.verify,
                domain=self.domain,
                observe=self.observe,
                stats=stats_method,
                rounds=budget,
            )
            for m, skew, seed, p, stats_method, budget in product(
                self.m_values, self.skews, self.seeds, self.p_values,
                stats_methods, rounds_axis
            )
            for key in keys_by_budget[budget]
        ]

    def _query(self) -> ConjunctiveQuery:
        if isinstance(self.query, str):
            return parse_query(self.query)
        return self.query

    def run(
        self,
        max_workers: int | None = None,
        progress: Callable[[RunRecord], None] | None = None,
        cells: Sequence[Cell] | None = None,
        obs: Observation | None = None,
        cell_timeout: float | None = None,
    ) -> SweepResult:
        """Execute every cell through the shared fault-isolated executor.

        Execution goes through :func:`repro.service.jobs.execute_cells`
        — the same battle-tested path ``repro serve`` uses — so the
        library and the service share one executor.  In-process
        (``max_workers`` of ``None``/1), cells at the same grid
        coordinates share one database + statistics + plan regardless of
        their order in the grid.  With more workers, cells are farmed
        over non-daemonic worker processes (cells running the ``mp``
        engine can still open that engine's own pool inside a worker).

        Fault isolation: a cell whose preparation or round raises yields
        a ``failed:<reason>`` record instead of aborting the sweep, and
        — when ``cell_timeout`` seconds is given — a hung cell yields a
        ``timeout`` record while its worker process is killed and
        replaced.  Timeouts need process isolation, so ``cell_timeout``
        forces the farm even for a single worker.  Healthy records are
        returned in grid order either way; check
        :attr:`RunRecord.status` (``ok`` / ``failed:<reason>`` /
        ``timeout``) before trusting a row's measurements.

        ``progress`` (if given) is called with each finished record, in
        completion order — handy for long sweeps.  ``cells`` accepts a
        precomputed :meth:`cells` result (callers that already built the
        list to inspect it need not rebuild it).

        ``obs`` (an :class:`repro.obs.Observation`) turns on sweep-level
        instrumentation: per-cell wall-clock and metric aggregation
        in-process, plus queue wait and pool utilization when farming.
        Pool workers cannot share the parent's registry, so their cells
        are flipped to ``observe=True`` and their metrics travel back on
        the records, where the parent folds them in.  Per-cell progress
        is logged on the ``repro.service.jobs`` logger either way.
        """
        from ..service.jobs import execute_cells

        if cells is None:
            cells = self.cells()
        if not cells:
            raise ExperimentError("the sweep grid is empty")
        records = execute_cells(
            cells, max_workers=max_workers, cell_timeout=cell_timeout,
            progress=progress, obs=obs,
        )
        return SweepResult(records=tuple(records))


def sweep(
    query: str | ConjunctiveQuery,
    max_workers: int | None = None,
    **grid,
) -> SweepResult:
    """One-call convenience: ``sweep(q, p_values=(8, 16), skews=(0, 1.5))``."""
    return Sweep(query=query, **grid).run(max_workers=max_workers)
