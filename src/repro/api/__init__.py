"""The experiment API: registry, bound-driven planner, and sweep runner.

This package is the intended public entry point for running the paper's
algorithms as *experiments* rather than hand-assembled scripts:

1. :mod:`repro.api.registry` — every one-round algorithm registered with
   declared applicability and a predicted-load cost hook;
2. :mod:`repro.api.planner` — :func:`plan`/:func:`autoplan` rank the
   registered algorithms by predicted max-load (Section 3 bounds) and
   instantiate the winner, carrying the Theorem 3.6 lower bound for
   optimality-gap reporting;
3. :mod:`repro.api.experiment` — :class:`Experiment`/:class:`Sweep`
   execute declarative grids through the pluggable execution engines and
   return schema-checked :class:`RunRecord` rows (JSON/CSV exportable);
4. :mod:`repro.api.bench` — :func:`run_bench` executes the pinned perf
   suite behind ``repro bench`` and the committed ``BENCH_core.json``;
   :func:`run_sketch_bench` is its sketch-statistics twin (exact-vs-sketch
   planner regret and fidelity, ``BENCH_sketch.json``);
   :func:`run_rounds_bench` prices the multi-round subsystem
   (``BENCH_rounds.json``); :func:`run_suite` dispatches by suite name;
   :func:`compare_bench` is the CI regression gate and
   :func:`suite_gate_failures` the per-suite absolute one.

The multi-round subsystem itself (two-round triangle, the generic
round-composed join, ``run_rounds``, the ``tradeoff`` curve) lives in
:mod:`repro.rounds`; the planner ranks its algorithms whenever
``plan(..., max_rounds >= 2)`` admits them, and :class:`Sweep` exposes
the budget as its ``rounds`` axis.

Typical use::

    from repro.api import Sweep, autoplan

    algo = autoplan("q(x,y,z) :- S1(x,z), S2(y,z)", db=db, p=32)
    result = Sweep(
        "q(x,y,z) :- S1(x,z), S2(y,z)",
        workload="zipf", p_values=(8, 32), skews=(0.0, 1.5),
    ).run(max_workers=4)
    print(result.summary())
"""

from .bench import (
    BENCH_GATES,
    BENCH_SCHEMA,
    BENCH_SUITES,
    BenchError,
    bench_sweep,
    calibrate,
    compare_bench,
    rounds_bench_sweep,
    rounds_gate_failures,
    run_bench,
    run_rounds_bench,
    run_sketch_bench,
    run_suite,
    sketch_bench_sweep,
    sketch_gate_failures,
    suite_gate_failures,
    validate_bench,
)
from .experiment import (
    Cell,
    Experiment,
    ExperimentError,
    Sweep,
    SweepResult,
    WORKLOAD_KINDS,
    WorkloadSpec,
    failure_record,
    run_cell,
    sweep,
)
from .planner import (
    PlanError,
    Prediction,
    QueryPlan,
    STATS_METHODS,
    autoplan,
    plan,
    resolve_statistics,
)
from .records import (
    RUN_RECORD_FIELDS,
    RUN_RECORD_SCHEMA,
    RecordError,
    RunRecord,
    records_from_json,
    records_to_csv,
    records_to_json,
    validate_record,
)
from .registry import (
    AlgorithmSpec,
    RegistryError,
    algorithm_keys,
    algorithm_specs,
    applicable_specs,
    get_spec,
    register,
    unregister,
)

__all__ = [
    "BENCH_GATES",
    "BENCH_SCHEMA",
    "BENCH_SUITES",
    "BenchError",
    "bench_sweep",
    "calibrate",
    "compare_bench",
    "rounds_bench_sweep",
    "rounds_gate_failures",
    "run_bench",
    "run_rounds_bench",
    "run_sketch_bench",
    "run_suite",
    "sketch_bench_sweep",
    "sketch_gate_failures",
    "suite_gate_failures",
    "validate_bench",
    "Cell",
    "Experiment",
    "ExperimentError",
    "Sweep",
    "SweepResult",
    "WORKLOAD_KINDS",
    "WorkloadSpec",
    "failure_record",
    "run_cell",
    "sweep",
    "PlanError",
    "Prediction",
    "QueryPlan",
    "STATS_METHODS",
    "autoplan",
    "plan",
    "resolve_statistics",
    "RUN_RECORD_FIELDS",
    "RUN_RECORD_SCHEMA",
    "RecordError",
    "RunRecord",
    "records_from_json",
    "records_to_csv",
    "records_to_json",
    "validate_record",
    "AlgorithmSpec",
    "RegistryError",
    "algorithm_keys",
    "algorithm_specs",
    "applicable_specs",
    "get_spec",
    "register",
    "unregister",
]
