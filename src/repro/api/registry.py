"""The algorithm registry: every one-round algorithm, declaratively.

Each registered :class:`AlgorithmSpec` bundles what the planner needs to
reason about an algorithm *without* constructing it:

* a stable ``key`` (the CLI/CSV spelling),
* the algorithm class, whose class-level
  :meth:`~repro.mpc.execution.OneRoundAlgorithm.applicability` predicate
  replaces the old idiom of probing constructors for
  :class:`~repro.query.atoms.QueryError`,
* a ``factory`` building a ready-to-run instance from
  ``(query, stats, p)``, and
* the per-instance
  :meth:`~repro.mpc.execution.OneRoundAlgorithm.predicted_load_bits` cost
  hook, reachable through :meth:`AlgorithmSpec.predicted_load_bits`.

The default registry covers every algorithm the paper develops (HyperCube
with LP-optimal/equal shares, the broadcast rule, the hash-join baseline,
the Section 4.1 skew-aware join, the Section 4.2 bin algorithm, and the
cartesian grid), plus the multi-round algorithms of
:mod:`repro.rounds` (the two-round triangle and the generic
round-composed join), which the planner only considers when its
``max_rounds`` budget admits them.  Downstream code can :func:`register`
additional algorithms; the planner, sweep runner and CLI pick them up
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..core.broadcast import BroadcastHyperCube
from ..core.cartesian import CartesianProductAlgorithm
from ..core.hashjoin import HashJoinAlgorithm
from ..core.hypercube import HyperCubeAlgorithm
from ..core.skew_general import BinHyperCubeAlgorithm
from ..core.skew_join import SkewAwareJoin
from ..mpc.execution import OneRoundAlgorithm
from ..query.atoms import ConjunctiveQuery
from ..rounds.composed import RoundComposedJoin
from ..rounds.triangle import TwoRoundTriangle

# ``stats`` arguments throughout accept SimpleStatistics or
# HeavyHitterStatistics (richer statistics buy skew-aware predictions).
Statistics = object
# Factories build a OneRoundAlgorithm or a MultiRoundAlgorithm; both
# carry the same planner surface (applicability, predicted_load_bits,
# round_count) — the planner dispatches execution on the instance type.
Factory = Callable[[ConjunctiveQuery, Statistics, int], object]


class RegistryError(ValueError):
    """Raised for unknown algorithm keys or duplicate registrations."""


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registered one-round algorithm, ready for planning.

    Attributes
    ----------
    key:
        Stable identifier (``repro sweep --algorithms`` spelling).
    algorithm_class:
        The :class:`OneRoundAlgorithm` or
        :class:`~repro.rounds.MultiRoundAlgorithm` subclass; its
        class-level ``applicability`` declares which queries it handles
        and its ``round_count`` how many rounds it uses.
    factory:
        ``(query, stats, p) -> algorithm`` building a runnable
        instance.  ``stats`` may be simple or heavy-hitter statistics.
    summary:
        One line for tables and ``repro plan`` output.
    """

    key: str
    algorithm_class: type
    factory: Factory
    summary: str

    def applicability(self, query: ConjunctiveQuery) -> str | None:
        """None if applicable to ``query``, else the declared reason."""
        return self.algorithm_class.applicability(query)

    def is_applicable(self, query: ConjunctiveQuery) -> bool:
        return self.applicability(query) is None

    def rounds(self, query: ConjunctiveQuery) -> int:
        """Communication rounds the algorithm uses on ``query`` (1 for
        every one-round algorithm).  Only meaningful when applicable."""
        return int(self.algorithm_class.round_count(query))

    def build(
        self, query: ConjunctiveQuery, stats: Statistics, p: int
    ):
        """Instantiate the algorithm (the query must be applicable)."""
        reason = self.applicability(query)
        if reason is not None:
            raise RegistryError(
                f"algorithm {self.key!r} is not applicable to "
                f"{query.name!r}: {reason}"
            )
        return self.factory(query, stats, p)

    def predicted_load_bits(
        self, query: ConjunctiveQuery, stats: Statistics, p: int
    ) -> float:
        """The instance-level cost hook, from statistics alone."""
        return self.build(query, stats, p).predicted_load_bits(stats, p)


# The same arbiters every cost hook uses, shared via OneRoundAlgorithm.
_simple = OneRoundAlgorithm._simple_stats
_hh_or_none = OneRoundAlgorithm._heavy_stats


_REGISTRY: dict[str, AlgorithmSpec] = {}


def register(spec: AlgorithmSpec, replace: bool = False) -> AlgorithmSpec:
    """Add ``spec`` to the registry (``replace=True`` to overwrite)."""
    if not replace and spec.key in _REGISTRY:
        raise RegistryError(f"algorithm key {spec.key!r} already registered")
    _REGISTRY[spec.key] = spec
    return spec


def unregister(key: str) -> None:
    """Remove a registered algorithm (unknown keys are a no-op)."""
    _REGISTRY.pop(key, None)


def algorithm_keys() -> tuple[str, ...]:
    """All registered keys, in registration order."""
    return tuple(_REGISTRY)


def algorithm_specs(keys: Iterable[str] | None = None) -> tuple[AlgorithmSpec, ...]:
    """Specs for ``keys`` (default: every registered spec, in order)."""
    if keys is None:
        return tuple(_REGISTRY.values())
    return tuple(get_spec(key) for key in keys)


def get_spec(key: str) -> AlgorithmSpec:
    try:
        return _REGISTRY[key]
    except KeyError:
        raise RegistryError(
            f"unknown algorithm {key!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def applicable_specs(
    query: ConjunctiveQuery,
    keys: Iterable[str] | None = None,
    max_rounds: int | None = 1,
) -> tuple[AlgorithmSpec, ...]:
    """The subset of specs whose declared applicability accepts ``query``.

    ``max_rounds`` is the round budget: the default of 1 keeps the
    historical one-round contract (every returned spec can go straight
    into ``run_one_round``); raise it to admit multi-round algorithms,
    or pass ``None`` for no filter at all.
    """
    return tuple(
        spec for spec in algorithm_specs(keys)
        if spec.is_applicable(query)
        and (max_rounds is None or spec.rounds(query) <= max_rounds)
    )


# ----------------------------------------------------------------------
# The default registry: the paper's algorithms.
# ----------------------------------------------------------------------

register(AlgorithmSpec(
    key="hypercube-lp",
    algorithm_class=HyperCubeAlgorithm,
    factory=lambda query, stats, p: HyperCubeAlgorithm.with_optimal_shares(
        query, _simple(stats), p
    ),
    summary="HyperCube, LP-optimal integer shares (Theorem 3.4)",
))

register(AlgorithmSpec(
    key="hypercube-equal",
    algorithm_class=HyperCubeAlgorithm,
    factory=lambda query, stats, p: HyperCubeAlgorithm.with_equal_shares(
        query, p
    ),
    summary="HyperCube, equal shares p^(1/k) (Corollary 3.2(ii))",
))

register(AlgorithmSpec(
    key="hypercube-broadcast",
    algorithm_class=BroadcastHyperCube,
    factory=lambda query, stats, p: BroadcastHyperCube(query),
    summary="HyperCube plus the small-relation broadcast rule (Section 3.3)",
))

register(AlgorithmSpec(
    key="hashjoin",
    algorithm_class=HashJoinAlgorithm,
    factory=lambda query, stats, p: HashJoinAlgorithm(query, p),
    summary="classic parallel hash join on the common variables",
))

register(AlgorithmSpec(
    key="skew-join",
    algorithm_class=SkewAwareJoin,
    factory=lambda query, stats, p: SkewAwareJoin(
        query, stats=_hh_or_none(stats, p)
    ),
    summary="skew-aware two-relation join (Section 4.1)",
))

register(AlgorithmSpec(
    key="bin-hypercube",
    algorithm_class=BinHyperCubeAlgorithm,
    factory=lambda query, stats, p: BinHyperCubeAlgorithm(
        query, stats=_hh_or_none(stats, p)
    ),
    summary="per-bin-combination HyperCube (Theorem 4.6)",
))

register(AlgorithmSpec(
    key="cartesian-grid",
    algorithm_class=CartesianProductAlgorithm,
    factory=lambda query, stats, p: CartesianProductAlgorithm(query),
    summary="optimal grid for cartesian products (Section 1)",
))

# ----------------------------------------------------------------------
# Multi-round algorithms (ranked only when plan(..., max_rounds >= 2)).
# ----------------------------------------------------------------------

register(AlgorithmSpec(
    key="two-round-triangle",
    algorithm_class=TwoRoundTriangle,
    factory=lambda query, stats, p: TwoRoundTriangle(query, stats=stats),
    summary="two-round triangle: bounded partial join, then hash-join "
            "finish",
))

register(AlgorithmSpec(
    key="round-join",
    algorithm_class=RoundComposedJoin,
    factory=lambda query, stats, p: RoundComposedJoin(query, stats=stats),
    summary="round-composed join: one binary join per round (l-1 rounds)",
))
