"""The pinned benchmark suite behind ``repro bench`` and ``BENCH_core.json``.

This is the repo's persisted perf trajectory: :func:`run_bench` executes a
*pinned* workload grid (fixed query, generator kinds, skews, seeds and
server counts) through the sweep runner with full observability, and
reduces it to a JSON document with three regression-gateable families of
numbers per grid cell:

* **wall-clock** — per-cell and total, plus a machine-speed
  ``calibration_seconds`` (a fixed pure-Python workload timed on the same
  interpreter) so CI can compare *normalized* wall-clock across runners;
* **max-load vs the Theorem 3.6 lower bound** — the optimality gap, which
  is deterministic for a pinned grid (hashing is seeded), so any drift is
  a real behavior change;
* **planner optimality gap** — the regret of the minimum-*predicted*-load
  pick against the minimum-*measured*-load algorithm per cell.

:func:`validate_bench` checks a document against :data:`BENCH_SCHEMA`
(what CI runs over the emitted file); :func:`compare_bench` produces the
list of regressions versus a committed baseline (empty = gate passes).
The committed ``BENCH_core.json`` is refreshed with ``repro bench --quick
--output BENCH_core.json``; its git history is the trajectory.

A second suite, :func:`run_sketch_bench` (``repro bench --suite sketch``,
persisted as ``BENCH_sketch.json``), runs the same pinned grid under both
statistics methods and measures what sketch estimation error costs the
planner; :func:`sketch_gate_failures` holds its absolute acceptance
gates (full heavy-hitter recall, bit-identical shard merges, regret
within 10% of exact).

A third suite, :func:`run_rounds_bench` (``repro bench --suite rounds``,
persisted as ``BENCH_rounds.json``), runs a pinned *triangle* grid with
a round budget of two and prices the multi-round subsystem: two-round
wall-clock, optimality gap versus the multi-round (repartition) lower
bound, and the two-round speedup over the best one-round algorithm —
predicted and measured — which :func:`rounds_gate_failures` gates
absolutely (the two-round triangle must win both on every grid cell).

:data:`BENCH_SUITES` maps suite names to runners; :func:`run_suite`
dispatches by name and lists the valid suites on a miss.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

from ..obs import Observation
from .experiment import Sweep
from .records import RunRecord


class BenchError(ValueError):
    """Raised when a bench document does not match :data:`BENCH_SCHEMA`."""


#: The pinned workload grid.  Changing anything here invalidates baseline
#: comparability — bump ``suite`` if you must.
QUERY = "q(x, y, z) :- S1(x, z), S2(y, z)"
FULL_GRID = {
    "workload": "zipf",
    "p_values": (8, 32),
    "m_values": (400,),
    "skews": (0.0, 1.0, 2.0),
    "seeds": (0,),
}
QUICK_GRID = {
    "workload": "zipf",
    "p_values": (8,),
    "m_values": (160,),
    "skews": (0.0, 1.2),
    "seeds": (0,),
}

#: top-level field -> (accepted types, nullable)
BENCH_SCHEMA: Mapping[str, tuple[tuple[type, ...], bool]] = {
    "schema_version": ((int,), False),
    "suite": ((str,), False),
    "quick": ((bool,), False),
    "repeats": ((int,), False),
    "query": ((str,), False),
    "grid": ((dict,), False),
    "calibration_seconds": ((int, float), False),
    "entries": ((list,), False),
    "summary": ((dict,), False),
}

_ENTRY_FIELDS: Mapping[str, tuple[tuple[type, ...], bool]] = {
    "id": ((str,), False),
    "algorithm": ((str,), False),
    "workload": ((str,), False),
    "p": ((int,), False),
    "m": ((int,), False),
    "skew": ((int, float), False),
    "seed": ((int,), False),
    "wall_seconds": ((int, float), False),
    "max_load_bits": ((int, float), False),
    "lower_bound_bits": ((int, float), False),
    "optimality_gap": ((int, float), True),
    "predicted_load_bits": ((int, float), False),
}

_SUMMARY_FIELDS = (
    "total_wall_seconds",
    "normalized_wall",
    "mean_optimality_gap",
    "max_optimality_gap",
    "planner_mean_regret",
    "planner_worst_regret",
)


def calibrate(rounds: int = 3) -> float:
    """Seconds for a fixed pure-Python workload on this interpreter.

    The denominator that makes wall-clock portable across machines: a
    regression gate compares ``total_wall_seconds / calibration_seconds``,
    so a uniformly slower CI runner does not read as a regression.
    Best-of-``rounds`` to shed scheduler noise.
    """
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        acc = 0
        for i in range(200_000):
            acc += i * i % 7
        best = min(best, time.perf_counter() - started)
    # Guard against pathological clocks; the workload takes >1ms anywhere.
    return max(best, 1e-4)


def _entry_id(record: RunRecord) -> str:
    # The stats method is suffixed only when non-default so the ids of the
    # committed core baseline (written before the stats axis existed)
    # remain comparable.
    suffix = "" if record.stats == "exact" else f"-{record.stats}"
    return (
        f"{record.workload}-m{record.m}-s{record.skew:g}-p{record.p}-"
        f"{record.algorithm}{suffix}"
    )


def _cell_key(record: RunRecord) -> tuple:
    return (record.workload, record.m, record.skew, record.seed, record.p,
            record.stats)


def bench_sweep(quick: bool = False) -> Sweep:
    """The pinned :class:`Sweep` (every applicable algorithm per cell)."""
    grid = QUICK_GRID if quick else FULL_GRID
    return Sweep(query=QUERY, algorithms="applicable", observe=True, **grid)


def run_bench(
    quick: bool = False,
    obs: Observation | None = None,
    repeats: int = 3,
) -> dict:
    """Execute the pinned grid; return the ``BENCH_core.json`` document.

    Loads, gaps and regret are deterministic (seeded hashing), so one pass
    suffices for them; wall-clock is not, so the grid runs ``repeats``
    times and every timing is the best (minimum) across passes — the
    standard way to shed scheduler noise from a sub-second suite.
    """
    if repeats < 1:
        raise BenchError("run_bench needs repeats >= 1")
    sweep = bench_sweep(quick=quick)
    calibration = calibrate()
    obs = obs if obs is not None else Observation.create()
    result = None
    total_wall = float("inf")
    best_wall: dict[str, float] = {}
    for _ in range(repeats):
        started = time.perf_counter()
        result = sweep.run(obs=obs)
        total_wall = min(total_wall, time.perf_counter() - started)
        for record in result.records:
            entry_id = _entry_id(record)
            best_wall[entry_id] = min(
                best_wall.get(entry_id, float("inf")), record.wall_seconds
            )

    entries = []
    for record in result.records:
        entries.append({
            "id": _entry_id(record),
            "algorithm": record.algorithm,
            "workload": record.workload,
            "p": record.p,
            "m": record.m,
            "skew": record.skew,
            "seed": record.seed,
            "wall_seconds": best_wall[_entry_id(record)],
            "max_load_bits": record.max_load_bits,
            "lower_bound_bits": record.lower_bound_bits,
            "optimality_gap": record.optimality_gap,
            "predicted_load_bits": record.predicted_load_bits,
        })

    # Planner regret per cell: the planner's pick is the minimum-predicted
    # record of the cell (exactly what `algorithms="auto"` would choose,
    # since every applicable algorithm was measured); its measured load
    # over the cell's best measured load is the regret.
    regrets = []
    by_cell: dict[tuple, list[RunRecord]] = {}
    for record in result.records:
        by_cell.setdefault(_cell_key(record), []).append(record)
    for cell_records in by_cell.values():
        picked = min(cell_records, key=lambda r: r.predicted_load_bits)
        best = min(cell_records, key=lambda r: r.max_load_bits)
        if best.max_load_bits > 0:
            regrets.append(picked.max_load_bits / best.max_load_bits)
    gaps = [e["optimality_gap"] for e in entries
            if e["optimality_gap"] is not None]

    grid = QUICK_GRID if quick else FULL_GRID
    return {
        "schema_version": 1,
        "suite": "core",
        "quick": quick,
        "repeats": repeats,
        "query": QUERY,
        "grid": {key: list(value) if isinstance(value, tuple) else value
                 for key, value in grid.items()},
        "calibration_seconds": calibration,
        "entries": entries,
        "summary": {
            "total_wall_seconds": total_wall,
            "normalized_wall": total_wall / calibration,
            "mean_optimality_gap": sum(gaps) / len(gaps) if gaps else 0.0,
            "max_optimality_gap": max(gaps, default=0.0),
            "planner_mean_regret":
                sum(regrets) / len(regrets) if regrets else 1.0,
            "planner_worst_regret": max(regrets, default=1.0),
        },
    }


def validate_bench(data: object) -> None:
    """Check a bench document against :data:`BENCH_SCHEMA`; raise
    :class:`BenchError` on the first violation."""
    if not isinstance(data, dict):
        raise BenchError("bench document must be a JSON object")
    for name, (types, nullable) in BENCH_SCHEMA.items():
        if name not in data:
            raise BenchError(f"bench document is missing field {name!r}")
        value = data[name]
        if value is None and not nullable:
            raise BenchError(f"field {name!r} must not be null")
        if isinstance(value, bool) and bool not in types:
            raise BenchError(f"field {name!r} has type bool, wants {types}")
        if value is not None and not isinstance(value, types):
            raise BenchError(
                f"field {name!r} has type {type(value).__name__}"
            )
    if not data["entries"]:
        raise BenchError("bench document has no entries")
    seen: set[str] = set()
    for entry in data["entries"]:
        if not isinstance(entry, dict):
            raise BenchError("entries must be objects")
        for name, (types, nullable) in _ENTRY_FIELDS.items():
            if name not in entry:
                raise BenchError(f"entry is missing field {name!r}")
            value = entry[name]
            if value is None:
                if not nullable:
                    raise BenchError(f"entry field {name!r} must not be null")
                continue
            if isinstance(value, bool) and bool not in types:
                raise BenchError(f"entry field {name!r} has type bool")
            if not isinstance(value, types):
                raise BenchError(
                    f"entry field {name!r} has type {type(value).__name__}"
                )
        if entry["id"] in seen:
            raise BenchError(f"duplicate entry id {entry['id']!r}")
        seen.add(entry["id"])
    summary = data["summary"]
    for name in _SUMMARY_FIELDS:
        if not isinstance(summary.get(name), (int, float)):
            raise BenchError(f"summary is missing numeric field {name!r}")


def compare_bench(
    baseline: Mapping, current: Mapping, max_regression: float = 0.20
) -> list[str]:
    """Regressions of ``current`` vs ``baseline``; empty list = gate passes.

    Gates, each tolerating a relative ``max_regression`` (default 20%):

    * normalized wall-clock (total wall over the machine calibration);
    * per-entry optimality gap, on entries present in both documents
      (deterministic for a pinned grid, so the tolerance only absorbs
      float noise and generator tweaks);
    * planner worst-case regret.

    Comparing documents from different suites or grids is an error —
    those numbers are not commensurable.
    """
    failures: list[str] = []
    if baseline.get("suite") != current.get("suite"):
        raise BenchError(
            f"cannot compare suites {baseline.get('suite')!r} and "
            f"{current.get('suite')!r}"
        )
    allowed = 1.0 + max_regression

    base_wall = baseline["summary"]["normalized_wall"]
    cur_wall = current["summary"]["normalized_wall"]
    if base_wall > 0 and cur_wall > base_wall * allowed:
        failures.append(
            f"normalized wall-clock regressed {cur_wall / base_wall:.2f}x "
            f"({cur_wall:.1f} vs baseline {base_wall:.1f} calibration units, "
            f"tolerance {max_regression:.0%})"
        )

    base_entries = {e["id"]: e for e in baseline["entries"]}
    shared = [e for e in current["entries"] if e["id"] in base_entries]
    for entry in shared:
        base_gap = base_entries[entry["id"]]["optimality_gap"]
        gap = entry["optimality_gap"]
        if base_gap is None or gap is None or base_gap <= 0:
            continue
        if gap > base_gap * allowed:
            failures.append(
                f"{entry['id']}: optimality gap regressed "
                f"{gap / base_gap:.2f}x ({gap:.3f} vs baseline "
                f"{base_gap:.3f})"
            )

    base_regret = baseline["summary"]["planner_worst_regret"]
    cur_regret = current["summary"]["planner_worst_regret"]
    if base_regret > 0 and cur_regret > base_regret * allowed:
        failures.append(
            f"planner worst regret regressed {cur_regret / base_regret:.2f}x "
            f"({cur_regret:.3f} vs baseline {base_regret:.3f})"
        )
    return failures


# ----------------------------------------------------------------------
# the sketch suite (``repro bench --suite sketch`` / BENCH_sketch.json)
# ----------------------------------------------------------------------

def sketch_bench_sweep(quick: bool = False) -> Sweep:
    """The pinned grid run under *both* statistics methods.

    Same workload points as the core suite, with the ``stats`` axis added
    — every cell is planned and executed twice, once from exact
    frequencies and once from the one-pass Count-Sketch estimates, so the
    document can price what estimation error costs the planner.
    """
    grid = QUICK_GRID if quick else FULL_GRID
    return Sweep(
        query=QUERY, algorithms="applicable", observe=True,
        stats=("exact", "sketch"), **grid,
    )


def _worst_regret(records: Sequence[RunRecord]) -> float:
    """Planner worst-case regret over the cells of ``records``."""
    by_cell: dict[tuple, list[RunRecord]] = {}
    for record in records:
        by_cell.setdefault(_cell_key(record), []).append(record)
    worst = 1.0
    for cell_records in by_cell.values():
        picked = min(cell_records, key=lambda r: r.predicted_load_bits)
        best = min(cell_records, key=lambda r: r.max_load_bits)
        if best.max_load_bits > 0:
            worst = max(worst, picked.max_load_bits / best.max_load_bits)
    return worst


def _merge_bit_identical(query, db, config) -> bool:
    """Two-shard build merges to exactly the single-pass sketch tables."""
    import numpy as np

    from ..sketch import RelationSketchSet, build_sketch_set

    single = build_sketch_set(query, db, config)
    domains = {
        atom.name: db.relation(atom.name).domain_size for atom in query.atoms
    }
    first = RelationSketchSet.empty(query, domains, config)
    second = RelationSketchSet.empty(query, domains, config)
    for name in dict.fromkeys(atom.name for atom in query.atoms):
        tuples = sorted(db.relation(name).tuples)
        half = len(tuples) // 2
        first.update_relation(name, tuples[:half])
        second.update_relation(name, tuples[half:])
    merged = first.merge(second)
    return all(
        np.array_equal(mine, theirs)
        for key, sketch in single.sketches.items()
        for mine, theirs in zip(sketch.tables(),
                                merged.sketches[key].tables())
    )


def run_sketch_bench(
    quick: bool = False,
    obs: Observation | None = None,
    repeats: int = 3,
) -> dict:
    """Execute the sketch suite; return the ``BENCH_sketch.json`` document.

    Besides the core suite's three gateable families (normalized wall,
    per-entry optimality gaps, planner regret — all now per stats
    method), the summary carries the estimation-error -> planner-regret
    measurement the sketch subsystem is gated on:

    * ``sketch_min_recall`` — worst-case fraction of true heavy hitters
      the sketch recovered across the grid (must be 1.0: a missed heavy
      hitter overloads the light path);
    * ``merge_bit_identical`` — 1.0 iff sharded-then-merged sketches
      equal the single-pass build bit for bit;
    * ``exact_worst_regret`` / ``sketch_worst_regret`` /
      ``regret_ratio`` — what planning from estimates costs relative to
      planning from exact statistics (gated at 1.10).
    """
    from ..query.parser import parse_query
    from ..sketch import (
        SketchConfig,
        SketchedHeavyHitterStatistics,
        sketch_fidelity,
    )
    from ..stats.heavy_hitters import HeavyHitterStatistics
    from .experiment import WorkloadSpec

    if repeats < 1:
        raise BenchError("run_sketch_bench needs repeats >= 1")
    sweep = sketch_bench_sweep(quick=quick)
    calibration = calibrate()
    obs = obs if obs is not None else Observation.create()
    result = None
    total_wall = float("inf")
    best_wall: dict[str, float] = {}
    for _ in range(repeats):
        started = time.perf_counter()
        result = sweep.run(obs=obs)
        total_wall = min(total_wall, time.perf_counter() - started)
        for record in result.records:
            entry_id = _entry_id(record)
            best_wall[entry_id] = min(
                best_wall.get(entry_id, float("inf")), record.wall_seconds
            )

    entries = []
    for record in result.records:
        entries.append({
            "id": _entry_id(record),
            "algorithm": record.algorithm,
            "workload": record.workload,
            "p": record.p,
            "m": record.m,
            "skew": record.skew,
            "seed": record.seed,
            "stats": record.stats,
            "wall_seconds": best_wall[_entry_id(record)],
            "max_load_bits": record.max_load_bits,
            "lower_bound_bits": record.lower_bound_bits,
            "optimality_gap": record.optimality_gap,
            "predicted_load_bits": record.predicted_load_bits,
        })
    gaps = [e["optimality_gap"] for e in entries
            if e["optimality_gap"] is not None]

    exact_records = [r for r in result.records if r.stats == "exact"]
    sketch_records = [r for r in result.records if r.stats == "sketch"]
    exact_regret = _worst_regret(exact_records)
    sketch_regret = _worst_regret(sketch_records)
    regret_ratio = (sketch_regret / exact_regret) if exact_regret > 0 else 1.0

    # Fidelity pass: exact vs sketched heavy hitters on every grid point,
    # plus the shard-merge bit-identity check (once per workload).
    grid = QUICK_GRID if quick else FULL_GRID
    query = parse_query(QUERY)
    config = SketchConfig()
    min_recall = 1.0
    precisions: list[float] = []
    max_rel_error = 0.0
    merge_identical = True
    fidelity_points = []
    for m in grid["m_values"]:
        for skew in grid["skews"]:
            for seed in grid["seeds"]:
                workload = WorkloadSpec(
                    kind=grid["workload"], m=m, skew=skew, seed=seed
                )
                db = workload.build(query)
                merge_identical &= _merge_bit_identical(query, db, config)
                for p in grid["p_values"]:
                    exact = HeavyHitterStatistics.of(query, db, p)
                    sketched = SketchedHeavyHitterStatistics.of(
                        query, db, p, config=config, obs=obs
                    )
                    report = sketch_fidelity(exact, sketched)
                    min_recall = min(min_recall, report["recall"])
                    precisions.append(report["precision"])
                    max_rel_error = max(
                        max_rel_error, report["max_rel_error"]
                    )
                    fidelity_points.append({
                        "m": m, "skew": skew, "seed": seed, "p": p,
                        "recall": report["recall"],
                        "precision": report["precision"],
                        "max_rel_error": report["max_rel_error"],
                        "true_heavy": report["true_heavy"],
                        "sketched_heavy": report["sketched_heavy"],
                    })

    return {
        "schema_version": 1,
        "suite": "sketch",
        "quick": quick,
        "repeats": repeats,
        "query": QUERY,
        "grid": {key: list(value) if isinstance(value, tuple) else value
                 for key, value in grid.items()},
        "calibration_seconds": calibration,
        "entries": entries,
        "fidelity": fidelity_points,
        "summary": {
            "total_wall_seconds": total_wall,
            "normalized_wall": total_wall / calibration,
            "mean_optimality_gap": sum(gaps) / len(gaps) if gaps else 0.0,
            "max_optimality_gap": max(gaps, default=0.0),
            "planner_mean_regret": (exact_regret + sketch_regret) / 2,
            "planner_worst_regret": max(exact_regret, sketch_regret),
            "exact_worst_regret": exact_regret,
            "sketch_worst_regret": sketch_regret,
            "regret_ratio": regret_ratio,
            "sketch_min_recall": min_recall,
            "sketch_mean_precision":
                sum(precisions) / len(precisions) if precisions else 1.0,
            "sketch_max_rel_error": max_rel_error,
            "merge_bit_identical": 1.0 if merge_identical else 0.0,
        },
    }


def sketch_gate_failures(document: Mapping) -> list[str]:
    """The sketch suite's *absolute* acceptance gates (beyond
    :func:`compare_bench`'s relative ones); empty list = gate passes.

    * every true heavy hitter recovered (``sketch_min_recall == 1.0``);
    * sharded build bit-identical to single-pass
      (``merge_bit_identical == 1.0``);
    * planning from sketch estimates within 10% of the exact planner's
      worst-case regret (``regret_ratio <= 1.10``).
    """
    summary = document.get("summary", {})
    failures: list[str] = []
    recall = summary.get("sketch_min_recall")
    if not isinstance(recall, (int, float)) or recall < 1.0:
        failures.append(
            f"sketched statistics missed true heavy hitters "
            f"(min recall {recall!r}, want 1.0)"
        )
    identical = summary.get("merge_bit_identical")
    if identical != 1.0:
        failures.append(
            "sharded sketch merge is not bit-identical to the "
            "single-pass build"
        )
    ratio = summary.get("regret_ratio")
    if not isinstance(ratio, (int, float)) or ratio > 1.10:
        failures.append(
            f"sketched planner regret ratio {ratio!r} exceeds 1.10x "
            f"the exact planner's"
        )
    return failures


# ----------------------------------------------------------------------
# the rounds suite (``repro bench --suite rounds`` / BENCH_rounds.json)
# ----------------------------------------------------------------------

#: The pinned triangle grid — the query where one communication round is
#: provably expensive (Example 3.7's p^{1/3} replication) and two rounds
#: are not.  Same invalidation rule as the core grid.
ROUNDS_QUERY = "q(x, y, z) :- R(x, y), S(y, z), T(z, x)"
ROUNDS_FULL_GRID = {
    "workload": "zipf",
    "p_values": (8, 16),
    "m_values": (300,),
    "skews": (0.0, 0.8, 1.5),
    "seeds": (0,),
}
ROUNDS_QUICK_GRID = {
    "workload": "zipf",
    "p_values": (8,),
    "m_values": (160,),
    "skews": (0.0, 1.5),
    "seeds": (0,),
}

_TWO_ROUND_KEY = "two-round-triangle"


def rounds_bench_sweep(quick: bool = False) -> Sweep:
    """The pinned triangle grid under a round budget of two.

    ``algorithms="applicable"`` with ``rounds=2`` measures every
    one-round algorithm that accepts the triangle *and* both multi-round
    algorithms, so each cell prices the round/load tradeoff end to end.
    """
    grid = ROUNDS_QUICK_GRID if quick else ROUNDS_FULL_GRID
    return Sweep(
        query=ROUNDS_QUERY, algorithms="applicable", observe=True,
        rounds=2, **grid,
    )


def run_rounds_bench(
    quick: bool = False,
    obs: Observation | None = None,
    repeats: int = 3,
) -> dict:
    """Execute the rounds suite; return the ``BENCH_rounds.json`` document.

    Entries carry the executed round count and per-round loads on top of
    the core fields; each entry's ``lower_bound_bits`` is the bound that
    actually constrains it (Theorem 3.6 for one-round entries, the
    multi-round repartition bound for the rest), so the optimality-gap
    gates of :func:`compare_bench` stay meaningful per family.  The
    summary adds the two-round-vs-best-one-round speedups (predicted and
    measured, worst case over the grid) that
    :func:`rounds_gate_failures` gates absolutely, plus the planner's
    regret on its combined scale (max per-round load x rounds).
    """
    if repeats < 1:
        raise BenchError("run_rounds_bench needs repeats >= 1")
    sweep = rounds_bench_sweep(quick=quick)
    calibration = calibrate()
    obs = obs if obs is not None else Observation.create()
    result = None
    total_wall = float("inf")
    best_wall: dict[str, float] = {}
    for _ in range(repeats):
        started = time.perf_counter()
        result = sweep.run(obs=obs)
        total_wall = min(total_wall, time.perf_counter() - started)
        for record in result.records:
            entry_id = _entry_id(record)
            best_wall[entry_id] = min(
                best_wall.get(entry_id, float("inf")), record.wall_seconds
            )

    entries = []
    for record in result.records:
        entries.append({
            "id": _entry_id(record),
            "algorithm": record.algorithm,
            "workload": record.workload,
            "p": record.p,
            "m": record.m,
            "skew": record.skew,
            "seed": record.seed,
            "rounds": record.rounds,
            "round_load_bits": (None if record.round_load_bits is None
                                else list(record.round_load_bits)),
            "wall_seconds": best_wall[_entry_id(record)],
            "max_load_bits": record.max_load_bits,
            "lower_bound_bits": record.lower_bound_bits,
            "optimality_gap": record.optimality_gap,
            "predicted_load_bits": record.predicted_load_bits,
        })
    gaps = [e["optimality_gap"] for e in entries
            if e["optimality_gap"] is not None]

    # Per cell: the two-round triangle against the best one-round
    # algorithm (predicted and measured max-load), plus planner regret
    # on the combined cost scale the round-aware planner ranks by.
    speedups_predicted: list[float] = []
    speedups_measured: list[float] = []
    two_round_gaps: list[float] = []
    regrets: list[float] = []
    by_cell: dict[tuple, list[RunRecord]] = {}
    for record in result.records:
        by_cell.setdefault(_cell_key(record), []).append(record)
    for cell_records in by_cell.values():
        one_round = [r for r in cell_records if r.rounds == 1]
        two_round = [r for r in cell_records
                     if r.algorithm == _TWO_ROUND_KEY]
        if one_round and two_round:
            best_predicted = min(r.predicted_load_bits for r in one_round)
            best_measured = min(r.max_load_bits for r in one_round)
            two = two_round[0]
            if two.predicted_load_bits > 0:
                speedups_predicted.append(
                    best_predicted / two.predicted_load_bits
                )
            if two.max_load_bits > 0:
                speedups_measured.append(best_measured / two.max_load_bits)
            if two.optimality_gap is not None:
                two_round_gaps.append(two.optimality_gap)
        picked = min(cell_records,
                     key=lambda r: r.predicted_load_bits * r.rounds)
        best = min(cell_records, key=lambda r: r.max_load_bits * r.rounds)
        best_cost = best.max_load_bits * best.rounds
        if best_cost > 0:
            regrets.append(picked.max_load_bits * picked.rounds / best_cost)

    grid = ROUNDS_QUICK_GRID if quick else ROUNDS_FULL_GRID
    return {
        "schema_version": 1,
        "suite": "rounds",
        "quick": quick,
        "repeats": repeats,
        "query": ROUNDS_QUERY,
        "grid": {key: list(value) if isinstance(value, tuple) else value
                 for key, value in grid.items()},
        "calibration_seconds": calibration,
        "entries": entries,
        "summary": {
            "total_wall_seconds": total_wall,
            "normalized_wall": total_wall / calibration,
            "mean_optimality_gap": sum(gaps) / len(gaps) if gaps else 0.0,
            "max_optimality_gap": max(gaps, default=0.0),
            "planner_mean_regret":
                sum(regrets) / len(regrets) if regrets else 1.0,
            "planner_worst_regret": max(regrets, default=1.0),
            "two_round_min_speedup_predicted":
                min(speedups_predicted, default=0.0),
            "two_round_min_speedup_measured":
                min(speedups_measured, default=0.0),
            "two_round_mean_speedup_measured":
                (sum(speedups_measured) / len(speedups_measured)
                 if speedups_measured else 0.0),
            "two_round_min_gap": min(two_round_gaps, default=0.0),
            "two_round_max_gap": max(two_round_gaps, default=0.0),
        },
    }


def rounds_gate_failures(document: Mapping) -> list[str]:
    """The rounds suite's *absolute* acceptance gates (beyond
    :func:`compare_bench`'s relative ones); empty list = gate passes.

    * the two-round triangle beats the best one-round algorithm's
      *predicted* max-load on every grid cell;
    * it beats the best one-round algorithm's *measured* max-load on
      every grid cell too (the paper's point: more rounds buy load);
    * its measured load never dips below the multi-round repartition
      bound (a gap < 1 would mean the bound, or the fold, is wrong).
    """
    summary = document.get("summary", {})
    failures: list[str] = []
    predicted = summary.get("two_round_min_speedup_predicted")
    if not isinstance(predicted, (int, float)) or predicted <= 1.0:
        failures.append(
            f"two-round triangle does not beat the best one-round "
            f"algorithm's predicted load on every cell "
            f"(min speedup {predicted!r}, want > 1.0)"
        )
    measured = summary.get("two_round_min_speedup_measured")
    if not isinstance(measured, (int, float)) or measured <= 1.0:
        failures.append(
            f"two-round triangle does not beat the best one-round "
            f"algorithm's measured load on every cell "
            f"(min speedup {measured!r}, want > 1.0)"
        )
    min_gap = summary.get("two_round_min_gap")
    if not isinstance(min_gap, (int, float)) or min_gap < 1.0:
        failures.append(
            f"two-round measured load dips below the multi-round lower "
            f"bound (min gap {min_gap!r}, want >= 1.0)"
        )
    return failures


# ----------------------------------------------------------------------
# suite dispatch
# ----------------------------------------------------------------------

#: suite name -> runner; the single source of truth for what
#: ``repro bench --suite`` accepts.
BENCH_SUITES: Mapping[str, object] = {
    "core": run_bench,
    "sketch": run_sketch_bench,
    "rounds": run_rounds_bench,
}

#: suite name -> its absolute acceptance gate (beyond the relative
#: baseline comparison); suites without one pass vacuously.
BENCH_GATES: Mapping[str, object] = {
    "sketch": sketch_gate_failures,
    "rounds": rounds_gate_failures,
}


def run_suite(
    name: str,
    quick: bool = False,
    obs: Observation | None = None,
    repeats: int = 3,
) -> dict:
    """Run the named suite; unknown names list the valid choices."""
    try:
        runner = BENCH_SUITES[name]
    except KeyError:
        raise BenchError(
            f"unknown bench suite {name!r}; "
            f"choose from {', '.join(BENCH_SUITES)}"
        ) from None
    return runner(quick=quick, obs=obs, repeats=repeats)


def suite_gate_failures(document: Mapping) -> list[str]:
    """Absolute gate failures for ``document``'s suite (empty = passes)."""
    gate = BENCH_GATES.get(document.get("suite"))
    if gate is None:
        return []
    return gate(document)
