"""Structured experiment results: :class:`RunRecord` plus JSON/CSV export.

One :class:`RunRecord` per executed sweep cell — flat, schema-checked, and
serializable, so large sweeps can stream to disk and be re-loaded by any
tooling.  :data:`RUN_RECORD_SCHEMA` is the single source of truth for the
field set; :func:`validate_record` is what the CI smoke test runs over
``repro sweep`` output.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass
from typing import Iterable, Mapping, Sequence


class RecordError(ValueError):
    """Raised when a serialized record does not match the schema."""


@dataclass(frozen=True)
class RunRecord:
    """Everything measured (and predicted) for one experiment cell."""

    # --- the cell coordinates -----------------------------------------
    query: str                    # textual conjunctive query
    workload: str                 # generator kind (uniform/zipf/worst/...)
    m: int                        # tuples per relation
    skew: float                   # generator skew parameter
    seed: int                     # generator + hashing seed
    domain: int                   # realized generator domain size
    p: int                        # number of servers
    algorithm: str                # registry key
    algorithm_name: str           # instance display name
    engine: str                   # execution engine
    # --- predictions and bounds ---------------------------------------
    predicted_load_bits: float    # the planner's cost-hook estimate
    lower_bound_bits: float       # Theorem 3.6 L_lower
    # --- measurements -------------------------------------------------
    max_load_bits: float
    max_load_tuples: int
    replication_rate: float
    balance: float                # max/mean server load
    wall_seconds: float
    answer_count: int | None = None   # None when answers were skipped
    complete: bool | None = None      # None without verification
    # --- statistics method (a cell coordinate; declared after the
    # defaulted measurement fields only for dataclass ordering) ---------
    stats: str = "exact"              # "exact" or "sketch"
    # --- multi-round shape ---------------------------------------------
    #: communication rounds the executed algorithm used (1 = one-round).
    rounds: int = 1
    #: max per-server bits of every round, in round order; None for
    #: one-round cells (whose single round is ``max_load_bits`` itself).
    round_load_bits: Sequence[float] | None = None
    # --- execution status ----------------------------------------------
    #: ``"ok"``, ``"failed:<reason>"``, or ``"timeout"``.  Non-``ok``
    #: rows carry zeroed measurements: they exist so a sweep with a
    #: poisoned cell still returns every healthy record *and* a
    #: structured account of what went wrong, instead of losing the
    #: whole grid to one exception.
    status: str = "ok"
    # --- observability -------------------------------------------------
    #: a :meth:`repro.obs.MetricsRegistry.to_dict` digest for this cell
    #: (tuples routed, bits shipped per relation, per-server load
    #: histogram, phase timings); None when the cell ran unobserved.
    metrics: Mapping[str, object] | None = None

    @property
    def ok(self) -> bool:
        """True when the cell executed to completion."""
        return self.status == "ok"

    @property
    def optimality_gap(self) -> float | None:
        """Measured load over the lower bound (>= ~1 for real algorithms)."""
        if self.lower_bound_bits <= 0:
            return None
        return self.max_load_bits / self.lower_bound_bits

    @property
    def prediction_error(self) -> float | None:
        """Measured over predicted load — how honest the cost hook was."""
        if self.predicted_load_bits <= 0:
            return None
        return self.max_load_bits / self.predicted_load_bits

    def to_dict(self) -> dict:
        """A flat, JSON-ready mapping including the derived ratios."""
        out = asdict(self)
        out["optimality_gap"] = self.optimality_gap
        out["prediction_error"] = self.prediction_error
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunRecord":
        validate_record(data)
        fields = {name: data[name] for name in _DATACLASS_FIELDS if name in data}
        return cls(**fields)  # type: ignore[arg-type]


#: field -> (types accepted, nullable).  Derived ratio fields are nullable
#: because degenerate cells (empty inputs) have no meaningful denominator.
RUN_RECORD_SCHEMA: Mapping[str, tuple[tuple[type, ...], bool]] = {
    "query": ((str,), False),
    "workload": ((str,), False),
    "m": ((int,), False),
    "skew": ((int, float), False),
    "seed": ((int,), False),
    "domain": ((int,), False),
    "p": ((int,), False),
    "algorithm": ((str,), False),
    "algorithm_name": ((str,), False),
    "engine": ((str,), False),
    "stats": ((str,), False),
    "status": ((str,), False),
    "predicted_load_bits": ((int, float), False),
    "lower_bound_bits": ((int, float), False),
    "max_load_bits": ((int, float), False),
    "max_load_tuples": ((int,), False),
    "replication_rate": ((int, float), False),
    "balance": ((int, float), False),
    "wall_seconds": ((int, float), False),
    "answer_count": ((int,), True),
    "complete": ((bool,), True),
    "rounds": ((int,), False),
    "round_load_bits": ((list, tuple), True),
    "metrics": ((dict,), True),
    "optimality_gap": ((int, float), True),
    "prediction_error": ((int, float), True),
}

_DATACLASS_FIELDS = tuple(
    name for name in RUN_RECORD_SCHEMA
    if name not in ("optimality_gap", "prediction_error")
)

#: CSV column order == schema order.
RUN_RECORD_FIELDS: tuple[str, ...] = tuple(RUN_RECORD_SCHEMA)


def validate_record(data: Mapping[str, object]) -> None:
    """Check one serialized record against :data:`RUN_RECORD_SCHEMA`."""
    missing = [name for name in RUN_RECORD_SCHEMA if name not in data]
    if missing:
        raise RecordError(f"record is missing fields {missing}")
    unknown = [name for name in data if name not in RUN_RECORD_SCHEMA]
    if unknown:
        raise RecordError(f"record has unknown fields {unknown}")
    for name, (types, nullable) in RUN_RECORD_SCHEMA.items():
        value = data[name]
        if value is None:
            if not nullable:
                raise RecordError(f"field {name!r} must not be null")
            continue
        # bool is an int subclass; keep the two apart for schema honesty.
        if isinstance(value, bool) and bool not in types:
            raise RecordError(f"field {name!r} has type bool, wants {types}")
        if not isinstance(value, types):
            raise RecordError(
                f"field {name!r} has type {type(value).__name__}, "
                f"wants one of {[t.__name__ for t in types]}"
            )
    status = data["status"]
    if status not in ("ok", "timeout") and not (
        isinstance(status, str) and status.startswith("failed:")
    ):
        raise RecordError(
            f"field 'status' must be 'ok', 'timeout', or 'failed:<reason>'; "
            f"got {status!r}"
        )
    if data["rounds"] < 1:
        raise RecordError(f"field 'rounds' must be >= 1, got {data['rounds']}")
    round_loads = data["round_load_bits"]
    if round_loads is not None:
        for entry in round_loads:
            if isinstance(entry, bool) or not isinstance(entry, (int, float)):
                raise RecordError(
                    f"field 'round_load_bits' entries must be numeric; "
                    f"got {entry!r}"
                )


def records_to_json(records: Iterable[RunRecord], indent: int = 2) -> str:
    """A JSON array of :meth:`RunRecord.to_dict` mappings."""
    return json.dumps([record.to_dict() for record in records], indent=indent)


def records_from_json(text: str) -> list[RunRecord]:
    """Parse and validate a :func:`records_to_json` payload."""
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise RecordError("expected a JSON array of records")
    return [RunRecord.from_dict(item) for item in payload]


def records_to_csv(records: Sequence[RunRecord]) -> str:
    """CSV with the schema's column order; ``None`` renders empty.

    The nested ``metrics`` and ``round_load_bits`` values are embedded as
    compact-JSON cells so the CSV stays flat yet lossless.
    """
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=RUN_RECORD_FIELDS)
    writer.writeheader()
    for record in records:
        row = record.to_dict()
        for nested in ("metrics", "round_load_bits"):
            if row.get(nested) is not None:
                row[nested] = json.dumps(row[nested],
                                         separators=(",", ":"))
        writer.writerow({
            name: ("" if row[name] is None else row[name])
            for name in RUN_RECORD_FIELDS
        })
    return buffer.getvalue()
