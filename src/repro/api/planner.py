"""The bound-driven auto-planner.

:func:`plan` ranks every registered algorithm on a query by its predicted
max per-server load (the Section 3 bounds machinery, via each algorithm's
``predicted_load_bits`` cost hook), attaches the Theorem 3.6 lower bound
``L_lower = max_u L(u, M, p)`` for optimality-gap reporting, and exposes
the ranking as a :class:`QueryPlan`.  :func:`autoplan` instantiates the
winner directly.

Predictions are skew-aware when heavy-hitter statistics are supplied
(pass a database, or a ready
:class:`~repro.stats.heavy_hitters.HeavyHitterStatistics`); with simple
cardinality statistics they are the skew-free expectations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.bounds import lower_bound
from ..mpc.execution import OneRoundAlgorithm
from ..obs import Observation, maybe_timed
from ..query.atoms import ConjunctiveQuery
from ..query.parser import parse_query
from ..rounds.base import MultiRoundAlgorithm
from ..seq.relation import Database
from ..stats.cardinality import SimpleStatistics
from ..stats.heavy_hitters import HeavyHitterStatistics
from .registry import Statistics, algorithm_specs, get_spec


class PlanError(ValueError):
    """Raised when no registered algorithm can run the query."""


@dataclass(frozen=True)
class Prediction:
    """One algorithm's planner row.

    ``rounds`` and ``round_loads`` carry the multi-round shape: one-round
    algorithms report ``rounds=1`` with a single-entry load vector, and
    ``lower_bound_bits`` is the Theorem 3.6 one-round bound for them but
    the multi-round repartition bound (``max_j M_j / p``) for multi-round
    algorithms — the one-round bound does not constrain extra rounds.
    """

    key: str
    summary: str
    applicable: bool
    reason: str | None = None
    predicted_load_bits: float | None = None
    lower_bound_bits: float | None = None
    rounds: int = 1
    round_loads: tuple[float, ...] | None = None

    @property
    def cost_bits(self) -> float | None:
        """The ranking scale: max per-round load x number of rounds."""
        if self.predicted_load_bits is None:
            return None
        return self.predicted_load_bits * self.rounds

    @property
    def optimality_ratio(self) -> float | None:
        """Predicted load over the attached lower bound (>= ~1)."""
        if (
            self.predicted_load_bits is None
            or not self.lower_bound_bits
            or self.lower_bound_bits <= 0
        ):
            return None
        return self.predicted_load_bits / self.lower_bound_bits


@dataclass(frozen=True)
class QueryPlan:
    """The ranked output of :func:`plan`.

    ``predictions`` lists applicable algorithms first, sorted by the
    combined cost scale ``max per-round load x rounds`` (ties broken by
    total communication, then registration order), followed by the
    inapplicable ones with their declared reasons.  ``chosen`` is the
    first entry.  With the default ``max_rounds=1`` this reduces to the
    classic predicted-load ranking over one-round algorithms.
    """

    query: ConjunctiveQuery
    p: int
    stats: Statistics
    lower_bound_bits: float
    predictions: tuple[Prediction, ...] = field(default_factory=tuple)
    # Instances constructed while costing, reused by instantiate() so a
    # plan-then-run cycle never builds an algorithm twice.
    built: Mapping[str, object] = field(
        default_factory=dict, repr=False, compare=False
    )
    max_rounds: int = 1

    @property
    def chosen(self) -> Prediction:
        for prediction in self.predictions:
            if prediction.applicable:
                return prediction
        raise PlanError(
            f"no registered algorithm is applicable to {self.query.name!r}"
        )

    @property
    def applicable(self) -> tuple[Prediction, ...]:
        return tuple(pr for pr in self.predictions if pr.applicable)

    def prediction(self, key: str) -> Prediction:
        for prediction in self.predictions:
            if prediction.key == key:
                return prediction
        raise PlanError(f"algorithm {key!r} is not part of this plan")

    def instantiate(self, key: str | None = None):
        """The chosen (or an explicitly named) algorithm, ready to run.

        Returns the instance the planner already constructed while
        costing; only keys outside this plan trigger a fresh build.  The
        result is a :class:`OneRoundAlgorithm` or a
        :class:`~repro.rounds.MultiRoundAlgorithm` — run the latter with
        :func:`repro.rounds.run_rounds`.
        """
        chosen_key = self.chosen.key if key is None else key
        cached = self.built.get(chosen_key)
        if cached is not None:
            return cached
        return get_spec(chosen_key).build(self.query, self.stats, self.p)

    def explain(self) -> str:
        """A human-readable ranking table."""
        lines = [
            f"plan for {self.query} at p={self.p}",
            f"Theorem 3.6 lower bound: {self.lower_bound_bits:,.0f} bits",
        ]
        for rank, prediction in enumerate(self.applicable, start=1):
            marker = "*" if prediction.key == self.chosen.key else " "
            ratio = prediction.optimality_ratio
            gap = f"{ratio:6.2f}x" if ratio is not None else "      -"
            rounds = (
                f"  ({prediction.rounds} rounds)"
                if prediction.rounds > 1
                else ""
            )
            lines.append(
                f" {marker}{rank}. {prediction.key:<20} "
                f"predicted {prediction.predicted_load_bits:>14,.0f} bits  "
                f"vs bound {gap}{rounds}"
            )
        for prediction in self.predictions:
            if not prediction.applicable:
                lines.append(
                    f"  -  {prediction.key:<20} not applicable: "
                    f"{prediction.reason}"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready summary (used by ``repro plan --json``)."""
        return {
            "query": str(self.query),
            "p": self.p,
            "max_rounds": self.max_rounds,
            "lower_bound_bits": self.lower_bound_bits,
            "chosen": self.chosen.key,
            "predictions": [
                {
                    "key": pr.key,
                    "applicable": pr.applicable,
                    "reason": pr.reason,
                    "predicted_load_bits": pr.predicted_load_bits,
                    "optimality_ratio": pr.optimality_ratio,
                    "rounds": pr.rounds,
                    "round_loads": (
                        None if pr.round_loads is None
                        else list(pr.round_loads)
                    ),
                    "cost_bits": pr.cost_bits,
                }
                for pr in self.predictions
            ],
        }


#: How heavy-hitter statistics are obtained when extracted from a
#: database: ``"exact"`` materializes true frequencies
#: (:meth:`HeavyHitterStatistics.of`), ``"sketch"`` runs the one-pass
#: Count-Sketch statistics pass
#: (:meth:`repro.sketch.SketchedHeavyHitterStatistics.of`).
STATS_METHODS = ("exact", "sketch")


def resolve_statistics(
    query: ConjunctiveQuery,
    stats: Statistics | None,
    p: int,
    db: Database | None = None,
    stats_method: str = "exact",
    obs: Observation | None = None,
) -> Statistics:
    """The richest statistics available: explicit > extracted > error.

    ``stats_method`` selects the extraction path when statistics must be
    pulled from ``db`` (explicitly supplied statistics are used as-is):
    ``"exact"`` or ``"sketch"`` (see :data:`STATS_METHODS`).
    """
    if stats is not None:
        return stats
    if stats_method not in STATS_METHODS:
        raise PlanError(
            f"unknown stats method {stats_method!r}; "
            f"expected one of {STATS_METHODS}"
        )
    if db is not None:
        with maybe_timed(obs, "stats.build", method=stats_method):
            if stats_method == "sketch":
                from ..sketch import SketchedHeavyHitterStatistics

                return SketchedHeavyHitterStatistics.of(query, db, p, obs=obs)
            return HeavyHitterStatistics.of(query, db, p)
    raise PlanError("plan() needs statistics or a database to extract them from")


def plan(
    query: ConjunctiveQuery | str,
    stats: Statistics | None = None,
    p: int = 16,
    db: Database | None = None,
    algorithms: Iterable[str] | None = None,
    obs: Observation | None = None,
    stats_method: str = "exact",
    max_rounds: int = 1,
) -> QueryPlan:
    """Rank registered algorithms on ``query`` by predicted cost.

    Parameters
    ----------
    query:
        A :class:`ConjunctiveQuery` or its textual form.
    stats:
        :class:`SimpleStatistics` (skew-free predictions) or
        :class:`HeavyHitterStatistics` (skew-aware).  May be omitted when
        ``db`` is given — heavy-hitter statistics are then extracted.
    p:
        Number of servers.
    algorithms:
        Restrict the ranking to these registry keys (default: all).
    obs:
        An :class:`repro.obs.Observation`: times the plan build, the
        Theorem 3.6 bound, and every ``applicability()``/
        ``predicted_load_bits()`` cost-hook evaluation; counts
        considered/applicable/inapplicable algorithms.  ``None`` (the
        default) disables instrumentation.
    stats_method:
        How statistics are extracted when only ``db`` is given:
        ``"exact"`` (materialized frequencies) or ``"sketch"`` (the
        one-pass Count-Sketch statistics pass).  Ignored when ``stats``
        is supplied.
    max_rounds:
        Round budget.  The default 1 keeps the classic one-round
        ranking; with ``max_rounds >= 2`` the multi-round algorithms of
        :mod:`repro.rounds` compete too, everything ranked on the single
        scale ``max per-round load x rounds`` (ties broken by total
        communication, then registration order).  Algorithms needing
        more rounds than the budget are reported as inapplicable.
    """
    if isinstance(query, str):
        query = parse_query(query)
    if max_rounds < 1:
        raise PlanError(f"max_rounds must be >= 1, got {max_rounds}")
    with maybe_timed(obs, "plan.build", query=str(query), p=p):
        stats = resolve_statistics(
            query, stats, p, db, stats_method=stats_method, obs=obs
        )
        simple: SimpleStatistics = getattr(stats, "simple", stats)
        bits = simple.bits_vector(query)
        with maybe_timed(obs, "plan.lower_bound"):
            if p >= 2 and any(value > 0 for value in bits.values()):
                bound_bits = lower_bound(query, bits, p).bits
            else:
                bound_bits = sum(bits.values())

        ranked: list[tuple[float, float, int, Prediction]] = []
        inapplicable: list[Prediction] = []
        built: dict[str, object] = {}
        for order, spec in enumerate(algorithm_specs(algorithms)):
            if obs is not None:
                obs.count("planner.algorithms_considered")
            with maybe_timed(obs, "plan.applicability", algorithm=spec.key):
                reason = spec.applicability(query)
                rounds = 1 if reason is not None else spec.rounds(query)
            if reason is None and rounds > max_rounds:
                reason = (
                    f"needs {rounds} rounds but the round budget is "
                    f"max_rounds={max_rounds}"
                )
            if reason is not None:
                if obs is not None:
                    obs.count("planner.inapplicable")
                inapplicable.append(Prediction(
                    key=spec.key,
                    summary=spec.summary,
                    applicable=False,
                    reason=reason,
                ))
                continue
            if obs is not None:
                obs.count("planner.applicable")
            with maybe_timed(obs, "plan.cost", algorithm=spec.key):
                algorithm = spec.build(query, stats, p)
                built[spec.key] = algorithm
                if isinstance(algorithm, MultiRoundAlgorithm):
                    round_loads = tuple(
                        algorithm.predicted_round_loads(stats, p)
                    )
                    predicted = max(round_loads)
                    algo_bound = algorithm.lower_bound_bits(stats, p)
                else:
                    predicted = algorithm.predicted_load_bits(stats, p)
                    round_loads = (predicted,)
                    algo_bound = bound_bits
            if not math.isfinite(predicted) or predicted < 0:
                raise PlanError(
                    f"algorithm {spec.key!r} predicted a non-finite load "
                    f"({predicted!r}) on {query.name!r}"
                )
            if obs is not None:
                obs.set_gauge(
                    f"planner.predicted_load_bits.{spec.key}", predicted
                )
            # The single ranking scale: max per-round load x rounds,
            # ties broken by total communication (p x sum of per-round
            # loads), then registration order.
            cost = predicted * rounds
            total_comm = p * sum(round_loads)
            ranked.append((cost, total_comm, order, Prediction(
                key=spec.key,
                summary=spec.summary,
                applicable=True,
                predicted_load_bits=predicted,
                lower_bound_bits=algo_bound,
                rounds=rounds,
                round_loads=round_loads,
            )))
        ranked.sort(key=lambda item: (item[0], item[1], item[2]))
        predictions = tuple(pr for _, _, _, pr in ranked) + tuple(inapplicable)
        if not any(pr.applicable for pr in predictions):
            raise PlanError(
                f"no registered algorithm is applicable to {query.name!r}"
            )
        if obs is not None:
            obs.set_gauge("planner.lower_bound_bits", bound_bits)
    return QueryPlan(
        query=query,
        p=p,
        stats=stats,
        lower_bound_bits=bound_bits,
        predictions=predictions,
        built=built,
        max_rounds=max_rounds,
    )


def autoplan(
    query: ConjunctiveQuery | str,
    stats: Statistics | None = None,
    p: int = 16,
    db: Database | None = None,
    algorithms: Iterable[str] | None = None,
    stats_method: str = "exact",
    max_rounds: int = 1,
):
    """Instantiate the minimum-cost applicable algorithm.

    With ``max_rounds >= 2`` the result may be a
    :class:`~repro.rounds.MultiRoundAlgorithm`; run it with
    :func:`repro.rounds.run_rounds` instead of ``run_one_round``.
    """
    return plan(
        query, stats, p, db=db, algorithms=algorithms,
        stats_method=stats_method, max_rounds=max_rounds,
    ).instantiate()
