"""Command-line interface: inspect bounds and race algorithms from a shell.

Three subcommands::

    python -m repro bounds "q(x,y,z) :- S1(x,z), S2(y,z)" \
        --cardinality S1=4096 --cardinality S2=1024 --domain 100000 -p 64

    python -m repro race "q(x,y,z) :- S1(x,z), S2(y,z)" \
        --workload zipf --skew 1.5 -m 2000 -p 32

    python -m repro packings "C3(x,y,z) :- R(x,y), S(y,z), T(z,x)"

``bounds`` prints the share LP solution, the packing-vertex table and the
optimal load; ``race`` generates a workload and runs every applicable
one-round algorithm with verification (``--engine`` picks the execution
engine: ``reference``, ``batched`` or ``mp``; see :mod:`repro.mpc.engine`);
``packings`` prints ``pk(q)``, ``tau*`` and the cover numbers.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core import (
    BinHyperCubeAlgorithm,
    HashJoinAlgorithm,
    HyperCubeAlgorithm,
    SkewAwareJoin,
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    lower_bound,
    maximum_packing_value,
    non_dominated_packing_vertices,
    optimal_share_exponents,
    space_exponent,
    vertex_loads,
)
from .data import single_value_relation, uniform_relation, zipf_relation
from .mpc import available_engines, run_one_round
from .query import ConjunctiveQuery, QueryError, parse_query
from .seq import Database
from .stats import SimpleStatistics


def _parse_cardinalities(pairs: Sequence[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not value:
            raise SystemExit(f"--cardinality expects NAME=COUNT, got {pair!r}")
        out[name] = int(value)
    return out


def cmd_bounds(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    cardinalities = _parse_cardinalities(args.cardinality)
    stats = SimpleStatistics.from_cardinalities(
        query, cardinalities, domain_size=args.domain
    )
    bits = stats.bits_vector(query)
    print(f"query: {query}")
    print(f"p = {args.p}, domain = {args.domain}")
    print("\npacking-vertex load table (pk(q)):")
    for packing, value in vertex_loads(query, bits, args.p):
        label = {k: str(v) for k, v in packing.items() if v != 0}
        print(f"  u = {label}: {value:,.0f} bits")
    bound = lower_bound(query, bits, args.p)
    solution = optimal_share_exponents(query, bits, args.p)
    print(f"\noptimal load (Theorem 3.6): {bound.bits:,.0f} bits")
    print(f"share exponents: "
          + ", ".join(f"{v}={float(e):.3f}" for v, e in solution.exponents.items()))
    print(f"space exponent: {space_exponent(query, bits, args.p):.4f}")
    return 0


def cmd_packings(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    print(f"query: {query}")
    print(f"tau* (max fractional edge packing)   : {maximum_packing_value(query)}")
    print(f"fractional vertex cover number (dual): "
          f"{fractional_vertex_cover_number(query)}")
    print(f"rho* (min fractional edge cover)     : "
          f"{fractional_edge_cover_number(query)}")
    vertices = non_dominated_packing_vertices(query)
    print(f"\npk(q): {len(vertices)} non-dominated vertices")
    for vertex in vertices:
        print("  " + ", ".join(
            f"{name}={value}" for name, value in sorted(vertex.items())
        ))
    return 0


def _make_workload(
    query: ConjunctiveQuery, kind: str, m: int, skew: float, seed: int
) -> Database:
    relations = []
    for i, atom in enumerate(query.atoms):
        if kind == "uniform":
            relations.append(
                uniform_relation(atom.name, m, 8 * m, arity=atom.arity,
                                 seed=seed + i)
            )
        elif kind == "zipf":
            relations.append(
                zipf_relation(atom.name, m, 4 * m, arity=atom.arity,
                              skew=skew, seed=seed + i)
            )
        elif kind == "worst":
            relations.append(
                single_value_relation(atom.name, m, 8 * m, arity=atom.arity,
                                      fixed_position=atom.arity - 1,
                                      seed=seed + i)
            )
        else:
            raise SystemExit(f"unknown workload {kind!r}")
    return Database.from_relations(relations)


def cmd_race(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    db = _make_workload(query, args.workload, args.m, args.skew, args.seed)
    stats = SimpleStatistics.of(db)
    algorithms: list = [
        HyperCubeAlgorithm.with_optimal_shares(query, stats, args.p),
        HyperCubeAlgorithm.with_equal_shares(query, args.p),
        BinHyperCubeAlgorithm(query),
    ]
    try:
        algorithms.append(HashJoinAlgorithm(query, args.p))
    except QueryError:
        pass
    try:
        algorithms.append(SkewAwareJoin(query))
    except QueryError:
        pass

    bound = lower_bound(query, stats.bits_vector(query), args.p)
    print(f"query: {query}")
    print(f"workload: {args.workload} (m={args.m}, skew={args.skew}), "
          f"p={args.p}, engine={args.engine}")
    print(f"Theorem 3.6 skew-free optimum: {bound.bits:,.0f} bits\n")
    print(f"{'algorithm':>18} {'max load bits':>14} {'tuples':>7} "
          f"{'repl.':>6} {'complete':>9}")
    for algorithm in algorithms:
        result = run_one_round(
            algorithm, db, args.p, seed=args.seed, verify=args.verify,
            engine=args.engine,
        )
        complete = "-" if result.is_complete is None else str(result.is_complete)
        print(
            f"{algorithm.name:>18} {result.max_load_bits:>14,.0f} "
            f"{result.max_load_tuples:>7} "
            f"{result.report.replication_rate:>6.2f} {complete:>9}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Skew in Parallel Query Processing (PODS 2014) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bounds = sub.add_parser("bounds", help="share LP + load bounds")
    bounds.add_argument("query")
    bounds.add_argument("--cardinality", action="append", default=[],
                        help="NAME=COUNT (repeatable)")
    bounds.add_argument("--domain", type=int, default=1_000_000)
    bounds.add_argument("-p", type=int, default=64)
    bounds.set_defaults(func=cmd_bounds)

    packings = sub.add_parser("packings", help="pk(q), tau*, cover numbers")
    packings.add_argument("query")
    packings.set_defaults(func=cmd_packings)

    race = sub.add_parser("race", help="run all algorithms on a workload")
    race.add_argument("query")
    race.add_argument("--workload", choices=["uniform", "zipf", "worst"],
                      default="uniform")
    race.add_argument("--skew", type=float, default=1.0)
    race.add_argument("-m", type=int, default=1000)
    race.add_argument("-p", type=int, default=16)
    race.add_argument("--seed", type=int, default=0)
    race.add_argument("--verify", action="store_true",
                      help="also run the sequential join and check completeness")
    race.add_argument("--engine", choices=available_engines(),
                      default="batched",
                      help="execution engine simulating the round: reference "
                           "(tuple-at-a-time oracle), batched (vectorized, "
                           "default), mp (multiprocessing shards); all return "
                           "identical answers and loads")
    race.set_defaults(func=cmd_race)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
