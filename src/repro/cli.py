"""Command-line interface: bounds, planning, racing, sweeping, serving.

Nine subcommands::

    python -m repro bounds "q(x,y,z) :- S1(x,z), S2(y,z)" \
        --cardinality S1=4096 --cardinality S2=1024 --domain 100000 -p 64

    python -m repro plan "q(x,y,z) :- S1(x,z), S2(y,z)" \
        --workload zipf --skew 1.5 -m 2000 -p 32 [--json]

    python -m repro race "q(x,y,z) :- S1(x,z), S2(y,z)" \
        --workload zipf --skew 1.5 -m 2000 -p 32

    python -m repro sweep "q(x,y,z) :- S1(x,z), S2(y,z)" \
        --workload zipf --skew 0.0,1.5 --p 8,32 --stats exact,sketch

    python -m repro stats "q(x,y,z) :- S1(x,z), S2(y,z)" \
        --workload zipf --skew 1.5 -m 2000 -p 32

    python -m repro bench --quick --baseline BENCH_core.json
    python -m repro bench --suite sketch --quick --baseline BENCH_sketch.json

    python -m repro packings "C3(x,y,z) :- R(x,y), S(y,z), T(z,x)"

    python -m repro serve --port 8765 --queue-size 32 --job-workers 2

    python -m repro submit plan "q(x,y,z) :- S1(x,z), S2(y,z)" \
        --server http://127.0.0.1:8765 --workload zipf -m 2000 -p 32

``bounds`` prints the share LP solution, the packing-vertex table and the
optimal load; ``plan`` ranks every registered algorithm by predicted load
(the :mod:`repro.api` planner) without running anything; ``race`` runs the
applicable algorithms on a generated workload, predicted next to measured;
``sweep`` executes a full ``p x skew x m x stats x algorithm`` grid
through the execution engines and emits schema-checked JSON/CSV records
(``--stats exact,sketch`` runs every cell under both statistics methods);
``stats`` compares the one-pass Count-Sketch statistics against the exact
heavy hitters on one workload (recall/precision, frequency error, pass
times); ``bench`` runs a pinned perf suite — ``--suite core`` into
``BENCH_core.json``, ``--suite sketch`` (exact-vs-sketch planner regret
and fidelity gates) into ``BENCH_sketch.json`` — and gates regressions;
``packings`` prints ``pk(q)``, ``tau*`` and the cover numbers;
``serve`` runs the long-lived plan/sweep service (async job queue with
backpressure, per-catalog plan/statistics cache, fault-isolated sweep
cells) and ``submit`` is its client — submit a ``plan``, ``stats`` or
``sweep`` job, poll to completion, print the result.

Observability: ``race``, ``sweep`` and ``bench`` accept ``--trace FILE``
(write a Chrome-trace JSON of the run's nested spans — open it at
``chrome://tracing``) and ``--metrics`` (print the metrics registry:
tuples routed, bits shipped per relation, per-server load histogram,
skew ratio, per-cell timings).  Progress and status go through stdlib
``logging`` on the ``repro.*`` loggers — ``-v/--verbose`` for debug
detail, ``-q/--quiet`` for warnings only; payload output stays on stdout.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from typing import Callable, Sequence

from .api import (
    Sweep,
    WORKLOAD_KINDS,
    WorkloadSpec,
    plan as build_plan,
)
from .api.bench import (
    BENCH_SUITES,
    BenchError,
    compare_bench,
    run_suite,
    suite_gate_failures,
    validate_bench,
)
from .api.planner import STATS_METHODS
from .obs import Observation
from .core import (
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    lower_bound,
    maximum_packing_value,
    non_dominated_packing_vertices,
    optimal_share_exponents,
    space_exponent,
    vertex_loads,
)
from .mpc import available_engines, run_one_round
from .query import ConjunctiveQuery, parse_query
from .seq import Database
from .stats import HeavyHitterStatistics, SimpleStatistics

_LOG = logging.getLogger("repro.cli")


def _configure_logging(args: argparse.Namespace) -> None:
    """Wire the ``repro`` logger hierarchy to stderr.

    ``-q`` shows warnings only, ``-v`` adds debug detail, the default is
    progress at INFO.  Idempotent: re-invocations (tests calling
    :func:`main` repeatedly) reuse the handler and just adjust levels.
    """
    if getattr(args, "quiet", False):
        level = logging.WARNING
    elif getattr(args, "verbose", False):
        level = logging.DEBUG
    else:
        level = logging.INFO
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False


def _make_observation(args: argparse.Namespace) -> Observation | None:
    """An :class:`Observation` when ``--trace``/``--metrics`` asked for one."""
    if getattr(args, "trace", None) or getattr(args, "metrics", False):
        return Observation.create()
    return None


def _finish_observation(
    args: argparse.Namespace, obs: Observation | None
) -> None:
    """Print the metrics table and/or write the Chrome trace file."""
    if obs is None:
        return
    if getattr(args, "metrics", False):
        print()
        print(obs.metrics.render())
    trace_path = getattr(args, "trace", None)
    if trace_path:
        with open(trace_path, "w", encoding="utf-8") as handle:
            handle.write(obs.tracer.to_json())
            handle.write("\n")
        _LOG.info(
            "wrote %d trace spans to %s (open at chrome://tracing)",
            len(obs.tracer.spans), trace_path,
        )


def _parse_cardinalities(pairs: Sequence[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(f"--cardinality expects NAME=COUNT, got {pair!r}")
        try:
            count = int(value)
        except ValueError:
            raise SystemExit(
                f"--cardinality expects an integer count, got {value!r} "
                f"for {name!r}"
            ) from None
        out[name] = count
    return out


def _parse_grid(text: str, convert: Callable, flag: str) -> tuple:
    """A comma-separated grid axis (``--p 8,16``), cleanly rejected."""
    values = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(convert(token))
        except ValueError:
            raise SystemExit(
                f"{flag} expects comma-separated {convert.__name__} values, "
                f"got {token!r}"
            ) from None
    if not values:
        raise SystemExit(f"{flag} needs at least one value")
    return tuple(values)


def _stats_from_cardinalities(
    query: ConjunctiveQuery, cardinalities: dict[str, int], domain: int
) -> SimpleStatistics:
    try:
        return SimpleStatistics.from_cardinalities(
            query, cardinalities, domain_size=domain
        )
    except ValueError as exc:  # e.g. missing relations
        raise SystemExit(str(exc)) from None


def cmd_bounds(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    cardinalities = _parse_cardinalities(args.cardinality)
    stats = _stats_from_cardinalities(query, cardinalities, args.domain)
    bits = stats.bits_vector(query)
    print(f"query: {query}")
    print(f"p = {args.p}, domain = {args.domain}")
    print("\npacking-vertex load table (pk(q)):")
    for packing, value in vertex_loads(query, bits, args.p):
        label = {k: str(v) for k, v in packing.items() if v != 0}
        print(f"  u = {label}: {value:,.0f} bits")
    bound = lower_bound(query, bits, args.p)
    solution = optimal_share_exponents(query, bits, args.p)
    print(f"\noptimal load (Theorem 3.6): {bound.bits:,.0f} bits")
    print(f"share exponents: "
          + ", ".join(f"{v}={float(e):.3f}" for v, e in solution.exponents.items()))
    print(f"space exponent: {space_exponent(query, bits, args.p):.4f}")
    return 0


def cmd_packings(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    print(f"query: {query}")
    print(f"tau* (max fractional edge packing)   : {maximum_packing_value(query)}")
    print(f"fractional vertex cover number (dual): "
          f"{fractional_vertex_cover_number(query)}")
    print(f"rho* (min fractional edge cover)     : "
          f"{fractional_edge_cover_number(query)}")
    vertices = non_dominated_packing_vertices(query)
    print(f"\npk(q): {len(vertices)} non-dominated vertices")
    for vertex in vertices:
        print("  " + ", ".join(
            f"{name}={value}" for name, value in sorted(vertex.items())
        ))
    return 0


def _make_workload(
    query: ConjunctiveQuery, kind: str, m: int, skew: float, seed: int
) -> Database:
    try:
        spec = WorkloadSpec(kind=kind, m=m, skew=skew, seed=seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    return spec.build(query)


def _plan_statistics(args: argparse.Namespace, query: ConjunctiveQuery):
    """Statistics for ``plan``: explicit cardinalities beat a workload."""
    if args.cardinality:
        cardinalities = _parse_cardinalities(args.cardinality)
        return _stats_from_cardinalities(query, cardinalities, args.domain)
    db = _make_workload(query, args.workload, args.m, args.skew, args.seed)
    return HeavyHitterStatistics.of(query, db, args.p)


def cmd_plan(args: argparse.Namespace) -> int:
    from .rounds import tradeoff

    query = parse_query(args.query)
    if args.max_rounds < 1:
        raise SystemExit(f"--max-rounds must be >= 1, got {args.max_rounds}")
    stats = _plan_statistics(args, query)
    query_plan = build_plan(query, stats, args.p, max_rounds=args.max_rounds)
    curve = None
    if args.max_rounds > 1:
        curve = tradeoff(query, args.p, rounds=args.max_rounds, stats=stats)
    if args.json:
        document = query_plan.to_dict()
        if curve is not None:
            document["tradeoff"] = [point.to_dict() for point in curve]
        print(json.dumps(document, indent=2))
        return 0
    if args.cardinality:
        print("statistics: declared cardinalities (skew-free predictions)")
    else:
        print(f"statistics: {args.workload} workload "
              f"(m={args.m}, skew={args.skew}, seed={args.seed})")
    print(query_plan.explain())
    if curve is not None:
        print("\nround/load tradeoff (cost = max per-round load x rounds):")
        for point in curve:
            if point.key is None:
                print(f"  {point.rounds} round(s): no applicable algorithm")
            else:
                print(
                    f"  {point.rounds} round(s): {point.key} — "
                    f"max load {point.predicted_load_bits:,.0f} bits, "
                    f"cost {point.cost_bits:,.0f} bits"
                )
    return 0


def cmd_race(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    obs = _make_observation(args)
    db = _make_workload(query, args.workload, args.m, args.skew, args.seed)
    stats = HeavyHitterStatistics.of(query, db, args.p)
    query_plan = build_plan(query, stats, args.p, obs=obs)

    print(f"query: {query}")
    print(f"workload: {args.workload} (m={args.m}, skew={args.skew}), "
          f"p={args.p}, engine={args.engine}")
    print(f"Theorem 3.6 skew-free optimum: "
          f"{query_plan.lower_bound_bits:,.0f} bits\n")
    print(f"{'algorithm':>20} {'predicted':>12} {'max load bits':>14} "
          f"{'tuples':>7} {'repl.':>6} {'complete':>9}")
    for prediction in query_plan.applicable:
        algorithm = query_plan.instantiate(prediction.key)
        result = run_one_round(
            algorithm, db, args.p, seed=args.seed, verify=args.verify,
            engine=args.engine, obs=obs,
        )
        complete = "-" if result.is_complete is None else str(result.is_complete)
        print(
            f"{algorithm.name:>20} {prediction.predicted_load_bits:>12,.0f} "
            f"{result.max_load_bits:>14,.0f} "
            f"{result.max_load_tuples:>7} "
            f"{result.report.replication_rate:>6.2f} {complete:>9}"
        )
    skipped = [pr for pr in query_plan.predictions if not pr.applicable]
    if skipped:
        print("\nnot applicable: "
              + "; ".join(f"{pr.key} ({pr.reason})" for pr in skipped))
    _finish_observation(args, obs)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Exact-vs-sketched statistics fidelity report on one workload."""
    from .sketch import (
        SketchConfig,
        SketchedHeavyHitterStatistics,
        sketch_fidelity,
    )

    query = parse_query(args.query)
    obs = _make_observation(args)
    db = _make_workload(query, args.workload, args.m, args.skew, args.seed)
    try:
        config = SketchConfig(
            width=args.width, depth=args.depth, base=args.base
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    started = time.perf_counter()
    exact = HeavyHitterStatistics.of(query, db, args.p)
    exact_seconds = time.perf_counter() - started
    started = time.perf_counter()
    try:
        sketched = SketchedHeavyHitterStatistics.of(
            query, db, args.p, config=config, workers=args.workers, obs=obs
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    sketch_seconds = time.perf_counter() - started
    report = sketch_fidelity(exact, sketched)

    if args.json:
        print(json.dumps({
            "query": str(query),
            "workload": {"kind": args.workload, "m": args.m,
                         "skew": args.skew, "seed": args.seed},
            "p": args.p,
            "sketch": {"width": config.width, "depth": config.depth,
                       "base": config.base,
                       "updates": sketched.update_count},
            "exact_seconds": exact_seconds,
            "sketch_seconds": sketch_seconds,
            **report,
        }, indent=2))
    else:
        print(f"query: {query}")
        print(f"workload: {args.workload} (m={args.m}, skew={args.skew}, "
              f"seed={args.seed}), p={args.p}")
        print(f"sketch: width={config.width} depth={config.depth} "
              f"base={config.base} ({sketched.update_count} updates)")
        print(f"statistics pass: exact {exact_seconds:.3f}s, "
              f"sketch {sketch_seconds:.3f}s\n")
        print(f"{'atom':>6} {'subset':>12} {'true':>5} {'sketched':>9} "
              f"{'missed':>7} {'spurious':>9} {'max err':>8}")
        for row in report["pairs"]:
            print(
                f"{row['atom']:>6} {','.join(row['subset']):>12} "
                f"{row['true_heavy']:>5} {row['sketched_heavy']:>9} "
                f"{row['false_negatives']:>7} {row['false_positives']:>9} "
                f"{row['max_rel_error']:>8.3f}"
            )
        print(
            f"\nrecall {report['recall']:.3f}  "
            f"precision {report['precision']:.3f}  "
            f"max frequency error {report['max_rel_error']:.3f}"
        )
        if report["false_negatives"]:
            print(f"WARNING: {report['false_negatives']} true heavy "
                  f"hitters were missed — raise --width")
    _finish_observation(args, obs)
    return 0 if report["false_negatives"] == 0 else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    algorithms: str | tuple[str, ...]
    if args.algorithms in ("applicable", "auto"):
        algorithms = args.algorithms
    else:
        algorithms = _parse_grid(args.algorithms, str, "--algorithms")
    obs = _make_observation(args)
    sweep = Sweep(
        query=args.query,
        workload=args.workload,
        p_values=_parse_grid(args.p, int, "--p"),
        m_values=_parse_grid(args.m, int, "--m"),
        skews=_parse_grid(args.skew, float, "--skew"),
        seeds=_parse_grid(args.seeds, int, "--seeds"),
        algorithms=algorithms,
        engine=args.engine,
        verify=args.verify,
        observe=args.metrics,
        stats=_parse_grid(args.stats, str, "--stats"),
        rounds=_parse_grid(args.rounds, int, "--rounds"),
    )
    try:
        cells = sweep.cells()
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    _LOG.info("sweep: %d cells, engine=%s, workers=%s",
              len(cells), args.engine, args.workers)
    try:
        result = sweep.run(max_workers=args.workers, cells=cells, obs=obs,
                           cell_timeout=args.cell_timeout)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    failed = sum(1 for record in result if not record.ok)
    if failed:
        _LOG.warning("sweep: %d of %d cells did not finish cleanly "
                     "(see the 'status' column)", failed, len(result))
    if args.format == "json":
        payload = result.to_json()
    elif args.format == "csv":
        payload = result.to_csv()
    else:
        payload = result.summary()
    if args.output in (None, "-"):
        print(payload)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload)
            if not payload.endswith("\n"):
                handle.write("\n")
        _LOG.info("wrote %d records to %s", len(result), args.output)
    _finish_observation(args, obs)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    obs = _make_observation(args) or Observation.create()
    output = args.output
    if output is None:
        output = f"BENCH_{args.suite}.json"
    _LOG.info("bench: running the pinned %s suite%s", args.suite,
              " (quick grid)" if args.quick else "")
    try:
        document = run_suite(args.suite, quick=args.quick, obs=obs)
    except BenchError as exc:
        raise SystemExit(str(exc)) from None
    validate_bench(document)
    summary = document["summary"]
    _LOG.info(
        "bench: %d entries in %.2fs (%.1f calibration units), "
        "max optimality gap %.3f, planner worst regret %.3f",
        len(document["entries"]), summary["total_wall_seconds"],
        summary["normalized_wall"], summary["max_optimality_gap"],
        summary["planner_worst_regret"],
    )

    # Suite-specific absolute acceptance gates (sketch recall/merge
    # identity, two-round-beats-one-round) apply with or without a
    # baseline; suites without one pass vacuously.
    failures: list[str] = list(suite_gate_failures(document))
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read baseline {args.baseline}: {exc}")
        try:
            validate_bench(baseline)
            failures.extend(compare_bench(
                baseline, document, max_regression=args.max_regression
            ))
        except ValueError as exc:
            raise SystemExit(str(exc)) from None

    if output == "-":
        print(json.dumps(document, indent=2))
    else:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        _LOG.info("wrote bench document to %s", output)

    _finish_observation(args, obs)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    if args.baseline:
        _LOG.info("bench: no regressions vs %s (tolerance %.0f%%)",
                  args.baseline, args.max_regression * 100)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived plan/sweep service until interrupted."""
    from .service import ReproService

    service = ReproService(
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        job_workers=args.job_workers,
        cell_workers=args.workers,
        cell_timeout=args.cell_timeout,
        cache_capacity=args.cache_size,
    )
    host, port = service.address
    # The bound address goes to stdout so scripts (and CI) can discover
    # an ephemeral --port 0 assignment.
    print(f"http://{host}:{port}", flush=True)
    _LOG.info(
        "repro service on http://%s:%d (queue %d, %d job workers, "
        "cell workers %s, cell timeout %s)",
        host, port, args.queue_size, args.job_workers,
        args.workers or "serial",
        f"{args.cell_timeout}s" if args.cell_timeout else "none",
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        _LOG.info("interrupted; shutting down")
        service.shutdown()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running service, poll it, print the result."""
    from .api.records import RunRecord
    from .service.client import (
        ServiceBusyError,
        ServiceClient,
        ServiceClientError,
    )

    kind = args.job_kind
    if kind == "sweep":
        algorithms: object = args.algorithms
        if algorithms not in ("applicable", "auto"):
            algorithms = list(_parse_grid(algorithms, str, "--algorithms"))
        spec = {
            "query": args.query,
            "workload": args.workload,
            "p_values": list(_parse_grid(args.p, int, "--p")),
            "m_values": list(_parse_grid(args.m, int, "--m")),
            "skews": list(_parse_grid(args.skew, float, "--skew")),
            "seeds": list(_parse_grid(args.seeds, int, "--seeds")),
            "algorithms": algorithms,
            "stats": list(_parse_grid(args.stats, str, "--stats")),
            "rounds": list(_parse_grid(args.rounds, int, "--rounds")),
            "engine": args.engine,
            "verify": args.verify,
        }
        if args.workers is not None:
            spec["workers"] = args.workers
        if args.cell_timeout is not None:
            spec["cell_timeout"] = args.cell_timeout
    else:
        spec = {
            "query": args.query,
            "workload": args.workload,
            "m": args.m,
            "skew": args.skew,
            "seed": args.seed,
            "p": args.p,
            "stats": args.stats,
        }

    client = ServiceClient(args.server)
    try:
        job = client.submit(kind, spec)
        job_id = job["id"]
        _LOG.info("submitted %s job %s to %s", kind, job_id, args.server)
        status = client.wait(job_id, timeout=args.timeout,
                             interval=args.poll_interval)
        if status["state"] != "done":
            raise SystemExit(
                f"job {job_id} {status['state']}: {status.get('error')}"
            )
        result = client.result(job_id)["result"]
    except ServiceBusyError as exc:
        raise SystemExit(
            f"server rejected the job (backpressure): {exc}"
        ) from None
    except ServiceClientError as exc:
        raise SystemExit(str(exc)) from None

    if kind == "sweep" and args.format != "json":
        from .api.experiment import SweepResult

        records = tuple(
            RunRecord.from_dict(entry) for entry in result["records"]
        )
        sweep_result = SweepResult(records=records)
        payload = (sweep_result.to_csv() if args.format == "csv"
                   else sweep_result.summary())
    else:
        payload = json.dumps(result, indent=2)
    output = getattr(args, "output", None)
    if output in (None, "-"):
        print(payload)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(payload)
            if not payload.endswith("\n"):
                handle.write("\n")
        _LOG.info("wrote the %s result to %s", kind, output)
    return 0


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=list(WORKLOAD_KINDS),
                        default="uniform")
    parser.add_argument("--skew", type=float, default=1.0)
    parser.add_argument("-m", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)


def _add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("-v", "--verbose", action="store_true",
                       help="debug-level progress on stderr")
    group.add_argument("-q", "--quiet", action="store_true",
                       help="warnings only on stderr")


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome-trace JSON of the run's spans "
                             "(open at chrome://tracing)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect and print the metrics registry "
                             "(tuples routed, bits shipped, load histogram)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Skew in Parallel Query Processing (PODS 2014) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bounds = sub.add_parser("bounds", help="share LP + load bounds")
    bounds.add_argument("query")
    bounds.add_argument("--cardinality", action="append", default=[],
                        help="NAME=COUNT (repeatable)")
    bounds.add_argument("--domain", type=int, default=1_000_000)
    bounds.add_argument("-p", type=int, default=64)
    bounds.set_defaults(func=cmd_bounds)

    packings = sub.add_parser("packings", help="pk(q), tau*, cover numbers")
    packings.add_argument("query")
    packings.set_defaults(func=cmd_packings)

    plan_cmd = sub.add_parser(
        "plan",
        help="rank registered algorithms by predicted load (no execution)",
    )
    plan_cmd.add_argument("query")
    plan_cmd.add_argument("--cardinality", action="append", default=[],
                          help="NAME=COUNT (repeatable); skew-free "
                               "predictions from declared statistics")
    plan_cmd.add_argument("--domain", type=int, default=1_000_000)
    _add_workload_arguments(plan_cmd)
    plan_cmd.add_argument("-p", type=int, default=16)
    plan_cmd.add_argument("--max-rounds", type=int, default=1,
                          dest="max_rounds", metavar="R",
                          help="round budget: rank multi-round algorithms "
                               "too and print the round/load tradeoff "
                               "curve (default 1 = one-round only)")
    plan_cmd.add_argument("--json", action="store_true",
                          help="emit the plan as JSON")
    plan_cmd.set_defaults(func=cmd_plan)

    race = sub.add_parser(
        "race", help="run every applicable algorithm on a workload"
    )
    race.add_argument("query")
    _add_workload_arguments(race)
    race.add_argument("-p", type=int, default=16)
    race.add_argument("--verify", action="store_true",
                      help="also run the sequential join and check completeness")
    race.add_argument("--engine", choices=available_engines(),
                      default="batched",
                      help="execution engine simulating the round: batched "
                           "(vectorized, default), reference (tuple-at-a-time "
                           "parity oracle), mp (multiprocessing shards); all "
                           "return identical answers and loads")
    _add_observability_arguments(race)
    _add_logging_arguments(race)
    race.set_defaults(func=cmd_race)

    sweep = sub.add_parser(
        "sweep",
        help="run a p x skew x m x algorithm grid; emit JSON/CSV records",
    )
    sweep.add_argument("query")
    sweep.add_argument("--workload", choices=list(WORKLOAD_KINDS),
                       default="zipf")
    sweep.add_argument("--p", default="16",
                       help="comma-separated server counts (e.g. 8,16,64)")
    sweep.add_argument("--m", default="1000",
                       help="comma-separated relation cardinalities")
    sweep.add_argument("--skew", default="1.0",
                       help="comma-separated skew parameters")
    sweep.add_argument("--seeds", default="0",
                       help="comma-separated generator seeds")
    sweep.add_argument("--algorithms", default="applicable",
                       help="'applicable' (default), 'auto' (planner pick "
                            "per cell), or comma-separated registry keys")
    sweep.add_argument("--stats", default="exact",
                       help="comma-separated statistics methods per cell: "
                            "exact, sketch (e.g. 'exact,sketch' runs every "
                            "cell under both)")
    sweep.add_argument("--rounds", default="1",
                       help="comma-separated planner round budgets per "
                            "cell (e.g. '1,2' ranks one- and two-round "
                            "algorithms side by side)")
    sweep.add_argument("--engine", choices=available_engines(),
                       default="batched")
    sweep.add_argument("--verify", action="store_true",
                       help="verify completeness in every cell (slow)")
    sweep.add_argument("--format", choices=["json", "csv", "summary"],
                       default="json")
    sweep.add_argument("--workers", type=int, default=None,
                       help="farm cells across N worker processes")
    sweep.add_argument("--cell-timeout", type=float, default=None,
                       help="kill any cell running longer than this many "
                            "seconds and record it with status 'timeout' "
                            "(forces process isolation)")
    sweep.add_argument("--output", default=None,
                       help="write records to this file instead of stdout")
    _add_observability_arguments(sweep)
    _add_logging_arguments(sweep)
    sweep.set_defaults(func=cmd_sweep)

    stats_cmd = sub.add_parser(
        "stats",
        help="compare sketched statistics against exact heavy hitters",
    )
    stats_cmd.add_argument("query")
    _add_workload_arguments(stats_cmd)
    stats_cmd.add_argument("-p", type=int, default=16)
    stats_cmd.add_argument("--width", type=int, default=2048,
                           help="count-sketch columns per row "
                                "(default %(default)s)")
    stats_cmd.add_argument("--depth", type=int, default=5,
                           help="count-sketch rows (default %(default)s)")
    stats_cmd.add_argument("--base", type=int, default=16,
                           help="hierarchical digit base (default %(default)s)")
    stats_cmd.add_argument("--workers", type=int, default=1,
                           help="build per-shard sketches across N processes "
                                "and merge them")
    stats_cmd.add_argument("--json", action="store_true",
                           help="emit the fidelity report as JSON")
    _add_observability_arguments(stats_cmd)
    _add_logging_arguments(stats_cmd)
    stats_cmd.set_defaults(func=cmd_stats)

    bench = sub.add_parser(
        "bench",
        help="run a pinned perf suite; emit/gate BENCH_<suite>.json",
    )
    bench.add_argument("--suite", choices=list(BENCH_SUITES), default="core",
                       help="core: the perf trajectory grid; sketch: the "
                            "same grid under exact and sketched statistics "
                            "plus fidelity/regret gates (default %(default)s)")
    bench.add_argument("--quick", action="store_true",
                       help="run the reduced grid (what CI runs)")
    bench.add_argument("--output", default=None,
                       help="bench document destination ('-' for stdout; "
                            "default BENCH_<suite>.json)")
    bench.add_argument("--baseline", default=None,
                       help="compare against this committed bench document "
                            "and exit 1 on regressions")
    bench.add_argument("--max-regression", type=float, default=0.20,
                       help="relative tolerance for the regression gates "
                            "(default %(default)s)")
    _add_observability_arguments(bench)
    _add_logging_arguments(bench)
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived plan/sweep service (async job queue "
             "with backpressure + per-catalog plan/statistics cache)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 binds an ephemeral port; the "
                            "bound URL is printed to stdout)")
    serve.add_argument("--queue-size", type=int, default=32,
                       help="max queued jobs before submissions are "
                            "rejected with HTTP 429 (default %(default)s)")
    serve.add_argument("--job-workers", type=int, default=2,
                       help="concurrent job worker threads "
                            "(default %(default)s)")
    serve.add_argument("--workers", type=int, default=None,
                       help="farm each sweep job's cells across N worker "
                            "processes (default: in-thread, cached)")
    serve.add_argument("--cell-timeout", type=float, default=None,
                       help="per-cell deadline in seconds for sweep jobs; "
                            "late cells are recorded as 'timeout' and "
                            "their worker replaced")
    serve.add_argument("--cache-size", type=int, default=64,
                       help="per-section catalog cache capacity "
                            "(default %(default)s)")
    _add_logging_arguments(serve)
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a plan/stats/sweep job to a running 'repro serve' "
             "instance, poll to completion, print the result",
    )
    submit_sub = submit.add_subparsers(dest="job_kind", required=True)

    def _add_submit_common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--server", default="http://127.0.0.1:8765",
                            help="service base URL (default %(default)s)")
        parser.add_argument("--timeout", type=float, default=300.0,
                            help="give up polling after this many seconds "
                                 "(default %(default)s)")
        parser.add_argument("--poll-interval", type=float, default=0.2,
                            help="seconds between status polls "
                                 "(default %(default)s)")
        _add_logging_arguments(parser)
        parser.set_defaults(func=cmd_submit)

    for kind, blurb in (
        ("plan", "rank algorithms for one catalog (served, cached)"),
        ("stats", "build one catalog's statistics (served, cached)"),
    ):
        job = submit_sub.add_parser(kind, help=blurb)
        job.add_argument("query")
        _add_workload_arguments(job)
        job.add_argument("-p", type=int, default=16)
        job.add_argument("--stats", choices=list(STATS_METHODS),
                         default="exact",
                         help="statistics method (default %(default)s)")
        _add_submit_common(job)

    sweep_job = submit_sub.add_parser(
        "sweep", help="run a full grid on the server with fault isolation"
    )
    sweep_job.add_argument("query")
    sweep_job.add_argument("--workload", choices=list(WORKLOAD_KINDS),
                           default="zipf")
    sweep_job.add_argument("--p", default="16",
                           help="comma-separated server counts")
    sweep_job.add_argument("--m", default="1000",
                           help="comma-separated relation cardinalities")
    sweep_job.add_argument("--skew", default="1.0",
                           help="comma-separated skew parameters")
    sweep_job.add_argument("--seeds", default="0",
                           help="comma-separated generator seeds")
    sweep_job.add_argument("--algorithms", default="applicable",
                           help="'applicable', 'auto', or comma-separated "
                                "registry keys")
    sweep_job.add_argument("--stats", default="exact",
                           help="comma-separated statistics methods")
    sweep_job.add_argument("--rounds", default="1",
                           help="comma-separated planner round budgets")
    sweep_job.add_argument("--engine", choices=available_engines(),
                           default="batched")
    sweep_job.add_argument("--verify", action="store_true",
                           help="verify completeness in every cell (slow)")
    sweep_job.add_argument("--workers", type=int, default=None,
                           help="override the server's per-job cell "
                                "worker count")
    sweep_job.add_argument("--cell-timeout", type=float, default=None,
                           help="override the server's per-cell deadline")
    sweep_job.add_argument("--format", choices=["json", "csv", "summary"],
                           default="json")
    sweep_job.add_argument("--output", default=None,
                           help="write the result to this file instead "
                                "of stdout")
    _add_submit_common(sweep_job)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
