"""Exact vertex enumeration for small polytopes.

The packing polytope of a query (Section 3.3) is defined by the constraints
(2): one ``<=`` row per variable plus nonnegativity.  Its vertices ``pk(q)``
(after discarding dominated ones) determine the closed-form optimal load
``L_lower = L_upper = max_{u in pk(q)} L(u, M, p)`` of Theorem 3.6.

Vertices are enumerated the way the paper describes: choose ``dim`` of the
``k + l`` inequalities, turn them into equalities, solve, and keep solutions
that satisfy every constraint.  All arithmetic is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import Iterable, Sequence

from .fraction_utils import Number, to_fraction
from .linalg import solve_square_system

Point = tuple[Fraction, ...]


@dataclass(frozen=True)
class HalfSpace:
    """The constraint ``coefficients . x <= bound``."""

    coefficients: tuple[Fraction, ...]
    bound: Fraction

    @classmethod
    def build(cls, coefficients: Sequence[Number], bound: Number) -> "HalfSpace":
        return cls(
            coefficients=tuple(to_fraction(v) for v in coefficients),
            bound=to_fraction(bound),
        )

    def satisfied_by(self, point: Sequence[Fraction]) -> bool:
        value = sum(
            (c * x for c, x in zip(self.coefficients, point)), start=Fraction(0)
        )
        return value <= self.bound


def nonnegativity_constraints(dim: int) -> list[HalfSpace]:
    """``x_j >= 0`` written as ``-x_j <= 0`` for every coordinate."""
    constraints = []
    for j in range(dim):
        coefficients = [Fraction(0)] * dim
        coefficients[j] = Fraction(-1)
        constraints.append(HalfSpace(tuple(coefficients), Fraction(0)))
    return constraints


def enumerate_vertices(
    constraints: Sequence[HalfSpace], dim: int
) -> list[Point]:
    """All vertices of ``{x : every constraint holds}``.

    Assumes the polytope is bounded (true for packing polytopes once every
    coordinate appears in some ``<=`` constraint).  Runs over all
    ``C(len(constraints), dim)`` potential bases; fine for the query sizes in
    this project (``dim <= ~10``).
    """
    if dim == 0:
        return [()]
    vertices: set[Point] = set()
    for subset in combinations(range(len(constraints)), dim):
        matrix = [list(constraints[i].coefficients) for i in subset]
        rhs = [constraints[i].bound for i in subset]
        solution = solve_square_system(matrix, rhs)
        if solution is None:
            continue
        point = tuple(solution)
        if point in vertices:
            continue
        if all(c.satisfied_by(point) for c in constraints):
            vertices.add(point)
    return sorted(vertices)


def is_dominated(point: Point, other: Point) -> bool:
    """``other`` dominates ``point`` iff it is >= componentwise and differs."""
    return other != point and all(o >= p for p, o in zip(point, other))


def non_dominated(points: Iterable[Point]) -> list[Point]:
    """Filter to the points not dominated by any other (the paper's pk(q))."""
    point_list = list(points)
    return [
        p
        for p in point_list
        if not any(is_dominated(p, other) for other in point_list)
    ]
