"""Helpers for exact rational arithmetic.

The paper's LPs — the packing polytope (2), the share LP (5) and its dual
(8), and the per-bin LP (11) — are tiny, so we solve them *exactly* over
``fractions.Fraction``.  Logarithmic inputs such as ``mu_j = log_p M_j`` are
irrational; they enter as high-precision rational approximations via
:func:`log_base_fraction`, which is accurate far beyond the float precision
the final load numbers are reported at.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence

Number = Fraction | int | float

DEFAULT_MAX_DENOMINATOR = 10**12


def to_fraction(value: Number, max_denominator: int = DEFAULT_MAX_DENOMINATOR) -> Fraction:
    """Convert a number to an exact (or tightly approximated) Fraction."""
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"cannot convert non-finite float {value!r} to Fraction")
        return Fraction(value).limit_denominator(max_denominator)
    raise TypeError(f"cannot convert {type(value).__name__} to Fraction")


def to_fraction_vector(
    values: Iterable[Number], max_denominator: int = DEFAULT_MAX_DENOMINATOR
) -> list[Fraction]:
    return [to_fraction(v, max_denominator) for v in values]


def log_base_fraction(
    value: float, base: float, max_denominator: int = DEFAULT_MAX_DENOMINATOR
) -> Fraction:
    """``log_base(value)`` as a rational approximation.

    Used for the LP coefficients ``mu_j = log_p(M_j)`` and bin exponents
    ``beta_b = log_p(2^(b-1))``.
    """
    if value <= 0:
        raise ValueError(f"log of non-positive value {value!r}")
    if base <= 1:
        raise ValueError(f"log base must exceed 1, got {base!r}")
    return Fraction(math.log(value) / math.log(base)).limit_denominator(max_denominator)


def fraction_dot(a: Sequence[Fraction], b: Sequence[Fraction]) -> Fraction:
    if len(a) != len(b):
        raise ValueError(f"dot product of mismatched lengths {len(a)} != {len(b)}")
    return sum((x * y for x, y in zip(a, b)), start=Fraction(0))
