"""Exact linear algebra over ``fractions.Fraction``.

Only what the polytope vertex enumerator needs: solving square systems and
computing ranks, with exact pivoting (no numerical tolerance games).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

Matrix = list[list[Fraction]]
Vector = list[Fraction]


def _copy_matrix(rows: Sequence[Sequence[Fraction]]) -> Matrix:
    return [list(row) for row in rows]


def solve_square_system(
    a: Sequence[Sequence[Fraction]], b: Sequence[Fraction]
) -> Vector | None:
    """Solve ``A x = b`` for square ``A``; ``None`` if ``A`` is singular."""
    n = len(a)
    if any(len(row) != n for row in a) or len(b) != n:
        raise ValueError("solve_square_system needs a square system")
    aug: Matrix = [list(row) + [b[i]] for i, row in enumerate(a)]

    for col in range(n):
        pivot_row = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot_row is None:
            return None
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        aug[col] = [entry / pivot for entry in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [entry - factor * p for entry, p in zip(aug[r], aug[col])]
    return [aug[i][n] for i in range(n)]


def matrix_rank(a: Sequence[Sequence[Fraction]]) -> int:
    """Rank of a (possibly rectangular) exact matrix."""
    rows = _copy_matrix(a)
    if not rows:
        return 0
    n_cols = len(rows[0])
    rank = 0
    pivot_col = 0
    for _ in range(len(rows)):
        while pivot_col < n_cols:
            pivot_row = next(
                (r for r in range(rank, len(rows)) if rows[r][pivot_col] != 0),
                None,
            )
            if pivot_row is None:
                pivot_col += 1
                continue
            rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
            pivot = rows[rank][pivot_col]
            rows[rank] = [entry / pivot for entry in rows[rank]]
            for r in range(len(rows)):
                if r != rank and rows[r][pivot_col] != 0:
                    factor = rows[r][pivot_col]
                    rows[r] = [
                        entry - factor * p
                        for entry, p in zip(rows[r], rows[rank])
                    ]
            rank += 1
            pivot_col += 1
            break
        else:
            break
    return rank
