"""Exact two-phase simplex over rationals.

Solves  ``maximize c.x  subject to  A x <= b,  x >= 0``  with every pivot
performed in :class:`fractions.Fraction` arithmetic, so the optima of the
paper's LPs — the share LP (5), its dual (8), the per-bin LP (11) — are
exact.  Bland's anti-cycling rule guarantees termination.  All the LPs in
this project have at most a few dozen variables and constraints, so the
dense tableau is entirely adequate.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from .fraction_utils import Number, to_fraction

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"


class LPError(ValueError):
    """Raised for malformed LP inputs."""


@dataclass(frozen=True)
class LPResult:
    """Outcome of a simplex run.

    ``objective`` and ``x`` are ``None`` unless ``status == OPTIMAL``.
    """

    status: str
    objective: Fraction | None = None
    x: tuple[Fraction, ...] | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status == OPTIMAL


def _reduce_objective(
    obj: list[Fraction], table: list[list[Fraction]], basis: list[int]
) -> None:
    """Zero out the objective coefficients of the basic variables."""
    for i, basic in enumerate(basis):
        factor = obj[basic]
        if factor != 0:
            obj[:] = [a - factor * t for a, t in zip(obj, table[i])]


def _pivot(
    table: list[list[Fraction]],
    obj: list[Fraction],
    basis: list[int],
    row: int,
    col: int,
) -> None:
    pivot = table[row][col]
    table[row] = [value / pivot for value in table[row]]
    for r in range(len(table)):
        if r != row and table[r][col] != 0:
            factor = table[r][col]
            table[r] = [a - factor * t for a, t in zip(table[r], table[row])]
    factor = obj[col]
    if factor != 0:
        obj[:] = [a - factor * t for a, t in zip(obj, table[row])]
    basis[row] = col


def _run_simplex(
    table: list[list[Fraction]],
    obj: list[Fraction],
    basis: list[int],
    allowed: Sequence[bool],
) -> str:
    """Pivot to optimality (Bland's rule).  Returns OPTIMAL or UNBOUNDED."""
    num_cols = len(obj) - 1
    while True:
        entering = next(
            (j for j in range(num_cols) if allowed[j] and obj[j] > 0), None
        )
        if entering is None:
            return OPTIMAL
        leaving: int | None = None
        best_ratio: Fraction | None = None
        for r, row in enumerate(table):
            coeff = row[entering]
            if coeff > 0:
                ratio = row[-1] / coeff
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and basis[r] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = r
        if leaving is None:
            return UNBOUNDED
        _pivot(table, obj, basis, leaving, entering)


def maximize(
    c: Sequence[Number],
    a: Sequence[Sequence[Number]],
    b: Sequence[Number],
) -> LPResult:
    """Maximize ``c.x`` subject to ``A x <= b`` and ``x >= 0``, exactly."""
    c_frac = [to_fraction(v) for v in c]
    a_frac = [[to_fraction(v) for v in row] for row in a]
    b_frac = [to_fraction(v) for v in b]
    n = len(c_frac)
    m = len(a_frac)
    if len(b_frac) != m:
        raise LPError(f"A has {m} rows but b has {len(b_frac)} entries")
    for i, row in enumerate(a_frac):
        if len(row) != n:
            raise LPError(f"row {i} has {len(row)} entries, expected {n}")

    # Tableau layout: [original 0..n) | slack n..n+m) | artificial ...] | rhs.
    negated = [b_frac[i] < 0 for i in range(m)]
    artificial_rows = [i for i in range(m) if negated[i]]
    num_art = len(artificial_rows)
    num_cols = n + m + num_art

    table: list[list[Fraction]] = []
    basis: list[int] = []
    art_col = {row: n + m + k for k, row in enumerate(artificial_rows)}
    for i in range(m):
        sign = Fraction(-1) if negated[i] else Fraction(1)
        row = [sign * v for v in a_frac[i]]
        row += [Fraction(0)] * m
        row[n + i] = sign  # slack (negated rows carry a surplus variable)
        row += [Fraction(0)] * num_art
        if negated[i]:
            row[art_col[i]] = Fraction(1)
        row.append(sign * b_frac[i])
        table.append(row)
        basis.append(art_col[i] if negated[i] else n + i)

    # ---------------- phase 1: drive artificials to zero ----------------
    if num_art:
        phase1_obj = [Fraction(0)] * num_cols + [Fraction(0)]
        for col in art_col.values():
            phase1_obj[col] = Fraction(-1)
        _reduce_objective(phase1_obj, table, basis)
        allowed = [True] * num_cols
        status = _run_simplex(table, phase1_obj, basis, allowed)
        if status != OPTIMAL:  # pragma: no cover - phase 1 is always bounded
            raise LPError("phase 1 simplex reported unbounded")
        if -phase1_obj[-1] != 0:
            return LPResult(status=INFEASIBLE)
        # Drive artificials that stayed basic (at value zero, degenerately)
        # out of the basis.  Merely barring them from *entering* in phase 2
        # is not enough: a still-basic artificial's row keeps pivoting with
        # the rest of the tableau and its value can become positive again,
        # silently violating the original constraint.  Pivot each one out on
        # any nonzero structural/slack column; an all-zero row is a redundant
        # constraint and is dropped.
        for r in range(len(table) - 1, -1, -1):
            if basis[r] < n + m:
                continue
            col = next((j for j in range(n + m) if table[r][j] != 0), None)
            if col is None:
                del table[r]
                del basis[r]
            else:
                _pivot(table, phase1_obj, basis, r, col)

    # ---------------- phase 2: the real objective ----------------
    allowed = [True] * num_cols
    for col in art_col.values():
        allowed[col] = False
    phase2_obj = list(c_frac) + [Fraction(0)] * (m + num_art) + [Fraction(0)]
    _reduce_objective(phase2_obj, table, basis)
    status = _run_simplex(table, phase2_obj, basis, allowed)
    if status != OPTIMAL:
        return LPResult(status=UNBOUNDED)

    x = [Fraction(0)] * n
    for i, basic in enumerate(basis):
        if basic < n:
            x[basic] = table[i][-1]
    return LPResult(status=OPTIMAL, objective=-phase2_obj[-1], x=tuple(x))


def minimize(
    c: Sequence[Number],
    a: Sequence[Sequence[Number]],
    b: Sequence[Number],
) -> LPResult:
    """Minimize ``c.x`` subject to ``A x <= b`` and ``x >= 0``, exactly."""
    result = maximize([-to_fraction(v) for v in c], a, b)
    if result.is_optimal:
        return LPResult(status=OPTIMAL, objective=-result.objective, x=result.x)
    return result
