"""Exact rational LP substrate: simplex, linear algebra, vertex enumeration."""

from .fraction_utils import (
    DEFAULT_MAX_DENOMINATOR,
    fraction_dot,
    log_base_fraction,
    to_fraction,
    to_fraction_vector,
)
from .linalg import matrix_rank, solve_square_system
from .polytope import (
    HalfSpace,
    enumerate_vertices,
    is_dominated,
    non_dominated,
    nonnegativity_constraints,
)
from .simplex import INFEASIBLE, OPTIMAL, UNBOUNDED, LPError, LPResult, maximize, minimize

__all__ = [
    "DEFAULT_MAX_DENOMINATOR",
    "fraction_dot",
    "log_base_fraction",
    "to_fraction",
    "to_fraction_vector",
    "matrix_rank",
    "solve_square_system",
    "HalfSpace",
    "enumerate_vertices",
    "is_dominated",
    "non_dominated",
    "nonnegativity_constraints",
    "INFEASIBLE",
    "OPTIMAL",
    "UNBOUNDED",
    "LPError",
    "LPResult",
    "maximize",
    "minimize",
]
