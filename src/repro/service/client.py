"""A stdlib HTTP client for the repro service (used by ``repro submit``).

:class:`ServiceClient` speaks the JSON protocol of
:mod:`repro.service.server` over :mod:`urllib.request` — submit, poll,
fetch results, cancel, read metrics, shut the server down.  Error
responses become :class:`ServiceClientError` (with the HTTP status
attached); a 429 queue rejection becomes :class:`ServiceBusyError` so
callers can implement their own retry policy against backpressure.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServiceClientError(RuntimeError):
    """An error response from the service (``.status`` holds the code)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceBusyError(ServiceClientError):
    """The server's bounded job queue rejected the submission (HTTP 429)."""


class ServiceClient:
    """Talk to one ``repro serve`` instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: object | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get(
                    "error", exc.reason
                )
            except (ValueError, OSError):
                message = str(exc.reason)
            if exc.code == 429:
                raise ServiceBusyError(exc.code, message) from None
            raise ServiceClientError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceClientError(
                0, f"cannot reach {self.base_url}: {exc.reason}"
            ) from None

    # -- protocol --------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def submit(self, kind: str, spec: dict) -> dict:
        """Submit a job; returns its status document (with the id)."""
        return self._request("POST", "/v1/jobs",
                             {"kind": kind, "spec": spec})

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The result payload of a ``done`` job (409 until then)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> bool:
        return bool(
            self._request("DELETE", f"/v1/jobs/{job_id}").get("cancelled")
        )

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")

    def wait(self, job_id: str, timeout: float = 120.0,
             interval: float = 0.05) -> dict:
        """Poll until the job is terminal; return its final status.

        Raises :class:`ServiceClientError` on timeout — never silently
        returns a non-terminal job.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    0, f"job {job_id} still {status['state']} "
                       f"after {timeout:.0f}s"
                )
            time.sleep(interval)

    def wait_until_healthy(self, timeout: float = 30.0,
                           interval: float = 0.1) -> dict:
        """Poll ``/v1/health`` until the server answers (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceClientError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)
