"""Fault-isolated sweep execution and the service's async job queue.

Two layers live here, one stacked on the other:

1. :func:`execute_cells` — the *cell executor* both the library
   (:meth:`repro.api.experiment.Sweep.run`) and the service share.  It
   replaces the old all-or-nothing process pool: a cell that raises
   becomes a structured ``failed:<reason>`` record, a cell that exceeds
   its deadline becomes a ``timeout`` record (its worker process is
   killed and replaced), and every healthy record is returned in grid
   order regardless of what its neighbors did.

2. :class:`JobQueue` — a bounded submit/status/result/cancel queue over
   ``plan``, ``stats`` and ``sweep`` jobs, drained by daemon worker
   threads inside a long-lived ``repro serve`` process.  A full queue
   rejects with :class:`BackpressureError` (the server maps it to HTTP
   429) instead of buffering without bound.  Plan and statistics work
   goes through a shared :class:`~repro.service.cache.CatalogCache`, so
   the second catalog-identical request is a cache hit, not a rebuild.

Observability (all through the existing :mod:`repro.obs` layer):
``service.queue.depth`` gauge, ``service.jobs.*`` counters,
``service.job.seconds`` spans per job, the cell farm's
``sweep.queue_wait.seconds`` / ``sweep.cell.seconds`` histograms and
``sweep.cells.{ok,failed,timeout}`` counters, and the cache's
``service.cache.{hit,miss}`` counters.
"""

from __future__ import annotations

import itertools
import logging
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Sequence

from ..api import experiment as _experiment
from ..api.planner import plan as _plan
from ..api.records import RunRecord
from ..mpc.engine.multiprocess import pool_context
from ..obs import Observation, maybe_timed
from .cache import CatalogCache, catalog_key

_LOG = logging.getLogger("repro.service.jobs")

#: Job kinds the queue accepts.
JOB_KINDS = ("plan", "stats", "sweep")

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


class ServiceError(RuntimeError):
    """Raised for unknown jobs, bad specs, and results read too early."""


class BackpressureError(ServiceError):
    """Raised when the bounded job queue is full: the caller must retry
    later (or against another instance) — the server never buffers
    unboundedly on behalf of a client."""

    def __init__(self, capacity: int) -> None:
        super().__init__(
            f"job queue is full ({capacity} queued jobs); retry later"
        )
        self.capacity = capacity


def _failure_status(exc: BaseException) -> str:
    """The ``failed:<reason>`` status string for an exception."""
    reason = str(exc) or type(exc).__name__
    return f"failed:{type(exc).__name__}: {reason}"


# ----------------------------------------------------------------------
# The cell executor: serial and farmed, both fault-isolated.
# ----------------------------------------------------------------------

def _log_record(record: RunRecord, done: int, total: int) -> None:
    _LOG.info(
        "cell %d/%d: %s p=%d m=%d skew=%.2f seed=%d -> "
        "%.0f bits (%s) in %.3fs",
        done, total, record.algorithm, record.p, record.m,
        record.skew, record.seed, record.max_load_bits,
        record.status if not record.ok
        else "gap " + ("-" if record.optimality_gap is None
                       else format(record.optimality_gap, ".2f")),
        record.wall_seconds,
    )


def _count_status(obs: Observation | None, record: RunRecord) -> None:
    if obs is None:
        return
    if record.ok:
        obs.count("sweep.cells.ok")
    elif record.status == "timeout":
        obs.count("sweep.cells.timeout")
    else:
        obs.count("sweep.cells.failed")


def _prepared_context(group, obs, cache: CatalogCache | None):
    """``(db, query_plan)`` for a coordinate group, through the cache.

    The cache key covers everything :func:`repro.api.experiment._prepare`
    consumes: the coordinates plus the algorithm keys the plan must cost.
    """
    if cache is None:
        return _experiment._prepare(group, obs=obs)
    first = group[0]
    key = catalog_key(
        kind="prepare",
        query=first.query, workload=first.workload, m=first.m,
        skew=first.skew, seed=first.seed, domain=first.domain,
        p=first.p, stats=first.stats, rounds=first.rounds,
        algorithms=sorted({cell.algorithm for cell in group}),
    )
    return cache.get_or_build(
        "plan", key, lambda: _experiment._prepare(group, obs=obs)
    )


def _execute_serial(
    cells: Sequence["_experiment.Cell"],
    progress: Callable[[RunRecord], None] | None,
    obs: Observation | None,
    cache: CatalogCache | None,
) -> list[RunRecord]:
    """In-process execution: one ``_prepare`` per distinct coordinate
    group (order-independent — shuffled grids do not re-prepare), with
    per-cell and per-group fault isolation.  Timeouts need process
    isolation, so they are the farm's job."""
    groups: dict[tuple, list[int]] = {}
    for index, cell in enumerate(cells):
        groups.setdefault(_experiment._coordinates(cell), []).append(index)
    slots: list[RunRecord | None] = [None] * len(cells)
    total = len(cells)
    done = 0

    def _finish(index: int, record: RunRecord) -> None:
        nonlocal done
        done += 1
        slots[index] = record
        _log_record(record, done, total)
        _count_status(obs, record)
        if progress is not None:
            progress(record)

    with maybe_timed(obs, "sweep.run", cells=total, workers=1):
        for indexes in groups.values():
            group = [cells[i] for i in indexes]
            try:
                with maybe_timed(obs, "sweep.prepare", cells=len(group)):
                    db, query_plan = _prepared_context(group, obs, cache)
            except Exception as exc:
                _LOG.warning("sweep: preparing %d cell(s) failed: %s",
                             len(group), exc)
                for i in indexes:
                    _finish(i, _experiment.failure_record(
                        cells[i], _failure_status(exc)
                    ))
                continue
            for i in indexes:
                started = time.perf_counter()
                try:
                    record = _experiment._execute(
                        cells[i], db, query_plan, obs=obs
                    )
                except Exception as exc:
                    _LOG.warning("sweep: cell %d failed: %s", i, exc)
                    record = _experiment.failure_record(
                        cells[i], _failure_status(exc),
                        wall_seconds=time.perf_counter() - started,
                    )
                _finish(i, record)
    return [record for record in slots if record is not None]


@dataclass
class _Worker:
    """One farm worker process and what it is currently running."""

    process: object
    conn: Connection
    index: int | None = None          # cell index in flight, None if idle
    dispatched_at: float | None = None
    deadline: float | None = None

    @property
    def busy(self) -> bool:
        return self.index is not None


def _cell_worker(conn: Connection) -> None:
    """Farm worker loop: receive a cell, run it, send the outcome.

    Exceptions are caught *here* and shipped back as structured errors,
    so a poisoned cell costs one message, not the worker.  Only a hard
    crash (or a kill from the parent on timeout) loses the process — the
    parent notices the closed pipe and replaces it.
    """
    while True:
        try:
            cell = conn.recv()
        except (EOFError, OSError):
            return
        if cell is None:
            return
        try:
            outcome = ("ok", _experiment.run_cell(cell))
        except BaseException as exc:  # isolate *everything* per cell
            outcome = ("error", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            return


def _execute_farm(
    cells: Sequence["_experiment.Cell"],
    max_workers: int,
    cell_timeout: float | None,
    progress: Callable[[RunRecord], None] | None,
    obs: Observation | None,
) -> list[RunRecord]:
    """Farm cells over dedicated worker processes with fault isolation.

    Unlike a :class:`~concurrent.futures.ProcessPoolExecutor`, each
    worker is dispatched exactly one cell at a time over its own pipe, so
    the parent always knows which cell a hung worker holds: on deadline
    it kills that worker, records a ``timeout`` for that cell only, and
    spawns a replacement.  Worker processes are non-daemonic (cells
    running the ``mp`` engine open their own pool inside).
    """
    ctx = pool_context()
    total = len(cells)
    if obs is not None:
        # Workers cannot write to this process' registry; ship the
        # request with each cell and read the digest off the record.
        cells = [replace(cell, observe=True) for cell in cells]
    slots: list[RunRecord | None] = [None] * total
    pending: deque[int] = deque(range(total))
    workers: list[_Worker] = []
    done = 0
    busy_seconds = 0.0
    farm_started = time.perf_counter()

    def _spawn() -> _Worker:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_cell_worker, args=(child_conn,), daemon=False
        )
        process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn)

    def _dispatch(worker: _Worker) -> None:
        index = pending.popleft()
        worker.index = index
        worker.dispatched_at = time.perf_counter()
        worker.deadline = (
            None if cell_timeout is None
            else worker.dispatched_at + cell_timeout
        )
        worker.conn.send(cells[index])

    def _finish(index: int, record: RunRecord) -> None:
        nonlocal done, busy_seconds
        done += 1
        slots[index] = record
        if obs is not None:
            turnaround = time.perf_counter() - farm_started
            obs.observe("sweep.queue_wait.seconds",
                        max(0.0, turnaround - record.wall_seconds))
            obs.observe("sweep.cell.seconds", record.wall_seconds)
            busy_seconds += record.wall_seconds
            if record.metrics is not None:
                obs.metrics.merge_snapshot({
                    "counters": record.metrics.get("counters", {}),
                    "gauges": record.metrics.get("gauges", {}),
                })
        _log_record(record, done, total)
        _count_status(obs, record)
        if progress is not None:
            progress(record)

    def _retire(worker: _Worker, *, kill: bool) -> None:
        workers.remove(worker)
        if kill and worker.process.is_alive():
            worker.process.terminate()
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=5)
        if worker.process.is_alive():  # pragma: no cover - stubborn child
            worker.process.kill()
            worker.process.join(timeout=5)

    worker_target = min(max_workers, total)
    with maybe_timed(obs, "sweep.run", cells=total, workers=worker_target):
        workers.extend(_spawn() for _ in range(worker_target))
        try:
            while done < total:
                for worker in workers:
                    if not worker.busy and pending:
                        _dispatch(worker)
                busy = [worker for worker in workers if worker.busy]
                if not busy:  # pragma: no cover - every worker just died
                    while pending:
                        index = pending.popleft()
                        _finish(index, _experiment.failure_record(
                            cells[index], "failed:worker-pool-exhausted"
                        ))
                    break
                now = time.perf_counter()
                deadlines = [w.deadline for w in busy
                             if w.deadline is not None]
                wait_for = (None if not deadlines
                            else max(0.0, min(deadlines) - now))
                ready = _connection_wait(
                    [worker.conn for worker in busy], timeout=wait_for
                )
                for worker in busy:
                    if worker.conn not in ready:
                        continue
                    index = worker.index
                    elapsed = time.perf_counter() - worker.dispatched_at
                    try:
                        kind, payload = worker.conn.recv()
                    except (EOFError, OSError):
                        # The worker died mid-cell (crash, OOM kill, ...):
                        # record the casualty and replace the process.
                        _LOG.warning("sweep: worker died running cell %d",
                                     index)
                        _finish(index, _experiment.failure_record(
                            cells[index], "failed:worker-died",
                            wall_seconds=elapsed,
                        ))
                        _retire(worker, kill=True)
                        if pending:
                            workers.append(_spawn())
                        continue
                    if kind == "ok":
                        _finish(index, payload)
                    else:
                        _finish(index, _experiment.failure_record(
                            cells[index], f"failed:{payload}",
                            wall_seconds=elapsed,
                        ))
                    worker.index = None
                    worker.dispatched_at = None
                    worker.deadline = None
                now = time.perf_counter()
                for worker in list(workers):
                    if (worker.busy and worker.deadline is not None
                            and now >= worker.deadline):
                        index = worker.index
                        _LOG.warning(
                            "sweep: cell %d exceeded its %.1fs deadline; "
                            "killing and replacing its worker",
                            index, cell_timeout,
                        )
                        _finish(index, _experiment.failure_record(
                            cells[index], "timeout",
                            wall_seconds=now - worker.dispatched_at,
                        ))
                        _retire(worker, kill=True)
                        if pending:
                            workers.append(_spawn())
        finally:
            for worker in list(workers):
                if not worker.busy:
                    try:
                        worker.conn.send(None)
                    except (BrokenPipeError, OSError):
                        pass
                _retire(worker, kill=worker.busy)
    if obs is not None:
        elapsed = time.perf_counter() - farm_started
        obs.set_gauge("sweep.pool_workers", worker_target)
        if elapsed > 0:
            obs.set_gauge(
                "sweep.pool_utilization",
                busy_seconds / (worker_target * elapsed),
            )
    return [record for record in slots if record is not None]


def execute_cells(
    cells: Sequence["_experiment.Cell"],
    max_workers: int | None = None,
    cell_timeout: float | None = None,
    progress: Callable[[RunRecord], None] | None = None,
    obs: Observation | None = None,
    cache: CatalogCache | None = None,
) -> list[RunRecord]:
    """Execute sweep cells with per-cell fault isolation.

    The single executor behind both :meth:`repro.api.experiment.Sweep.run`
    and the service's sweep jobs.  Records come back in grid (input)
    order; a raising cell yields a ``failed:<reason>`` record and a cell
    past ``cell_timeout`` seconds yields a ``timeout`` record — neither
    disturbs its neighbors.

    ``max_workers`` > 1 farms cells over worker processes; ``None``/1
    runs in-process (sharing one database/statistics/plan per distinct
    coordinate group, in any input order).  ``cell_timeout`` requires
    process isolation, so setting it forces the farm even for a single
    worker.  ``cache`` (a :class:`~repro.service.cache.CatalogCache`)
    lets the serial path reuse prepared contexts across calls — the
    service's sweep jobs pass the server-wide cache.
    """
    if not cells:
        return []
    workers = 0 if max_workers is None else max_workers
    if cell_timeout is not None and cell_timeout <= 0:
        raise ServiceError(
            f"cell_timeout must be positive, got {cell_timeout}"
        )
    if cell_timeout is None and (workers <= 1 or len(cells) == 1):
        return _execute_serial(cells, progress, obs, cache)
    return _execute_farm(
        cells, max(1, workers), cell_timeout, progress, obs
    )


# ----------------------------------------------------------------------
# Catalog-cached builders shared by plan and stats jobs.
# ----------------------------------------------------------------------

def _workload_parts(spec: dict) -> dict:
    """The workload coordinates of a plan/stats job spec, normalized."""
    domain = spec.get("domain")
    return {
        "workload": str(spec.get("workload", "uniform")),
        "m": int(spec.get("m", 1000)),
        "skew": float(spec.get("skew", 1.0)),
        "seed": int(spec.get("seed", 0)),
        "domain": None if domain is None else int(domain),
    }


def _cached_query(text: str, cache: CatalogCache | None):
    if cache is None:
        return _experiment.parse_query(text)
    key = catalog_key(kind="query", text=text)
    return cache.get_or_build(
        "query", key, lambda: _experiment.parse_query(text)
    )


def _cached_statistics(
    query, parts: dict, p: int, method: str,
    cache: CatalogCache | None, obs: Observation | None,
):
    """``(db, stats)`` for a catalog, via the cache's ``stats`` section."""
    _experiment._validate_stats_method(method)

    def _build():
        workload = _experiment.WorkloadSpec(
            kind=parts["workload"], m=parts["m"], skew=parts["skew"],
            seed=parts["seed"], domain=parts["domain"],
        )
        db = workload.build(query)
        with maybe_timed(obs, "stats.build", method=method):
            stats = _experiment._build_statistics(query, db, p, method,
                                                  obs=obs)
        return db, stats

    if cache is None:
        return _build()
    key = catalog_key(kind="stats", query=str(query), p=p, method=method,
                      **parts)
    return cache.get_or_build("stats", key, _build)


# ----------------------------------------------------------------------
# The job queue.
# ----------------------------------------------------------------------

_JOB_IDS = itertools.count(1)


@dataclass
class Job:
    """One submitted unit of service work and its lifecycle."""

    id: str
    kind: str
    spec: dict
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: object = None
    error: str | None = None

    def describe(self) -> dict:
        """The JSON status document ``GET /v1/jobs/<id>`` returns."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")


class JobQueue:
    """A bounded async job queue with worker threads and backpressure.

    ``queue_size`` bounds the number of *queued* (not yet running) jobs;
    :meth:`submit` on a full queue raises :class:`BackpressureError`
    immediately.  ``workers`` threads drain the queue (``workers=0``
    leaves it paused — jobs queue up and can be cancelled, which is what
    the backpressure tests use).  ``cell_workers``/``cell_timeout``
    configure the fault-isolated cell farm each sweep job executes
    through; plan and stats jobs run in-thread against the shared
    :class:`~repro.service.cache.CatalogCache`.
    """

    def __init__(
        self,
        queue_size: int = 32,
        workers: int = 2,
        cache: CatalogCache | None = None,
        obs: Observation | None = None,
        cell_workers: int | None = None,
        cell_timeout: float | None = None,
    ) -> None:
        if queue_size < 1:
            raise ServiceError(
                f"queue_size must be >= 1, got {queue_size}"
            )
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        self.obs = obs if obs is not None else Observation.create()
        self.cache = cache if cache is not None else CatalogCache(
            obs=self.obs
        )
        self.cell_workers = cell_workers
        self.cell_timeout = cell_timeout
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-job-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- client surface -------------------------------------------------
    def submit(self, kind: str, spec: dict) -> Job:
        """Enqueue a job; raises :class:`BackpressureError` when full."""
        if kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {kind!r}; expected one of "
                f"{', '.join(JOB_KINDS)}"
            )
        if not isinstance(spec, dict) or not spec.get("query"):
            raise ServiceError(
                "job spec must be an object with at least a 'query'"
            )
        if self._closed:
            raise ServiceError("the job queue is shut down")
        job = Job(id=f"job-{next(_JOB_IDS)}", kind=kind, spec=dict(spec))
        with self._lock:
            self._jobs[job.id] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
            self.obs.count("service.jobs.rejected")
            raise BackpressureError(self._queue.maxsize) from None
        self.obs.count("service.jobs.submitted")
        self.obs.set_gauge("service.queue.depth", self._queue.qsize())
        _LOG.info("job %s queued (%s)", job.id, kind)
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def status(self, job_id: str) -> dict:
        return self.get(job_id).describe()

    def result(self, job_id: str) -> object:
        """The result payload of a ``done`` job (error otherwise)."""
        job = self.get(job_id)
        if job.state == "failed":
            raise ServiceError(f"job {job_id} failed: {job.error}")
        if job.state == "cancelled":
            raise ServiceError(f"job {job_id} was cancelled")
        if job.state != "done":
            raise ServiceError(
                f"job {job_id} is {job.state}; result not ready"
            )
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a *queued* job; running/terminal jobs are not touched."""
        job = self.get(job_id)
        with self._lock:
            if job.state != "queued":
                return False
            job.state = "cancelled"
            job.finished_at = time.time()
        self.obs.count("service.jobs.cancelled")
        _LOG.info("job %s cancelled", job.id)
        return True

    def jobs(self) -> list[dict]:
        with self._lock:
            return [job.describe() for job in self._jobs.values()]

    def join(self, timeout: float = 60.0) -> bool:
        """Wait until every submitted job is terminal (tests, shutdown)."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            with self._lock:
                if all(job.terminal for job in self._jobs.values()):
                    return True
            time.sleep(0.01)
        return False

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker threads (queued jobs are left cancelled)."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            for job in self._jobs.values():
                if job.state == "queued":
                    job.state = "cancelled"
                    job.finished_at = time.time()
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=30)

    # -- the worker side ------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self.obs.set_gauge("service.queue.depth", self._queue.qsize())
            with self._lock:
                if job.state != "queued":  # cancelled while waiting
                    continue
                job.state = "running"
                job.started_at = time.time()
            _LOG.info("job %s running (%s)", job.id, job.kind)
            try:
                with maybe_timed(self.obs, "service.job",
                                 kind=job.kind, job=job.id):
                    result = self._run(job)
            except Exception as exc:
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
                self.obs.count("service.jobs.failed")
                self.obs.count(f"service.jobs.failed.{job.kind}")
                _LOG.warning("job %s failed: %s", job.id, job.error)
            else:
                job.result = result
                job.state = "done"
                self.obs.count("service.jobs.done")
                self.obs.count(f"service.jobs.done.{job.kind}")
                _LOG.info("job %s done", job.id)
            finally:
                job.finished_at = time.time()

    def _run(self, job: Job) -> object:
        if job.kind == "plan":
            return self._run_plan(job.spec)
        if job.kind == "stats":
            return self._run_stats(job.spec)
        return self._run_sweep(job.spec)

    def _run_plan(self, spec: dict) -> dict:
        parts = _workload_parts(spec)
        p = int(spec.get("p", 16))
        method = str(spec.get("stats", "exact"))
        query = _cached_query(str(spec["query"]), self.cache)
        _, stats = _cached_statistics(
            query, parts, p, method, self.cache, self.obs
        )
        key = catalog_key(kind="plan", query=str(query), p=p,
                          method=method, **parts)
        query_plan = self.cache.get_or_build(
            "plan", key,
            lambda: _plan(query, stats, p, obs=self.obs),
        )
        return query_plan.to_dict()

    def _run_stats(self, spec: dict) -> dict:
        parts = _workload_parts(spec)
        p = int(spec.get("p", 16))
        method = str(spec.get("stats", "exact"))
        query = _cached_query(str(spec["query"]), self.cache)
        db, stats = _cached_statistics(
            query, parts, p, method, self.cache, self.obs
        )
        return {
            "query": str(query),
            "p": p,
            "method": method,
            "workload": parts,
            "relations": {
                atom.name: db.relation(atom.name).cardinality
                for atom in query.atoms
            },
            "total_heavy_count": stats.total_heavy_count(),
            "heavy_hitters": {
                f"{atom}[{','.join(subset)}]": len(heavy)
                for (atom, subset), heavy in stats.hitters.items()
            },
        }

    def _run_sweep(self, spec: dict) -> dict:
        algorithms = spec.get("algorithms", "applicable")
        if isinstance(algorithms, list):
            algorithms = tuple(algorithms)
        stats = spec.get("stats_axis", spec.get("stats", "exact"))
        if isinstance(stats, list):
            stats = tuple(stats)
        rounds = spec.get("rounds", 1)
        if isinstance(rounds, list):
            rounds = tuple(rounds)
        sweep = _experiment.Sweep(
            query=str(spec["query"]),
            workload=str(spec.get("workload", "zipf")),
            p_values=tuple(spec.get("p_values", (16,))),
            m_values=tuple(spec.get("m_values", (1000,))),
            skews=tuple(spec.get("skews", (1.0,))),
            seeds=tuple(spec.get("seeds", (0,))),
            algorithms=algorithms,
            engine=str(spec.get("engine", "batched")),
            verify=bool(spec.get("verify", False)),
            domain=spec.get("domain"),
            stats=stats,
            rounds=rounds,
        )
        cells = sweep.cells()
        records = execute_cells(
            cells,
            max_workers=spec.get("workers", self.cell_workers),
            cell_timeout=spec.get("cell_timeout", self.cell_timeout),
            obs=self.obs,
            cache=self.cache,
        )
        return {
            "count": len(records),
            "failed": sum(1 for record in records if not record.ok),
            "records": [record.to_dict() for record in records],
        }
