"""Serving plans and sweeps from one long-lived process.

Today's other entry points are cold one-shot processes; this package is
the ROADMAP's "planner-as-a-service" first step.  Three layers:

1. :mod:`repro.service.jobs` — :func:`execute_cells`, the fault-isolated
   sweep executor (structured ``failed:``/``timeout`` records, per-cell
   deadlines, worker replacement) shared with
   :meth:`repro.api.experiment.Sweep.run`; and :class:`JobQueue`, a
   bounded submit/status/result/cancel queue with explicit
   :class:`BackpressureError` rejection.
2. :mod:`repro.service.cache` — :class:`CatalogCache`, content-hash LRU
   sections for parsed queries, heavy-hitter/sketch statistics and
   ranked plans, instrumented through :mod:`repro.obs`.
3. :mod:`repro.service.server` / :mod:`repro.service.client` —
   :class:`ReproService` (the stdlib HTTP server behind ``repro serve``)
   and :class:`ServiceClient` (behind ``repro submit``).

Typical in-process use::

    from repro.service import ReproService, ServiceClient

    service = ReproService(port=0, job_workers=2)
    service.serve_in_background()
    client = ServiceClient(service.url)
    job = client.submit("plan", {"query": "q(x,y,z) :- S1(x,z), S2(y,z)",
                                 "p": 16, "workload": "zipf", "m": 2000})
    client.wait(job["id"])
    print(client.result(job["id"])["result"]["chosen"])
    service.shutdown()
"""

from .cache import CatalogCache, catalog_key
from .client import ServiceBusyError, ServiceClient, ServiceClientError
from .jobs import (
    JOB_KINDS,
    JOB_STATES,
    BackpressureError,
    Job,
    JobQueue,
    ServiceError,
    execute_cells,
)
from .server import ReproService

__all__ = [
    "BackpressureError",
    "CatalogCache",
    "Job",
    "JobQueue",
    "JOB_KINDS",
    "JOB_STATES",
    "ReproService",
    "ServiceBusyError",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "catalog_key",
    "execute_cells",
]
