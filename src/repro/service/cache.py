"""Per-catalog content-addressed caching for the plan service.

A *catalog* here is everything that determines a statistics pass or a
plan: the query text, the workload coordinates (kind, m, skew, seed,
domain), ``p`` and the statistics method.  :func:`catalog_key` hashes
those parts canonically, so two requests that describe the same catalog
— regardless of dict ordering or which client sent them — address the
same cache slot.  "Communication Cost in Parallel Query Processing"
(PAPERS.md) is the motivation: statistics and plans are the expensive,
reusable halves of a request, so a long-lived server should compute them
once per catalog, not once per process.

:class:`CatalogCache` keeps three LRU sections — parsed queries,
heavy-hitter/sketch statistics, ranked plans — behind one lock, and
reports every lookup through the observability layer:

* counters ``service.cache.hit`` / ``service.cache.miss`` (and the
  per-section ``service.cache.<section>.hit/miss``),
* gauge ``service.cache.entries``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Callable

from ..obs import Observation

#: The cache sections a :class:`CatalogCache` maintains.
SECTIONS = ("query", "stats", "plan")


def catalog_key(**parts: object) -> str:
    """A stable content hash over the request parts that define a catalog.

    Parts are JSON-canonicalized (sorted keys, no whitespace) before
    hashing, so key equality is structural, not representational.
    """
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CatalogCache:
    """Bounded LRU sections for parsed queries, statistics and plans.

    Thread-safe: the server's job workers and HTTP handlers share one
    instance.  The builder runs *outside* the lock, so a slow statistics
    pass never blocks unrelated lookups; if two threads race on the same
    key, both build and the second result wins (builds are deterministic,
    so the duplicates are identical).
    """

    def __init__(self, capacity: int = 64,
                 obs: Observation | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.obs = obs
        self._lock = threading.Lock()
        self._sections: dict[str, OrderedDict[str, object]] = {
            section: OrderedDict() for section in SECTIONS
        }
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return sum(len(entries) for entries in self._sections.values())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _count(self, section: str, hit: bool) -> None:
        outcome = "hit" if hit else "miss"
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if self.obs is not None:
            self.obs.count(f"service.cache.{outcome}")
            self.obs.count(f"service.cache.{section}.{outcome}")
            self.obs.set_gauge("service.cache.entries", len(self))

    def lookup(self, section: str, key: str) -> tuple[bool, object]:
        """``(hit, value)`` for ``key``; a hit refreshes LRU recency."""
        if section not in self._sections:
            raise KeyError(f"unknown cache section {section!r}")
        with self._lock:
            entries = self._sections[section]
            if key in entries:
                entries.move_to_end(key)
                hit, value = True, entries[key]
            else:
                hit, value = False, None
        self._count(section, hit)
        return hit, value

    def store(self, section: str, key: str, value: object) -> None:
        with self._lock:
            entries = self._sections[section]
            entries[key] = value
            entries.move_to_end(key)
            while len(entries) > self.capacity:
                entries.popitem(last=False)

    def get_or_build(
        self, section: str, key: str, builder: Callable[[], object]
    ) -> object:
        """The cached value for ``key``, building (and storing) on a miss."""
        hit, value = self.lookup(section, key)
        if hit:
            return value
        value = builder()
        self.store(section, key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            for entries in self._sections.values():
                entries.clear()
