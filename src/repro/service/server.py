"""The long-lived plan/sweep server behind ``repro serve``.

A thin stdlib-only HTTP façade over :class:`~repro.service.jobs.JobQueue`
— no new dependencies, JSON in and out:

===========  =========================  =====================================
method       path                       semantics
===========  =========================  =====================================
``GET``      ``/v1/health``             liveness + job-state counts
``GET``      ``/v1/metrics``            the server's metrics registry digest
``POST``     ``/v1/jobs``               submit ``{"kind": ..., "spec": ...}``
                                        → 202 with the job id, or **429**
                                        when the bounded queue rejects
``GET``      ``/v1/jobs``               every known job's status document
``GET``      ``/v1/jobs/<id>``          one job's status document
``GET``      ``/v1/jobs/<id>/result``   the result payload (**409** until
                                        the job is ``done``)
``DELETE``   ``/v1/jobs/<id>``          cancel a queued job
``POST``     ``/v1/shutdown``           stop the server (CI teardown)
===========  =========================  =====================================

The server is threaded (``ThreadingHTTPServer``): handlers only touch the
job table, so many concurrent clients can poll while the queue's worker
threads grind through jobs.  Heavy work never runs in a handler.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import Observation
from .cache import CatalogCache
from .jobs import BackpressureError, JobQueue, ServiceError

_LOG = logging.getLogger("repro.service.server")


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ReproService`."""

    # The service instance, installed by ReproService on the handler class
    # the ThreadingHTTPServer instantiates per request.
    service: "ReproService"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:
        _LOG.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, code: int, payload: object) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request needs a JSON body")
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def _segments(self) -> list[str]:
        return [part for part in self.path.split("?")[0].split("/") if part]

    # -- verbs -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        queue = self.service.queue
        segments = self._segments()
        try:
            if segments == ["v1", "health"]:
                self._send_json(200, self.service.health())
            elif segments == ["v1", "metrics"]:
                self._send_json(200, queue.obs.metrics.to_dict())
            elif segments == ["v1", "jobs"]:
                self._send_json(200, {"jobs": queue.jobs()})
            elif len(segments) == 3 and segments[:2] == ["v1", "jobs"]:
                self._send_json(200, queue.status(segments[2]))
            elif (len(segments) == 4 and segments[:2] == ["v1", "jobs"]
                    and segments[3] == "result"):
                job = queue.get(segments[2])
                if job.state == "done":
                    self._send_json(200, {
                        "id": job.id, "kind": job.kind, "result": job.result,
                    })
                elif job.terminal:
                    self._send_json(410, {
                        "id": job.id, "state": job.state, "error": job.error,
                    })
                else:
                    self._send_json(409, {
                        "id": job.id, "state": job.state,
                        "error": "result not ready",
                    })
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})
        except ServiceError as exc:
            self._send_json(404, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802
        segments = self._segments()
        if segments == ["v1", "shutdown"]:
            self._send_json(200, {"state": "shutting-down"})
            self.service.shutdown_async()
            return
        if segments != ["v1", "jobs"]:
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        try:
            payload = self._read_json()
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            kind = payload.get("kind")
            spec = payload.get("spec")
            job = self.service.queue.submit(str(kind), spec)
        except BackpressureError as exc:
            self._send_json(429, {
                "error": str(exc), "capacity": exc.capacity,
            })
        except (ValueError, ServiceError) as exc:
            self._send_json(400, {"error": str(exc)})
        else:
            self._send_json(202, job.describe())

    def do_DELETE(self) -> None:  # noqa: N802
        segments = self._segments()
        if len(segments) != 3 or segments[:2] != ["v1", "jobs"]:
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        try:
            cancelled = self.service.queue.cancel(segments[2])
        except ServiceError as exc:
            self._send_json(404, {"error": str(exc)})
        else:
            self._send_json(200, {"id": segments[2], "cancelled": cancelled})


class ReproService:
    """One server process: a job queue, a catalog cache, an HTTP front.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`address`) — what the tests use to avoid collisions.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        queue_size: int = 32,
        job_workers: int = 2,
        cell_workers: int | None = None,
        cell_timeout: float | None = None,
        cache_capacity: int = 64,
        obs: Observation | None = None,
    ) -> None:
        self.obs = obs if obs is not None else Observation.create()
        self.cache = CatalogCache(capacity=cache_capacity, obs=self.obs)
        self.queue = JobQueue(
            queue_size=queue_size,
            workers=job_workers,
            cache=self.cache,
            obs=self.obs,
            cell_workers=cell_workers,
            cell_timeout=cell_timeout,
        )
        handler = type("_BoundHandler", (_Handler,), {"service": self})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._shutdown_started = False

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def health(self) -> dict:
        states: dict[str, int] = {}
        for job in self.queue.jobs():
            states[job["state"]] = states.get(job["state"], 0) + 1
        return {
            "state": "ok",
            "jobs": states,
            "cache_entries": len(self.cache),
            "cache_hit_rate": self.cache.hit_rate,
        }

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or Ctrl-C)."""
        _LOG.info("repro service listening on %s", self.url)
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self.queue.shutdown(wait=True)
            self._server.server_close()

    def serve_in_background(self) -> threading.Thread:
        """Start :meth:`serve_forever` on a daemon thread (tests)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-service", daemon=True
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        if self._shutdown_started:
            return
        self._shutdown_started = True
        self._server.shutdown()

    def shutdown_async(self) -> None:
        """Shut down from inside a request handler without deadlocking
        (``HTTPServer.shutdown`` blocks until ``serve_forever`` exits,
        which cannot happen from the handler's own thread)."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def __enter__(self) -> "ReproService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
