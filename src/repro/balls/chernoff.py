"""Closed-form balls-into-bins bounds (Appendix C).

Lemma C.1: throwing weighted balls (total weight ``m``, each ball at most
``B = a m / p`` with ``a >= 1/ln(1/delta)``) uniformly into ``p`` bins, the
maximum bin weight exceeds ``3 ln(1/delta) a m / p`` with probability at
most ``p delta``.

Corollary C.2 (unit weights): max load ``> 3 m / p`` with probability at
most ``p e^{-m/p}``.

These are the building blocks of Lemma 3.1's analysis of the HyperCube
hashing; experiment E10 compares them against simulated maxima.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TailBound:
    """A high-probability load bound: ``P(max load > threshold) <= failure``."""

    threshold: float
    failure_probability: float


def weighted_balls_bound(
    total_weight: float, max_ball_weight: float, bins: int, delta: float
) -> TailBound:
    """Lemma C.1 for total weight ``m``, ball cap ``B``, ``p`` bins.

    ``a`` is derived as ``B p / m``; the lemma needs ``a >= 1/ln(1/delta)``,
    which we enforce by raising ``a`` (i.e. the threshold stays valid, just
    possibly looser).
    """
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    if bins < 1 or total_weight <= 0:
        raise ValueError("need at least one bin and positive weight")
    a = max(
        max_ball_weight * bins / total_weight, 1.0 / math.log(1.0 / delta)
    )
    threshold = 3.0 * math.log(1.0 / delta) * a * total_weight / bins
    return TailBound(threshold=threshold, failure_probability=bins * delta)


def uniform_balls_bound(balls: int, bins: int) -> TailBound:
    """Corollary C.2: ``m`` unit balls into ``p`` bins."""
    if bins < 1 or balls < 1:
        raise ValueError("need at least one ball and one bin")
    return TailBound(
        threshold=3.0 * balls / bins,
        failure_probability=bins * math.exp(-balls / bins),
    )


def matching_hash_bound(cardinality: int, grid_size: int) -> TailBound:
    """Lemma 3.1(2)/Lemma B.3: hashing a matching relation of ``m`` tuples
    onto a grid of ``p`` buckets behaves like uniform balls-into-bins."""
    return uniform_balls_bound(cardinality, grid_size)


def skew_free_hash_threshold(
    cardinality: int,
    shares: dict[str, int] | list[int],
    a: float = 1.0,
) -> float:
    """Lemma 3.1(3): max bucket load ``O(a^r ln^r(p) m / p)`` for skew-free
    relations; we report the deterministic part ``a^r ln^r(p) m/p`` (the
    constant 9^r of Corollary B.6 is omitted — experiments compare shapes)."""
    share_list = list(shares.values()) if isinstance(shares, dict) else list(shares)
    r = len(share_list)
    p = math.prod(share_list)
    if p < 2:
        return float(cardinality)
    return (a**r) * (math.log(p) ** r) * cardinality / p


def worst_case_hash_bound(
    cardinality: int, shares: dict[str, int] | list[int]
) -> float:
    """Lemma 3.1(4): max bucket load ``O(m / min_i p_i)`` for any relation,
    tight by Example B.2."""
    share_list = list(shares.values()) if isinstance(shares, dict) else list(shares)
    if not share_list:
        return float(cardinality)
    return cardinality / min(share_list)
