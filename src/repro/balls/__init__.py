"""Balls-into-bins: Chernoff bounds (Appendix C) and hashing simulations
(Appendix B / Lemma 3.1)."""

from .chernoff import (
    TailBound,
    matching_hash_bound,
    skew_free_hash_threshold,
    uniform_balls_bound,
    weighted_balls_bound,
    worst_case_hash_bound,
)
from .simulation import (
    average_max_hash_load,
    hash_relation_loads,
    max_hash_load,
    max_weighted_load,
    throw_weighted_balls,
)

__all__ = [
    "TailBound",
    "matching_hash_bound",
    "skew_free_hash_threshold",
    "uniform_balls_bound",
    "weighted_balls_bound",
    "worst_case_hash_bound",
    "average_max_hash_load",
    "hash_relation_loads",
    "max_hash_load",
    "max_weighted_load",
    "throw_weighted_balls",
]
