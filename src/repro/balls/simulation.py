"""Balls-into-bins and relation-hashing simulations (Appendix B).

These drive experiment E10: hash a relation ``R(A_1..A_r)`` onto a grid of
``p_1 x ... x p_r`` buckets with one independent hash function per attribute
(exactly the HyperCube primitive of Lemma 3.1) and measure the realized
maximum bucket load, to compare against the four regimes of the lemma.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Mapping, Sequence

from ..mpc.hashing import HashFamily
from ..seq.relation import Relation


def hash_relation_loads(
    relation: Relation,
    shares: Sequence[int],
    seed: int = 0,
) -> Counter:
    """Bucket loads when hashing each tuple attribute-wise onto the grid.

    ``shares[i]`` is the bucket count of attribute ``i``; tuples land in the
    bucket ``(h_1(a_1), ..., h_r(a_r))`` as in Lemma 3.1.
    """
    if len(shares) != relation.arity:
        raise ValueError(
            f"need one share per attribute: got {len(shares)} for arity "
            f"{relation.arity}"
        )
    hashes = HashFamily(seed)
    loads: Counter = Counter()
    for tup in relation.tuples:
        bucket = tuple(
            hashes.bucket(f"attr{i}", value, share)
            for i, (value, share) in enumerate(zip(tup, shares))
        )
        loads[bucket] += 1
    return loads


def max_hash_load(
    relation: Relation, shares: Sequence[int], seed: int = 0
) -> int:
    loads = hash_relation_loads(relation, shares, seed)
    return max(loads.values(), default=0)


def average_max_hash_load(
    relation: Relation, shares: Sequence[int], trials: int = 5, seed: int = 0
) -> float:
    """Mean maximum bucket load over independent hash draws."""
    total = 0
    for trial in range(trials):
        total += max_hash_load(relation, shares, seed=seed + 1000 * trial)
    return total / trials


def throw_weighted_balls(
    weights: Mapping[int, float] | Sequence[float],
    bins: int,
    seed: int = 0,
) -> list[float]:
    """Throw weighted balls uniformly into ``bins``; returns bin weights.

    The direct simulation of Lemma C.1's setting.
    """
    rng = random.Random(f"balls:{seed}")
    loads = [0.0] * bins
    values = (
        weights.values() if isinstance(weights, Mapping) else weights
    )
    for weight in values:
        loads[rng.randrange(bins)] += weight
    return loads


def max_weighted_load(
    weights: Mapping[int, float] | Sequence[float], bins: int, seed: int = 0
) -> float:
    return max(throw_weighted_balls(weights, bins, seed), default=0.0)
