"""Fractional edge packings and covers (Section 2.2, Theorem 3.6).

A fractional edge packing of ``q`` assigns a weight ``u_j >= 0`` to each atom
so that for every variable the incident weights sum to at most 1; a cover
flips the inequality.  The paper's central objects:

* ``pk(q)`` — the *non-dominated vertices* of the packing polytope; Theorem
  3.6 proves the optimal load is ``max_{u in pk(q)} L(u, M, p)``.
* ``tau*`` — the maximum total packing weight, equal (LP duality) to the
  fractional vertex-covering number; for uniform cardinalities the load is
  ``M / p^{1/tau*}`` as in [4].

Vertex enumeration is exact (`repro.lp.polytope`).  Atoms whose variable set
is empty (possible in residual queries) get an explicit ``u_j <= 1`` cap to
keep the polytope bounded — see ``repro/query/residual.py`` for why this is
the right convention.
"""

from __future__ import annotations

from fractions import Fraction
from typing import AbstractSet, Mapping, Sequence

from ..lp.fraction_utils import Number, to_fraction
from ..lp.polytope import (
    HalfSpace,
    enumerate_vertices,
    non_dominated,
    nonnegativity_constraints,
)
from ..lp.simplex import LPError, maximize, minimize
from ..query.atoms import ConjunctiveQuery

Packing = dict[str, Fraction]


def _atom_names(query: ConjunctiveQuery) -> list[str]:
    return [atom.name for atom in query.atoms]


def packing_constraints(query: ConjunctiveQuery) -> list[HalfSpace]:
    """The rows of (2): per-variable ``sum u_j <= 1`` plus caps for
    variable-free atoms."""
    names = _atom_names(query)
    constraints: list[HalfSpace] = []
    for var in query.variables:
        row = [
            Fraction(1) if var in atom.variable_set else Fraction(0)
            for atom in query.atoms
        ]
        constraints.append(HalfSpace(tuple(row), Fraction(1)))
    for idx, atom in enumerate(query.atoms):
        if not atom.variable_set:
            row = [Fraction(0)] * len(names)
            row[idx] = Fraction(1)
            constraints.append(HalfSpace(tuple(row), Fraction(1)))
    return constraints


def _as_packing(query: ConjunctiveQuery, values: Sequence[Fraction]) -> Packing:
    return {atom.name: value for atom, value in zip(query.atoms, values)}


def packing_vertices(query: ConjunctiveQuery) -> list[Packing]:
    """All vertices of the packing polytope."""
    constraints = packing_constraints(query) + nonnegativity_constraints(
        query.num_atoms
    )
    vertices = enumerate_vertices(constraints, query.num_atoms)
    return [_as_packing(query, v) for v in vertices]


def non_dominated_packing_vertices(query: ConjunctiveQuery) -> list[Packing]:
    """``pk(q)``: the non-dominated vertices (Theorem 3.6)."""
    constraints = packing_constraints(query) + nonnegativity_constraints(
        query.num_atoms
    )
    vertices = enumerate_vertices(constraints, query.num_atoms)
    return [_as_packing(query, v) for v in non_dominated(vertices)]


def is_edge_packing(query: ConjunctiveQuery, weights: Mapping[str, Number]) -> bool:
    """Feasibility of ``weights`` for the packing constraints (2)."""
    u = {name: to_fraction(weights.get(name, 0)) for name in _atom_names(query)}
    if any(value < 0 for value in u.values()):
        return False
    for var in query.variables:
        incident = sum(
            u[atom.name] for atom in query.atoms if var in atom.variable_set
        )
        if incident > 1:
            return False
    return True


def is_edge_cover(query: ConjunctiveQuery, weights: Mapping[str, Number]) -> bool:
    """Feasibility for the cover constraints (>= 1 per variable)."""
    u = {name: to_fraction(weights.get(name, 0)) for name in _atom_names(query)}
    if any(value < 0 for value in u.values()):
        return False
    for var in query.variables:
        incident = sum(
            u[atom.name] for atom in query.atoms if var in atom.variable_set
        )
        if incident < 1:
            return False
    return True


def is_tight(query: ConjunctiveQuery, weights: Mapping[str, Number]) -> bool:
    """Tightness: every variable constraint holds with equality.

    Every tight fractional edge packing is a tight fractional edge cover and
    vice versa (Section 2.2).
    """
    u = {name: to_fraction(weights.get(name, 0)) for name in _atom_names(query)}
    for var in query.variables:
        incident = sum(
            u[atom.name] for atom in query.atoms if var in atom.variable_set
        )
        if incident != 1:
            return False
    return True


def packing_value(weights: Mapping[str, Number]) -> Fraction:
    """``u = sum_j u_j``, the total weight of a packing."""
    return sum((to_fraction(v) for v in weights.values()), start=Fraction(0))


def maximum_packing_value(query: ConjunctiveQuery) -> Fraction:
    """``tau*(q)``: the maximum fractional edge packing value."""
    names = _atom_names(query)
    constraints = packing_constraints(query)
    a = [list(c.coefficients) for c in constraints]
    b = [c.bound for c in constraints]
    result = maximize([Fraction(1)] * len(names), a, b)
    if not result.is_optimal:  # pragma: no cover - polytope is never empty
        raise LPError(f"packing LP for {query.name} failed: {result.status}")
    return result.objective


def maximum_packing(query: ConjunctiveQuery) -> Packing:
    """A packing attaining ``tau*(q)``."""
    names = _atom_names(query)
    constraints = packing_constraints(query)
    a = [list(c.coefficients) for c in constraints]
    b = [c.bound for c in constraints]
    result = maximize([Fraction(1)] * len(names), a, b)
    if not result.is_optimal:  # pragma: no cover
        raise LPError(f"packing LP for {query.name} failed: {result.status}")
    return {name: value for name, value in zip(names, result.x)}


def fractional_vertex_cover_number(query: ConjunctiveQuery) -> Fraction:
    """``tau*`` via its dual: minimize ``sum_i v_i`` with
    ``sum_{i in S_j} v_i >= 1`` per atom.  Equals
    :func:`maximum_packing_value` by LP duality — a good cross-check."""
    k = query.num_variables
    a: list[list[Fraction]] = []
    b: list[Fraction] = []
    for atom in query.atoms:
        if not atom.variable_set:
            continue
        row = [
            Fraction(-1) if var in atom.variable_set else Fraction(0)
            for var in query.variables
        ]
        a.append(row)
        b.append(Fraction(-1))
    result = minimize([Fraction(1)] * k, a, b)
    if not result.is_optimal:  # pragma: no cover
        raise LPError(f"vertex cover LP for {query.name} failed: {result.status}")
    return result.objective


def fractional_edge_cover_number(query: ConjunctiveQuery) -> Fraction:
    """``rho*(q)``: minimum total weight of a fractional edge cover.

    This is the AGM/sequential-complexity side of the story the paper
    contrasts against: covers capture run time, packings capture
    communication.
    """
    names = _atom_names(query)
    a: list[list[Fraction]] = []
    b: list[Fraction] = []
    for var in query.variables:
        row = [
            Fraction(-1) if var in atom.variable_set else Fraction(0)
            for atom in query.atoms
        ]
        a.append(row)
        b.append(Fraction(-1))
    result = minimize([Fraction(1)] * len(names), a, b)
    if not result.is_optimal:
        raise LPError(f"edge cover LP for {query.name} failed: {result.status}")
    return result.objective


def minimum_edge_cover(
    query: ConjunctiveQuery, costs: Mapping[str, Number] | None = None
) -> Packing:
    """A fractional edge cover minimizing ``sum_j cost_j * u_j``.

    With ``costs = log m_j`` this yields the cover whose AGM bound
    ``prod m_j^{u_j}`` is smallest (used by `repro.core.friedgut`).
    """
    names = _atom_names(query)
    if costs is None:
        cost_vec = [Fraction(1)] * len(names)
    else:
        cost_vec = [to_fraction(costs[name]) for name in names]
    a: list[list[Fraction]] = []
    b: list[Fraction] = []
    for var in query.variables:
        row = [
            Fraction(-1) if var in atom.variable_set else Fraction(0)
            for atom in query.atoms
        ]
        a.append(row)
        b.append(Fraction(-1))
    result = minimize(cost_vec, a, b)
    if not result.is_optimal:
        raise LPError(f"weighted cover LP for {query.name} failed: {result.status}")
    return {name: value for name, value in zip(names, result.x)}
