"""Load bounds for simple statistics (Theorems 3.5, 3.6).

For an edge packing ``u`` and bit sizes ``M``:

    K(u, M)    = prod_j M_j^{u_j}                         (Eq. 6)
    L(u, M, p) = (K(u, M) / p)^{1 / sum_j u_j}            (Eq. 7)

``L_lower = max_u L(u, M, p)`` over all packings is a lower bound on the
per-server load of any one-round algorithm (Theorem 3.5), and Theorem 3.6
shows the maximum is attained on ``pk(q)`` and equals the share-LP optimum
``L_upper`` — so the closed form below *is* the optimal load.

Everything is computed in log2 space to dodge overflow; results are floats
(bits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from ..lp.fraction_utils import Number, to_fraction
from ..query.atoms import ConjunctiveQuery
from .packing import (
    Packing,
    non_dominated_packing_vertices,
    packing_value,
    packing_vertices,
)


class BoundError(ValueError):
    """Raised for degenerate bound inputs (zero-weight packings etc.)."""


def log2_K(weights: Mapping[str, Number], bits: Mapping[str, float]) -> float:
    """``log2 K(u, M) = sum_j u_j log2 M_j``.

    Atoms with ``u_j = 0`` contribute nothing even if ``M_j = 0``
    (the ``0^0 = 1`` convention of the paper's sums).
    """
    total = 0.0
    for name, weight in weights.items():
        u_j = to_fraction(weight)
        if u_j == 0:
            continue
        m_j = bits[name]
        if m_j <= 0:
            return -math.inf
        total += float(u_j) * math.log2(m_j)
    return total


def K(weights: Mapping[str, Number], bits: Mapping[str, float]) -> float:
    """``K(u, M) = prod_j M_j^{u_j}`` (Eq. 6)."""
    return 2.0 ** log2_K(weights, bits)


def load(weights: Mapping[str, Number], bits: Mapping[str, float], p: int) -> float:
    """``L(u, M, p) = (K(u, M)/p)^{1/u}`` in bits (Eq. 7)."""
    u = packing_value(weights)
    if u <= 0:
        raise BoundError("packing must have positive total weight")
    exponent = (log2_K(weights, bits) - math.log2(p)) / float(u)
    return 2.0**exponent


@dataclass(frozen=True)
class LowerBound:
    """The value ``max_u L(u, M, p)`` plus the packing attaining it."""

    bits: float
    packing: Packing

    @property
    def tuples_estimate(self) -> float:
        """Crude bits -> tuples conversion is workload-specific; exposed as
        bits only.  Kept for interface symmetry."""
        return self.bits


def lower_bound(
    query: ConjunctiveQuery, bits: Mapping[str, float], p: int
) -> LowerBound:
    """``L_lower`` maximized over the packing polytope's vertices.

    Theorem 3.6 states the maximum over ``pk(q)`` (the *non-dominated*
    vertices), which is correct under the paper's standing assumption
    ``M_j >= M/p`` (smaller relations get broadcast away, Section 3.3).
    Outside that regime a dominated vertex can carry the maximum — e.g.
    ``q = S0(v0), S1(v1)`` with ``M = (M/8, M)`` and ``p = 4``, where
    ``(0, 1)`` yields ``M/p`` but the dominating ``(1, 1)`` only
    ``(M^2/8p)^(1/2)``.  Maximizing over *all* vertices is correct in every
    regime and always equals the share-LP optimum ``L_upper``.
    """
    best_bits = -math.inf
    best_packing: Packing | None = None
    for packing in packing_vertices(query):
        if packing_value(packing) == 0:
            continue
        value = load(packing, bits, p)
        if value > best_bits:
            best_bits = value
            best_packing = packing
    if best_packing is None:  # pragma: no cover - the polytope has vertices
        raise BoundError(f"no usable packing vertex for {query.name}")
    return LowerBound(bits=best_bits, packing=best_packing)


def vertex_loads(
    query: ConjunctiveQuery, bits: Mapping[str, float], p: int
) -> list[tuple[Packing, float]]:
    """``(u, L(u, M, p))`` for every vertex in ``pk(q)``.

    Example 3.7's table for the triangle query is exactly this list.  Note
    that :func:`lower_bound` maximizes over *all* polytope vertices, which
    matters only when some ``M_j < M/p`` (see its docstring).
    """
    rows = []
    for packing in non_dominated_packing_vertices(query):
        if packing_value(packing) == 0:
            continue
        rows.append((packing, load(packing, bits, p)))
    return rows


def space_exponent(
    query: ConjunctiveQuery, bits: Mapping[str, float], p: int
) -> float:
    """The statistics-aware space exponent of Section 3.3.

    Writing ``M = max_j M_j`` and ``M_j = M / p^{nu_j}``, the optimal load is
    ``M / p^{v*}`` with ``v* = min_{u in pk(q)} (sum_j nu_j u_j + 1)/sum_j u_j``;
    the space exponent is ``1 - v*``.  Computed directly from
    :func:`lower_bound` as ``1 - log_p(M / L_lower)``.
    """
    m_max = max(bits.values())
    if m_max <= 0:
        raise BoundError("all relations are empty")
    bound = lower_bound(query, bits, p)
    v_star = (math.log2(m_max) - math.log2(bound.bits)) / math.log2(p)
    return 1.0 - v_star


def uniform_lower_bound(query: ConjunctiveQuery, m_bits: float, p: int) -> float:
    """The uniform-cardinality special case ``M / p^{1/tau*}`` from [4]."""
    from .packing import maximum_packing_value

    tau_star = maximum_packing_value(query)
    return m_bits / p ** (1.0 / float(tau_star))


def broadcast_reduction(
    query: ConjunctiveQuery, bits: Mapping[str, float], p: int
) -> tuple[list[str], dict[str, float]]:
    """Apply the paper's broadcast rule: a relation with ``M_j <= M/p`` can be
    broadcast and dropped from the query at a <= 2x load increase
    (Section 3.3).  Returns the dropped atom names and the remaining bits."""
    m_max = max(bits.values())
    dropped = [name for name, value in bits.items() if value <= m_max / p]
    remaining = {name: value for name, value in bits.items() if name not in dropped}
    return dropped, remaining
