"""HyperCube share optimization (Section 3.1, Theorem 3.4).

The HC algorithm expresses ``p = p_1 * ... * p_k`` and writes each share as
``p_i = p^{e_i}``.  The optimal *share exponents* solve the LP (5):

    minimize   lambda
    subject to sum_i e_i <= 1
               for every atom j:  sum_{i in S_j} e_i + lambda >= mu_j
               e_i >= 0, lambda >= 0

with ``mu_j = log_p M_j``; the optimal load is ``L_upper = p^lambda``.  The
dual LP (8) maximizes ``sum_j mu_j f_j - f`` and — through the fractional
transformation ``u_j = f_j / f`` (Lemma 3.8) — connects the optimum to the
edge-packing form of Theorem 3.6.  Both LPs are solved exactly.

Real exponents must then be rounded to integer shares with
``prod_i p_i <= p``; :func:`integer_shares` implements the strategies
ablated in experiment E1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Literal, Mapping

from ..lp.fraction_utils import log_base_fraction
from ..lp.simplex import LPError, maximize
from ..query.atoms import ConjunctiveQuery


class ShareError(ValueError):
    """Raised for unusable statistics (empty relations, bad p)."""


def _mu_vector(
    query: ConjunctiveQuery, bits: Mapping[str, float], p: int
) -> dict[str, Fraction]:
    if p < 2:
        raise ShareError("share optimization needs p >= 2")
    mu: dict[str, Fraction] = {}
    for atom in query.atoms:
        m_bits = bits[atom.name]
        if m_bits <= 0:
            raise ShareError(
                f"relation {atom.name!r} has no bits; drop empty relations "
                "before optimizing shares"
            )
        mu[atom.name] = log_base_fraction(m_bits, float(p))
    return mu


@dataclass(frozen=True)
class ShareExponents:
    """An exact solution of the share LP (5)."""

    query: ConjunctiveQuery
    p: int
    exponents: Mapping[str, Fraction]
    lam: Fraction

    @property
    def load_bits(self) -> float:
        """``L_upper = p^lambda`` in bits (Theorem 3.4)."""
        return float(self.p) ** float(self.lam)

    def share(self, variable: str) -> float:
        """The fractional share ``p^{e_i}``."""
        return float(self.p) ** float(self.exponents[variable])

    def expected_atom_load(self, bits: Mapping[str, float]) -> dict[str, float]:
        """Expected per-server load ``M_j / prod_{i in S_j} p^{e_i}``."""
        loads = {}
        for atom in self.query.atoms:
            denominator = 2.0 ** sum(
                float(self.exponents[v]) * math.log2(self.p)
                for v in atom.variable_set
            )
            loads[atom.name] = bits[atom.name] / denominator
        return loads


def optimal_share_exponents(
    query: ConjunctiveQuery, bits: Mapping[str, float], p: int
) -> ShareExponents:
    """Solve the primal share LP (5) exactly.

    Variables are ``[e_1 .. e_k, lambda]``; we maximize ``-lambda``.
    """
    mu = _mu_vector(query, bits, p)
    k = query.num_variables
    variables = list(query.variables)

    objective = [Fraction(0)] * k + [Fraction(-1)]
    a: list[list[Fraction]] = []
    b: list[Fraction] = []
    # sum_i e_i <= 1
    a.append([Fraction(1)] * k + [Fraction(0)])
    b.append(Fraction(1))
    # -(sum_{i in S_j} e_i) - lambda <= -mu_j
    for atom in query.atoms:
        row = [
            Fraction(-1) if var in atom.variable_set else Fraction(0)
            for var in variables
        ]
        row.append(Fraction(-1))
        a.append(row)
        b.append(-mu[atom.name])

    result = maximize(objective, a, b)
    if not result.is_optimal:  # pragma: no cover - LP (5) is always feasible
        raise LPError(f"share LP for {query.name} returned {result.status}")
    exponents = {var: result.x[i] for i, var in enumerate(variables)}
    return ShareExponents(query=query, p=p, exponents=exponents, lam=result.x[k])


@dataclass(frozen=True)
class DualShareSolution:
    """An exact solution of the dual LP (8)."""

    query: ConjunctiveQuery
    p: int
    f: Mapping[str, Fraction]
    f0: Fraction
    objective: Fraction

    def induced_packing(self) -> dict[str, Fraction] | None:
        """``u_j = f_j / f`` (Lemma 3.8); ``None`` when ``f = 0``."""
        if self.f0 == 0:
            return None
        return {name: value / self.f0 for name, value in self.f.items()}


def dual_share_solution(
    query: ConjunctiveQuery, bits: Mapping[str, float], p: int
) -> DualShareSolution:
    """Solve the dual LP (8) exactly; its optimum equals the primal lambda."""
    mu = _mu_vector(query, bits, p)
    names = [atom.name for atom in query.atoms]
    num_atoms = len(names)

    # Variables [f_1 .. f_l, f]; maximize sum mu_j f_j - f.
    objective = [mu[name] for name in names] + [Fraction(-1)]
    a: list[list[Fraction]] = []
    b: list[Fraction] = []
    a.append([Fraction(1)] * num_atoms + [Fraction(0)])
    b.append(Fraction(1))
    for var in query.variables:
        row = [
            Fraction(1) if var in query.atom(name).variable_set else Fraction(0)
            for name in names
        ]
        row.append(Fraction(-1))
        a.append(row)
        b.append(Fraction(0))

    result = maximize(objective, a, b)
    if not result.is_optimal:  # pragma: no cover - (8) is always feasible
        raise LPError(f"dual share LP for {query.name} returned {result.status}")
    return DualShareSolution(
        query=query,
        p=p,
        f={name: result.x[i] for i, name in enumerate(names)},
        f0=result.x[num_atoms],
        objective=result.objective,
    )


def equal_share_exponents(query: ConjunctiveQuery, p: int) -> ShareExponents:
    """The skew-resilient allocation ``e_i = 1/k`` (Corollary 3.2(ii))."""
    k = query.num_variables
    exponents = {var: Fraction(1, k) for var in query.variables}
    # lambda is not defined by an LP here; report the worst-case exponent
    # max_j (mu_j - sum_{i in S_j} 1/k) lazily as 0 — callers use the
    # exponents only.
    return ShareExponents(query=query, p=p, exponents=exponents, lam=Fraction(0))


def afrati_ullman_share_exponents(
    query: ConjunctiveQuery,
    bits: Mapping[str, float],
    p: int,
    iterations: int = 2000,
) -> ShareExponents:
    """The Afrati-Ullman [2] share optimizer, for comparison.

    [2] minimizes the *total* communication ``sum_j M_j / prod_{i in S_j}
    p_i`` subject to ``prod_i p_i = p`` (solved there with Lagrange
    multipliers); the paper instead minimizes the *maximum* per-server load
    (LP (5)).  In exponent space the [2] objective is

        f(e) = sum_j exp(ln M_j - ln(p) * sum_{i in S_j} e_i),

    convex over the simplex ``sum_i e_i = 1, e_i >= 0`` — we solve it with
    projected gradient descent (ample for these dimensions) and report the
    result in the same :class:`ShareExponents` shape, with ``lam`` set to
    the induced *maximum*-load exponent so the two objectives are directly
    comparable (experiment E1's ablation).
    """
    mu = _mu_vector(query, bits, p)
    variables = list(query.variables)
    k = len(variables)
    ln_p = math.log(p)

    exponents = [1.0 / k] * k

    def gradient(values: list[float]) -> list[float]:
        grad = [0.0] * k
        for atom in query.atoms:
            weight = math.exp(
                math.log(bits[atom.name])
                - ln_p * sum(values[i] for i, v in enumerate(variables)
                             if v in atom.variable_set)
            )
            for i, var in enumerate(variables):
                if var in atom.variable_set:
                    grad[i] -= ln_p * weight
        return grad

    def project_to_simplex(values: list[float]) -> list[float]:
        """Euclidean projection onto {e >= 0, sum e = 1}."""
        ordered = sorted(values, reverse=True)
        cumulative = 0.0
        rho = -1
        for i, value in enumerate(ordered):
            cumulative += value
            if value - (cumulative - 1.0) / (i + 1) > 0:
                rho = i
                running = cumulative
        theta = (running - 1.0) / (rho + 1)
        return [max(0.0, value - theta) for value in values]

    for step_index in range(iterations):
        grad = gradient(exponents)
        norm = math.sqrt(sum(g * g for g in grad)) or 1.0
        step = 0.25 / math.sqrt(1 + step_index)
        exponents = project_to_simplex(
            [e - step * g / norm for e, g in zip(exponents, grad)]
        )

    exact = {
        var: Fraction(exponents[i]).limit_denominator(10**6)
        for i, var in enumerate(variables)
    }
    lam = max(
        mu[atom.name]
        - sum(exact[v] for v in atom.variable_set)
        for atom in query.atoms
    )
    return ShareExponents(query=query, p=p, exponents=exact, lam=max(lam, Fraction(0)))


RoundingStrategy = Literal["floor", "greedy"]


def integer_shares(
    query: ConjunctiveQuery,
    exponents: Mapping[str, Fraction],
    p: int,
    strategy: RoundingStrategy = "greedy",
    bits: Mapping[str, float] | None = None,
) -> dict[str, int]:
    """Round real shares ``p^{e_i}`` down to integers with ``prod p_i <= p``.

    ``floor`` takes ``max(1, floor(p^{e_i}))``.  ``greedy`` then repeatedly
    increments the share that most reduces the estimated maximum per-atom
    load while the product still fits in ``p`` — strictly better, and the
    default.  ``bits`` is required for ``greedy``.
    """
    shares = {
        var: max(1, math.floor(float(p) ** float(exponents[var]) + 1e-9))
        for var in query.variables
    }
    if strategy == "floor":
        return shares
    if strategy != "greedy":
        raise ShareError(f"unknown rounding strategy {strategy!r}")
    if bits is None:
        raise ShareError("greedy rounding needs the bit-size statistics")

    def estimated_max_load(current: Mapping[str, int]) -> float:
        worst = 0.0
        for atom in query.atoms:
            denominator = 1
            for var in atom.variable_set:
                denominator *= current[var]
            worst = max(worst, bits[atom.name] / denominator)
        return worst

    while True:
        product = math.prod(shares.values())
        best_var: str | None = None
        best_load = estimated_max_load(shares)
        for var in query.variables:
            if product // shares[var] * (shares[var] + 1) > p:
                continue
            candidate = dict(shares)
            candidate[var] += 1
            candidate_load = estimated_max_load(candidate)
            if candidate_load < best_load - 1e-12:
                best_load = candidate_load
                best_var = var
        if best_var is None:
            return shares
        shares[best_var] += 1


def equal_integer_shares(query: ConjunctiveQuery, p: int) -> dict[str, int]:
    """``p_i = floor(p^{1/k})`` for every variable."""
    k = query.num_variables
    share = max(1, math.floor(p ** (1.0 / k) + 1e-9))
    return {var: share for var in query.variables}


def shares_product(shares: Mapping[str, int]) -> int:
    return math.prod(shares.values())
