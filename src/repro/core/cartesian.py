"""The grid algorithm for cartesian products (Section 1).

For ``q = S_1 x ... x S_u`` (no shared variables) the servers form a
``p_1 x ... x p_u`` grid with ``prod_j p_j <= p``; each ``S_j``-tuple is
hashed to one coordinate of dimension ``j`` and replicated across the rest.
The optimal dimensions are ``p_j ~ m_j (p / prod_i m_i)^{1/u}``, giving load
``Theta(u (m_1 ... m_u / p)^{1/u})`` — e.g. ``2 sqrt(m_1 m_2 / p)`` for two
relations, which footnote 2 proves optimal.  When some ``m_j`` is tiny
(``m_j < max_i m_i / p``) the rounding naturally degrades to broadcasting it
(``p_j = 1``), mirroring footnote 1.
"""

from __future__ import annotations

import math
from collections import Counter
from itertools import product
from typing import Iterable, Mapping, Sequence

from ..mpc.execution import (
    OneRoundAlgorithm,
    RoutingPlan,
    expand_offsets,
    fold_offset_counts,
)
from ..mpc.hashing import HashFamily
from ..query.atoms import ConjunctiveQuery, QueryError
from ..seq.relation import Database, Tuple
from ..stats.cardinality import SimpleStatistics


def optimal_grid(cardinalities: Mapping[str, int], p: int) -> dict[str, int]:
    """Integer grid dimensions ``p_j`` with ``prod_j p_j <= p``.

    Greedy: starting from the all-ones grid, repeatedly grow the dimension
    whose per-server slice ``m_j / p_j`` is currently largest, while the
    product still fits.  This tracks the real optimum
    ``p_j ~ m_j (p / prod m_i)^{1/u}`` and degrades to ``p_j = 1``
    (broadcast) for relations with ``m_j < max_i m_i / p``, as footnote 1
    prescribes.
    """
    names = list(cardinalities)
    if not names:
        raise QueryError("cartesian grid needs at least one relation")
    dims = {name: 1 for name in names}
    while True:
        prod_dims = math.prod(dims.values())
        candidates = sorted(
            names, key=lambda n: cardinalities[n] / dims[n], reverse=True
        )
        for name in candidates:
            if prod_dims // dims[name] * (dims[name] + 1) <= p:
                dims[name] += 1
                break
        else:
            return dims


class CartesianGridPlan(RoutingPlan):
    """One grid dimension per atom; tuples hash on their full content."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        dims: Mapping[str, int],
        hashes: HashFamily,
    ) -> None:
        self.query = query
        self.dims = dict(dims)
        self.hashes = hashes
        names = [atom.name for atom in query.atoms]
        strides: dict[str, int] = {}
        stride = 1
        for name in reversed(names):
            strides[name] = stride
            stride *= self.dims[name]
        self._strides = strides
        self._names = names
        # Batch-path tables: the replication offsets across the *other*
        # relations' dimensions, enumerated once per relation.
        self._free_offsets: dict[str, tuple[int, ...]] = {}
        for name in names:
            free = [
                (strides[other], self.dims[other])
                for other in names
                if other != name
            ]
            if free:
                self._free_offsets[name] = tuple(
                    sum(stride * coord for (stride, _), coord in zip(free, coords))
                    for coords in product(*(range(size) for _, size in free))
                )
            else:
                self._free_offsets[name] = (0,)

    def destinations(self, relation_name: str, tup: Tuple) -> Iterable[int]:
        # Hash the whole tuple into this atom's dimension.
        mixed = hash(tup) & 0x7FFFFFFF
        base = self._strides[relation_name] * self.hashes.bucket(
            f"grid:{relation_name}", mixed, self.dims[relation_name]
        )
        free = [
            (self._strides[name], self.dims[name])
            for name in self._names
            if name != relation_name
        ]
        if not free:
            return (base,)
        return (
            base + sum(stride * coord for (stride, _), coord in zip(free, coords))
            for coords in product(*(range(size) for _, size in free))
        )

    def _grid_bases(
        self, relation_name: str, tuples: Sequence[Tuple]
    ) -> list[int]:
        """Columnar base resolution through the bulk bucket-table path."""
        stride = self._strides[relation_name]
        dim = self.dims[relation_name]
        mixed = [hash(tup) & 0x7FFFFFFF for tup in tuples]
        table = self.hashes.bucket_table(f"grid:{relation_name}", mixed, dim)
        if stride != 1:
            return [stride * table[value] for value in mixed]
        return [table[value] for value in mixed]

    def destinations_batch(
        self, relation_name: str, tuples: Sequence[Tuple]
    ) -> list[tuple[int, ...]]:
        """Vectorized routing via bulk hashing + precomputed offsets."""
        return expand_offsets(
            self._grid_bases(relation_name, tuples),
            self._free_offsets[relation_name],
        )

    def destination_counts(
        self, relation_name: str, tuples: Sequence[Tuple]
    ) -> Mapping[int, int]:
        """Count receives per server: bases first, offsets folded after."""
        offsets = self._free_offsets[relation_name]
        bases = self._grid_bases(relation_name, tuples)
        return fold_offset_counts(Counter(bases), offsets)

    def describe(self) -> Mapping[str, object]:
        return {"grid": dict(self.dims)}


class CartesianProductAlgorithm(OneRoundAlgorithm):
    """The optimal one-round algorithm for cartesian products."""

    def __init__(self, query: ConjunctiveQuery) -> None:
        super().__init__(query, name="cartesian-grid")
        reason = self.applicability(query)
        if reason is not None:
            raise QueryError(f"{query.name!r} is {reason}")

    @classmethod
    def applicability(cls, query: ConjunctiveQuery) -> str | None:
        seen: dict[str, str] = {}
        for atom in query.atoms:
            for var in atom.variable_set:
                if var in seen:
                    return (
                        f"not a cartesian product: variable {var!r} is "
                        f"shared by {seen[var]} and {atom.name}"
                    )
                seen[var] = atom.name
        return None

    def predicted_load_bits(self, stats: object, p: int) -> float:
        """``sum_j M_j / p_j`` for the optimal integer grid: each
        ``S_j``-tuple reaches a ``1/p_j`` fraction of the grid."""
        simple = self._simple_stats(stats)
        cardinalities = {
            atom.name: max(1, simple.cardinality(atom.name))
            for atom in self.query.atoms
        }
        dims = optimal_grid(cardinalities, p)
        return sum(
            simple.bits(atom.name) / dims[atom.name]
            for atom in self.query.atoms
        )

    def routing_plan(self, db: Database, p: int, hashes: HashFamily) -> RoutingPlan:
        stats = SimpleStatistics.of(db)
        cardinalities = {
            atom.name: max(1, stats.cardinality(atom.name))
            for atom in self.query.atoms
        }
        dims = optimal_grid(cardinalities, p)
        return CartesianGridPlan(self.query, dims, hashes)


def cartesian_lower_bound_bits(
    bits: Mapping[str, float], p: int
) -> float:
    """``(M_1 ... M_u / p)^{1/u}`` — the introduction's lower bound."""
    u = len(bits)
    if u == 0:
        raise QueryError("need at least one relation")
    log_product = sum(math.log2(max(v, 1e-300)) for v in bits.values())
    return 2.0 ** ((log_product - math.log2(p)) / u)
