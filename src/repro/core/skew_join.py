"""The skew-aware join algorithm of Section 4.1.

For ``q(x, y, z) = S1(x, z), S2(y, z)`` (generalized here to any two-atom
query with a nonempty set of shared variables ``J``), the algorithm knows
the heavy hitters of each relation on ``J`` and routes, in a single round:

1. *light* tuples (``J``-value heavy in neither relation) through a plain
   hash join on ``J`` over all ``p`` servers;
2. each ``h in H12`` (heavy in both) through a ``p_1(h) x p_2(h)`` cartesian
   grid with ``p_h ~ p * m_1(h) m_2(h) / sum K12``, the grid split as
   ``p_1 = ceil(sqrt(p_h m_1(h)/m_2(h)))`` (Section 4.1);
3. each ``h in H1`` (heavy only in ``S1``) by hash-partitioning
   ``S1(.., h)`` on its private variables over ``p_h ~ p m_1(h)/sum K1``
   servers while broadcasting the (light) ``S2(.., h)`` tuples to them;
4. symmetrically for ``H2``.

The per-step blocks are carved out of the same ``p`` physical servers
(`repro.mpc.allocation`), which matches the paper's observation that the
total allocation stays ``Theta(p)``.  The achieved load is
``O(L log p)`` for ``L = max(m1/p, m2/p, L1, L2, L12)`` — formula (10) —
exposed by :func:`skew_join_load_bound`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..mpc.allocation import ServerAllocator
from ..mpc.execution import OneRoundAlgorithm, RoutingPlan
from ..mpc.hashing import HashFamily
from ..query.atoms import Atom, ConjunctiveQuery, QueryError
from ..seq.relation import Database, Tuple
from ..stats.provider import StatisticsProvider
from ..stats.heavy_hitters import HeavyHitterStatistics, canonical_subset


def _split_variables(query: ConjunctiveQuery) -> tuple[Atom, Atom, tuple[str, ...]]:
    if query.num_atoms != 2:
        raise QueryError(
            f"the skew-aware join handles exactly two atoms, got {query.num_atoms}"
        )
    first, second = query.atoms
    shared = canonical_subset(first.variable_set & second.variable_set)
    if not shared:
        raise QueryError(
            f"{query.name!r} is a cartesian product; use CartesianProductAlgorithm"
        )
    return first, second, shared


@dataclass(frozen=True)
class _GridBlock:
    """Servers of one doubly-heavy hitter, laid out as a p1 x p2 grid."""

    servers: tuple[int, ...]
    p1: int
    p2: int


@dataclass(frozen=True)
class _PartitionBlock:
    """Servers of a singly-heavy hitter: partition one side, broadcast the
    other."""

    servers: tuple[int, ...]
    partitioned_atom: str


class SkewAwareJoinPlan(RoutingPlan):
    def __init__(
        self,
        query: ConjunctiveQuery,
        stats: StatisticsProvider,
        p: int,
        hashes: HashFamily,
    ) -> None:
        self.query = query
        self.p = p
        self.hashes = hashes
        self.first, self.second, self.join_vars = _split_variables(query)

        h1_map = dict(stats.heavy_hitters(self.first.name, self.join_vars))
        h2_map = dict(stats.heavy_hitters(self.second.name, self.join_vars))
        both = sorted(set(h1_map) & set(h2_map))
        only1 = sorted(set(h1_map) - set(h2_map))
        only2 = sorted(set(h2_map) - set(h1_map))

        allocator = ServerAllocator(p)
        self.grid_blocks: dict[Tuple, _GridBlock] = {}
        if both:
            total = sum(h1_map[h] * h2_map[h] for h in both)
            for h in both:
                weight = h1_map[h] * h2_map[h]
                p_h = max(1, math.ceil(p * weight / total))
                p1 = max(1, math.ceil(math.sqrt(p_h * h1_map[h] / h2_map[h])))
                p2 = max(1, math.ceil(math.sqrt(p_h * h2_map[h] / h1_map[h])))
                servers = allocator.allocate(min(p, p1 * p2))
                # The allocation may clamp; shrink the grid to what we got.
                if p1 * p2 > len(servers):
                    p1 = max(1, min(p1, len(servers)))
                    p2 = max(1, len(servers) // p1)
                    servers = servers[: p1 * p2]
                self.grid_blocks[h] = _GridBlock(servers=servers, p1=p1, p2=p2)

        self.partition_blocks: dict[Tuple, _PartitionBlock] = {}
        for heavy, atom in ((only1, self.first), (only2, self.second)):
            if not heavy:
                continue
            freq = h1_map if atom is self.first else h2_map
            total = sum(freq[h] for h in heavy)
            for h in heavy:
                p_h = max(1, math.ceil(p * freq[h] / total))
                servers = allocator.allocate(p_h)
                self.partition_blocks[h] = _PartitionBlock(
                    servers=servers, partitioned_atom=atom.name
                )

        self.allocator = allocator
        self._join_positions = {
            atom.name: tuple(atom.positions_of(v)[0] for v in self.join_vars)
            for atom in query.atoms
        }
        self._private_positions = {
            atom.name: tuple(
                i
                for i, var in enumerate(atom.variables)
                if var not in set(self.join_vars)
            )
            for atom in query.atoms
        }

    def _join_value(self, relation_name: str, tup: Tuple) -> Tuple:
        return tuple(tup[i] for i in self._join_positions[relation_name])

    def _private_hash(self, relation_name: str, tup: Tuple, buckets: int) -> int:
        if buckets == 1:
            return 0
        positions = self._private_positions[relation_name]
        mixed = 0
        for i in positions:
            mixed = (mixed * 1_000_003 + tup[i] + 1) & 0x7FFFFFFFFFFF
        return self.hashes.bucket(f"skewjoin:{relation_name}", mixed, buckets)

    def destinations(self, relation_name: str, tup: Tuple) -> Iterable[int]:
        h = self._join_value(relation_name, tup)
        grid = self.grid_blocks.get(h)
        if grid is not None:
            row = self._private_hash(relation_name, tup, grid.p1)
            col = self._private_hash(relation_name, tup, grid.p2)
            if relation_name == self.first.name:
                # Fix the row, replicate across columns.
                return tuple(
                    grid.servers[row * grid.p2 + c] for c in range(grid.p2)
                )
            return tuple(grid.servers[r * grid.p2 + col] for r in range(grid.p1))
        block = self.partition_blocks.get(h)
        if block is not None:
            if relation_name == block.partitioned_atom:
                index = self._private_hash(relation_name, tup, len(block.servers))
                return (block.servers[index],)
            return block.servers
        # Light hitter: plain hash join on the shared variables.
        mixed = 0
        for value in h:
            mixed = (mixed * 1_000_003 + value + 1) & 0x7FFFFFFFFFFF
        return (self.hashes.bucket("skewjoin:light", mixed, self.p),)

    def destinations_batch(
        self, relation_name: str, tuples: Sequence[Tuple]
    ) -> list[tuple[int, ...]]:
        """Vectorized routing: memoize per join value, skip unused hashes.

        Heavy hitters are few, so almost every tuple takes the light path;
        its destination depends only on the tuple's join value, which a
        local memo collapses to one hash per distinct value.  Grid tuples
        compute only the private hash their side actually uses (the scalar
        path computes both row and column).
        """
        join_positions = self._join_positions[relation_name]
        grid_blocks = self.grid_blocks
        partition_blocks = self.partition_blocks
        is_first = relation_name == self.first.name
        private_hash = self._private_hash
        light_memo: dict[Tuple, tuple[int, ...]] = {}
        out: list[tuple[int, ...]] = []
        for tup in tuples:
            h = tuple(tup[i] for i in join_positions)
            if grid_blocks:
                grid = grid_blocks.get(h)
                if grid is not None:
                    if is_first:
                        row = private_hash(relation_name, tup, grid.p1)
                        out.append(tuple(
                            grid.servers[row * grid.p2 + c]
                            for c in range(grid.p2)
                        ))
                    else:
                        col = private_hash(relation_name, tup, grid.p2)
                        out.append(tuple(
                            grid.servers[r * grid.p2 + col]
                            for r in range(grid.p1)
                        ))
                    continue
            if partition_blocks:
                block = partition_blocks.get(h)
                if block is not None:
                    if relation_name == block.partitioned_atom:
                        index = private_hash(
                            relation_name, tup, len(block.servers)
                        )
                        out.append((block.servers[index],))
                    else:
                        out.append(block.servers)
                    continue
            dests = light_memo.get(h)
            if dests is None:
                mixed = 0
                for value in h:
                    mixed = (mixed * 1_000_003 + value + 1) & 0x7FFFFFFFFFFF
                dests = (self.hashes.bucket("skewjoin:light", mixed, self.p),)
                light_memo[h] = dests
            out.append(dests)
        return out

    def describe(self) -> Mapping[str, object]:
        return {
            "join_vars": self.join_vars,
            "h12": len(self.grid_blocks),
            "h1_h2": len(self.partition_blocks),
            "overcommit": self.allocator.overcommit,
        }

    def explain(self) -> str:
        """A human-readable plan summary (one line per heavy hitter)."""
        lines = [
            f"skew-aware join on {', '.join(self.join_vars)} over p={self.p}",
            f"  light hitters: hash join across all {self.p} servers",
        ]
        for h, grid in sorted(self.grid_blocks.items()):
            lines.append(
                f"  H12 {h}: {grid.p1}x{grid.p2} cartesian grid "
                f"on {len(grid.servers)} servers"
            )
        for h, block in sorted(self.partition_blocks.items()):
            lines.append(
                f"  H1/H2 {h}: partition {block.partitioned_atom} over "
                f"{len(block.servers)} servers, broadcast the other side"
            )
        lines.append(
            f"  total allocation: {self.allocator.total_allocated} servers "
            f"({self.allocator.overcommit:.2f}x the pool)"
        )
        return "\n".join(lines)


class SkewAwareJoin(OneRoundAlgorithm):
    """The Section 4.1 algorithm.  Statistics are extracted from the data
    (modeling the statistics pass) unless supplied explicitly."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        stats: StatisticsProvider | None = None,
    ) -> None:
        super().__init__(query, name="skew-join")
        _split_variables(query)  # validate shape early
        self._stats = stats

    @classmethod
    def applicability(cls, query: ConjunctiveQuery) -> str | None:
        try:
            _split_variables(query)
        except QueryError as exc:
            return str(exc)
        return None

    def predicted_load_bits(self, stats: object, p: int) -> float:
        """Formula (10) as a per-server expectation.

        The light path is a hash join over all ``p`` servers, receiving the
        light mass of both relations: ``(M_1 + M_2) / p`` on skew-free data.
        With heavy-hitter statistics the dedicated blocks add the paper's
        ``L_1``, ``L_2`` and ``L_12`` terms (the blocks live on disjoint
        servers, but a prediction must cover whichever block is busiest,
        so the terms are summed for a safe-side estimate).
        """
        simple = self._simple_stats(stats)
        first, second, _ = _split_variables(self.query)
        light = (simple.bits(first.name) + simple.bits(second.name)) / p
        hh = self._heavy_stats(stats, p) or self._heavy_stats(self._stats, p)
        if hh is None:
            return light
        components = skew_join_load_bound(hh, self.query, in_bits=True)
        return light + components["L1"] + components["L2"] + components["L12"]

    def routing_plan(
        self, db: Database, p: int, hashes: HashFamily
    ) -> SkewAwareJoinPlan:
        stats = self._stats
        if stats is None or stats.p != p:
            stats = HeavyHitterStatistics.of(self.query, db, p)
        return SkewAwareJoinPlan(self.query, stats, p, hashes)


def skew_join_load_bound(
    stats: StatisticsProvider,
    query: ConjunctiveQuery,
    in_bits: bool = True,
) -> dict[str, float]:
    """Formula (10): ``L = max(m1/p, m2/p, L1, L2, L12)``.

    Returns every component so experiments can show which regime dominates.
    ``L1``/``L2`` (``sqrt(sum_{h in Hj} m_j(h) / p)``) are dominated by
    ``m_j/p`` whenever ``m_j >= p``; they matter only for tiny relations.
    When ``in_bits``, tuple counts are scaled by each relation's tuple size.
    """
    first, second, join_vars = _split_variables(query)
    p = stats.p
    m1 = stats.simple.cardinality(first.name)
    m2 = stats.simple.cardinality(second.name)

    h1_map = dict(stats.heavy_hitters(first.name, join_vars))
    h2_map = dict(stats.heavy_hitters(second.name, join_vars))
    both = set(h1_map) & set(h2_map)
    only1 = set(h1_map) - both
    only2 = set(h2_map) - both

    l12 = math.sqrt(sum(h1_map[h] * h2_map[h] for h in both) / p) if both else 0.0
    l1 = math.sqrt(sum(h1_map[h] for h in only1) / p) if only1 else 0.0
    l2 = math.sqrt(sum(h2_map[h] for h in only2) / p) if only2 else 0.0

    def scale(atom_name: str) -> float:
        if not in_bits:
            return 1.0
        from ..seq.relation import bits_per_value

        arity = stats.simple.arity(atom_name)
        return arity * bits_per_value(stats.simple.domain_size)

    s1, s2 = scale(first.name), scale(second.name)
    cross = math.sqrt(s1 * s2)
    components = {
        "m1_over_p": m1 / p * s1,
        "m2_over_p": m2 / p * s2,
        "L1": l1 * s1,
        "L2": l2 * s2,
        "L12": l12 * cross,
    }
    components["bound"] = max(components.values())
    return components
