"""Residual-query lower bounds for skewed data (Section 4.3, Theorem 4.7).

Fix a variable set ``x`` with degree statistics ``M`` of type ``x``.  For a
fractional edge packing ``u`` of the residual query ``q_x`` that *saturates*
``x``, any one-round algorithm needs load

    L_x(u, M, p) = ( sum_{h in [n]^d}  prod_j M_j(h_j)^{u_j}  /  p )^{1/u}

(Eq. 12).  Atoms with ``u_j = 0`` contribute factor 1 regardless of
``M_j(h_j)`` (the ``0^0`` convention); atoms untouched by ``x`` contribute
the constant ``M_j^{u_j}``.  The inner sum is evaluated as a weighted join
over the supports of the positively-weighted frequency maps — saturation
guarantees those atoms cover all of ``x``, so the sum is finite and cheap.

For ``x = emptyset`` the bound degenerates to Theorem 3.5's ``L(u, M, p)``.
Example 4.8: the join gets ``sqrt(sum_h m1(h) m2(h) / p)`` via ``x = {z}``;
the triangle gets ``sqrt(sum_h m1(h) m3(h) / p)`` via ``x = {x1}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations as subset_combinations
from typing import AbstractSet, Iterable, Mapping, Sequence

from ..lp.polytope import (
    HalfSpace,
    enumerate_vertices,
    non_dominated,
    nonnegativity_constraints,
)
from ..query.atoms import ConjunctiveQuery
from ..query.residual import residual_query
from ..seq.relation import Database
from ..stats.degrees import DegreeStatistics
from .packing import Packing


def saturating_packing_vertices(
    query: ConjunctiveQuery, variables: AbstractSet[str]
) -> list[Packing]:
    """Vertices of the *saturated residual polytope*: fractional edge
    packings of ``q_x`` that saturate every variable of ``x``.

    Constraints: per remaining variable ``sum u_j <= 1`` (over residual
    atoms); per removed variable ``sum_{j: x_i in vars(S_j)} u_j >= 1``
    (membership in the *original* atoms); ``0 <= u_j``; and ``u_j <= 1``
    for atoms swallowed whole by ``x`` (implied for the rest, and required
    by the Friedgut step of the proof).
    """
    removed = frozenset(variables)
    residual = residual_query(query, removed)
    num_atoms = query.num_atoms

    constraints: list[HalfSpace] = []
    for var in residual.remaining:
        row = [
            Fraction(1) if var in atom.variable_set else Fraction(0)
            for atom in residual.query.atoms
        ]
        constraints.append(HalfSpace(tuple(row), Fraction(1)))
    for var in removed:
        row = [
            Fraction(-1) if var in atom.variable_set else Fraction(0)
            for atom in query.atoms
        ]
        constraints.append(HalfSpace(tuple(row), Fraction(-1)))
    for idx, atom in enumerate(residual.query.atoms):
        if not atom.variable_set:
            row = [Fraction(0)] * num_atoms
            row[idx] = Fraction(1)
            constraints.append(HalfSpace(tuple(row), Fraction(1)))
    constraints.extend(nonnegativity_constraints(num_atoms))

    vertices = enumerate_vertices(constraints, num_atoms)
    names = [atom.name for atom in query.atoms]
    return [
        {name: value for name, value in zip(names, vertex)}
        for vertex in non_dominated(vertices)
    ]


def _weighted_support_sum(
    factors: Sequence[tuple[tuple[str, ...], Mapping[tuple[int, ...], float]]],
) -> float:
    """``sum over joint assignments of prod factor weights``.

    ``factors`` are (variables, table) pairs; tables map value tuples
    (aligned with the variables) to nonnegative weights.  Dynamic
    programming over partial assignments keyed by the shared variables.
    """
    if not factors:
        return 1.0
    bound_vars: tuple[str, ...] = ()
    partials: dict[tuple[int, ...], float] = {(): 1.0}
    for variables, table in factors:
        shared = [v for v in variables if v in bound_vars]
        new = [v for v in variables if v not in bound_vars]
        shared_slots = [bound_vars.index(v) for v in shared]
        shared_in_factor = [variables.index(v) for v in shared]
        new_in_factor = [variables.index(v) for v in new]

        # Index the factor by its shared-variable values.
        index: dict[tuple[int, ...], list[tuple[tuple[int, ...], float]]] = {}
        for values, weight in table.items():
            key = tuple(values[i] for i in shared_in_factor)
            extension = tuple(values[i] for i in new_in_factor)
            index.setdefault(key, []).append((extension, weight))

        merged: dict[tuple[int, ...], float] = {}
        for partial, weight in partials.items():
            key = tuple(partial[s] for s in shared_slots)
            for extension, factor_weight in index.get(key, ()):  # noqa: B020
                new_key = partial + extension
                merged[new_key] = merged.get(new_key, 0.0) + weight * factor_weight
        partials = merged
        bound_vars = bound_vars + tuple(new)
        if not partials:
            return 0.0
    return sum(partials.values())


def residual_load(
    query: ConjunctiveQuery,
    stats: DegreeStatistics,
    packing: Mapping[str, object],
    p: int,
) -> float:
    """``L_x(u, M, p)`` of Eq. 12 for a concrete saturating packing."""
    u_total = 0.0
    constant = 0.0  # log2 of the x-independent factor
    factors: list[tuple[tuple[str, ...], dict[tuple[int, ...], float]]] = []
    for atom in query.atoms:
        u_j = float(Fraction(packing.get(atom.name, 0)))  # type: ignore[arg-type]
        u_total += u_j
        if u_j == 0:
            continue
        subset = stats.subset_of(atom.name)
        if not subset:
            bits = stats.bits(atom.name, ())
            if bits <= 0:
                return 0.0
            constant += u_j * math.log2(bits)
            continue
        table = {
            assignment: stats.bits(atom.name, assignment) ** u_j
            for assignment, freq in stats.frequency_maps[atom.name].items()
            if freq > 0
        }
        factors.append((subset, table))
    if u_total == 0:
        raise ValueError("packing must have positive total weight")
    inner = _weighted_support_sum(factors)
    if inner <= 0:
        return 0.0
    log_sum = math.log2(inner) + constant
    return 2.0 ** ((log_sum - math.log2(p)) / u_total)


@dataclass(frozen=True)
class ResidualBound:
    """The best residual bound found, with its witnesses."""

    bits: float
    variables: frozenset[str]
    packing: Packing


def residual_lower_bound(
    query: ConjunctiveQuery, stats: DegreeStatistics, p: int
) -> ResidualBound | None:
    """``max_u L_x(u, M, p)`` over saturating packing vertices for the
    ``x`` fixed by ``stats``; ``None`` when no packing saturates ``x``."""
    best: ResidualBound | None = None
    for packing in saturating_packing_vertices(query, stats.variables):
        value = residual_load(query, stats, packing, p)
        if best is None or value > best.bits:
            best = ResidualBound(
                bits=value, variables=stats.variables, packing=packing
            )
    return best


def _candidate_variable_sets(
    query: ConjunctiveQuery, max_size: int | None
) -> Iterable[frozenset[str]]:
    variables = query.variables
    limit = len(variables) if max_size is None else min(max_size, len(variables))
    for size in range(1, limit + 1):
        for combo in subset_combinations(variables, size):
            yield frozenset(combo)


def best_residual_lower_bound(
    query: ConjunctiveQuery,
    db: Database,
    p: int,
    candidate_sets: Iterable[AbstractSet[str]] | None = None,
    max_set_size: int | None = None,
) -> tuple[ResidualBound | None, dict[frozenset[str], float]]:
    """Maximize the Theorem 4.7 bound over candidate sets ``x``.

    Returns the best bound plus the per-``x`` values (for experiment E8's
    breakdown).  ``x = emptyset`` (the Theorem 3.5 bound) is *not* included;
    combine with `repro.core.bounds.lower_bound` for the full picture.
    """
    if candidate_sets is None:
        candidates = list(_candidate_variable_sets(query, max_set_size))
    else:
        candidates = [frozenset(s) for s in candidate_sets]
    best: ResidualBound | None = None
    breakdown: dict[frozenset[str], float] = {}
    for variables in candidates:
        stats = DegreeStatistics.of(query, db, variables)
        bound = residual_lower_bound(query, stats, p)
        if bound is None:
            continue
        breakdown[variables] = bound.bits
        if best is None or bound.bits > best.bits:
            best = bound
    return best, breakdown
