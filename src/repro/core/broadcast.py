"""The broadcast rule (Section 3.3 and footnote 1).

A relation with ``M_j <= M/p`` can be shipped whole to every server at a
load increase of at most ``M/p`` — no more than doubling the cost of any
algorithm — after which it disappears from the share optimization.  This
wrapper applies the rule, optimizes HyperCube shares for the *reduced*
query, and broadcasts the small relations across the reduced grid.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..mpc.execution import OneRoundAlgorithm, RoutingPlan
from ..mpc.hashing import HashFamily
from ..query.atoms import Atom, ConjunctiveQuery
from ..seq.relation import Database, Tuple
from ..stats.cardinality import SimpleStatistics
from .bounds import broadcast_reduction
from .hypercube import HyperCubeAlgorithm, HyperCubePlan
from .shares import shares_product


def reduced_query(query: ConjunctiveQuery, dropped: Iterable[str]) -> ConjunctiveQuery:
    """The query restricted to the atoms not broadcast.

    Its head is recomputed from the surviving atoms (it stays full).
    """
    dropped_set = set(dropped)
    atoms = [atom for atom in query.atoms if atom.name not in dropped_set]
    if not atoms:
        # Degenerate: everything was tiny.  Keep the largest atom so the
        # grid is well-defined; callers never hit this on sensible inputs.
        atoms = [max(query.atoms, key=lambda a: a.arity)]
        dropped_set.discard(atoms[0].name)
    kept_vars = []
    seen: set[str] = set()
    for atom in atoms:
        for var in atom.variables:
            if var not in seen:
                seen.add(var)
                kept_vars.append(var)
    return ConjunctiveQuery(atoms, head=tuple(kept_vars), name=f"{query.name}_bc")


class _BroadcastPlan(RoutingPlan):
    def __init__(
        self,
        inner: HyperCubePlan,
        dropped: frozenset[str],
        grid_size: int,
    ) -> None:
        self.inner = inner
        self.dropped = dropped
        self.grid_size = grid_size

    def destinations(self, relation_name: str, tup: Tuple) -> Iterable[int]:
        if relation_name in self.dropped:
            return range(self.grid_size)
        return self.inner.destinations(relation_name, tup)

    def destinations_batch(
        self, relation_name: str, tuples: Sequence[Tuple]
    ) -> list[tuple[int, ...]]:
        """Broadcast atoms share one grid-wide destination tuple; the rest
        delegate to the inner HyperCube batch path."""
        if relation_name in self.dropped:
            everywhere = tuple(range(self.grid_size))
            return [everywhere] * len(tuples)
        return self.inner.destinations_batch(relation_name, tuples)

    def destination_counts(
        self, relation_name: str, tuples: Sequence[Tuple]
    ) -> Mapping[int, int]:
        if relation_name in self.dropped:
            return dict.fromkeys(range(self.grid_size), len(tuples))
        return self.inner.destination_counts(relation_name, tuples)

    def describe(self) -> Mapping[str, object]:
        description = dict(self.inner.describe())
        description["broadcast"] = sorted(self.dropped)
        return description


class BroadcastHyperCube(OneRoundAlgorithm):
    """HyperCube plus the small-relation broadcast rule."""

    def __init__(self, query: ConjunctiveQuery) -> None:
        super().__init__(query, name="hypercube-broadcast")

    def predicted_load_bits(self, stats: object, p: int) -> float:
        """Broadcast relations cost their full ``M_j`` per server; the
        survivors cost whatever the reduced-query HyperCube predicts."""
        simple = self._simple_stats(stats)
        bits = simple.bits_vector(self.query)
        if p < 2 or all(value <= 0 for value in bits.values()):
            return sum(bits.values())
        dropped, _remaining = broadcast_reduction(self.query, bits, p)
        reduced = reduced_query(self.query, dropped)
        dropped_names = [
            atom.name
            for atom in self.query.atoms
            if not reduced.has_atom(atom.name)
        ]
        inner = HyperCubeAlgorithm.with_optimal_shares(reduced, simple, p)
        return sum(bits[name] for name in dropped_names) + inner.predicted_load_bits(
            stats, p
        )

    def routing_plan(self, db: Database, p: int, hashes: HashFamily) -> RoutingPlan:
        stats = SimpleStatistics.of(db)
        bits = stats.bits_vector(self.query)
        if p < 2 or all(value <= 0 for value in bits.values()):
            # One server or an empty database: a trivial all-ones grid.
            trivial = HyperCubePlan(
                self.query, {var: 1 for var in self.query.variables}, hashes
            )
            return _BroadcastPlan(inner=trivial, dropped=frozenset(), grid_size=1)
        dropped, _remaining = broadcast_reduction(self.query, bits, p)
        reduced = reduced_query(self.query, dropped)
        dropped_set = frozenset(
            atom.name for atom in self.query.atoms if not reduced.has_atom(atom.name)
        )
        inner_algorithm = HyperCubeAlgorithm.with_optimal_shares(reduced, stats, p)
        inner_plan = inner_algorithm.routing_plan(db, p, hashes)
        return _BroadcastPlan(
            inner=inner_plan,
            dropped=dropped_set,
            grid_size=shares_product(inner_algorithm.shares),
        )
