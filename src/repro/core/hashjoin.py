"""The classic parallel hash join, as a one-round MPC baseline.

Hash-partitioning on a set of join variables is exactly HyperCube with the
entire server budget spent on those variables (share 1 everywhere else):
atoms missing a partition variable get replicated along its dimension, and
atoms containing all of them land on a single server.  On skew-free data
this achieves the ideal ``O(m/p)``; on skewed data it collapses to ``Omega(m)``
(Example 3.3) — the failure mode the paper's skew-aware algorithms repair.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..query.atoms import ConjunctiveQuery, QueryError
from .hypercube import HyperCubeAlgorithm


def default_partition_variables(query: ConjunctiveQuery) -> tuple[str, ...]:
    """Variables occurring in *every* atom — the natural hash-join keys."""
    common = set(query.variables)
    for atom in query.atoms:
        common &= atom.variable_set
    return tuple(v for v in query.variables if v in common)


class HashJoinAlgorithm(HyperCubeAlgorithm):
    """Hash-partition the query on ``partition_variables`` across ``p``.

    The server budget is split evenly (``p^(1/|X|)`` per key) when several
    partition variables are given.

    Applicability is declared by :meth:`applicability` (the registry way);
    constructing the algorithm on an inapplicable query still raises
    :class:`~repro.query.atoms.QueryError` for backwards compatibility, but
    probing the constructor for applicability is deprecated.
    """

    @classmethod
    def applicability(cls, query: ConjunctiveQuery) -> str | None:
        if not default_partition_variables(query):
            return (
                "no variable occurs in every atom, so there is no default "
                "hash-partition key"
            )
        return None

    def __init__(
        self,
        query: ConjunctiveQuery,
        p: int,
        partition_variables: Sequence[str] | None = None,
    ) -> None:
        if partition_variables is None:
            partition_variables = default_partition_variables(query)
        if not partition_variables:
            raise QueryError(
                f"query {query.name!r} has no variable common to all atoms; "
                "pass partition_variables explicitly"
            )
        unknown = [v for v in partition_variables if not query.has_variable(v)]
        if unknown:
            raise QueryError(f"unknown partition variables {unknown}")

        shares = {var: 1 for var in query.variables}
        per_key = max(1, math.floor(p ** (1.0 / len(partition_variables)) + 1e-9))
        for var in partition_variables:
            shares[var] = per_key
        super().__init__(query, shares, name="hashjoin")
        self.partition_variables = tuple(partition_variables)
