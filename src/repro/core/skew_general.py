"""The general skew-aware algorithm (Section 4.2, Appendix D).

One HyperCube instance per *bin combination* ``B = (x, (beta_j)_j)``:

1. Heavy hitters of every (relation, variable-subset) pair are split into
   ``O(log p)`` frequency bins (`repro.stats.bins`).
2. The sets ``C'(B)`` of handled assignments are built inductively: an
   assignment joins ``C'(B)`` when it extends some ``h' in C'(B')`` (for a
   bin combination ``B'`` on a strictly smaller variable set) by a heavy
   hitter that is *overweight* for ``B'`` — i.e. has more than
   ``Nbc * m_j / p^(beta'_j + sum e_i^(B'))`` consistent tuples.
3. Every ``B`` gets share exponents from the LP (11)

       minimize lambda
       s.t.     lambda + sum_{x_i in vars(S_j) - x_j} e_i >= mu_j - beta_j
                sum_{i in V - x} e_i <= 1 - alpha,   alpha = log_p |C'(B)|

   and ``p`` (virtual) servers: ``p^(1-alpha)`` per assignment ``h``, each
   block running HyperCube on the residual variables ``V - x``.
4. A tuple of ``S_j`` participates in ``B`` for the assignments it extends,
   unless it contains an overweight-for-``B`` proper extension — in which
   case a finer bin combination owns it (Lemma 4.5 guarantees every answer
   is produced by some ``B``).

All bin combinations share the same ``p`` physical servers; their loads add,
which costs the ``polylog(p)`` factor of Theorem 4.6.  The theoretical load
``max_B p^(lambda(B))`` is exposed via :meth:`BinHyperCubePlan.describe`.

``Nbc`` is the paper's bin-combination count; we expose it as a knob
(default 1.0).  Smaller values make more hitters overweight — more dedicated
handling, better balance — while correctness holds for any value because the
overweight chains always terminate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping

from ..lp.fraction_utils import log_base_fraction
from ..lp.simplex import LPError, maximize
from ..mpc.execution import OneRoundAlgorithm, RoutingPlan
from ..mpc.hashing import HashFamily
from ..query.atoms import ConjunctiveQuery
from ..query.residual import residual_query
from ..seq.relation import Database, Tuple
from ..stats.bins import BinCombination, combination_for_assignment
from ..stats.provider import StatisticsProvider
from ..stats.heavy_hitters import (
    HeavyHitterStatistics,
    VarSubset,
    canonical_subset,
)
from .hypercube import HyperCubePlan
from .shares import integer_shares

# An assignment to a variable set, canonically sorted by variable name.
Assg = tuple[tuple[str, int], ...]


def _proper_supersets(atom_vars: VarSubset, xj: VarSubset) -> list[VarSubset]:
    """Canonical subsets of ``atom_vars`` strictly containing ``xj``."""
    extra = [v for v in atom_vars if v not in set(xj)]
    out: list[VarSubset] = []
    for mask in range(1, 1 << len(extra)):
        added = [extra[i] for i in range(len(extra)) if mask & (1 << i)]
        out.append(canonical_subset(set(xj) | set(added)))
    return out


@dataclass(frozen=True)
class BinLP:
    """Solution of the LP (11) for one bin combination."""

    lam: Fraction
    exponents: Mapping[str, Fraction]  # for the variables of V - x

    def load_bits(self, p: int) -> float:
        return float(p) ** float(self.lam)


def solve_bin_lp(
    query: ConjunctiveQuery,
    combo: BinCombination,
    alpha: Fraction,
    bits: Mapping[str, float],
    p: int,
) -> BinLP:
    """Solve (11) exactly.  Variables are ``[e_i for i in V - x] + [lambda]``."""
    remaining = [v for v in query.variables if v not in combo.variables]
    if p < 2:
        # A single server: every share is 1 and the load is the whole input.
        return BinLP(
            lam=Fraction(0),
            exponents={var: Fraction(0) for var in remaining},
        )
    index = {var: i for i, var in enumerate(remaining)}
    n = len(remaining)

    objective = [Fraction(0)] * n + [Fraction(-1)]
    a: list[list[Fraction]] = []
    b: list[Fraction] = []
    # sum_{i in V - x} e_i <= 1 - alpha
    a.append([Fraction(1)] * n + [Fraction(0)])
    b.append(Fraction(1) - alpha)
    for atom in query.atoms:
        if bits[atom.name] <= 0:
            continue  # empty relations impose no constraint
        mu = log_base_fraction(bits[atom.name], float(p))
        beta = combo.beta(atom.name)
        row = [Fraction(0)] * (n + 1)
        for var in atom.variable_set:
            if var in index:
                row[index[var]] = Fraction(-1)
        row[n] = Fraction(-1)
        a.append(row)
        b.append(-(mu - beta))

    result = maximize(objective, a, b)
    if not result.is_optimal:  # pragma: no cover - (11) is always feasible
        raise LPError(f"bin LP for {combo.describe()} returned {result.status}")
    return BinLP(
        lam=result.x[n],
        exponents={var: result.x[index[var]] for var in remaining},
    )


def build_cprime(
    query: ConjunctiveQuery,
    stats: StatisticsProvider,
    p: int,
    bits: Mapping[str, float],
    nbc: float = 1.0,
) -> tuple[dict[BinCombination, frozenset[Assg]], dict[BinCombination, BinLP]]:
    """The inductive construction of ``C'(B)`` (Appendix D) plus per-``B``
    LP solutions, processed level by level on ``|x|``."""
    combos: dict[BinCombination, set[Assg]] = {BinCombination.empty(): {()}}
    lps: dict[BinCombination, BinLP] = {}

    for level in range(query.num_variables + 1):
        current = [
            combo for combo in list(combos) if len(combo.variables) == level
        ]
        for combo in sorted(current, key=lambda c: repr(c)):
            members = combos[combo]
            alpha = (
                Fraction(0)
                if len(members) <= 1 or p < 2
                else min(
                    Fraction(1),
                    log_base_fraction(float(len(members)), float(p)),
                )
            )
            lp = solve_bin_lp(query, combo, alpha, bits, p)
            lps[combo] = lp
            _generate_extensions(
                query, stats, p, nbc, combo, members, lp, combos
            )
    return (
        {combo: frozenset(members) for combo, members in combos.items()},
        lps,
    )


def _generate_extensions(
    query: ConjunctiveQuery,
    stats: StatisticsProvider,
    p: int,
    nbc: float,
    combo: BinCombination,
    members: set[Assg],
    lp: BinLP,
    combos: dict[BinCombination, set[Assg]],
) -> None:
    """Push overweight extensions of ``C'(combo)`` into finer combinations."""
    for atom in query.atoms:
        m_j = stats.simple.cardinality(atom.name)
        if m_j == 0:
            continue
        atom_vars = canonical_subset(atom.variables)
        xj_prime = combo.atom_subset(query, atom.name)
        beta_prime = combo.beta(atom.name)
        for xj in _proper_supersets(atom_vars, xj_prime):
            heavy = stats.heavy_hitters(atom.name, xj)
            if not heavy:
                continue
            new_vars = [v for v in xj if v not in set(xj_prime)]
            exponent = float(beta_prime) + sum(
                float(lp.exponents[v]) for v in new_vars
            )
            threshold = nbc * m_j / (float(p) ** exponent)
            for h_prime in members:
                h_dict = dict(h_prime)
                for hj, freq in heavy.items():
                    if freq <= threshold:
                        continue
                    values = dict(zip(xj, hj))
                    # hj must agree with h' on the previously bound subset.
                    if any(
                        var in h_dict and h_dict[var] != value
                        for var, value in values.items()
                    ):
                        continue
                    merged = dict(h_dict)
                    merged.update(values)
                    target = combination_for_assignment(query, stats, merged)
                    combos.setdefault(target, set()).add(
                        tuple(sorted(merged.items()))
                    )


@dataclass
class _CombinationPlan:
    """Everything needed to route tuples for one bin combination."""

    combo: BinCombination
    lp: BinLP
    assignments: tuple[Assg, ...]
    inner: HyperCubePlan
    kept_positions: Mapping[str, tuple[int, ...]]
    # Per atom with x_j nonempty: projection positions and the index from
    # projected values to assignment slots.
    heavy_index: Mapping[str, Mapping[Tuple, tuple[int, ...]]]
    heavy_positions: Mapping[str, tuple[int, ...]]
    # Overweight filter: per atom, (projection positions, subset, threshold).
    filters: Mapping[str, tuple[tuple[tuple[int, ...], VarSubset, float], ...]]
    stats: StatisticsProvider
    p: int

    def _block(self, slot: int) -> tuple[int, int]:
        """(start, size) of the server block of assignment ``slot``."""
        count = len(self.assignments)
        if count <= self.p:
            start = slot * self.p // count
            end = (slot + 1) * self.p // count
            return start, max(1, end - start)
        return slot % self.p, 1

    def destinations_for(self, relation_name: str, tup: Tuple) -> Iterable[int]:
        for positions, subset, threshold in self.filters.get(relation_name, ()):
            projected = tuple(tup[i] for i in positions)
            freq = self.stats.frequency(relation_name, subset, projected)
            if freq is not None and freq > threshold:
                return ()
        positions = self.heavy_positions.get(relation_name)
        if positions is not None:
            projected = tuple(tup[i] for i in positions)
            slots = self.heavy_index[relation_name].get(projected, ())
        else:
            slots = range(len(self.assignments))
        if not slots:
            return ()
        residual_tuple = tuple(
            tup[i] for i in self.kept_positions[relation_name]
        )
        inner = tuple(self.inner.destinations(relation_name, residual_tuple))
        out: list[int] = []
        for slot in slots:
            start, size = self._block(slot)
            for d in inner:
                if d < size:
                    out.append(start + d)
        return out


class BinHyperCubePlan(RoutingPlan):
    def __init__(
        self,
        query: ConjunctiveQuery,
        stats: StatisticsProvider,
        p: int,
        hashes: HashFamily,
        nbc: float = 1.0,
    ) -> None:
        self.query = query
        self.stats = stats
        self.p = p
        self._nbc = nbc
        bits = {
            atom.name: stats.simple.bits(atom.name) for atom in query.atoms
        }
        combos, lps = build_cprime(query, stats, p, bits, nbc=nbc)
        self.combo_plans: list[_CombinationPlan] = []
        for combo_id, (combo, members) in enumerate(sorted(
            combos.items(), key=lambda item: repr(item[0])
        )):
            if not members:
                continue
            plan = self._build_combination_plan(
                combo_id, combo, members, lps[combo], bits, hashes
            )
            self.combo_plans.append(plan)

    def _build_combination_plan(
        self,
        combo_id: int,
        combo: BinCombination,
        members: frozenset[Assg],
        lp: BinLP,
        bits: Mapping[str, float],
        hashes: HashFamily,
    ) -> _CombinationPlan:
        assignments = tuple(sorted(members))
        count = len(assignments)
        min_block = max(1, self.p // count) if count <= self.p else 1

        residual = residual_query(self.query, combo.variables)
        residual_bits = {
            atom.name: max(
                1.0, bits[atom.name] / float(self.p) ** float(combo.beta(atom.name))
            )
            for atom in self.query.atoms
        }
        shares = integer_shares(
            residual.query,
            lp.exponents,
            min_block,
            strategy="greedy",
            bits=residual_bits,
        )
        inner = HyperCubePlan(
            residual.query,
            shares,
            hashes,
            salt_prefix=f"bin{combo_id}",
        )

        kept_positions = {
            atom.name: residual.kept_positions(atom.name)
            for atom in self.query.atoms
        }

        heavy_index: dict[str, dict[Tuple, tuple[int, ...]]] = {}
        heavy_positions: dict[str, tuple[int, ...]] = {}
        for atom in self.query.atoms:
            xj = combo.atom_subset(self.query, atom.name)
            if not xj:
                continue
            heavy_positions[atom.name] = tuple(
                atom.positions_of(var)[0] for var in xj
            )
            index: dict[Tuple, list[int]] = {}
            for slot, assignment in enumerate(assignments):
                h_dict = dict(assignment)
                projected = tuple(h_dict[var] for var in xj)
                index.setdefault(projected, []).append(slot)
            heavy_index[atom.name] = {
                key: tuple(slots) for key, slots in index.items()
            }

        filters: dict[str, tuple[tuple[tuple[int, ...], VarSubset, float], ...]] = {}
        for atom in self.query.atoms:
            m_j = self.stats.simple.cardinality(atom.name)
            if m_j == 0:
                continue
            xj = combo.atom_subset(self.query, atom.name)
            beta = combo.beta(atom.name)
            rows = []
            for superset in _proper_supersets(
                canonical_subset(atom.variables), xj
            ):
                new_vars = [v for v in superset if v not in set(xj)]
                exponent = float(beta) + sum(
                    float(lp.exponents[v]) for v in new_vars
                )
                threshold = self._nbc * m_j / (float(self.p) ** exponent)
                positions = tuple(atom.positions_of(var)[0] for var in superset)
                rows.append((positions, superset, threshold))
            filters[atom.name] = tuple(rows)

        return _CombinationPlan(
            combo=combo,
            lp=lp,
            assignments=assignments,
            inner=inner,
            kept_positions=kept_positions,
            heavy_index=heavy_index,
            heavy_positions=heavy_positions,
            filters=filters,
            stats=self.stats,
            p=self.p,
        )

    def destinations(self, relation_name: str, tup: Tuple) -> Iterable[int]:
        out: set[int] = set()
        for plan in self.combo_plans:
            out.update(plan.destinations_for(relation_name, tup))
        return out

    def theoretical_load_bits(self) -> float:
        """``max_B p^(lambda(B))`` — the Theorem 4.6 target (sans polylog)."""
        return max(plan.lp.load_bits(self.p) for plan in self.combo_plans)

    def describe(self) -> Mapping[str, object]:
        return {
            "bin_combinations": len(self.combo_plans),
            "assignments": sum(len(c.assignments) for c in self.combo_plans),
            "theoretical_load_bits": self.theoretical_load_bits(),
        }

    def explain(self) -> str:
        """A human-readable summary: one line per bin combination."""
        lines = [
            f"bin-hypercube over p={self.p} "
            f"({len(self.combo_plans)} bin combinations)"
        ]
        for plan in self.combo_plans:
            shares = plan.inner.shares
            lines.append(
                f"  {plan.combo.describe()}: {len(plan.assignments)} "
                f"assignment(s), residual shares {shares}, "
                f"p^lambda = {plan.lp.load_bits(self.p):,.0f} bits"
            )
        lines.append(
            f"  predicted load max_B p^lambda(B) = "
            f"{self.theoretical_load_bits():,.0f} bits"
        )
        return "\n".join(lines)


class BinHyperCubeAlgorithm(OneRoundAlgorithm):
    """Theorem 4.6's algorithm: per-bin-combination HyperCube."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        stats: StatisticsProvider | None = None,
        nbc: float = 1.0,
    ) -> None:
        super().__init__(query, name="bin-hypercube")
        self._stats = stats
        self.nbc = nbc

    def predicted_load_bits(self, stats: object, p: int) -> float:
        """Theorem 4.6's target: per-combination loads add (all
        combinations share the same ``p`` physical servers).

        The empty combination *is* HyperCube with LP-optimal integer
        shares, so it is costed by that algorithm's own skew-free
        expectation (heavy values it would collapse on are owned by finer
        combinations instead).  With heavy-hitter statistics the real
        ``C'(B)`` construction runs and each populated non-empty
        combination contributes its LP target ``p^lambda(B)``; with simple
        statistics only the empty combination exists.
        """
        from .hypercube import HyperCubeAlgorithm

        simple = self._simple_stats(stats)
        bits = simple.bits_vector(self.query)
        if p < 2 or all(value <= 0 for value in bits.values()):
            return sum(bits.values())
        base = HyperCubeAlgorithm.with_optimal_shares(
            self.query, simple, p
        ).predicted_load_bits(simple, p)
        hh = self._heavy_stats(stats, p) or self._heavy_stats(self._stats, p)
        if hh is None:
            return base
        combos, lps = build_cprime(self.query, hh, p, bits, nbc=self.nbc)
        return base + sum(
            lps[combo].load_bits(p)
            for combo, members in combos.items()
            if members and combo.variables
        )

    def routing_plan(
        self, db: Database, p: int, hashes: HashFamily
    ) -> BinHyperCubePlan:
        stats = self._stats
        if stats is None or stats.p != p:
            stats = HeavyHitterStatistics.of(self.query, db, p)
        return BinHyperCubePlan(self.query, stats, p, hashes, nbc=self.nbc)
