"""The counting side of the lower bound (Theorem 3.5(1), Lemmas A.1/4.9).

On a random database with cardinality statistics ``m`` (each ``S_j`` uniform
among the size-``m_j`` subsets of ``[n]^{a_j}``):

* ``E[|q(I)|] = n^{k-a} prod_j m_j`` (Lemma A.1);
* a server receiving ``L`` bits reports at most
  ``(L / (c L(u, M, p)))^u  E[|q(I)|]`` answers in expectation for every
  edge packing ``u`` — so ``p`` load-capped servers can only cover a
  vanishing fraction when ``L << L_lower``.

Experiment E2 measures this empirically with a load-capped executor.
"""

from __future__ import annotations

import math
from typing import Mapping

from ..query.atoms import ConjunctiveQuery
from ..seq.join import expected_answer_count
from ..seq.relation import bits_per_value
from .bounds import load as load_formula
from .packing import packing_value, packing_vertices

__all__ = [
    "expected_answer_count",
    "reported_fraction_bound",
    "per_packing_fraction_bounds",
    "lower_bound_constant",
]


def lower_bound_constant(query: ConjunctiveQuery, delta: float = 0.5) -> float:
    """The constant ``c = min_j (a_j - delta) / (3 a_j)`` of Theorem 3.5.

    ``delta`` is the density exponent bound ``m_j <= n^delta``; the paper
    fixes some ``0 < delta < min_j a_j``.
    """
    return min((atom.arity - delta) / (3 * atom.arity) for atom in query.atoms)


def per_packing_fraction_bounds(
    query: ConjunctiveQuery,
    bits: Mapping[str, float],
    p: int,
    load_bits: float,
    c: float = 1.0,
) -> dict[str, float]:
    """``(L / (c L(u,M,p)))^u`` for every vertex of the packing polytope.

    Every packing yields a valid bound (Theorem 3.5), so scanning all
    vertices gives the tightest one.  Keys are human-readable packing
    descriptions; values are capped at 1.
    """
    out: dict[str, float] = {}
    for packing in packing_vertices(query):
        u = packing_value(packing)
        if u == 0:
            continue
        target = load_formula(packing, bits, p)
        ratio = load_bits / (c * target)
        fraction = min(1.0, p * ratio ** float(u)) if ratio > 0 else 0.0
        label = ",".join(
            f"{name}={value}" for name, value in sorted(packing.items())
        )
        out[label] = fraction
    return out


def reported_fraction_bound(
    query: ConjunctiveQuery,
    bits: Mapping[str, float],
    p: int,
    load_bits: float,
    c: float = 1.0,
) -> float:
    """The tightest fraction bound over all packing vertices.

    This is the Theorem 3.5 statement summed over the ``p`` servers:
    at most ``p (L/(c L(u,M,p)))^u`` of the expected answers are reported.
    """
    bounds = per_packing_fraction_bounds(query, bits, p, load_bits, c)
    return min(bounds.values(), default=1.0)


def expected_answers_for_db_stats(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    domain_size: int,
) -> float:
    """Alias of Lemma A.1 with explicit arguments."""
    return expected_answer_count(query, dict(cardinalities), domain_size)


def bits_of_cardinalities(
    query: ConjunctiveQuery,
    cardinalities: Mapping[str, int],
    domain_size: int,
) -> dict[str, float]:
    """``M_j = a_j m_j log2 n`` from tuple counts — convenience for bounds."""
    per_value = bits_per_value(domain_size)
    return {
        atom.name: atom.arity * cardinalities[atom.name] * per_value
        for atom in query.atoms
    }


def answers_per_server_bound(
    query: ConjunctiveQuery,
    bits: Mapping[str, float],
    p: int,
    load_bits: float,
    cardinalities: Mapping[str, int],
    domain_size: int,
    c: float = 1.0,
) -> float:
    """Expected number of answers ``p`` capped servers can report, i.e.
    ``min_u p (L/(cL))^u * E[|q(I)|]`` — the absolute version of the bound."""
    fraction = reported_fraction_bound(query, bits, p, load_bits, c)
    expected = expected_answer_count(query, dict(cardinalities), domain_size)
    return fraction * expected


def log_p(value: float, p: int) -> float:
    """Convenience ``log_p`` used when reporting exponents in experiments."""
    return math.log(value) / math.log(p)
