"""The HyperCube (HC) algorithm (Section 3.1).

Servers are arranged in a ``k``-dimensional grid with ``p_i`` *shares* per
variable, ``prod_i p_i <= p``.  Each tuple of ``S_j`` knows its coordinates
on the dimensions of its own variables (by hashing) and is replicated along
every other dimension.  Every potential answer ``(a_1, ..., a_k)`` is then
seen in full by the unique server ``(h_1(a_1), ..., h_k(a_k))``, so HC is
always *correct*; the choice of shares only affects the load:

* LP-optimal shares: load ``O(L_upper polylog p)`` on skew-free data
  (Theorem 3.4) — :meth:`HyperCubeAlgorithm.with_optimal_shares`.
* equal shares ``p^{1/k}``: load ``O(max_j M_j / p^{1/k})`` on *any* data —
  the skew-resilience of Corollary 3.2(ii) —
  :meth:`HyperCubeAlgorithm.with_equal_shares`.
"""

from __future__ import annotations

import math
from collections import Counter
from itertools import product
from typing import Iterable, Mapping, Sequence

from ..mpc.execution import (
    OneRoundAlgorithm,
    RoutingPlan,
    expand_offsets,
    fold_offset_counts,
)
from ..mpc.hashing import HashFamily
from ..query.atoms import ConjunctiveQuery
from ..seq.relation import Database, Tuple
from ..stats.cardinality import SimpleStatistics
from .shares import (
    RoundingStrategy,
    ShareError,
    equal_integer_shares,
    integer_shares,
    optimal_share_exponents,
    shares_product,
)


class HyperCubePlan(RoutingPlan):
    """Routing for a fixed share vector.

    The server grid is linearized in mixed radix over the query's variable
    order; dimension ``i`` has stride ``prod_{i' > i} p_{i'}``.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        shares: Mapping[str, int],
        hashes: HashFamily,
        salt_prefix: str = "hc",
    ) -> None:
        self.query = query
        self.shares = dict(shares)
        self.hashes = hashes
        self.salt_prefix = salt_prefix

        variables = list(query.variables)
        strides: dict[str, int] = {}
        stride = 1
        for var in reversed(variables):
            strides[var] = stride
            stride *= self.shares[var]

        # Per-atom routing recipe: positions fixing coordinates, and the
        # (stride, share) pairs of the free dimensions to replicate along.
        self._recipes: dict[str, tuple[list[tuple[str, int, int]], list[tuple[int, int]]]] = {}
        for atom in query.atoms:
            fixed = [
                (var, atom.positions_of(var)[0], strides[var])
                for var in variables
                if var in atom.variable_set
            ]
            free = [
                (strides[var], self.shares[var])
                for var in variables
                if var not in atom.variable_set
            ]
            self._recipes[atom.name] = (fixed, free)

        # Batch-path tables: the replication offsets of each atom's free
        # dimensions, enumerated once (the scalar path re-derives them per
        # tuple via itertools.product).
        self._free_offsets: dict[str, tuple[int, ...]] = {}
        for atom in query.atoms:
            _fixed, free = self._recipes[atom.name]
            if free:
                self._free_offsets[atom.name] = tuple(
                    sum(
                        stride * coord
                        for (stride, _), coord in zip(free, coords)
                    )
                    for coords in product(*(range(share) for _, share in free))
                )
            else:
                self._free_offsets[atom.name] = (0,)

    def destinations(self, relation_name: str, tup: Tuple) -> Iterable[int]:
        fixed, free = self._recipes[relation_name]
        base = 0
        for var, position, stride in fixed:
            share = self.shares[var]
            base += stride * self.hashes.bucket(
                f"{self.salt_prefix}:{var}", tup[position], share
            )
        if not free:
            return (base,)
        return (
            base + sum(stride * coord for stride, coord in zip(
                (s for s, _ in free), coords
            ))
            for coords in product(*(range(share) for _, share in free))
        )

    def destinations_batch(
        self, relation_name: str, tuples: Sequence[Tuple]
    ) -> list[tuple[int, ...]]:
        """Vectorized routing: columnar bucket tables + offset tables.

        Instead of routing tuple by tuple, each fixed dimension is resolved
        for the whole batch at once: extract the column, hash its *distinct*
        values through :meth:`HashFamily.bucket_table`, map the column
        through the table, and fold the strided coordinates into per-tuple
        grid bases with C-level comprehensions.  Replication across the free
        dimensions reuses the offsets enumerated at plan construction.
        """
        offsets = self._free_offsets[relation_name]
        bases = self._grid_bases(relation_name, tuples)
        if bases is None:
            everywhere = tuple(offsets)
            return [everywhere] * len(tuples)
        return expand_offsets(bases, offsets)

    def destination_counts(
        self, relation_name: str, tuples: Sequence[Tuple]
    ) -> Mapping[int, int]:
        """Count receives per server without per-tuple destination lists.

        There are at most ``prod_{i in S_j} p_i <= p`` distinct grid bases,
        so counting bases first (C-speed) and folding the replication
        offsets afterwards turns the accounting into ``O(m + p^2)`` instead
        of ``O(m * replication)`` Python-level work.
        """
        offsets = self._free_offsets[relation_name]
        bases = self._grid_bases(relation_name, tuples)
        if bases is None:
            return dict.fromkeys(offsets, len(tuples))
        return fold_offset_counts(Counter(bases), offsets)

    def _grid_bases(
        self, relation_name: str, tuples: Sequence[Tuple]
    ) -> list[int] | None:
        """Columnar fixed-dimension resolution: one grid base per tuple.

        Returns None for an atom with no fixed dimensions (every tuple sits
        at base 0 and replicates across all offsets).
        """
        fixed, _free = self._recipes[relation_name]
        if not fixed:
            return None
        bases: list[int] | None = None
        for var, position, stride in fixed:
            column = [tup[position] for tup in tuples]
            table = self.hashes.bucket_table(
                f"{self.salt_prefix}:{var}", column, self.shares[var]
            )
            if stride != 1:
                contribution = [stride * table[value] for value in column]
            else:
                contribution = [table[value] for value in column]
            if bases is None:
                bases = contribution
            else:
                bases = [b + c for b, c in zip(bases, contribution)]
        return bases

    def describe(self) -> Mapping[str, object]:
        return {
            "shares": dict(self.shares),
            "grid_size": shares_product(self.shares),
        }


class HyperCubeAlgorithm(OneRoundAlgorithm):
    """HC with an explicit integer share vector."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        shares: Mapping[str, int],
        name: str = "hypercube",
    ) -> None:
        super().__init__(query, name)
        missing = [v for v in query.variables if v not in shares]
        if missing:
            raise ShareError(f"missing shares for variables {missing}")
        bad = [v for v, s in shares.items() if s < 1]
        if bad:
            raise ShareError(f"shares must be >= 1, got {bad}")
        self.shares = {var: int(shares[var]) for var in query.variables}

    @classmethod
    def with_optimal_shares(
        cls,
        query: ConjunctiveQuery,
        stats: SimpleStatistics,
        p: int,
        strategy: RoundingStrategy = "greedy",
    ) -> "HyperCubeAlgorithm":
        """Shares from the exact LP (5), rounded to integers (Theorem 3.4)."""
        bits = stats.bits_vector(query)
        if p < 2 or all(value <= 0 for value in bits.values()):
            # Degenerate: one server, or an empty database — shares of 1
            # everywhere are trivially optimal.
            return cls(
                query, {var: 1 for var in query.variables}, name="hypercube-lp"
            )
        exponents = optimal_share_exponents(query, bits, p)
        shares = integer_shares(
            query, exponents.exponents, p, strategy=strategy, bits=bits
        )
        return cls(query, shares, name="hypercube-lp")

    @classmethod
    def with_equal_shares(cls, query: ConjunctiveQuery, p: int) -> "HyperCubeAlgorithm":
        """The skew-resilient ``p_i = p^{1/k}`` allocation."""
        return cls(query, equal_integer_shares(query, p), name="hypercube-equal")

    def routing_plan(
        self, db: Database, p: int, hashes: HashFamily
    ) -> HyperCubePlan:
        grid = shares_product(self.shares)
        if grid > p:
            raise ShareError(
                f"share product {grid} exceeds the {p} available servers"
            )
        return HyperCubePlan(self.query, self.shares, hashes)

    def predicted_load_bits(self, stats: object, p: int) -> float:
        """Expected busiest-server load for this share vector, in bits.

        Per atom the skew-free expectation is ``M_j / prod_{i in S_j} p_i``
        (each tuple lands on ``prod_{i not in S_j} p_i`` of the
        ``prod_i p_i`` grid cells).  With heavy-hitter statistics the
        per-atom estimate is raised to the hash-forced mass of the worst
        single-variable hitter: all ``m_j(h)`` tuples sharing value ``h``
        at variable ``v`` collide on one coordinate of dimension ``v``, so
        some server receives at least ``m_j(h) / prod_{i in S_j - v} p_i``
        of them (Example 3.3's collapse, quantified).  Per-server loads
        sum over atoms, matching ``ExecutionResult.max_load_bits``.
        """
        simple = self._simple_stats(stats)
        heavy = self._heavy_stats(stats, p)
        heavy_of = None if heavy is None else heavy.heavy_hitters
        total = 0.0
        for atom in self.query.atoms:
            bits = simple.bits(atom.name)
            if bits <= 0:
                continue
            grid = math.prod(self.shares[var] for var in atom.variable_set)
            per_atom = bits / grid
            cardinality = simple.cardinality(atom.name)
            if heavy_of is not None and cardinality:
                tuple_bits = bits / cardinality
                for var in atom.variable_set:
                    hitters = heavy_of(atom.name, (var,))
                    if not hitters:
                        continue
                    forced = (
                        max(hitters.values()) * tuple_bits
                        * self.shares[var] / grid
                    )
                    per_atom = max(per_atom, forced)
            total += per_atom
        return total

    def expected_max_load_bits(self, stats: SimpleStatistics) -> float:
        """``max_j M_j / prod_{i in S_j} p_i`` — the skew-free expectation."""
        bits = stats.bits_vector(self.query)
        worst = 0.0
        for atom in self.query.atoms:
            denominator = math.prod(
                self.shares[var] for var in atom.variable_set
            )
            worst = max(worst, bits[atom.name] / denominator)
        return worst

    def worst_case_load_bits(self, stats: SimpleStatistics) -> float:
        """Corollary 3.2(ii): ``max_j M_j / min_{i in S_j} p_i`` on any data."""
        bits = stats.bits_vector(self.query)
        worst = 0.0
        for atom in self.query.atoms:
            denominator = min(
                (self.shares[var] for var in atom.variable_set), default=1
            )
            worst = max(worst, bits[atom.name] / denominator)
        return worst
