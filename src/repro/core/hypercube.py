"""The HyperCube (HC) algorithm (Section 3.1).

Servers are arranged in a ``k``-dimensional grid with ``p_i`` *shares* per
variable, ``prod_i p_i <= p``.  Each tuple of ``S_j`` knows its coordinates
on the dimensions of its own variables (by hashing) and is replicated along
every other dimension.  Every potential answer ``(a_1, ..., a_k)`` is then
seen in full by the unique server ``(h_1(a_1), ..., h_k(a_k))``, so HC is
always *correct*; the choice of shares only affects the load:

* LP-optimal shares: load ``O(L_upper polylog p)`` on skew-free data
  (Theorem 3.4) — :meth:`HyperCubeAlgorithm.with_optimal_shares`.
* equal shares ``p^{1/k}``: load ``O(max_j M_j / p^{1/k})`` on *any* data —
  the skew-resilience of Corollary 3.2(ii) —
  :meth:`HyperCubeAlgorithm.with_equal_shares`.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Iterable, Mapping

from ..mpc.execution import OneRoundAlgorithm, RoutingPlan
from ..mpc.hashing import HashFamily
from ..query.atoms import ConjunctiveQuery
from ..seq.relation import Database, Tuple
from ..stats.cardinality import SimpleStatistics
from .shares import (
    RoundingStrategy,
    ShareError,
    equal_integer_shares,
    integer_shares,
    optimal_share_exponents,
    shares_product,
)


class HyperCubePlan(RoutingPlan):
    """Routing for a fixed share vector.

    The server grid is linearized in mixed radix over the query's variable
    order; dimension ``i`` has stride ``prod_{i' > i} p_{i'}``.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        shares: Mapping[str, int],
        hashes: HashFamily,
        salt_prefix: str = "hc",
    ) -> None:
        self.query = query
        self.shares = dict(shares)
        self.hashes = hashes
        self.salt_prefix = salt_prefix

        variables = list(query.variables)
        strides: dict[str, int] = {}
        stride = 1
        for var in reversed(variables):
            strides[var] = stride
            stride *= self.shares[var]

        # Per-atom routing recipe: positions fixing coordinates, and the
        # (stride, share) pairs of the free dimensions to replicate along.
        self._recipes: dict[str, tuple[list[tuple[str, int, int]], list[tuple[int, int]]]] = {}
        for atom in query.atoms:
            fixed = [
                (var, atom.positions_of(var)[0], strides[var])
                for var in variables
                if var in atom.variable_set
            ]
            free = [
                (strides[var], self.shares[var])
                for var in variables
                if var not in atom.variable_set
            ]
            self._recipes[atom.name] = (fixed, free)

    def destinations(self, relation_name: str, tup: Tuple) -> Iterable[int]:
        fixed, free = self._recipes[relation_name]
        base = 0
        for var, position, stride in fixed:
            share = self.shares[var]
            base += stride * self.hashes.bucket(
                f"{self.salt_prefix}:{var}", tup[position], share
            )
        if not free:
            return (base,)
        return (
            base + sum(stride * coord for stride, coord in zip(
                (s for s, _ in free), coords
            ))
            for coords in product(*(range(share) for _, share in free))
        )

    def describe(self) -> Mapping[str, object]:
        return {
            "shares": dict(self.shares),
            "grid_size": shares_product(self.shares),
        }


class HyperCubeAlgorithm(OneRoundAlgorithm):
    """HC with an explicit integer share vector."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        shares: Mapping[str, int],
        name: str = "hypercube",
    ) -> None:
        super().__init__(query, name)
        missing = [v for v in query.variables if v not in shares]
        if missing:
            raise ShareError(f"missing shares for variables {missing}")
        bad = [v for v, s in shares.items() if s < 1]
        if bad:
            raise ShareError(f"shares must be >= 1, got {bad}")
        self.shares = {var: int(shares[var]) for var in query.variables}

    @classmethod
    def with_optimal_shares(
        cls,
        query: ConjunctiveQuery,
        stats: SimpleStatistics,
        p: int,
        strategy: RoundingStrategy = "greedy",
    ) -> "HyperCubeAlgorithm":
        """Shares from the exact LP (5), rounded to integers (Theorem 3.4)."""
        bits = stats.bits_vector(query)
        if p < 2 or all(value <= 0 for value in bits.values()):
            # Degenerate: one server, or an empty database — shares of 1
            # everywhere are trivially optimal.
            return cls(
                query, {var: 1 for var in query.variables}, name="hypercube-lp"
            )
        exponents = optimal_share_exponents(query, bits, p)
        shares = integer_shares(
            query, exponents.exponents, p, strategy=strategy, bits=bits
        )
        return cls(query, shares, name="hypercube-lp")

    @classmethod
    def with_equal_shares(cls, query: ConjunctiveQuery, p: int) -> "HyperCubeAlgorithm":
        """The skew-resilient ``p_i = p^{1/k}`` allocation."""
        return cls(query, equal_integer_shares(query, p), name="hypercube-equal")

    def routing_plan(
        self, db: Database, p: int, hashes: HashFamily
    ) -> HyperCubePlan:
        grid = shares_product(self.shares)
        if grid > p:
            raise ShareError(
                f"share product {grid} exceeds the {p} available servers"
            )
        return HyperCubePlan(self.query, self.shares, hashes)

    def expected_max_load_bits(self, stats: SimpleStatistics) -> float:
        """``max_j M_j / prod_{i in S_j} p_i`` — the skew-free expectation."""
        bits = stats.bits_vector(self.query)
        worst = 0.0
        for atom in self.query.atoms:
            denominator = math.prod(
                self.shares[var] for var in atom.variable_set
            )
            worst = max(worst, bits[atom.name] / denominator)
        return worst

    def worst_case_load_bits(self, stats: SimpleStatistics) -> float:
        """Corollary 3.2(ii): ``max_j M_j / min_{i in S_j} p_i`` on any data."""
        bits = stats.bits_vector(self.query)
        worst = 0.0
        for atom in self.query.atoms:
            denominator = min(
                (self.shares[var] for var in atom.variable_set), default=1
            )
            worst = max(worst, bits[atom.name] / denominator)
        return worst
