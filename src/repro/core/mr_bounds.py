"""Replication-rate bounds for the MapReduce model (Section 5, Theorem 5.1).

With reducers capped at ``L`` bits and input size ``|I| = sum_j M_j``, any
algorithm computing ``q`` satisfies, for every fractional edge packing ``u``:

    r >= c^u * K(u, M) / (L^{u-1} * sum_j M_j)
      =  (c^u * L / sum_j M_j) * prod_j (M_j / L)^{u_j}

For equal binary sizes and the triangle query this specializes to
``r = Omega(sqrt(M/L))``, recovering Afrati et al. [1], and the reducer
count must be at least ``(r |I|) / L = Omega((M/L)^{3/2})`` (Example 5.2).
The bound is matched by HyperCube run as a map phase (`repro.mr`).
"""

from __future__ import annotations

import math
from typing import Mapping

from ..query.atoms import ConjunctiveQuery
from .bounds import log2_K
from .packing import Packing, packing_value, packing_vertices


def replication_rate_bound_for_packing(
    packing: Packing,
    bits: Mapping[str, float],
    reducer_bits: float,
    c: float = 1.0,
) -> float:
    """The Theorem 5.1 bound for one packing ``u`` (``c = 1`` reports the
    shape without the model constant)."""
    u = float(packing_value(packing))
    if u <= 0:
        return 0.0
    total_bits = sum(bits.values())
    log_value = (
        u * math.log2(c)
        + log2_K(packing, bits)
        - (u - 1.0) * math.log2(reducer_bits)
        - math.log2(total_bits)
    )
    return 2.0**log_value


def replication_rate_lower_bound(
    query: ConjunctiveQuery,
    bits: Mapping[str, float],
    reducer_bits: float,
    c: float = 1.0,
) -> tuple[float, Packing]:
    """``max_u`` of the per-packing bound over ``pk(q)``.

    Relations with ``M_j < L`` can be shipped whole to any reducer
    (footnote 5), so packings are still legal; the maximization handles the
    trade-off automatically.
    """
    best_value = 0.0
    best_packing: Packing = {}
    for packing in packing_vertices(query):
        if packing_value(packing) == 0:
            continue
        value = replication_rate_bound_for_packing(
            packing, bits, reducer_bits, c
        )
        if value > best_value:
            best_value = value
            best_packing = packing
    return best_value, best_packing


def minimum_reducers(
    replication_rate: float, input_bits: float, reducer_bits: float
) -> float:
    """``p >= r |I| / L`` — any algorithm with rate ``r`` needs this many
    reducers (Section 5)."""
    return replication_rate * input_bits / reducer_bits


def triangle_replication_shape(m_bits: float, reducer_bits: float) -> float:
    """Example 5.2's closed form ``sqrt(M / L)`` for equal-size triangles."""
    return math.sqrt(m_bits / reducer_bits)
