"""Friedgut's inequality and the AGM output-size bound (Section 2.3).

For a query ``q`` with fractional edge cover ``u`` and nonnegative weights
``w_j`` on the atoms' value combinations:

    sum_{a in [n]^k} prod_j w_j(a_j)
        <=  prod_j ( sum_{a_j} w_j(a_j)^(1/u_j) )^(u_j)        (Eq. 3)

Setting 0/1 weights from relation membership recovers the AGM bound
``|q(I)| <= prod_j |S_j|^(u_j)``; e.g. ``|C3| <= sqrt(m1 m2 m3)``.

The left side is a weighted join: only assignments inside the join of the
weight supports contribute, so we evaluate it with the sequential join
machinery rather than iterating over ``[n]^k``.
"""

from __future__ import annotations

import math
from typing import Mapping

from ..query.atoms import ConjunctiveQuery, QueryError
from ..seq.join import iterate_answers
from ..seq.relation import Database, Relation, Tuple
from .packing import is_edge_cover, minimum_edge_cover

Weights = Mapping[str, Mapping[Tuple, float]]


def _validate_weights(query: ConjunctiveQuery, weights: Weights) -> None:
    for atom in query.atoms:
        table = weights.get(atom.name)
        if table is None:
            raise QueryError(f"missing weights for atom {atom.name!r}")
        for key, value in table.items():
            if len(key) != atom.arity:
                raise QueryError(
                    f"weight key {key} has length {len(key)}, expected "
                    f"arity {atom.arity} of {atom.name}"
                )
            if value < 0:
                raise QueryError(
                    f"negative weight {value!r} for {atom.name}{key}"
                )


def friedgut_lhs(query: ConjunctiveQuery, weights: Weights) -> float:
    """``sum_a prod_j w_j(a_j)`` via a weighted join over the supports."""
    _validate_weights(query, weights)
    supports = {
        atom.name: frozenset(
            key for key, value in weights[atom.name].items() if value > 0
        )
        for atom in query.atoms
    }
    domain = 1
    for support in supports.values():
        for t in support:
            if t:
                domain = max(domain, 1 + max(t))
    db = Database.from_relations(
        Relation(
            name=atom.name,
            arity=atom.arity,
            tuples=supports[atom.name],
            domain_size=domain,
        )
        for atom in query.atoms
    )
    # Answers come back in head order; project onto each atom's positions.
    head_index = {var: i for i, var in enumerate(query.head)}
    atom_slots = {
        atom.name: tuple(head_index[var] for var in atom.variables)
        for atom in query.atoms
    }
    total = 0.0
    for answer in iterate_answers(query, db):
        product = 1.0
        for atom in query.atoms:
            key = tuple(answer[s] for s in atom_slots[atom.name])
            product *= weights[atom.name][key]
        total += product
    return total


def friedgut_rhs(
    query: ConjunctiveQuery, cover: Mapping[str, object], weights: Weights
) -> float:
    """``prod_j (sum w_j^(1/u_j))^(u_j)``.

    Atoms with ``u_j = 0`` contribute their maximum weight — the
    ``u_j -> 0`` limit of the norm, matching the paper's limiting argument
    in Appendix A.
    """
    _validate_weights(query, weights)
    if not is_edge_cover(query, cover):  # Friedgut needs a cover
        raise QueryError("friedgut_rhs requires a fractional edge cover")
    result = 1.0
    for atom in query.atoms:
        u_j = float(cover.get(atom.name, 0))  # type: ignore[arg-type]
        table = weights[atom.name]
        if u_j == 0:
            factor = max(table.values(), default=0.0)
        else:
            factor = sum(value ** (1.0 / u_j) for value in table.values()) ** u_j
        result *= factor
    return result


def friedgut_gap(
    query: ConjunctiveQuery, cover: Mapping[str, object], weights: Weights
) -> tuple[float, float]:
    """(lhs, rhs) of Eq. 3 — tests assert ``lhs <= rhs (1 + eps)``."""
    return friedgut_lhs(query, weights), friedgut_rhs(query, cover, weights)


def agm_bound(
    query: ConjunctiveQuery, cardinalities: Mapping[str, int]
) -> float:
    """``min_u prod_j m_j^(u_j)`` over fractional edge covers ``u``.

    The Grohe-Marx / AGM bound on ``|q(I)|`` the paper derives from
    Friedgut's inequality.
    """
    if any(cardinalities[atom.name] == 0 for atom in query.atoms):
        return 0.0
    costs = {
        atom.name: math.log2(cardinalities[atom.name])
        if cardinalities[atom.name] > 1
        else 0.0
        for atom in query.atoms
    }
    cover = minimum_edge_cover(query, costs)
    exponent = sum(
        float(cover[atom.name]) * costs[atom.name] for atom in query.atoms
    )
    return 2.0**exponent


def check_agm(query: ConjunctiveQuery, db: Database) -> tuple[int, float]:
    """(actual answer count, AGM bound) for a concrete instance."""
    from ..seq.join import count_answers

    actual = count_answers(query, db)
    bound = agm_bound(
        query, {atom.name: db.relation(atom.name).cardinality for atom in query.atoms}
    )
    return actual, bound
