"""Relation and database containers.

A :class:`Relation` is a named set of tuples over the integer domain
``[0, n)``.  The paper measures communication in *bits*: a relation ``S_j``
with ``m_j`` tuples of arity ``a_j`` over a domain of size ``n`` occupies
``M_j = a_j * m_j * log n`` bits (Section 3).  We mirror that accounting:
:attr:`Relation.tuple_bits` is ``a_j * log2(n)`` and :attr:`Relation.bits`
is ``m_j`` times that.  ``log2`` is used as a real number so the simulator's
load accounting agrees exactly with the bound formulas; the degenerate
``n = 1`` domain is clamped to one bit per value.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

Tuple = tuple[int, ...]


class RelationError(ValueError):
    """Raised for malformed relations or databases."""


def bits_per_value(domain_size: int) -> float:
    """Bits to represent one value from a domain of size ``domain_size``."""
    if domain_size < 1:
        raise RelationError("domain size must be >= 1")
    return max(1.0, math.log2(domain_size))


@dataclass(frozen=True)
class Relation:
    """An instance of one relation symbol.

    Parameters
    ----------
    name:
        Relation symbol, e.g. ``"S1"``.
    arity:
        Number of columns; every tuple must have this length.
    tuples:
        The tuples, deduplicated on construction (set semantics).
    domain_size:
        The size ``n`` of the per-attribute domain ``[0, n)``.  Values must
        lie in range.
    """

    name: str
    arity: int
    tuples: frozenset[Tuple]
    domain_size: int

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise RelationError(f"relation {self.name!r}: negative arity")
        if self.domain_size < 1:
            raise RelationError(f"relation {self.name!r}: domain size must be >= 1")
        for t in self.tuples:
            if len(t) != self.arity:
                raise RelationError(
                    f"relation {self.name!r}: tuple {t} has length {len(t)}, "
                    f"expected arity {self.arity}"
                )
            for value in t:
                if not 0 <= value < self.domain_size:
                    raise RelationError(
                        f"relation {self.name!r}: value {value} outside domain "
                        f"[0, {self.domain_size})"
                    )

    @classmethod
    def build(
        cls,
        name: str,
        tuples: Iterable[Sequence[int]],
        arity: int | None = None,
        domain_size: int | None = None,
    ) -> "Relation":
        """Build a relation, inferring arity and domain size if omitted."""
        frozen = frozenset(tuple(t) for t in tuples)
        if arity is None:
            if not frozen:
                raise RelationError(
                    f"relation {name!r}: arity required for an empty relation"
                )
            arity = len(next(iter(frozen)))
        if domain_size is None:
            largest = max((max(t) for t in frozen if t), default=0)
            domain_size = largest + 1
        return cls(name=name, arity=arity, tuples=frozen, domain_size=domain_size)

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        """Number of tuples (``m_j``)."""
        return len(self.tuples)

    @property
    def tuple_bits(self) -> float:
        """Bits per tuple: ``a_j * log2(n)``."""
        return self.arity * bits_per_value(self.domain_size)

    @property
    def bits(self) -> float:
        """Total size in bits (``M_j = a_j * m_j * log2 n``)."""
        return self.cardinality * self.tuple_bits

    # ------------------------------------------------------------------
    # relational operations
    # ------------------------------------------------------------------
    def project(self, positions: Sequence[int], name: str | None = None) -> "Relation":
        """Projection onto the given column positions (duplicates removed)."""
        for pos in positions:
            if not 0 <= pos < self.arity:
                raise RelationError(
                    f"relation {self.name!r}: projection position {pos} out of "
                    f"range for arity {self.arity}"
                )
        projected = frozenset(tuple(t[p] for p in positions) for t in self.tuples)
        return Relation(
            name=name or self.name,
            arity=len(positions),
            tuples=projected,
            domain_size=self.domain_size,
        )

    def select(
        self, assignment: Mapping[int, int], name: str | None = None
    ) -> "Relation":
        """Selection ``sigma_{pos=value}`` for every ``pos: value`` given."""
        for pos in assignment:
            if not 0 <= pos < self.arity:
                raise RelationError(
                    f"relation {self.name!r}: selection position {pos} out of "
                    f"range for arity {self.arity}"
                )
        kept = frozenset(
            t for t in self.tuples
            if all(t[pos] == value for pos, value in assignment.items())
        )
        return Relation(
            name=name or self.name,
            arity=self.arity,
            tuples=kept,
            domain_size=self.domain_size,
        )

    def frequencies(self, positions: Sequence[int]) -> Counter:
        """Frequency of each value combination at the given positions.

        ``frequencies([i])[v]`` is the degree ``d_i(v)`` of Appendix B;
        ``frequencies(positions)[h]`` is ``m_j(h) = |sigma_{x=h}(S_j)|``.
        """
        counter: Counter = Counter()
        for t in self.tuples:
            counter[tuple(t[p] for p in positions)] += 1
        return counter

    def rename(self, name: str) -> "Relation":
        return Relation(
            name=name,
            arity=self.arity,
            tuples=self.tuples,
            domain_size=self.domain_size,
        )

    def with_domain(self, domain_size: int) -> "Relation":
        """Re-declare the domain size (must still contain all values)."""
        return Relation(
            name=self.name,
            arity=self.arity,
            tuples=self.tuples,
            domain_size=domain_size,
        )

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __contains__(self, item: object) -> bool:
        return item in self.tuples

    def __str__(self) -> str:
        return (
            f"{self.name}[arity={self.arity}, m={self.cardinality}, "
            f"n={self.domain_size}]"
        )


@dataclass(frozen=True)
class Database:
    """A database instance: one relation per symbol, over a common domain."""

    relations: Mapping[str, Relation] = field(default_factory=dict)

    @classmethod
    def from_relations(cls, relations: Iterable[Relation]) -> "Database":
        by_name: dict[str, Relation] = {}
        for rel in relations:
            if rel.name in by_name:
                raise RelationError(f"duplicate relation name {rel.name!r}")
            by_name[rel.name] = rel
        return cls(relations=by_name)

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise RelationError(f"database has no relation named {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.relations)

    @property
    def domain_size(self) -> int:
        """The common domain size ``n`` (maximum over the relations)."""
        if not self.relations:
            return 1
        return max(rel.domain_size for rel in self.relations.values())

    @property
    def total_bits(self) -> float:
        return sum(rel.bits for rel in self.relations.values())

    @property
    def total_tuples(self) -> int:
        return sum(rel.cardinality for rel in self.relations.values())

    def validate_against(self, query) -> None:
        """Check that every query atom has a relation of matching arity."""
        for atom in query.atoms:
            rel = self.relation(atom.name)
            if rel.arity != atom.arity:
                raise RelationError(
                    f"atom {atom} has arity {atom.arity} but relation "
                    f"{rel.name!r} has arity {rel.arity}"
                )

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)
