"""Relations, databases, and the sequential join oracle."""

from .join import (
    count_answers,
    evaluate,
    expected_answer_count,
    iterate_answers,
    local_join,
)
from .relation import Database, Relation, RelationError, bits_per_value

__all__ = [
    "Database",
    "Relation",
    "RelationError",
    "bits_per_value",
    "count_answers",
    "evaluate",
    "expected_answer_count",
    "iterate_answers",
    "local_join",
]
