"""Sequential multiway join — the ground truth every parallel algorithm is
checked against.

``evaluate(query, db)`` returns the full answer set ``q(I)`` as tuples in
head-variable order.  The implementation is a classic left-deep multiway hash
join: atoms are ordered greedily (smallest relation first, then atoms sharing
the most already-bound variables), and each step probes a hash index built on
the shared variables.  This is not worst-case optimal, but at the scales of
the experiments (``m <= 10^5``) it is comfortably fast and — more importantly
— simple enough to trust as an oracle.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..query.atoms import Atom, ConjunctiveQuery
from .relation import Database, Relation, RelationError, Tuple


def _atom_order(query: ConjunctiveQuery, db: Database) -> list[Atom]:
    """Greedy join order: smallest first, then maximize shared variables."""
    remaining = list(query.atoms)
    remaining.sort(key=lambda a: db.relation(a.name).cardinality)
    ordered: list[Atom] = []
    bound: set[str] = set()
    while remaining:
        def rank(atom: Atom) -> tuple[int, int]:
            shared = len(atom.variable_set & bound)
            return (-shared, db.relation(atom.name).cardinality)

        best = min(remaining, key=rank)
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variable_set
    return ordered


def _distinct_in_order(variables: Sequence[str]) -> list[str]:
    seen: set[str] = set()
    out: list[str] = []
    for var in variables:
        if var not in seen:
            seen.add(var)
            out.append(var)
    return out


def _index_atom(
    atom: Atom,
    relation: Relation,
    shared_vars: Sequence[str],
    new_vars: Sequence[str],
) -> dict[Tuple, list[Tuple]]:
    """Hash the relation's tuples by their values on ``shared_vars``.

    Tuples that are internally inconsistent with repeated variables (e.g.
    ``S(x, x)`` requires both positions equal) are dropped here.
    """
    shared_positions = [atom.positions_of(v)[0] for v in shared_vars]
    new_positions = [atom.positions_of(v)[0] for v in new_vars]
    repeated = [
        positions
        for positions in (atom.positions_of(v) for v in atom.variable_set)
        if len(positions) > 1
    ]
    index: dict[Tuple, list[Tuple]] = {}
    for t in relation.tuples:
        if any(len({t[p] for p in positions}) != 1 for positions in repeated):
            continue
        key = tuple(t[p] for p in shared_positions)
        index.setdefault(key, []).append(tuple(t[p] for p in new_positions))
    return index


def iterate_answers(
    query: ConjunctiveQuery, db: Database
) -> Iterable[Tuple]:
    """Yield the answers of ``query`` on ``db`` in head-variable order."""
    db.validate_against(query)
    order = _atom_order(query, db)

    bound_vars: list[str] = []
    partials: list[Tuple] = [()]
    for atom in order:
        relation = db.relation(atom.name)
        atom_vars = _distinct_in_order(atom.variables)
        bound_set = set(bound_vars)
        shared_vars = [v for v in atom_vars if v in bound_set]
        new_vars = [v for v in atom_vars if v not in bound_set]
        index = _index_atom(atom, relation, shared_vars, new_vars)
        shared_slots = [bound_vars.index(v) for v in shared_vars]

        next_partials: list[Tuple] = []
        for partial in partials:
            key = tuple(partial[s] for s in shared_slots)
            for extension in index.get(key, ()):
                next_partials.append(partial + extension)
        partials = next_partials
        bound_vars.extend(new_vars)
        if not partials:
            return

    head_slots = [bound_vars.index(v) for v in query.head]
    for partial in partials:
        yield tuple(partial[s] for s in head_slots)


def evaluate(query: ConjunctiveQuery, db: Database) -> frozenset[Tuple]:
    """The answer set ``q(I)`` in head-variable order."""
    return frozenset(iterate_answers(query, db))


def count_answers(query: ConjunctiveQuery, db: Database) -> int:
    """``|q(I)|`` without materializing the set twice."""
    return len(evaluate(query, db))


def local_join(query: ConjunctiveQuery, fragments: dict[str, set[Tuple]],
               domain_size: int) -> frozenset[Tuple]:
    """Join the *fragments* a single MPC server received.

    Missing relations are treated as empty: a server that received no tuple
    of some atom contributes no answers.
    """
    relations = []
    for atom in query.atoms:
        tuples = fragments.get(atom.name, set())
        relations.append(
            Relation(
                name=atom.name,
                arity=atom.arity,
                tuples=frozenset(tuples),
                domain_size=domain_size,
            )
        )
    return evaluate(query, Database.from_relations(relations))


def expected_answer_count(query: ConjunctiveQuery, cardinalities: dict[str, int],
                          domain_size: int) -> float:
    """``E[|q(I)|] = n^(k-a) * prod_j m_j`` (Lemma A.1).

    The expectation is over instances where each ``S_j`` is a uniformly
    random subset of ``[n]^{a_j}`` with exactly ``m_j`` tuples.
    """
    n = domain_size
    k = query.num_variables
    a = query.total_arity
    value = float(n) ** (k - a)
    for atom in query.atoms:
        try:
            value *= cardinalities[atom.name]
        except KeyError:
            raise RelationError(
                f"missing cardinality for relation {atom.name!r}"
            ) from None
    return value
