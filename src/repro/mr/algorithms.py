"""HyperCube as a MapReduce algorithm (Section 5).

Given a reducer-size budget ``L``, pick the largest reducer count whose
expected HC load fits in ``L`` (from the closed-form bound of Theorem 3.6:
``p = (K(u*, M) / L^{u*})`` at the maximizing packing, searched numerically
here), then run the HC map phase.  The measured replication rate matches
the Theorem 5.1 lower bound up to constants — experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bounds import lower_bound
from ..core.hypercube import HyperCubeAlgorithm
from ..mpc.hashing import HashFamily
from ..query.atoms import ConjunctiveQuery
from ..seq.relation import Database
from ..stats.cardinality import SimpleStatistics
from .model import MapReduceResult, run_mapreduce


@dataclass(frozen=True)
class HyperCubeMapReduceRun:
    result: MapReduceResult
    reducers: int
    predicted_load_bits: float


def choose_reducers(
    query: ConjunctiveQuery, stats: SimpleStatistics, reducer_bits: float,
    max_reducers: int = 1 << 20,
) -> int:
    """Largest ``p`` (power of two) with ``L_upper(p) <= reducer_bits``.

    ``L_upper`` is monotone decreasing in ``p``, so a doubling search
    suffices; powers of two also round into HC shares gracefully.
    """
    bits = stats.bits_vector(query)
    p = 2
    best = 2
    while p <= max_reducers:
        if lower_bound(query, bits, p).bits <= reducer_bits:
            best = p
            break
        p *= 2
    return best


def hypercube_mapreduce(
    query: ConjunctiveQuery,
    db: Database,
    reducer_bits: float,
    seed: int = 0,
    compute_answers: bool = False,
    verify: bool = False,
) -> HyperCubeMapReduceRun:
    """Run HC as the map phase with reducer budget ``reducer_bits``."""
    stats = SimpleStatistics.of(db)
    reducers = choose_reducers(query, stats, reducer_bits)
    algorithm = HyperCubeAlgorithm.with_optimal_shares(query, stats, reducers)
    plan = algorithm.routing_plan(db, reducers, HashFamily(seed))
    result = run_mapreduce(
        query,
        db,
        mapper=plan.destinations,
        num_reducers=reducers,
        compute_answers=compute_answers or verify,
        verify=verify,
    )
    predicted = lower_bound(query, stats.bits_vector(query), reducers).bits
    return HyperCubeMapReduceRun(
        result=result, reducers=reducers, predicted_load_bits=predicted
    )
