"""The MapReduce cost model of Section 5 (after Afrati et al. [1]).

The primary parameter is the *reducer size* ``L`` — the bits a reducer may
receive.  An algorithm deterministically maps each input tuple to a set of
reducers; reducer ``i`` receiving ``L_i`` bits yields replication rate

    r = sum_i L_i / |I|.

The paper strengthens the model (input servers may examine whole relations,
algorithms may use statistics and randomness) and derives the bound of
Theorem 5.1 (`repro.core.mr_bounds`).  This module simulates the model so
HC-as-MapReduce can be measured against that bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..query.atoms import ConjunctiveQuery
from ..seq.join import evaluate, local_join
from ..seq.relation import Database, Tuple

Mapper = Callable[[str, Tuple], Iterable[int]]


@dataclass(frozen=True)
class MapReduceResult:
    """Measurements of one simulated map phase (plus reduce verification)."""

    num_reducers: int
    reducer_bits: tuple[float, ...]
    input_bits: float
    answers: frozenset[Tuple] | None
    expected_answers: frozenset[Tuple] | None

    @property
    def replication_rate(self) -> float:
        if self.input_bits == 0:
            return 0.0
        return sum(self.reducer_bits) / self.input_bits

    @property
    def max_reducer_bits(self) -> float:
        return max(self.reducer_bits, default=0.0)

    @property
    def is_complete(self) -> bool | None:
        if self.answers is None or self.expected_answers is None:
            return None
        return self.answers == self.expected_answers

    def within_cap(self, cap_bits: float) -> bool:
        """Did every reducer respect the reducer-size cap ``L``?"""
        return self.max_reducer_bits <= cap_bits


def run_mapreduce(
    query: ConjunctiveQuery,
    db: Database,
    mapper: Mapper,
    num_reducers: int,
    compute_answers: bool = True,
    verify: bool = False,
) -> MapReduceResult:
    """Run one map phase and (optionally) the reduce-side joins."""
    db.validate_against(query)
    if num_reducers < 1:
        raise ValueError("need at least one reducer")
    bits = [0.0] * num_reducers
    fragments: list[dict[str, set[Tuple]]] = [dict() for _ in range(num_reducers)]
    input_bits = 0.0
    for atom in query.atoms:
        relation = db.relation(atom.name)
        tuple_bits = relation.tuple_bits
        input_bits += relation.bits
        for tup in relation.tuples:
            for reducer in mapper(atom.name, tup):
                if not 0 <= reducer < num_reducers:
                    raise ValueError(
                        f"mapper sent a tuple to reducer {reducer} outside "
                        f"[0, {num_reducers})"
                    )
                fragment = fragments[reducer].setdefault(atom.name, set())
                if tup not in fragment:
                    fragment.add(tup)
                    bits[reducer] += tuple_bits

    answers: frozenset[Tuple] | None = None
    if compute_answers:
        collected: set[Tuple] = set()
        for fragment in fragments:
            if fragment:
                collected |= local_join(query, fragment, db.domain_size)
        answers = frozenset(collected)
    expected = evaluate(query, db) if verify else None
    return MapReduceResult(
        num_reducers=num_reducers,
        reducer_bits=tuple(bits),
        input_bits=input_bits,
        answers=answers,
        expected_answers=expected,
    )
