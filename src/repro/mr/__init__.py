"""The Section 5 MapReduce model and HC-as-MapReduce."""

from .algorithms import (
    HyperCubeMapReduceRun,
    choose_reducers,
    hypercube_mapreduce,
)
from .model import Mapper, MapReduceResult, run_mapreduce

__all__ = [
    "HyperCubeMapReduceRun",
    "choose_reducers",
    "hypercube_mapreduce",
    "Mapper",
    "MapReduceResult",
    "run_mapreduce",
]
