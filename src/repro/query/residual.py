"""Residual and extended queries (Sections 4.2, 4.3 and Appendix A).

For a set of variables ``x``, the *residual query* ``q_x`` is obtained from
``q`` by deleting the variables of ``x`` from every atom, decreasing arities
accordingly.  The lower bound of Theorem 4.7 maximizes over fractional edge
packings of ``q_x`` that *saturate* ``x``: a packing ``u`` saturates variable
``x_i in x`` when ``sum_{j : x_i in vars(S_j)} u_j >= 1``, where atom
membership refers to the **original** query.

The *extended query* ``q'`` adds a fresh unary atom ``T_i(x_i)`` per variable
(Appendix A); the slack values ``u'_i = 1 - sum_{j: x_i in S_j} u_j`` complete
any edge packing of ``q`` into a tight packing/cover of ``q'``, which is the
form required by Friedgut's inequality.

Design note (documented in DESIGN.md): if ``x`` swallows *all* variables of
some atom, that atom has arity zero in ``q_x`` and the residual packing
polytope would be unbounded in its coordinate.  We retain the implicit bound
``u_j <= 1`` that every atom satisfies in the original query, keeping the
polytope bounded; this matches the paper's use, where each ``u_j`` originates
from a packing of a query in which ``S_j`` still contains variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import AbstractSet, Mapping

from .atoms import Atom, ConjunctiveQuery, QueryError

Number = Fraction | int | float


@dataclass(frozen=True)
class ResidualQuery:
    """The residual query ``q_x`` together with its provenance.

    Attributes
    ----------
    original:
        The query ``q`` the residual was derived from.
    removed:
        The variable set ``x``.
    query:
        The residual conjunctive query ``q_x`` (atoms keep their names; their
        arities drop by the number of removed positions).
    """

    original: ConjunctiveQuery
    removed: frozenset[str]
    query: ConjunctiveQuery

    @property
    def remaining(self) -> tuple[str, ...]:
        return self.query.variables

    def removed_positions(self, atom_name: str) -> tuple[int, ...]:
        """Positions of ``atom_name`` (in the original query) holding removed
        variables — the coordinates of ``h_j`` in Section 4.3."""
        atom = self.original.atom(atom_name)
        return tuple(
            i for i, var in enumerate(atom.variables) if var in self.removed
        )

    def kept_positions(self, atom_name: str) -> tuple[int, ...]:
        """Positions of ``atom_name`` that survive into the residual atom."""
        atom = self.original.atom(atom_name)
        return tuple(
            i for i, var in enumerate(atom.variables) if var not in self.removed
        )

    def saturates(self, packing: Mapping[str, Number]) -> bool:
        """Does ``packing`` (atom name -> weight) saturate every removed
        variable?  Membership is judged on the *original* atoms."""
        for var in self.removed:
            total = sum(
                Fraction(packing.get(atom.name, 0))
                for atom in self.original.atoms
                if var in atom.variable_set
            )
            if total < 1:
                return False
        return True

    def unsaturated_variables(self, packing: Mapping[str, Number]) -> frozenset[str]:
        """The removed variables that ``packing`` fails to saturate."""
        missing = set()
        for var in self.removed:
            total = sum(
                Fraction(packing.get(atom.name, 0))
                for atom in self.original.atoms
                if var in atom.variable_set
            )
            if total < 1:
                missing.add(var)
        return frozenset(missing)


def residual_query(
    query: ConjunctiveQuery, removed: AbstractSet[str]
) -> ResidualQuery:
    """Build the residual query ``q_x`` for ``x = removed``.

    >>> from .catalog import triangle_query
    >>> r = residual_query(triangle_query(), {"x1"})
    >>> [str(a) for a in r.query.atoms]
    ['S1(x2)', 'S2(x2, x3)', 'S3(x3)']
    """
    removed_set = frozenset(removed)
    unknown = removed_set - set(query.variables)
    if unknown:
        raise QueryError(
            f"cannot remove unknown variables {sorted(unknown)} from {query.name}"
        )
    atoms = []
    for atom in query.atoms:
        kept = tuple(v for v in atom.variables if v not in removed_set)
        atoms.append(Atom(atom.name, kept))
    head = tuple(v for v in query.variables if v not in removed_set)
    residual = ConjunctiveQuery(atoms, head=head, name=f"{query.name}_res")
    return ResidualQuery(original=query, removed=removed_set, query=residual)


def extended_query(query: ConjunctiveQuery, prefix: str = "T_") -> ConjunctiveQuery:
    """The extended query ``q'`` with one fresh unary atom per variable.

    Used in the lower-bound proofs (Appendix A): any edge packing ``u`` of
    ``q`` extends with slacks ``u'_i`` to a tight packing/cover of ``q'``.
    """
    atoms = list(query.atoms)
    for var in query.variables:
        name = f"{prefix}{var}"
        if query.has_atom(name):
            raise QueryError(
                f"extended-atom name {name!r} collides with an existing atom; "
                "pick a different prefix"
            )
        atoms.append(Atom(name, (var,)))
    return ConjunctiveQuery(atoms, head=query.head, name=f"{query.name}_ext")


def packing_slacks(
    query: ConjunctiveQuery, packing: Mapping[str, Number]
) -> dict[str, Fraction]:
    """Per-variable slacks ``u'_i = 1 - sum_{j : x_i in S_j} u_j``.

    The slacks are the weights of the extension atoms ``T_i`` making
    ``(u, u')`` tight on the extended query (Lemma A.5).  Raises if the
    packing is infeasible (negative slack).
    """
    slacks: dict[str, Fraction] = {}
    for var in query.variables:
        total = sum(
            Fraction(packing.get(atom.name, 0))
            for atom in query.atoms
            if var in atom.variable_set
        )
        slack = 1 - total
        if slack < 0:
            raise QueryError(
                f"not an edge packing: variable {var!r} is oversubscribed "
                f"(sum of weights {total} > 1)"
            )
        slacks[var] = slack
    return slacks
