"""Textual syntax for conjunctive queries.

The concrete syntax mirrors datalog::

    q(x, y, z) :- S1(x, z), S2(y, z)

The head is optional.  When omitted, the query is written as a bare body and
the head defaults to the variables in order of first appearance::

    S1(x, z), S2(y, z)

Identifiers (relation names and variables) match ``[A-Za-z_][A-Za-z0-9_']*``
so primed variables like ``x'`` are accepted.
"""

from __future__ import annotations

import re

from .atoms import Atom, ConjunctiveQuery, QueryError

_IDENT = r"[A-Za-z_][A-Za-z0-9_']*"
_ATOM_RE = re.compile(rf"\s*({_IDENT})\s*\(([^()]*)\)\s*")
_HEAD_RE = re.compile(rf"^\s*({_IDENT})\s*\(([^()]*)\)\s*$")


def _parse_variable_list(raw: str, context: str) -> tuple[str, ...]:
    parts = [part.strip() for part in raw.split(",")] if raw.strip() else []
    for part in parts:
        if not re.fullmatch(_IDENT, part):
            raise QueryError(f"bad variable {part!r} in {context}")
    return tuple(parts)


def parse_atom(text: str) -> Atom:
    """Parse a single atom such as ``S1(x, y)``."""
    match = _HEAD_RE.match(text)
    if match is None:
        raise QueryError(f"cannot parse atom from {text!r}")
    name, raw_vars = match.groups()
    return Atom(name, _parse_variable_list(raw_vars, f"atom {name}"))


def _parse_body(text: str) -> tuple[Atom, ...]:
    atoms: list[Atom] = []
    pos = 0
    while pos < len(text):
        match = _ATOM_RE.match(text, pos)
        if match is None:
            raise QueryError(f"cannot parse query body near {text[pos:pos + 30]!r}")
        name, raw_vars = match.groups()
        atoms.append(Atom(name, _parse_variable_list(raw_vars, f"atom {name}")))
        pos = match.end()
        if pos < len(text):
            if text[pos] != ",":
                raise QueryError(
                    f"expected ',' between atoms near {text[pos:pos + 30]!r}"
                )
            pos += 1
    if not atoms:
        raise QueryError("empty query body")
    return tuple(atoms)


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a full conjunctive query from datalog-like syntax.

    >>> q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
    >>> q.num_atoms, q.variables
    (2, ('x', 'y', 'z'))
    >>> parse_query("S1(x, z), S2(y, z)").head
    ('x', 'z', 'y')
    """
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
        match = _HEAD_RE.match(head_text)
        if match is None:
            raise QueryError(f"cannot parse query head from {head_text!r}")
        name, raw_vars = match.groups()
        head = _parse_variable_list(raw_vars, f"head {name}")
        return ConjunctiveQuery(_parse_body(body_text.strip()), head=head, name=name)
    return ConjunctiveQuery(_parse_body(text.strip()))
