"""Conjunctive query substrate: atoms, parsing, catalog, residual queries."""

from .atoms import Atom, ConjunctiveQuery, QueryError
from .catalog import (
    CATALOG,
    cartesian_product_query,
    chain_query,
    clique_query,
    cycle_query,
    simple_join_query,
    star_query,
    triangle_query,
    two_path_query,
)
from .parser import parse_atom, parse_query
from .residual import (
    ResidualQuery,
    extended_query,
    packing_slacks,
    residual_query,
)

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "QueryError",
    "CATALOG",
    "cartesian_product_query",
    "chain_query",
    "clique_query",
    "cycle_query",
    "simple_join_query",
    "star_query",
    "triangle_query",
    "two_path_query",
    "parse_atom",
    "parse_query",
    "ResidualQuery",
    "extended_query",
    "packing_slacks",
    "residual_query",
]
