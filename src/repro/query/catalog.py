"""Catalog of the standard query families used throughout the paper.

These are the shapes the paper evaluates bounds on:

* ``chain_query(k)`` — the path join ``L_k = S1(x1,x2), ..., Sk(xk,xk+1)``
  (Section 2.2 uses ``L_3``).
* ``cycle_query(k)`` — the cycle ``C_k``; ``C_3`` is the triangle query used
  in Examples 3.7, 4.8 and 5.2.
* ``star_query(k)`` — ``S1(z,x1), ..., Sk(z,xk)``; maximal skew pressure on
  the center variable ``z``.
* ``cartesian_product_query(u)`` — ``S1(x1) x ... x Su(xu)`` from the
  introduction's lower-bound warm-up.
* ``simple_join_query()`` — ``q(x,y,z) = S1(x,z), S2(y,z)`` from Example 3.3
  and Section 4.1.
* ``clique_query(k)`` — the ``k``-clique with one binary atom per pair.
"""

from __future__ import annotations

from .atoms import Atom, ConjunctiveQuery


def simple_join_query() -> ConjunctiveQuery:
    """``q(x, y, z) = S1(x, z), S2(y, z)`` — the running example of §4.1."""
    return ConjunctiveQuery(
        [Atom("S1", ("x", "z")), Atom("S2", ("y", "z"))],
        head=("x", "y", "z"),
        name="join",
    )


def chain_query(length: int) -> ConjunctiveQuery:
    """The chain (path) query ``L_length`` with ``length`` binary atoms."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    atoms = [
        Atom(f"S{j}", (f"x{j}", f"x{j + 1}")) for j in range(1, length + 1)
    ]
    return ConjunctiveQuery(atoms, name=f"L{length}")


def cycle_query(length: int) -> ConjunctiveQuery:
    """The cycle query ``C_length``; ``cycle_query(3)`` is the triangle."""
    if length < 2:
        raise ValueError("cycle length must be >= 2")
    atoms = [
        Atom(f"S{j}", (f"x{j}", f"x{j % length + 1}"))
        for j in range(1, length + 1)
    ]
    return ConjunctiveQuery(atoms, name=f"C{length}")


def triangle_query() -> ConjunctiveQuery:
    """``C3 = S1(x1,x2), S2(x2,x3), S3(x3,x1)`` (Eq. 4 of the paper)."""
    return cycle_query(3)


def star_query(rays: int) -> ConjunctiveQuery:
    """The star query ``S1(z,x1), ..., S_rays(z,x_rays)``."""
    if rays < 1:
        raise ValueError("star needs at least one ray")
    atoms = [Atom(f"S{j}", ("z", f"x{j}")) for j in range(1, rays + 1)]
    return ConjunctiveQuery(atoms, name=f"star{rays}")


def cartesian_product_query(factors: int, arity: int = 1) -> ConjunctiveQuery:
    """``S1 x S2 x ... x S_factors`` with disjoint variables per atom.

    With ``arity == 1`` this is the u-way cartesian product from the
    introduction whose optimal load is ``((m1...mu)/p)^(1/u)``.
    """
    if factors < 1:
        raise ValueError("need at least one factor")
    if arity < 1:
        raise ValueError("arity must be >= 1")
    atoms = []
    for j in range(1, factors + 1):
        variables = tuple(f"x{j}_{i}" for i in range(1, arity + 1))
        atoms.append(Atom(f"S{j}", variables))
    return ConjunctiveQuery(atoms, name=f"product{factors}")


def clique_query(size: int) -> ConjunctiveQuery:
    """The ``size``-clique query: one binary atom per unordered pair."""
    if size < 2:
        raise ValueError("clique size must be >= 2")
    atoms = []
    for i in range(1, size + 1):
        for j in range(i + 1, size + 1):
            atoms.append(Atom(f"S{i}_{j}", (f"x{i}", f"x{j}")))
    return ConjunctiveQuery(atoms, name=f"K{size}")


def two_path_query() -> ConjunctiveQuery:
    """``q(x,y,z) = S1(x,y), S2(y,z)`` — the 2-path, equivalent to a join."""
    return ConjunctiveQuery(
        [Atom("S1", ("x", "y")), Atom("S2", ("y", "z"))],
        head=("x", "y", "z"),
        name="path2",
    )


CATALOG = {
    "join": simple_join_query,
    "path2": two_path_query,
    "triangle": triangle_query,
}
