"""Conjunctive query model.

The paper studies *full conjunctive queries without self-joins* (Section 2.2):

    q(x_1, ..., x_k) = S_1(xbar_1), ..., S_l(xbar_l)

*Full* means every variable in the body appears in the head, and *without
self-joins* means each relation symbol appears in exactly one atom.  The
:class:`ConjunctiveQuery` constructor enforces both restrictions.

A query's *hypergraph* has one node per variable and one hyperedge per atom.
Most of the paper's machinery (fractional edge packings, the HyperCube share
LP, residual queries) operates on this hypergraph, which the accessor methods
here expose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence


class QueryError(ValueError):
    """Raised for malformed queries (non-full, self-joins, bad atoms)."""


@dataclass(frozen=True)
class Atom:
    """A single atom ``name(variables...)`` in a conjunctive query body.

    Variables may repeat within an atom (e.g. ``S(x, x)``); the *arity* of the
    atom is the number of positions, not the number of distinct variables.
    """

    name: str
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("atom name must be non-empty")
        if not isinstance(self.variables, tuple):
            object.__setattr__(self, "variables", tuple(self.variables))
        for var in self.variables:
            if not var:
                raise QueryError(f"atom {self.name!r} has an empty variable name")

    @property
    def arity(self) -> int:
        """Number of positions of the atom (``a_j`` in the paper)."""
        return len(self.variables)

    @property
    def variable_set(self) -> frozenset[str]:
        """The distinct variables of the atom (``vars(S_j)``)."""
        return frozenset(self.variables)

    def positions_of(self, variable: str) -> tuple[int, ...]:
        """All positions (0-based) at which ``variable`` occurs."""
        return tuple(i for i, v in enumerate(self.variables) if v == variable)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.variables)})"


class ConjunctiveQuery:
    """A full conjunctive query without self-joins.

    Parameters
    ----------
    atoms:
        The body atoms, in order.  Relation names must be distinct.
    head:
        Optional explicit head-variable order.  Defaults to the variables in
        order of first appearance in the body.  Because the query is full, the
        head must contain exactly the body variables.
    name:
        Optional query name used only for display.
    """

    def __init__(
        self,
        atoms: Iterable[Atom],
        head: Sequence[str] | None = None,
        name: str = "q",
    ) -> None:
        self._atoms = tuple(atoms)
        if not self._atoms:
            raise QueryError("a query needs at least one atom")
        names = [atom.name for atom in self._atoms]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise QueryError(f"self-join detected: repeated relation(s) {duplicates}")

        body_vars: list[str] = []
        seen: set[str] = set()
        for atom in self._atoms:
            for var in atom.variables:
                if var not in seen:
                    seen.add(var)
                    body_vars.append(var)

        if head is None:
            self._head = tuple(body_vars)
        else:
            self._head = tuple(head)
            if set(self._head) != seen or len(set(self._head)) != len(self._head):
                raise QueryError(
                    "query must be full: head variables must be exactly the "
                    f"body variables (head={self._head}, body={tuple(body_vars)})"
                )
        self.name = name
        self._atom_index = {atom.name: i for i, atom in enumerate(self._atoms)}
        self._var_index = {var: i for i, var in enumerate(self._head)}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def atoms(self) -> tuple[Atom, ...]:
        return self._atoms

    @property
    def head(self) -> tuple[str, ...]:
        """Head variables; equals all body variables (the query is full)."""
        return self._head

    @property
    def variables(self) -> tuple[str, ...]:
        """Alias of :attr:`head`; ``k = len(q.variables)`` in the paper."""
        return self._head

    @property
    def num_variables(self) -> int:
        return len(self._head)

    @property
    def num_atoms(self) -> int:
        return len(self._atoms)

    @property
    def total_arity(self) -> int:
        """``a = sum_j a_j`` in the paper."""
        return sum(atom.arity for atom in self._atoms)

    def atom(self, name: str) -> Atom:
        """The unique atom for relation ``name`` (no self-joins)."""
        try:
            return self._atoms[self._atom_index[name]]
        except KeyError:
            raise QueryError(f"query {self.name!r} has no atom named {name!r}") from None

    def atom_position(self, name: str) -> int:
        """Index of the atom named ``name`` within :attr:`atoms`."""
        try:
            return self._atom_index[name]
        except KeyError:
            raise QueryError(f"query {self.name!r} has no atom named {name!r}") from None

    def has_atom(self, name: str) -> bool:
        return name in self._atom_index

    def variable_position(self, variable: str) -> int:
        """Index of ``variable`` within :attr:`variables`."""
        try:
            return self._var_index[variable]
        except KeyError:
            raise QueryError(
                f"query {self.name!r} has no variable named {variable!r}"
            ) from None

    def has_variable(self, variable: str) -> bool:
        return variable in self._var_index

    # ------------------------------------------------------------------
    # hypergraph views
    # ------------------------------------------------------------------
    def atoms_containing(self, variable: str) -> tuple[Atom, ...]:
        """All atoms whose variable set contains ``variable``.

        This is the hyperedge incidence list of the query hypergraph; the
        packing constraint for ``variable`` sums ``u_j`` over exactly these
        atoms.
        """
        if variable not in self._var_index:
            raise QueryError(
                f"query {self.name!r} has no variable named {variable!r}"
            )
        return tuple(a for a in self._atoms if variable in a.variable_set)

    def incidence(self) -> Mapping[str, tuple[str, ...]]:
        """Map variable -> names of atoms containing it."""
        return {
            var: tuple(a.name for a in self.atoms_containing(var))
            for var in self._head
        }

    def adjacency(self) -> Mapping[str, frozenset[str]]:
        """Map variable -> set of variables sharing an atom with it."""
        adj: dict[str, set[str]] = {var: set() for var in self._head}
        for atom in self._atoms:
            for var in atom.variable_set:
                adj[var] |= atom.variable_set - {var}
        return {var: frozenset(neighbors) for var, neighbors in adj.items()}

    def is_connected(self) -> bool:
        """True iff the query hypergraph is connected."""
        if not self._head:
            return True
        adj = self.adjacency()
        stack = [self._head[0]]
        reached: set[str] = set()
        while stack:
            var = stack.pop()
            if var in reached:
                continue
            reached.add(var)
            stack.extend(adj[var] - reached)
        return len(reached) == len(self._head)

    def connected_components(self) -> tuple[tuple[Atom, ...], ...]:
        """Partition the atoms into hypergraph-connected components.

        Atoms with no shared variables land in different components; a
        component listing is exactly an (integral) edge-packing-friendly
        decomposition, e.g. a cartesian product decomposes into singletons.
        """
        parent: dict[str, str] = {a.name: a.name for a in self._atoms}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: str, y: str) -> None:
            parent[find(x)] = find(y)

        for var in self._head:
            containing = self.atoms_containing(var)
            for other in containing[1:]:
                union(containing[0].name, other.name)

        groups: dict[str, list[Atom]] = {}
        for atom in self._atoms:
            groups.setdefault(find(atom.name), []).append(atom)
        return tuple(tuple(group) for group in groups.values())

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self._atoms == other._atoms and self._head == other._head

    def __hash__(self) -> int:
        return hash((self._atoms, self._head))

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self._atoms)
        return f"{self.name}({', '.join(self._head)}) :- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self!s})"
