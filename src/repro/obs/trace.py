"""Nested, timed spans with a Chrome-trace exporter.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
instrumented phase (plan-build, routing, local join, ...) — with
wall-clock timing from :func:`time.perf_counter`.  Spans nest through a
plain stack, so the tracer is cheap (two clock reads and two list
operations per span) and dependency-free.

Export targets:

* :meth:`Tracer.to_chrome_trace` — the Chrome/Perfetto ``traceEvents``
  JSON object (open it at ``chrome://tracing`` or https://ui.perfetto.dev);
* :meth:`Tracer.to_json` — the same object serialized, what the CLI's
  ``--trace FILE`` writes.

The clock is injectable, so tests can drive deterministic timings.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping


@dataclass
class Span:
    """One timed phase: a name, attributes, and a slot in the span tree."""

    name: str
    attrs: dict[str, object]
    start: float                  # clock reading at entry
    depth: int                    # 0 for root spans
    parent: "Span | None" = None
    end: float | None = None      # clock reading at exit; None while open

    @property
    def duration(self) -> float:
        """Seconds between entry and exit (0.0 while the span is open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None


class Tracer:
    """Collects nested :class:`Span` records; exports Chrome-trace JSON."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._origin = clock()
        self._stack: list[Span] = []
        self._spans: list[Span] = []   # every span, in start order

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Open a child of the innermost open span (or a new root)."""
        parent = self._stack[-1] if self._stack else None
        record = Span(
            name=name,
            attrs=dict(attrs),
            start=self._clock(),
            depth=len(self._stack),
            parent=parent,
        )
        self._spans.append(record)
        self._stack.append(record)
        try:
            yield record
        finally:
            record.end = self._clock()
            self._stack.pop()

    @property
    def spans(self) -> tuple[Span, ...]:
        """Every recorded span, in start order (open spans included)."""
        return tuple(self._spans)

    def finished_spans(self, name: str | None = None) -> tuple[Span, ...]:
        """Closed spans, optionally filtered by name."""
        return tuple(
            span for span in self._spans
            if span.finished and (name is None or span.name == name)
        )

    def total_seconds(self, name: str) -> float:
        """Summed duration of every closed span called ``name``."""
        return sum(span.duration for span in self.finished_spans(name))

    def to_events(self) -> list[dict]:
        """Chrome ``traceEvents``: one complete (``ph: "X"``) event per span."""
        events = []
        for span in self._spans:
            if not span.finished:
                continue
            args: dict[str, object] = {
                key: value if isinstance(value, (int, float, str, bool))
                else str(value)
                for key, value in span.attrs.items()
            }
            if span.parent is not None:
                args["parent"] = span.parent.name
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start - self._origin) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": 1,
                "args": args,
            })
        return events

    def to_chrome_trace(self) -> Mapping[str, object]:
        """The full Chrome-trace JSON object."""
        return {"traceEvents": self.to_events(), "displayTimeUnit": "ms"}

    def to_json(self, indent: int = 2) -> str:
        """Serialized :meth:`to_chrome_trace` (what ``--trace FILE`` writes)."""
        return json.dumps(self.to_chrome_trace(), indent=indent)
