"""Counters, gauges and histograms in a mergeable registry.

The registry is the quantitative half of the observability layer: engines
count tuples routed and bits shipped per relation, histogram the
per-server loads, and gauge the skew ratio; the sweep runner histograms
per-cell wall clock and queue wait.  Three instrument kinds:

* :class:`Counter` — monotone accumulator (``inc``); merges by addition.
* :class:`Gauge` — last-written value (``set``); merges by overwrite.
* :class:`Histogram` — stores every observation; reports count/min/max/
  mean and nearest-rank percentiles (p50/p90/p99); merges by
  concatenation, so per-worker histograms aggregate exactly.

:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.merge_snapshot`
round-trip through plain JSON-ready dicts — that is how
:class:`~repro.mpc.engine.MultiprocessEngine` ships worker metrics back
to the parent process, and how sweep workers attach per-cell metrics to
their :class:`~repro.api.records.RunRecord`.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping


class Counter:
    """A monotone accumulator."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, delta: float = 1) -> None:
        self.value += delta


class Gauge:
    """A last-written value (``None`` until first set)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Exact histogram: stores observations, reports rank statistics.

    Suited to the cardinalities this repo meets (per-server loads —
    at most ``p`` values — and per-cell timings); a streaming sketch
    would only be warranted far beyond that.
    """

    __slots__ = ("values",)

    def __init__(self, values: Iterable[float] = ()) -> None:
        self.values: list[float] = list(values)

    def observe(self, value: float) -> None:
        self.values.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self.values.extend(values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]; 0.0 when empty."""
        if not self.values:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError(f"percentile wants q in [0, 100], got {q}")
        ordered = sorted(self.values)
        rank = max(1, math.ceil(q / 100 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict[str, float]:
        """A JSON-ready digest: count, total, min/mean/max, p50/p90/p99."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named instruments, created on first touch, mergeable across runs."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) --------------------------
    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram())

    # -- views ----------------------------------------------------------
    @property
    def counters(self) -> Mapping[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> Mapping[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        return dict(self._histograms)

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)

    # -- aggregation -----------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` in: counters add, gauges overwrite, histograms
        concatenate."""
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            if gauge.value is not None:
                self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            self.histogram(name).extend(histogram.values)

    def snapshot(self) -> dict:
        """A picklable/JSON-ready full-fidelity dump (histogram values
        included), for shipping across process boundaries."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {
                k: g.value for k, g in self._gauges.items()
                if g.value is not None
            },
            "histograms": {
                k: list(h.values) for k, h in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in snapshot.get("histograms", {}).items():
            self.histogram(name).extend(values)

    def to_dict(self) -> dict:
        """The JSON-ready digest attached to records and printed by
        ``--metrics``: counters and gauges verbatim, histograms as
        :meth:`Histogram.summary` digests."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {
                k: g.value for k, g in sorted(self._gauges.items())
                if g.value is not None
            },
            "histograms": {
                k: h.summary() for k, h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """A human-readable table (the CLI's ``--metrics`` output)."""
        lines = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name:<44} {counter.value:>16,.0f}")
        for name, gauge in sorted(self._gauges.items()):
            if gauge.value is not None:
                lines.append(f"{name:<44} {gauge.value:>16,.4f}")
        for name, histogram in sorted(self._histograms.items()):
            s = histogram.summary()
            lines.append(
                f"{name:<44} n={s['count']} mean={s['mean']:,.4g} "
                f"p50={s['p50']:,.4g} p99={s['p99']:,.4g} max={s['max']:,.4g}"
            )
        return "\n".join(lines)
