"""Observability: dependency-free tracing and metrics.

The paper's subject is *where load goes* under skew, which makes
observability the core instrument of this reproduction rather than an
add-on.  This package provides the two halves and a carrier object:

1. :mod:`repro.obs.trace` — :class:`Tracer`, producing nested timed
   :class:`Span` records (plan-build, routing, shuffle accounting, local
   join, verify) with a Chrome-trace JSON exporter;
2. :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
   gauges and histograms (tuples routed, bits shipped per relation,
   per-server load histogram, skew ratio), mergeable across processes;
3. :class:`Observation` — one tracer + one registry, threaded as an
   optional ``obs`` argument through
   :meth:`repro.mpc.engine.ExecutionEngine.run`, the planner, and the
   sweep runner.  ``obs=None`` (the default everywhere) short-circuits
   every instrumentation site, so disabled observability costs nothing.

Typical use::

    from repro.obs import Observation

    obs = Observation.create()
    result = run_one_round(algo, db, p=32, obs=obs)
    print(obs.metrics.render())
    open("trace.json", "w").write(obs.tracer.to_json())
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import ContextManager, Iterator

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span, Tracer


@dataclass
class Observation:
    """One tracer plus one metrics registry, passed around as ``obs``."""

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @classmethod
    def create(cls) -> "Observation":
        return cls()

    def span(self, name: str, **attrs: object):
        """A nested timed span (delegates to :meth:`Tracer.span`)."""
        return self.tracer.span(name, **attrs)

    @contextmanager
    def timed(self, name: str, **attrs: object) -> Iterator[Span]:
        """A span whose duration also lands in histogram ``{name}.seconds``.

        This is the bridge that keeps bench timings and production
        instrumentation from drifting: benchmarks read the histogram the
        engines feed, instead of bracketing with their own clocks.
        """
        with self.tracer.span(name, **attrs) as span:
            yield span
        self.metrics.histogram(f"{name}.seconds").observe(span.duration)

    # -- metric conveniences -------------------------------------------
    def count(self, name: str, delta: float = 1) -> None:
        self.metrics.counter(name).inc(delta)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)


_NULL = nullcontext()


def maybe_timed(
    obs: Observation | None, name: str, **attrs: object
) -> "ContextManager[Span | None]":
    """:meth:`Observation.timed` when observing, else a shared no-op.

    The guard instrumentation sites use so that ``obs=None`` costs one
    ``is None`` check per *phase* (never per tuple).
    """
    if obs is None:
        return _NULL
    return obs.timed(name, **attrs)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observation",
    "Span",
    "Tracer",
    "maybe_timed",
]
