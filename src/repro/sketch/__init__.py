"""Sketch-based statistics: one-pass, mergeable heavy-hitter estimation.

The streaming counterpart of :mod:`repro.stats` — Count-Sketches with
hierarchical heavy-hitter recovery, combined into
:class:`SketchedHeavyHitterStatistics`, a drop-in
:class:`~repro.stats.provider.StatisticsProvider` for the planner and
the Section 4 skew-aware algorithms.
"""

from .count_sketch import (
    LARGE_PRIME,
    CountSketch,
    HierarchicalCountSketch,
    SketchError,
    mulmod61,
)
from .statistics import (
    RelationSketchSet,
    RelationSketchSpec,
    SketchConfig,
    SketchedHeavyHitterStatistics,
    build_sketch_set,
    build_sketch_set_from_stream,
    sketch_fidelity,
)

__all__ = [
    "LARGE_PRIME",
    "CountSketch",
    "HierarchicalCountSketch",
    "SketchError",
    "mulmod61",
    "RelationSketchSet",
    "RelationSketchSpec",
    "SketchConfig",
    "SketchedHeavyHitterStatistics",
    "build_sketch_set",
    "build_sketch_set_from_stream",
    "sketch_fidelity",
]
