"""Sketched heavy-hitter statistics: one streaming pass, mergeable shards.

The exact :class:`~repro.stats.heavy_hitters.HeavyHitterStatistics`
materializes a frequency map per (relation, variable-subset) pair — fine
for a simulator, but the thing the paper hand-waves as "first detecting
the heavy hitters (e.g. using sampling)" is a *statistics pass* that real
systems must run in bounded memory.  This module models that pass:

* every (atom, subset) pair gets one
  :class:`~repro.sketch.count_sketch.HierarchicalCountSketch`; a partial
  assignment is encoded as a mixed-radix integer over the relation's
  domain, so the sketch universe is ``n^|subset|``;
* :class:`RelationSketchSet` holds the sketches for a whole query and is
  built in a single pass over each relation's tuples — or one pass per
  *shard*, since same-config sketch sets :meth:`~RelationSketchSet.merge`
  by exact integer addition (bit-identical to the single-pass build);
* :class:`SketchedHeavyHitterStatistics` recovers the heavy hitters from
  the sketches by prefix descent and implements the same
  :class:`~repro.stats.provider.StatisticsProvider` surface as the exact
  statistics, so the planner and the skew-aware algorithms accept either.

The recovery threshold is *slacked below* the true ``m_j / p`` cutoff by
a multiple of the sketch's characteristic noise ``||f||_2 / sqrt(width)``:
a borderline value is reported heavy rather than missed.  That bias is
deliberate — a spurious heavy hitter merely earns a dedicated server
block (correctness unaffected, a little parallelism wasted), while a
*missed* one overloads the light path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ..query.atoms import ConjunctiveQuery
from ..seq.relation import Database, Tuple
from ..stats.cardinality import SimpleStatistics, StatisticsError
from ..stats.heavy_hitters import (
    Assignment,
    HeavyHitterLookup,
    HeavyHitterStatistics,
    VarSubset,
    canonical_subset,
    nonempty_subsets,
)
from .count_sketch import LARGE_PRIME, HierarchicalCountSketch, SketchError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observation


@dataclass(frozen=True)
class SketchConfig:
    """Size and seeding of the statistics sketches.

    The defaults are tuned for the benchmark grids in this repo (domains
    up to a few thousand values, ``p`` up to 64): width 2048 keeps the
    characteristic noise well under the ``m_j / p`` thresholds, and the
    parity suite asserts zero false negatives at these defaults.

    ``seed`` pins every hash coefficient: equal configs build identical
    sketch functions, which is what lets per-shard sketch sets merge
    bit-identically.  Never seed from global state.
    """

    width: int = 2048
    depth: int = 5
    base: int = 16
    seed: int = 0
    #: Recovery slack in units of the sketch noise ``||f||_2/sqrt(width)``;
    #: the search threshold is ``m_j/p - slack_factor * noise``.
    slack_factor: float = 3.0
    #: Cap on the prefix-descent frontier (inherited by ``find_heavy``).
    max_candidates: int = 1 << 16
    #: Tuples per vectorized update batch during the streaming pass.
    chunk_size: int = 8192

    def __post_init__(self) -> None:
        if self.width < 2 or self.depth < 1 or self.base < 2:
            raise SketchError(
                f"invalid sketch config: width={self.width}, "
                f"depth={self.depth}, base={self.base}"
            )
        if self.slack_factor < 0:
            raise SketchError("slack_factor must be >= 0")


def _pair_seed(config_seed: int, atom_name: str, subset: VarSubset) -> list[int]:
    """A deterministic SeedSequence entropy for one (atom, subset) pair.

    Derived from the *content* of the key (not ``hash()``, which is
    salted per process), so independently constructed sketch sets — e.g.
    in forked shard workers — agree on every hash coefficient.
    """
    import zlib

    key = f"{atom_name}|{','.join(subset)}".encode()
    return [config_seed, zlib.crc32(key)]


@dataclass(frozen=True)
class RelationSketchSpec:
    """How one (atom, variable-subset) pair maps into a sketch universe.

    An assignment ``(v_0, .., v_{k-1})`` to the sorted subset encodes as
    the mixed-radix integer ``sum_i v_i * n^i`` over the relation's
    domain ``[0, n)``; the universe is therefore ``n^k``, which must fit
    the sketch's ``2^61 - 1`` hashing domain.
    """

    atom_name: str
    subset: VarSubset
    positions: tuple[int, ...]
    domain_size: int
    universe: int

    @classmethod
    def build(
        cls, atom_name: str, subset: VarSubset,
        positions: Sequence[int], domain_size: int,
    ) -> "RelationSketchSpec":
        universe = 1
        for _ in subset:
            universe *= domain_size
            if universe > LARGE_PRIME:
                raise StatisticsError(
                    f"sketch universe {domain_size}^{len(subset)} for atom "
                    f"{atom_name!r} subset {subset} exceeds 2^61 - 1; "
                    "sketched statistics need a smaller domain or subset"
                )
        return cls(
            atom_name=atom_name,
            subset=subset,
            positions=tuple(positions),
            domain_size=domain_size,
            universe=max(1, universe),
        )

    def encode_batch(self, tuples: np.ndarray) -> np.ndarray:
        """Mixed-radix items for a 2-D ``(n_tuples, arity)`` value array."""
        items = np.zeros(tuples.shape[0], dtype=np.uint64)
        radix = np.uint64(1)
        n = np.uint64(self.domain_size)
        for pos in self.positions:
            items += tuples[:, pos].astype(np.uint64) * radix
            radix *= n
        return items

    def decode(self, item: int) -> Assignment:
        """The assignment a sketch item stands for (inverse of encode)."""
        values = []
        for _ in self.subset:
            values.append(int(item % self.domain_size))
            item //= self.domain_size
        return tuple(values)


@dataclass
class RelationSketchSet:
    """One hierarchical sketch per (atom, subset) pair of a query.

    Built by streaming each relation's tuples through
    :meth:`update_relation` (in bounded-size numpy batches); per-shard
    sets with the same config merge by exact table addition, so the
    sharded build is bit-identical to the single-pass one.
    """

    config: SketchConfig
    specs: Mapping[tuple[str, VarSubset], RelationSketchSpec]
    sketches: Mapping[tuple[str, VarSubset], HierarchicalCountSketch]
    tuple_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def empty(cls, query: ConjunctiveQuery, db_domains: Mapping[str, int],
              config: SketchConfig) -> "RelationSketchSet":
        """Fresh zero sketches for every (atom, subset) pair of ``query``.

        ``db_domains`` maps relation name to its domain size ``n``.  The
        subset enumeration reuses (and is capped by) the exact side's
        :func:`~repro.stats.heavy_hitters.nonempty_subsets` guard.
        """
        specs: dict[tuple[str, VarSubset], RelationSketchSpec] = {}
        sketches: dict[tuple[str, VarSubset], HierarchicalCountSketch] = {}
        for atom in query.atoms:
            domain = db_domains[atom.name]
            atom_vars = canonical_subset(atom.variables)
            for subset in nonempty_subsets(atom_vars):
                key = (atom.name, subset)
                if key in specs:
                    continue  # self-joins share one sketch per relation
                positions = [atom.positions_of(var)[0] for var in subset]
                spec = RelationSketchSpec.build(
                    atom.name, subset, positions, domain
                )
                specs[key] = spec
                sketches[key] = HierarchicalCountSketch(
                    universe=spec.universe,
                    width=config.width,
                    depth=config.depth,
                    base=config.base,
                    seed=_pair_seed(config.seed, atom.name, subset),
                )
        return cls(config=config, specs=specs, sketches=sketches,
                   tuple_counts={})

    # ------------------------------------------------------------------
    # the streaming pass
    # ------------------------------------------------------------------
    def update_relation(self, atom_name: str,
                        tuples: Iterable[Tuple]) -> None:
        """Stream one relation's tuples through all its subset sketches.

        One pass: each bounded-size chunk is encoded once per subset and
        pushed into that subset's sketch; nothing is retained besides the
        sketch tables, so the pass runs in memory independent of ``m_j``.
        """
        keys = [key for key in self.specs if key[0] == atom_name]
        if not keys:
            return
        chunk: list[Tuple] = []
        for tup in tuples:
            chunk.append(tup)
            if len(chunk) >= self.config.chunk_size:
                self._flush(atom_name, keys, chunk)
                chunk = []
        if chunk:
            self._flush(atom_name, keys, chunk)

    def _flush(self, atom_name: str,
               keys: Sequence[tuple[str, VarSubset]],
               chunk: Sequence[Tuple]) -> None:
        array = np.asarray(chunk, dtype=np.uint64)
        for key in keys:
            items = self.specs[key].encode_batch(array)
            self.sketches[key].update_batch(items)
        self.tuple_counts[atom_name] = (
            self.tuple_counts.get(atom_name, 0) + len(chunk)
        )

    @property
    def update_count(self) -> int:
        """Total sketch updates performed (tuples x subsets)."""
        return sum(s.update_count for s in self.sketches.values())

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def merge(self, other: "RelationSketchSet") -> "RelationSketchSet":
        """Fold a shard's sketches in (exact; any merge order agrees)."""
        if self.config != other.config or set(self.specs) != set(other.specs):
            raise SketchError(
                "cannot merge sketch sets built from different queries or "
                "sketch configs"
            )
        for key, sketch in self.sketches.items():
            sketch.merge(other.sketches[key])
        for name, count in other.tuple_counts.items():
            self.tuple_counts[name] = self.tuple_counts.get(name, 0) + count
        return self


# ----------------------------------------------------------------------
# process-parallel shard build (mirrors the mp engine's fork-first pool)
# ----------------------------------------------------------------------

# Installed in workers by the pool initializer; module-level so the
# worker function pickles under every start method.
_SHARD_STATE: dict[str, object] = {}


def _init_shard_worker(query: ConjunctiveQuery,
                       domains: dict[str, int],
                       config: SketchConfig) -> None:
    _SHARD_STATE["query"] = query
    _SHARD_STATE["domains"] = domains
    _SHARD_STATE["config"] = config


def _build_shard(chunks: list[tuple[str, list[Tuple]]]) -> RelationSketchSet:
    """Worker: sketch one shard's tuple chunks into a fresh sketch set."""
    shard = RelationSketchSet.empty(
        _SHARD_STATE["query"],            # type: ignore[arg-type]
        _SHARD_STATE["domains"],          # type: ignore[arg-type]
        _SHARD_STATE["config"],           # type: ignore[arg-type]
    )
    for atom_name, tuples in chunks:
        shard.update_relation(atom_name, tuples)
    return shard


def build_sketch_set(
    query: ConjunctiveQuery,
    db: Database,
    config: SketchConfig,
    workers: int = 1,
) -> RelationSketchSet:
    """Sketch every relation of ``query`` in one pass over ``db``.

    With ``workers > 1`` the relations' tuples are split into per-worker
    shards, each worker sketches its shard independently, and the parent
    merges — the result is bit-identical to the single-pass build
    because same-seed sketches merge by exact integer addition.
    """
    domains = {
        atom.name: db.relation(atom.name).domain_size for atom in query.atoms
    }
    if workers <= 1:
        sketch_set = RelationSketchSet.empty(query, domains, config)
        for name in dict.fromkeys(atom.name for atom in query.atoms):
            sketch_set.update_relation(name, db.relation(name).tuples)
        return sketch_set

    # Deal tuples round-robin into `workers` shards per relation.
    shards: list[list[tuple[str, list[Tuple]]]] = [[] for _ in range(workers)]
    for name in dict.fromkeys(atom.name for atom in query.atoms):
        tuples = list(db.relation(name).tuples)
        for w in range(workers):
            shard_tuples = tuples[w::workers]
            if shard_tuples:
                shards[w].append((name, shard_tuples))
    tasks = [chunks for chunks in shards if chunks]
    if not tasks:
        return RelationSketchSet.empty(query, domains, config)

    from ..mpc.engine.multiprocess import pool_context

    ctx = pool_context()
    try:
        with ctx.Pool(
            processes=min(workers, len(tasks)),
            initializer=_init_shard_worker,
            initargs=(query, domains, config),
        ) as pool:
            shard_sets = pool.map(_build_shard, tasks)
    except (OSError, PermissionError):  # pragma: no cover - sandboxed envs
        return build_sketch_set(query, db, config, workers=1)
    merged = shard_sets[0]
    for shard_set in shard_sets[1:]:
        merged.merge(shard_set)
    return merged


def build_sketch_set_from_stream(
    query: ConjunctiveQuery,
    streams: Mapping[str, Iterable[Tuple]],
    domains: Mapping[str, int],
    config: SketchConfig | None = None,
) -> RelationSketchSet:
    """Sketch every relation of ``query`` from *unmaterialized* sources.

    The true streaming twin of :func:`build_sketch_set`: ``streams`` maps
    each relation name to any tuple iterable — a generator over a file, a
    socket, a cursor — which is consumed exactly once in bounded-size
    chunks and never materialized as a :class:`~repro.seq.relation.Relation`.
    ``domains`` declares each relation's domain size ``n`` (a stream
    cannot be inspected for it up front).  Tuple counts are tallied
    during the pass and land in
    :attr:`RelationSketchSet.tuple_counts`, so downstream statistics
    need no second pass.
    """
    config = config or SketchConfig()
    names = dict.fromkeys(atom.name for atom in query.atoms)
    missing = [name for name in names if name not in streams]
    if missing:
        raise StatisticsError(
            f"streams are missing relations {missing} of query "
            f"{query.name!r}"
        )
    unknown = [name for name in streams if name not in names]
    if unknown:
        raise StatisticsError(
            f"streams name relations {unknown} that are not atoms of "
            f"query {query.name!r}"
        )
    missing_domains = [name for name in names if name not in domains]
    if missing_domains:
        raise StatisticsError(
            f"domains are missing relations {missing_domains}"
        )
    for name, domain in domains.items():
        if domain < 1:
            raise StatisticsError(
                f"domain size for {name!r} must be >= 1, got {domain}"
            )
    sketch_set = RelationSketchSet.empty(query, domains, config)
    for name in names:
        sketch_set.update_relation(name, streams[name])
        sketch_set.tuple_counts.setdefault(name, 0)  # empty streams count 0
    return sketch_set


# ----------------------------------------------------------------------
# the provider
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SketchedHeavyHitterStatistics(HeavyHitterLookup):
    """Heavy hitters recovered from Count-Sketches, planner-compatible.

    Satisfies :class:`~repro.stats.provider.StatisticsProvider` — the
    same read surface as the exact
    :class:`~repro.stats.heavy_hitters.HeavyHitterStatistics` — so it
    drops into ``plan``/``autoplan`` and every skew-aware algorithm's
    cost hooks unchanged.  Frequencies in ``hitters`` are sketch
    *estimates* (clamped to ``[1, m_j]``); the recovery threshold is
    slacked below ``m_j / p`` so borderline values are included rather
    than missed (see the module docstring for why that bias is safe).
    """

    simple: SimpleStatistics
    p: int
    threshold_factor: float
    hitters: Mapping[tuple[str, VarSubset], Mapping[Assignment, int]]
    config: SketchConfig
    update_count: int
    sketch_set: RelationSketchSet = field(compare=False, repr=False)

    @classmethod
    def of(
        cls,
        query: ConjunctiveQuery,
        db: Database,
        p: int,
        threshold_factor: float = 1.0,
        config: SketchConfig | None = None,
        workers: int = 1,
        obs: "Observation | None" = None,
    ) -> "SketchedHeavyHitterStatistics":
        """One streaming statistics pass over ``db`` for ``query``.

        The sketched twin of :meth:`HeavyHitterStatistics.of`: same
        signature prefix, same thresholds, estimated frequencies.
        ``workers > 1`` builds per-shard sketches in a process pool and
        merges them (bit-identical to ``workers=1``).
        """
        from ..obs import maybe_timed

        if p < 1:
            raise StatisticsError("p must be >= 1")
        config = config or SketchConfig()
        with maybe_timed(obs, "stats.sketch_pass", workers=workers):
            sketch_set = build_sketch_set(query, db, config, workers=workers)
        simple = SimpleStatistics.of(db)
        stats = cls.from_sketch_set(
            query, simple, sketch_set, p,
            threshold_factor=threshold_factor, obs=obs,
        )
        if obs is not None:
            obs.set_gauge("sketch.width", config.width)
            obs.set_gauge("sketch.depth", config.depth)
            obs.count("sketch.updates", sketch_set.update_count)
        return stats

    @classmethod
    def from_stream(
        cls,
        query: ConjunctiveQuery,
        streams: Mapping[str, Iterable[Tuple]],
        domains: Mapping[str, int],
        p: int,
        threshold_factor: float = 1.0,
        config: SketchConfig | None = None,
        obs: "Observation | None" = None,
    ) -> "SketchedHeavyHitterStatistics":
        """One statistics pass over *unmaterialized* tuple streams.

        Consumes each stream exactly once through
        :func:`build_sketch_set_from_stream`; relation cardinalities come
        from the pass's own tuple tally, so no :class:`Database` (or
        second pass) is ever needed.  ``domains`` maps each relation name
        to its domain size ``n``.
        """
        from ..obs import maybe_timed

        if p < 1:
            raise StatisticsError("p must be >= 1")
        config = config or SketchConfig()
        with maybe_timed(obs, "stats.sketch_pass", workers=1, source="stream"):
            sketch_set = build_sketch_set_from_stream(
                query, streams, domains, config
            )
        simple = SimpleStatistics.from_cardinalities(
            query, dict(sketch_set.tuple_counts),
            max(domains[atom.name] for atom in query.atoms),
        )
        stats = cls.from_sketch_set(
            query, simple, sketch_set, p,
            threshold_factor=threshold_factor, obs=obs,
        )
        if obs is not None:
            obs.set_gauge("sketch.width", config.width)
            obs.set_gauge("sketch.depth", config.depth)
            obs.count("sketch.updates", sketch_set.update_count)
        return stats

    @classmethod
    def from_sketch_set(
        cls,
        query: ConjunctiveQuery,
        simple: SimpleStatistics,
        sketch_set: RelationSketchSet,
        p: int,
        threshold_factor: float = 1.0,
        obs: "Observation | None" = None,
    ) -> "SketchedHeavyHitterStatistics":
        """Recover heavy hitters from already-built (merged) sketches.

        This is the entry point for distributed builds: workers stream
        their shards into per-shard :class:`RelationSketchSet`\\ s, the
        coordinator merges them, then recovers here.  Only relation
        cardinalities (``simple``) are needed besides the sketches.
        """
        from ..obs import maybe_timed

        if p < 1:
            raise StatisticsError("p must be >= 1")
        config = sketch_set.config
        hitters: dict[tuple[str, VarSubset], dict[Assignment, int]] = {}
        with maybe_timed(obs, "stats.sketch_recover"):
            for key, spec in sketch_set.specs.items():
                atom_name = key[0]
                m = simple.cardinality(atom_name)
                threshold = threshold_factor * m / p
                sketch = sketch_set.sketches[key]
                slack = config.slack_factor * sketch.noise_scale()
                found = sketch.find_heavy(
                    threshold, slack=slack,
                    max_candidates=config.max_candidates,
                )
                hitters[key] = {
                    spec.decode(item): max(1, min(m, round(freq)))
                    for item, freq in found.items()
                }
        return cls(
            simple=simple,
            p=p,
            threshold_factor=threshold_factor,
            hitters=hitters,
            config=config,
            update_count=sketch_set.update_count,
            sketch_set=sketch_set,
        )


# ----------------------------------------------------------------------
# fidelity report (exact vs sketched)
# ----------------------------------------------------------------------

def sketch_fidelity(
    exact: HeavyHitterStatistics,
    sketched: SketchedHeavyHitterStatistics,
) -> dict[str, object]:
    """Compare sketched heavy hitters against the exact ground truth.

    Returns overall ``recall`` (fraction of true heavy hitters the
    sketch recovered — the number the acceptance gate pins to 1.0),
    ``precision``, ``max_rel_error`` (worst relative frequency error
    over the true heavy hitters that were recovered) and per-pair rows.
    """
    pairs: list[dict[str, object]] = []
    true_total = found_total = hit_total = 0
    max_rel_error = 0.0
    keys = set(exact.hitters) | set(sketched.hitters)
    for key in sorted(keys):
        true_map = dict(exact.hitters.get(key, {}))
        est_map = dict(sketched.hitters.get(key, {}))
        hits = set(true_map) & set(est_map)
        rel_errors = [
            abs(est_map[a] - true_map[a]) / true_map[a] for a in hits
        ]
        pair_max = max(rel_errors, default=0.0)
        max_rel_error = max(max_rel_error, pair_max)
        true_total += len(true_map)
        found_total += len(est_map)
        hit_total += len(hits)
        pairs.append({
            "atom": key[0],
            "subset": list(key[1]),
            "true_heavy": len(true_map),
            "sketched_heavy": len(est_map),
            "false_negatives": len(true_map) - len(hits),
            "false_positives": len(est_map) - len(hits),
            "max_rel_error": pair_max,
        })
    recall = 1.0 if true_total == 0 else hit_total / true_total
    precision = 1.0 if found_total == 0 else hit_total / found_total
    return {
        "recall": recall,
        "precision": precision,
        "max_rel_error": max_rel_error,
        "true_heavy": true_total,
        "sketched_heavy": found_total,
        "false_negatives": true_total - hit_total,
        "false_positives": found_total - hit_total,
        "pairs": pairs,
    }
