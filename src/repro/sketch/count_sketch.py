"""Seeded, mergeable Count-Sketch with hierarchical heavy-hitter search.

The classic Charikar–Chen–Farach-Colton sketch: a ``depth x width`` table
of signed counters where row ``r`` adds ``s_r(x) * c`` at column
``b_r(x)`` for every update ``(x, c)``; the frequency estimate is the
median over rows of ``table[r, b_r(x)] * s_r(x)``.  Bucket hashes are
2-wise independent (``(a x + b) mod P mod width``) and sign hashes 4-wise
independent (a degree-3 polynomial mod P mod 2), both over the Mersenne
prime ``P = 2^61 - 1``.  Hash coefficients come from an explicit
per-sketch :class:`numpy.random.Generator` — never the module-global
numpy RNG — so two sketches built from the same seed are *identical*
functions and their integer tables merge bit-for-bit associatively.

:class:`HierarchicalCountSketch` stacks one sketch per digit level of a
base-``b`` decomposition of the universe (level ``l`` counts
``item // b^l``), so heavy hitters are recovered by descending digit
prefixes — ``findHH`` style — in ``O(levels * base * |heavy|)`` estimate
probes instead of enumerating the universe.

All arithmetic is exact: tables are ``int64`` and the ``mod 2^61 - 1``
hash products are computed with a 32-bit split (no silent ``uint64``
overflow), so shard-merged sketches equal the single-pass sketch exactly.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

import numpy as np

#: The Mersenne prime 2^61 - 1 both hash families work over.
LARGE_PRIME = (1 << 61) - 1

_P = np.uint64(LARGE_PRIME)
_SHIFT_61 = np.uint64(61)
_SHIFT_32 = np.uint64(32)
_SHIFT_29 = np.uint64(29)
_SHIFT_3 = np.uint64(3)
_MASK_32 = np.uint64((1 << 32) - 1)
_MASK_29 = np.uint64((1 << 29) - 1)


class SketchError(ValueError):
    """Raised for invalid sketch parameters or incompatible merges."""


def _reduce61(x: np.ndarray) -> np.ndarray:
    """``x mod (2^61 - 1)`` for ``uint64`` values below ``2^63``."""
    x = (x & _P) + (x >> _SHIFT_61)
    return x - np.where(x >= _P, _P, np.uint64(0))


def mulmod61(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(a * b) mod (2^61 - 1)``, exact, vectorized over ``uint64``.

    The 122-bit product never materializes: with ``a = a1 2^32 + a0`` and
    ``b = b1 2^32 + b0``, use ``2^64 = 8 (mod P)`` and ``2^61 = 1 (mod P)``
    to fold the partial products while every intermediate stays below
    ``2^63``.  Operands must already lie in ``[0, 2^61)``.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    a_hi, a_lo = a >> _SHIFT_32, a & _MASK_32
    b_hi, b_lo = b >> _SHIFT_32, b & _MASK_32
    high = a_hi * b_hi                   # < 2^58; * 2^64 == * 8 (mod P)
    mid = a_hi * b_lo + a_lo * b_hi      # < 2^62; carries a 2^32 factor
    low = a_lo * b_lo                    # < 2^64, exact in uint64
    mid_folded = (mid >> _SHIFT_29) + ((mid & _MASK_29) << _SHIFT_32)
    total = _reduce61(low) + (high << _SHIFT_3) + _reduce61(mid_folded)
    return _reduce61(total)


class CountSketch:
    """One Count-Sketch table with explicitly seeded hash families.

    Parameters
    ----------
    width:
        Columns per row; the estimate error scales as ``||f||_2 / sqrt(width)``.
    depth:
        Rows (independent repetitions) the median is taken over.
    rng:
        The :class:`numpy.random.Generator` the hash coefficients are
        drawn from.  Pass a freshly seeded generator; equal seeds yield
        identical hash functions (asserted by the test suite), which is
        what makes same-seed sketches mergeable.
    """

    __slots__ = ("width", "depth", "table", "_bucket_a", "_bucket_b",
                 "_sign_coeffs", "_rows")

    def __init__(self, width: int, depth: int, rng: np.random.Generator) -> None:
        if width < 2:
            raise SketchError(f"width must be >= 2, got {width}")
        if depth < 1:
            raise SketchError(f"depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        # 2 coefficients per row for the bucket hash (2-wise independence),
        # 4 per row for the sign polynomial (4-wise independence).
        self._bucket_a = rng.integers(1, LARGE_PRIME, size=depth,
                                      dtype=np.uint64)[:, None]
        self._bucket_b = rng.integers(0, LARGE_PRIME, size=depth,
                                      dtype=np.uint64)[:, None]
        self._sign_coeffs = rng.integers(0, LARGE_PRIME, size=(depth, 4),
                                         dtype=np.uint64)
        self._rows = np.arange(depth)[:, None]
        self.table = np.zeros((depth, width), dtype=np.int64)

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------
    def _hash(self, items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-row ``(buckets, signs)`` for a 1-D ``uint64`` item array."""
        x = items[None, :]
        buckets = _reduce61(mulmod61(self._bucket_a, x) + self._bucket_b)
        buckets = (buckets % np.uint64(self.width)).astype(np.intp)
        # Horner evaluation of the degree-3 sign polynomial.
        acc = np.broadcast_to(
            self._sign_coeffs[:, 0][:, None], (self.depth, items.shape[0])
        )
        for j in range(1, 4):
            acc = _reduce61(mulmod61(acc, x) + self._sign_coeffs[:, j][:, None])
        signs = (acc % np.uint64(2)).astype(np.int64) * 2 - 1
        return buckets, signs

    # ------------------------------------------------------------------
    # updates and estimates
    # ------------------------------------------------------------------
    def update_batch(self, items: np.ndarray, counts: np.ndarray | None = None
                     ) -> None:
        """Add ``counts[i]`` (default 1) occurrences of each ``items[i]``."""
        items = np.asarray(items, dtype=np.uint64)
        if items.size == 0:
            return
        buckets, signs = self._hash(items)
        if counts is None:
            values = signs
        else:
            values = signs * np.asarray(counts, dtype=np.int64)[None, :]
        np.add.at(self.table, (self._rows, buckets), values)

    def update(self, item: int, count: int = 1) -> None:
        self.update_batch(np.asarray([item], dtype=np.uint64),
                          np.asarray([count], dtype=np.int64))

    def estimate_batch(self, items: np.ndarray) -> np.ndarray:
        """Median-of-rows frequency estimates for a 1-D item array."""
        items = np.asarray(items, dtype=np.uint64)
        if items.size == 0:
            return np.zeros(0, dtype=np.float64)
        buckets, signs = self._hash(items)
        return np.median(self.table[self._rows, buckets] * signs, axis=0)

    def estimate(self, item: int) -> float:
        return float(self.estimate_batch(np.asarray([item], dtype=np.uint64))[0])

    def l2_estimate(self) -> float:
        """The median-of-rows estimate of ``||f||_2`` (csh's l2estimate)."""
        return math.sqrt(float(np.median(np.sum(
            self.table.astype(np.float64) ** 2, axis=1
        ))))

    def noise_scale(self) -> float:
        """The characteristic estimate error ``||f||_2 / sqrt(width)``."""
        return self.l2_estimate() / math.sqrt(self.width)

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def compatible_with(self, other: "CountSketch") -> bool:
        """True iff ``other`` uses the same shape *and* hash functions."""
        return (
            self.width == other.width
            and self.depth == other.depth
            and np.array_equal(self._bucket_a, other._bucket_a)
            and np.array_equal(self._bucket_b, other._bucket_b)
            and np.array_equal(self._sign_coeffs, other._sign_coeffs)
        )

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Fold ``other`` into this sketch (integer table addition).

        Only sketches with identical hash functions (same width, depth
        and seed) merge; the result is bit-identical to having streamed
        both update sequences through one sketch, in any order.
        """
        if not self.compatible_with(other):
            raise SketchError(
                "cannot merge count sketches with different shapes or "
                "hash seeds; build all shards from the same SketchConfig"
            )
        self.table += other.table
        return self


class HierarchicalCountSketch:
    """A Count-Sketch per digit level, for prefix-descent heavy hitters.

    Level ``l`` sketches the stream of ``item // base^l``; the number of
    levels is the smallest ``d`` with ``base^d >= universe``, so the top
    level has at most ``base`` distinct values and :meth:`find_heavy`
    can seed its descent by enumerating them.  A prefix's frequency is
    the sum of its children's, so any item above the threshold keeps its
    whole prefix chain above it too — the recursion never prunes a true
    heavy hitter (up to estimate noise, absorbed by ``slack``).
    """

    __slots__ = ("universe", "base", "width", "depth", "levels",
                 "sketches", "update_count")

    def __init__(
        self,
        universe: int,
        width: int,
        depth: int,
        base: int = 16,
        seed: "int | Sequence[int]" = 0,
    ) -> None:
        if universe < 1:
            raise SketchError(f"universe must be >= 1, got {universe}")
        if universe > LARGE_PRIME:
            raise SketchError(
                f"universe {universe} exceeds the 2^61 - 1 hashing domain"
            )
        if base < 2:
            raise SketchError(f"base must be >= 2, got {base}")
        self.universe = universe
        self.base = base
        self.width = width
        self.depth = depth
        levels = 1
        span = base
        while span < universe:
            levels += 1
            span *= base
        self.levels = levels
        # One child generator per level: all hash coefficients derive from
        # the explicit per-sketch seed, never from numpy's global RNG.
        children = np.random.SeedSequence(seed).spawn(levels)
        self.sketches = [
            CountSketch(width, depth, np.random.default_rng(child))
            for child in children
        ]
        self.update_count = 0

    def _level_size(self, level: int) -> int:
        """Number of distinct prefix values at ``level``."""
        return -(-self.universe // self.base ** level)  # ceil division

    # ------------------------------------------------------------------
    # updates and estimates
    # ------------------------------------------------------------------
    def update_batch(self, items: Iterable[int],
                     counts: np.ndarray | None = None) -> None:
        items = np.asarray(items, dtype=np.uint64)
        if items.size == 0:
            return
        if counts is not None:
            counts = np.asarray(counts, dtype=np.int64)
        prefixes = items
        base = np.uint64(self.base)
        for sketch in self.sketches:
            sketch.update_batch(prefixes, counts)
            prefixes = prefixes // base
        self.update_count += int(items.size)

    def update(self, item: int, count: int = 1) -> None:
        self.update_batch(np.asarray([item], dtype=np.uint64),
                          np.asarray([count], dtype=np.int64))

    def estimate(self, item: int, level: int = 0) -> float:
        """The estimated frequency of ``item // base^level`` at ``level``."""
        return self.sketches[level].estimate(item)

    def noise_scale(self) -> float:
        """The level-0 characteristic error ``||f||_2 / sqrt(width)``."""
        return self.sketches[0].noise_scale()

    # ------------------------------------------------------------------
    # heavy hitters
    # ------------------------------------------------------------------
    def find_heavy(
        self,
        threshold: float,
        slack: float = 0.0,
        max_candidates: int = 1 << 16,
    ) -> Mapping[int, float]:
        """All items whose estimate exceeds ``threshold - slack``.

        Digit-prefix descent: enumerate the (at most ``base``) top-level
        prefixes, keep those whose estimate clears the slacked threshold,
        expand each survivor into its ``base`` children, repeat down to
        level 0.  ``slack`` absorbs estimate noise so borderline-heavy
        items are *included* rather than missed (the safe side for the
        skew-aware algorithms, which tolerate spurious hitters but not
        missed ones).  The candidate frontier is capped at
        ``max_candidates`` by keeping the largest estimates — genuine
        heavy hitters dominate any truncation.

        Returns ``{item: estimated_frequency}``.
        """
        search = max(1.0, threshold - slack)
        top = self.levels - 1
        candidates = np.arange(self._level_size(top), dtype=np.uint64)
        base = np.uint64(self.base)
        for level in range(top, -1, -1):
            if candidates.size == 0:
                return {}
            if candidates.size > max_candidates:
                order = np.argsort(
                    -self.sketches[level].estimate_batch(candidates)
                )
                candidates = candidates[order[:max_candidates]]
            estimates = self.sketches[level].estimate_batch(candidates)
            keep = estimates > search
            candidates = candidates[keep]
            if level == 0:
                return {
                    int(item): float(freq)
                    for item, freq in zip(candidates, estimates[keep])
                }
            children = (candidates[:, None] * base
                        + np.arange(self.base, dtype=np.uint64)[None, :])
            candidates = children.ravel()
            candidates = candidates[candidates < self._level_size(level - 1)]
        return {}

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def compatible_with(self, other: "HierarchicalCountSketch") -> bool:
        return (
            self.universe == other.universe
            and self.base == other.base
            and self.levels == other.levels
            and all(
                mine.compatible_with(theirs)
                for mine, theirs in zip(self.sketches, other.sketches)
            )
        )

    def merge(self, other: "HierarchicalCountSketch") -> "HierarchicalCountSketch":
        """Fold ``other`` in; exact, associative, order-independent."""
        if not self.compatible_with(other):
            raise SketchError(
                "cannot merge hierarchical sketches with different "
                "universes, bases, or hash seeds"
            )
        for mine, theirs in zip(self.sketches, other.sketches):
            mine.merge(theirs)
        self.update_count += other.update_count
        return self

    def tables(self) -> list[np.ndarray]:
        """The per-level integer tables (for bit-identity assertions)."""
        return [sketch.table for sketch in self.sketches]
