"""Workload generators for the experiments.

Each generator is deterministic given its seed and produces a
:class:`~repro.seq.relation.Relation`:

* :func:`uniform_relation` — uniform random distinct tuples (the random
  instances of the lower-bound proofs, Lemma A.1);
* :func:`matching_relation` — every value appears at most once per attribute
  (the uniform databases of [4], Lemma 3.1(2));
* :func:`zipf_relation` — Zipf-distributed values on chosen positions, the
  standard skew model for experiment E6;
* :func:`single_value_relation` — the adversarial instance of Examples 3.3
  and B.2 (one shared join value);
* :func:`degree_relation` — a binary relation with a prescribed degree
  sequence (the fixed-degree statistics of Section 4.3);
* :func:`planted_heavy_relation` — a controllable mixture of heavy hitters
  and light uniform mass;
* :func:`graph_edges` — random (optionally hub-heavy) graph edge relations
  for triangle workloads.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from ..seq.relation import Relation


class GeneratorError(ValueError):
    """Raised for unsatisfiable generator parameters."""


def _rng(seed: int, label: str) -> random.Random:
    return random.Random(f"{label}:{seed}")


def uniform_relation(
    name: str,
    cardinality: int,
    domain_size: int,
    arity: int = 2,
    seed: int = 0,
) -> Relation:
    """``cardinality`` distinct uniform tuples from ``[domain_size]^arity``."""
    if cardinality > domain_size**arity:
        raise GeneratorError(
            f"cannot draw {cardinality} distinct tuples from a space of "
            f"{domain_size**arity}"
        )
    rng = _rng(seed, f"uniform:{name}")
    tuples: set[tuple[int, ...]] = set()
    while len(tuples) < cardinality:
        tuples.add(tuple(rng.randrange(domain_size) for _ in range(arity)))
    return Relation(
        name=name, arity=arity, tuples=frozenset(tuples), domain_size=domain_size
    )


def matching_relation(
    name: str, cardinality: int, domain_size: int, arity: int = 2, seed: int = 0
) -> Relation:
    """A matching: every value occurs at most once in every attribute."""
    if cardinality > domain_size:
        raise GeneratorError(
            f"a matching of {cardinality} tuples needs a domain >= {cardinality}"
        )
    rng = _rng(seed, f"matching:{name}")
    columns = [
        rng.sample(range(domain_size), cardinality) for _ in range(arity)
    ]
    tuples = frozenset(zip(*columns)) if arity > 0 else frozenset()
    return Relation(
        name=name, arity=arity, tuples=tuples, domain_size=domain_size
    )


def zipf_relation(
    name: str,
    cardinality: int,
    domain_size: int,
    arity: int = 2,
    skew: float = 1.0,
    skewed_positions: Sequence[int] = (1,),
    seed: int = 0,
) -> Relation:
    """Zipf(``skew``) values on ``skewed_positions``, uniform elsewhere.

    ``skew = 0`` degenerates to uniform.  Distinctness is enforced by
    resampling, so the realized frequency of the top value is capped by the
    number of distinct tuples it can participate in.
    """
    rng = _rng(seed, f"zipf:{name}")
    skewed = set(skewed_positions)
    for position in skewed:
        if not 0 <= position < arity:
            raise GeneratorError(f"skewed position {position} outside arity {arity}")
    weights = [1.0 / (rank + 1) ** skew for rank in range(domain_size)]
    tuples: set[tuple[int, ...]] = set()
    attempts = 0
    max_attempts = 50 * cardinality + 1000
    while len(tuples) < cardinality:
        attempts += 1
        if attempts > max_attempts:
            raise GeneratorError(
                f"could not realize {cardinality} distinct tuples with "
                f"skew={skew}; lower the skew or enlarge the domain"
            )
        values = []
        for position in range(arity):
            if position in skewed:
                values.append(rng.choices(range(domain_size), weights)[0])
            else:
                values.append(rng.randrange(domain_size))
        tuples.add(tuple(values))
    return Relation(
        name=name, arity=arity, tuples=frozenset(tuples), domain_size=domain_size
    )


def single_value_relation(
    name: str,
    cardinality: int,
    domain_size: int,
    fixed_position: int = 1,
    fixed_value: int = 0,
    arity: int = 2,
    seed: int = 0,
) -> Relation:
    """All tuples share ``fixed_value`` at ``fixed_position`` — the worst
    case for hash joins (Example 3.3) and for hashing (Example B.2)."""
    if cardinality > domain_size ** (arity - 1):
        raise GeneratorError("not enough distinct tuples with one pinned column")
    rng = _rng(seed, f"single:{name}")
    tuples: set[tuple[int, ...]] = set()
    while len(tuples) < cardinality:
        values = [rng.randrange(domain_size) for _ in range(arity)]
        values[fixed_position] = fixed_value
        tuples.add(tuple(values))
    return Relation(
        name=name, arity=arity, tuples=frozenset(tuples), domain_size=domain_size
    )


def degree_relation(
    name: str,
    degrees: Mapping[int, int],
    domain_size: int,
    degree_position: int = 1,
    seed: int = 0,
) -> Relation:
    """A binary relation realizing the degree sequence ``degrees``:
    value ``h`` (at ``degree_position``) occurs in exactly ``degrees[h]``
    tuples, partners drawn without replacement."""
    rng = _rng(seed, f"degree:{name}")
    tuples: set[tuple[int, int]] = set()
    for value, degree in sorted(degrees.items()):
        if not 0 <= value < domain_size:
            raise GeneratorError(f"value {value} outside domain {domain_size}")
        if degree > domain_size:
            raise GeneratorError(
                f"degree {degree} of value {value} exceeds domain {domain_size}"
            )
        partners = rng.sample(range(domain_size), degree)
        for partner in partners:
            if degree_position == 1:
                tuples.add((partner, value))
            else:
                tuples.add((value, partner))
    return Relation(
        name=name, arity=2, tuples=frozenset(tuples), domain_size=domain_size
    )


def planted_heavy_relation(
    name: str,
    cardinality: int,
    domain_size: int,
    heavy_values: Sequence[int],
    heavy_fraction: float = 0.5,
    heavy_position: int = 1,
    arity: int = 2,
    seed: int = 0,
) -> Relation:
    """A mixture: ``heavy_fraction`` of the tuples concentrate (evenly) on
    ``heavy_values`` at ``heavy_position``; the rest are uniform."""
    if not heavy_values:
        raise GeneratorError("need at least one heavy value")
    if not 0.0 <= heavy_fraction <= 1.0:
        raise GeneratorError("heavy_fraction must lie in [0, 1]")
    rng = _rng(seed, f"planted:{name}")
    heavy_total = int(cardinality * heavy_fraction)
    per_value = max(1, heavy_total // len(heavy_values)) if heavy_total else 0
    tuples: set[tuple[int, ...]] = set()
    for value in heavy_values:
        added = 0
        guard = 0
        while added < per_value and guard < 50 * per_value + 100:
            guard += 1
            candidate = [rng.randrange(domain_size) for _ in range(arity)]
            candidate[heavy_position] = value
            before = len(tuples)
            tuples.add(tuple(candidate))
            added += len(tuples) - before
    guard = 0
    while len(tuples) < cardinality and guard < 100 * cardinality + 1000:
        guard += 1
        tuples.add(tuple(rng.randrange(domain_size) for _ in range(arity)))
    if len(tuples) < cardinality:
        raise GeneratorError("domain too small for the requested mixture")
    return Relation(
        name=name, arity=arity, tuples=frozenset(tuples), domain_size=domain_size
    )


def graph_edges(
    name: str,
    num_nodes: int,
    num_edges: int,
    hub_count: int = 0,
    hub_fraction: float = 0.0,
    seed: int = 0,
) -> Relation:
    """A directed edge relation; with hubs, ``hub_fraction`` of the edges
    attach to the first ``hub_count`` nodes (for skewed triangle counting)."""
    if num_edges > num_nodes * num_nodes:
        raise GeneratorError("too many edges for the node count")
    rng = _rng(seed, f"graph:{name}")
    edges: set[tuple[int, int]] = set()
    hub_target = int(num_edges * hub_fraction) if hub_count else 0
    guard = 0
    while len(edges) < hub_target and guard < 100 * num_edges + 1000:
        guard += 1
        hub = rng.randrange(hub_count)
        other = rng.randrange(num_nodes)
        edges.add((hub, other) if rng.random() < 0.5 else (other, hub))
    guard = 0
    while len(edges) < num_edges and guard < 100 * num_edges + 1000:
        guard += 1
        edges.add((rng.randrange(num_nodes), rng.randrange(num_nodes)))
    if len(edges) < num_edges:
        raise GeneratorError("could not realize the requested edge count")
    return Relation(
        name=name, arity=2, tuples=frozenset(edges), domain_size=num_nodes
    )
