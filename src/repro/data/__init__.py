"""Deterministic workload generators."""

from .generators import (
    GeneratorError,
    degree_relation,
    graph_edges,
    matching_relation,
    planted_heavy_relation,
    single_value_relation,
    uniform_relation,
    zipf_relation,
)

__all__ = [
    "GeneratorError",
    "degree_relation",
    "graph_edges",
    "matching_relation",
    "planted_heavy_relation",
    "single_value_relation",
    "uniform_relation",
    "zipf_relation",
]
