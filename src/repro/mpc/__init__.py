"""MPC simulator: hash families, cluster, one-round execution."""

from .allocation import ServerAllocator
from .cluster import Cluster, LoadReport, Server
from .execution import (
    ExecutionResult,
    OneRoundAlgorithm,
    RoutingPlan,
    run_one_round,
)
from .hashing import HashFamily

__all__ = [
    "ServerAllocator",
    "Cluster",
    "LoadReport",
    "Server",
    "ExecutionResult",
    "OneRoundAlgorithm",
    "RoutingPlan",
    "run_one_round",
    "HashFamily",
]
