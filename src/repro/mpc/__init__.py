"""MPC simulator: hash families, cluster, pluggable execution engines."""

from .allocation import ServerAllocator
from .cluster import Cluster, LoadReport, Server
from .engine import (
    BatchedEngine,
    EngineError,
    ExecutionEngine,
    MultiprocessEngine,
    ReferenceEngine,
    available_engines,
    resolve_engine,
)
from .execution import (
    ExecutionResult,
    OneRoundAlgorithm,
    RoutingPlan,
    run_one_round,
)
from .hashing import HashFamily

__all__ = [
    "ServerAllocator",
    "Cluster",
    "LoadReport",
    "Server",
    "EngineError",
    "ExecutionEngine",
    "ReferenceEngine",
    "BatchedEngine",
    "MultiprocessEngine",
    "available_engines",
    "resolve_engine",
    "ExecutionResult",
    "OneRoundAlgorithm",
    "RoutingPlan",
    "run_one_round",
    "HashFamily",
]
