"""The MPC cluster: ``p`` servers and per-server load accounting.

The model (Section 2.1): ``p`` workers with unlimited local compute; the cost
of a one-round algorithm is the **load** ``L`` — the maximum number of bits
any server receives during the communication round.  The cluster tracks, for
every server, the set of tuples received per relation (sets, because sending
the same tuple twice to the same server is useless and charged once — our
algorithms never do) plus running bit/tuple counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..seq.relation import Tuple


@dataclass
class Server:
    """One worker: its received fragments and load counters.

    Bit loads are computed as ``count * tuple_bits`` per relation (rather
    than accumulated tuple by tuple) so that every execution engine —
    whatever order or batching it routes tuples in — reports bit-identical
    per-server loads (see :mod:`repro.mpc.engine`).
    """

    index: int
    fragments: dict[str, set[Tuple]] = field(default_factory=dict)
    received_tuples: int = 0
    tuple_bits_by_relation: dict[str, float] = field(default_factory=dict)

    def receive(self, relation_name: str, tup: Tuple, tuple_bits: float) -> None:
        fragment = self.fragments.setdefault(relation_name, set())
        if tup not in fragment:
            fragment.add(tup)
            self.received_tuples += 1
            self.tuple_bits_by_relation[relation_name] = tuple_bits

    @property
    def received_bits(self) -> float:
        bits = 0.0
        for name, fragment in self.fragments.items():
            if fragment:
                bits += len(fragment) * self.tuple_bits_by_relation[name]
        return bits


@dataclass(frozen=True)
class LoadReport:
    """Load summary of one communication round."""

    p: int
    per_server_tuples: tuple[int, ...]
    per_server_bits: tuple[float, ...]
    input_tuples: int
    input_bits: float

    @property
    def max_load_tuples(self) -> int:
        return max(self.per_server_tuples, default=0)

    @property
    def max_load_bits(self) -> float:
        return max(self.per_server_bits, default=0.0)

    @property
    def total_tuples(self) -> int:
        return sum(self.per_server_tuples)

    @property
    def total_bits(self) -> float:
        return sum(self.per_server_bits)

    @property
    def replication_rate(self) -> float:
        """Total communicated bits over input bits (Section 5's ``r``)."""
        if self.input_bits == 0:
            return 0.0
        return self.total_bits / self.input_bits

    @property
    def balance(self) -> float:
        """Max over mean per-server bits — 1.0 means perfectly even."""
        if self.p == 0 or self.total_bits == 0:
            return 1.0
        return self.max_load_bits / (self.total_bits / self.p)

    def describe(self) -> str:
        return (
            f"p={self.p} max_load={self.max_load_bits:.0f} bits "
            f"({self.max_load_tuples} tuples), replication={self.replication_rate:.2f}, "
            f"balance={self.balance:.2f}"
        )


class Cluster:
    """``p`` servers plus the bookkeeping of one communication round."""

    def __init__(self, p: int) -> None:
        if p < 1:
            raise ValueError("cluster needs at least one server")
        self.p = p
        self.servers = [Server(index=i) for i in range(p)]

    def send(
        self,
        server_index: int,
        relation_name: str,
        tup: Tuple,
        tuple_bits: float,
    ) -> None:
        if not 0 <= server_index < self.p:
            raise IndexError(
                f"server index {server_index} outside [0, {self.p})"
            )
        self.servers[server_index].receive(relation_name, tup, tuple_bits)

    def broadcast(
        self, relation_name: str, tup: Tuple, tuple_bits: float
    ) -> None:
        for server in self.servers:
            server.receive(relation_name, tup, tuple_bits)

    def send_many(
        self,
        server_indices: Iterable[int],
        relation_name: str,
        tup: Tuple,
        tuple_bits: float,
    ) -> None:
        for index in server_indices:
            self.send(index, relation_name, tup, tuple_bits)

    def load_report(self, input_tuples: int, input_bits: float) -> LoadReport:
        return LoadReport(
            p=self.p,
            per_server_tuples=tuple(s.received_tuples for s in self.servers),
            per_server_bits=tuple(s.received_bits for s in self.servers),
            input_tuples=input_tuples,
            input_bits=input_bits,
        )
