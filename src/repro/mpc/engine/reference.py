"""The reference engine: tuple-at-a-time routing through a full cluster.

This is the seed simulator's ``run_one_round`` body, unchanged in behavior:
every tuple goes through the scalar :meth:`RoutingPlan.destinations` path,
every fragment is materialized in :class:`repro.mpc.cluster.Server` objects.
It is the slowest engine and the parity oracle the others are tested
against — keep it simple enough to trust.

Instrumentation (``obs`` not None) is per phase and per relation — never
per tuple — so observing the oracle does not distort what it measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...obs import maybe_timed
from ...seq.join import evaluate, local_join
from ...seq.relation import Database, Tuple
from ..cluster import Cluster
from ..execution import ExecutionResult, OneRoundAlgorithm
from ..hashing import HashFamily
from .base import ExecutionEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...obs import Observation


class ReferenceEngine(ExecutionEngine):
    """Tuple-at-a-time simulation with fully materialized fragments."""

    name = "reference"

    def _run(
        self,
        algorithm: OneRoundAlgorithm,
        db: Database,
        p: int,
        seed: int,
        compute_answers: bool,
        verify: bool,
        obs: "Observation | None",
    ) -> ExecutionResult:
        query = algorithm.query
        db.validate_against(query)
        cluster = Cluster(p)
        hashes = HashFamily(seed)
        with maybe_timed(obs, "engine.plan_build", algorithm=algorithm.name):
            plan = algorithm.routing_plan(db, p, hashes)

        input_tuples = 0
        input_bits = 0.0
        for atom in query.atoms:
            relation = db.relation(atom.name)
            tuple_bits = relation.tuple_bits
            input_tuples += relation.cardinality
            input_bits += relation.bits
            routed_before = sum(s.received_tuples for s in cluster.servers) \
                if obs is not None else 0
            with maybe_timed(obs, "engine.route", relation=atom.name):
                for tup in relation.tuples:
                    cluster.send_many(
                        plan.destinations(atom.name, tup), atom.name, tup,
                        tuple_bits,
                    )
            if obs is not None:
                routed = sum(
                    s.received_tuples for s in cluster.servers
                ) - routed_before
                obs.count(f"engine.routed_tuples.{atom.name}", routed)
                obs.count(f"engine.shipped_bits.{atom.name}",
                          routed * tuple_bits)

        answers: frozenset[Tuple] | None = None
        if compute_answers:
            collected: set[Tuple] = set()
            with maybe_timed(obs, "engine.local_join"):
                for server in cluster.servers:
                    if server.fragments:
                        collected |= local_join(
                            query, server.fragments, db.domain_size
                        )
            answers = frozenset(collected)

        expected = None
        if verify:
            with maybe_timed(obs, "engine.verify"):
                expected = evaluate(query, db)
        return ExecutionResult(
            algorithm=algorithm.name,
            query=query,
            p=p,
            seed=seed,
            report=cluster.load_report(input_tuples, input_bits),
            answers=answers,
            expected_answers=expected,
            details=dict(plan.describe()),
        )
