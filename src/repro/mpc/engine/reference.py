"""The reference engine: tuple-at-a-time routing through a full cluster.

This is the seed simulator's ``run_one_round`` body, unchanged in behavior:
every tuple goes through the scalar :meth:`RoutingPlan.destinations` path,
every fragment is materialized in :class:`repro.mpc.cluster.Server` objects.
It is the slowest engine and the parity oracle the others are tested
against — keep it simple enough to trust.
"""

from __future__ import annotations

from ...seq.join import evaluate, local_join
from ...seq.relation import Database, Tuple
from ..cluster import Cluster
from ..execution import ExecutionResult, OneRoundAlgorithm
from ..hashing import HashFamily
from .base import ExecutionEngine


class ReferenceEngine(ExecutionEngine):
    """Tuple-at-a-time simulation with fully materialized fragments."""

    name = "reference"

    def run(
        self,
        algorithm: OneRoundAlgorithm,
        db: Database,
        p: int,
        seed: int = 0,
        compute_answers: bool = True,
        verify: bool = False,
    ) -> ExecutionResult:
        query = algorithm.query
        db.validate_against(query)
        cluster = Cluster(p)
        hashes = HashFamily(seed)
        plan = algorithm.routing_plan(db, p, hashes)

        input_tuples = 0
        input_bits = 0.0
        for atom in query.atoms:
            relation = db.relation(atom.name)
            tuple_bits = relation.tuple_bits
            input_tuples += relation.cardinality
            input_bits += relation.bits
            for tup in relation.tuples:
                cluster.send_many(
                    plan.destinations(atom.name, tup), atom.name, tup, tuple_bits
                )

        answers: frozenset[Tuple] | None = None
        if compute_answers:
            collected: set[Tuple] = set()
            for server in cluster.servers:
                if server.fragments:
                    collected |= local_join(
                        query, server.fragments, db.domain_size
                    )
            answers = frozenset(collected)

        expected = evaluate(query, db) if verify else None
        return ExecutionResult(
            algorithm=algorithm.name,
            query=query,
            p=p,
            seed=seed,
            report=cluster.load_report(input_tuples, input_bits),
            answers=answers,
            expected_answers=expected,
            details=dict(plan.describe()),
        )
