"""Pluggable execution engines for the one-round MPC simulator.

The engine subsystem separates *what* a one-round algorithm does (its
:class:`repro.mpc.execution.RoutingPlan`) from *how* the round is simulated:

``reference``
    :class:`ReferenceEngine` — the original tuple-at-a-time simulator with
    fully materialized server fragments.  Slowest; the parity oracle.
``batched``
    :class:`BatchedEngine` — routes each relation with one vectorized
    ``destinations_batch`` call, streams load accounting without fragments
    when answers are not requested, and interns tuples when they are.
``mp``
    :class:`MultiprocessEngine` — shards routing and local joins across a
    ``multiprocessing`` pool and merges the per-shard loads.

All engines are answer- and load-identical (``tests/test_engine_parity.py``);
pick by speed/memory: ``batched`` for big single-process runs, ``mp`` when
local joins dominate and cores are available.
"""

from .base import EngineError, ExecutionEngine, available_engines, resolve_engine
from .batched import BatchedEngine
from .multiprocess import MultiprocessEngine
from .reference import ReferenceEngine

__all__ = [
    "EngineError",
    "ExecutionEngine",
    "available_engines",
    "resolve_engine",
    "ReferenceEngine",
    "BatchedEngine",
    "MultiprocessEngine",
]
