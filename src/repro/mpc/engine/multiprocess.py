"""The multiprocessing engine: sharded routing and local joins.

The round is simulated in two parallel phases over a worker pool:

1. **Routing** — every relation's tuples are split into per-worker chunks;
   each worker runs :meth:`RoutingPlan.destinations_batch` on its chunk and
   returns per-server received counts plus (when answers are requested) the
   per-server fragment slices.  Counts merge by integer addition and
   fragments by set union — exact operations, so parity with the in-process
   engines is preserved.  Per-server bits are folded in the parent as
   ``count * tuple_bits`` per relation in atom order, the same fold every
   engine uses, so bit loads stay bit-identical.
2. **Local joins** — the nonempty servers are sharded across the same pool;
   each worker joins its servers' fragments and the answer sets are unioned.

When observing (``obs`` not None), each worker snapshots its own metrics
(chunk routing/join wall clock, tuples per chunk) as plain dicts; the
parent folds them into the round's :class:`~repro.obs.MetricsRegistry`
via ``merge_snapshot`` — counters add and histogram values concatenate,
so per-worker timings aggregate exactly.

The routing plan is shipped to the workers once via the pool initializer.
Worker processes use the ``fork`` start method when the platform offers it
(cheapest; the plan is inherited), falling back to the default method
otherwise.  When only one worker is configured — or the platform cannot
spawn processes at all — the engine degrades to the in-process
:class:`repro.mpc.engine.BatchedEngine`, which is result-identical.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import TYPE_CHECKING, Sequence

from ...obs import maybe_timed
from ...query.atoms import ConjunctiveQuery
from ...seq.join import evaluate, local_join
from ...seq.relation import Database, Tuple
from ..cluster import LoadReport
from ..execution import ExecutionResult, OneRoundAlgorithm, RoutingPlan
from ..hashing import HashFamily
from .base import ExecutionEngine
from .batched import BatchedEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...obs import Observation

def pool_context():
    """Fork-first multiprocessing context (fork inherits routing plans and
    cells for free); the platform default otherwise.  Shared by this
    engine and the sweep runner's cell farm."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# Per-worker state installed by the pool initializer (plan, query, domain,
# compute_answers).  Module-level so the worker functions are picklable.
_STATE: dict[str, object] = {}


def _init_worker(
    plan: RoutingPlan,
    query: ConjunctiveQuery,
    domain_size: int,
    compute_answers: bool,
    observe: bool = False,
) -> None:
    _STATE["plan"] = plan
    _STATE["query"] = query
    _STATE["domain_size"] = domain_size
    _STATE["compute_answers"] = compute_answers
    _STATE["observe"] = observe


def _route_chunk(
    task: tuple[str, Sequence[Tuple]]
) -> tuple[str, dict[int, int], dict[int, list[Tuple]], dict | None]:
    """Route one chunk of one relation: (relation, counts, fragment slices,
    worker metrics snapshot or None)."""
    relation_name, tuples = task
    plan: RoutingPlan = _STATE["plan"]  # type: ignore[assignment]
    started = time.perf_counter() if _STATE.get("observe") else None
    fragments: dict[int, list[Tuple]] = {}
    if _STATE["compute_answers"]:
        counts: dict[int, int] = {}
        for tup, dests in zip(
            tuples, plan.destinations_batch(relation_name, tuples)
        ):
            for server in dests:
                counts[server] = counts.get(server, 0) + 1
                fragments.setdefault(server, []).append(tup)
    else:
        counts = dict(plan.destination_counts(relation_name, tuples))
    snapshot = None
    if started is not None:
        # A plain-dict MetricsRegistry.merge_snapshot payload: picklable,
        # and aggregated exactly in the parent (counters add, histogram
        # values concatenate).
        snapshot = {
            "counters": {"mp.route_chunks": 1, "mp.route_tuples": len(tuples)},
            "histograms": {
                "mp.worker_route.seconds": [time.perf_counter() - started],
            },
        }
    return relation_name, counts, fragments, snapshot


def _join_chunk(
    server_fragments: Sequence[dict[str, set[Tuple]]]
) -> tuple[set[Tuple], dict | None]:
    """Join the fragments of a shard of servers and union their answers."""
    query: ConjunctiveQuery = _STATE["query"]  # type: ignore[assignment]
    domain_size: int = _STATE["domain_size"]  # type: ignore[assignment]
    started = time.perf_counter() if _STATE.get("observe") else None
    collected: set[Tuple] = set()
    for fragments in server_fragments:
        collected |= local_join(query, fragments, domain_size)
    snapshot = None
    if started is not None:
        snapshot = {
            "counters": {"mp.join_chunks": 1,
                         "mp.join_servers": len(server_fragments)},
            "histograms": {
                "mp.worker_join.seconds": [time.perf_counter() - started],
            },
        }
    return collected, snapshot


def _chunks(items: list, pieces: int) -> list[list]:
    """Split ``items`` into at most ``pieces`` contiguous nonempty chunks."""
    if not items:
        return []
    pieces = min(pieces, len(items))
    size, extra = divmod(len(items), pieces)
    out, start = [], 0
    for i in range(pieces):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


class MultiprocessEngine(ExecutionEngine):
    """Shards routing and local joins across a ``multiprocessing`` pool."""

    name = "mp"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers

    def _resolved_workers(self) -> int:
        if self.workers is not None:
            if self.workers < 1:
                raise ValueError("worker count must be >= 1")
            return self.workers
        return max(2, min(4, os.cpu_count() or 1))

    @staticmethod
    def _context():
        return pool_context()

    def _run(
        self,
        algorithm: OneRoundAlgorithm,
        db: Database,
        p: int,
        seed: int,
        compute_answers: bool,
        verify: bool,
        obs: "Observation | None",
    ) -> ExecutionResult:
        workers = self._resolved_workers()
        if workers == 1:
            return BatchedEngine()._run(
                algorithm, db, p, seed, compute_answers, verify, obs,
            )
        if p < 1:
            raise ValueError("cluster needs at least one server")
        query = algorithm.query
        db.validate_against(query)
        hashes = HashFamily(seed)
        with maybe_timed(obs, "engine.plan_build", algorithm=algorithm.name):
            plan = algorithm.routing_plan(db, p, hashes)

        tasks: list[tuple[str, list[Tuple]]] = []
        input_tuples = 0
        input_bits = 0.0
        for atom in query.atoms:
            relation = db.relation(atom.name)
            input_tuples += relation.cardinality
            input_bits += relation.bits
            for chunk in _chunks(list(relation.tuples), workers):
                tasks.append((atom.name, chunk))

        try:
            ctx = self._context()
            pool = ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(plan, query, db.domain_size, compute_answers,
                          obs is not None),
            )
        except OSError:
            # No processes available (restricted sandboxes): same results,
            # computed in-process.  Errors *during* the parallel phases are
            # real failures and propagate.
            return BatchedEngine()._run(
                algorithm, db, p, seed, compute_answers, verify, obs,
            )
        if obs is not None:
            obs.set_gauge("mp.workers", workers)
            obs.count("mp.pools_opened")
        with pool:
            with maybe_timed(obs, "engine.route", chunks=len(tasks)):
                routed = pool.map(_route_chunk, tasks) if tasks else []

            counts_by_relation: dict[str, dict[int, int]] = {}
            fragments: list[dict[str, set[Tuple]]] = [{} for _ in range(p)]
            with maybe_timed(obs, "engine.shuffle_merge"):
                for relation_name, counts, chunk_fragments, snap in routed:
                    merged = counts_by_relation.setdefault(relation_name, {})
                    for server, count in counts.items():
                        merged[server] = merged.get(server, 0) + count
                    for server, tuples in chunk_fragments.items():
                        fragments[server].setdefault(
                            relation_name, set()
                        ).update(tuples)
                    if obs is not None and snap is not None:
                        obs.metrics.merge_snapshot(snap)

            answers: frozenset[Tuple] | None = None
            if compute_answers:
                occupied = [frag for frag in fragments if frag]
                collected: set[Tuple] = set()
                with maybe_timed(obs, "engine.local_join"):
                    for joined, snap in pool.map(
                        _join_chunk, _chunks(occupied, workers)
                    ):
                        collected |= joined
                        if obs is not None and snap is not None:
                            obs.metrics.merge_snapshot(snap)
                answers = frozenset(collected)

        per_server_tuples = [0] * p
        per_server_bits = [0.0] * p
        for atom in query.atoms:
            tuple_bits = db.relation(atom.name).tuple_bits
            routed_relation = 0
            for server, count in sorted(
                counts_by_relation.get(atom.name, {}).items()
            ):
                per_server_tuples[server] += count
                per_server_bits[server] += count * tuple_bits
                routed_relation += count
            if obs is not None:
                obs.count(f"engine.routed_tuples.{atom.name}",
                          routed_relation)
                obs.count(f"engine.shipped_bits.{atom.name}",
                          routed_relation * tuple_bits)

        expected = None
        if verify:
            with maybe_timed(obs, "engine.verify"):
                expected = evaluate(query, db)
        return ExecutionResult(
            algorithm=algorithm.name,
            query=query,
            p=p,
            seed=seed,
            report=LoadReport(
                p=p,
                per_server_tuples=tuple(per_server_tuples),
                per_server_bits=tuple(per_server_bits),
                input_tuples=input_tuples,
                input_bits=input_bits,
            ),
            answers=answers,
            expected_answers=expected,
            details=dict(plan.describe()),
        )
