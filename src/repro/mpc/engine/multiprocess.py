"""The multiprocessing engine: sharded routing and local joins.

The round is simulated in two parallel phases over a worker pool:

1. **Routing** — every relation's tuples are split into per-worker chunks;
   each worker runs :meth:`RoutingPlan.destinations_batch` on its chunk and
   returns per-server received counts plus (when answers are requested) the
   per-server fragment slices.  Counts merge by integer addition and
   fragments by set union — exact operations, so parity with the in-process
   engines is preserved.  Per-server bits are folded in the parent as
   ``count * tuple_bits`` per relation in atom order, the same fold every
   engine uses, so bit loads stay bit-identical.
2. **Local joins** — the nonempty servers are sharded across the same pool;
   each worker joins its servers' fragments and the answer sets are unioned.

The routing plan is shipped to the workers once via the pool initializer.
Worker processes use the ``fork`` start method when the platform offers it
(cheapest; the plan is inherited), falling back to the default method
otherwise.  When only one worker is configured — or the platform cannot
spawn processes at all — the engine degrades to the in-process
:class:`repro.mpc.engine.BatchedEngine`, which is result-identical.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Sequence

from ...query.atoms import ConjunctiveQuery
from ...seq.join import evaluate, local_join
from ...seq.relation import Database, Tuple
from ..cluster import LoadReport
from ..execution import ExecutionResult, OneRoundAlgorithm, RoutingPlan
from ..hashing import HashFamily
from .base import ExecutionEngine
from .batched import BatchedEngine

def pool_context():
    """Fork-first multiprocessing context (fork inherits routing plans and
    cells for free); the platform default otherwise.  Shared by this
    engine and the sweep runner's cell farm."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# Per-worker state installed by the pool initializer (plan, query, domain,
# compute_answers).  Module-level so the worker functions are picklable.
_STATE: dict[str, object] = {}


def _init_worker(
    plan: RoutingPlan,
    query: ConjunctiveQuery,
    domain_size: int,
    compute_answers: bool,
) -> None:
    _STATE["plan"] = plan
    _STATE["query"] = query
    _STATE["domain_size"] = domain_size
    _STATE["compute_answers"] = compute_answers


def _route_chunk(
    task: tuple[str, Sequence[Tuple]]
) -> tuple[str, dict[int, int], dict[int, list[Tuple]]]:
    """Route one chunk of one relation: (relation, counts, fragment slices)."""
    relation_name, tuples = task
    plan: RoutingPlan = _STATE["plan"]  # type: ignore[assignment]
    fragments: dict[int, list[Tuple]] = {}
    if _STATE["compute_answers"]:
        counts: dict[int, int] = {}
        for tup, dests in zip(
            tuples, plan.destinations_batch(relation_name, tuples)
        ):
            for server in dests:
                counts[server] = counts.get(server, 0) + 1
                fragments.setdefault(server, []).append(tup)
    else:
        counts = dict(plan.destination_counts(relation_name, tuples))
    return relation_name, counts, fragments


def _join_chunk(
    server_fragments: Sequence[dict[str, set[Tuple]]]
) -> set[Tuple]:
    """Join the fragments of a shard of servers and union their answers."""
    query: ConjunctiveQuery = _STATE["query"]  # type: ignore[assignment]
    domain_size: int = _STATE["domain_size"]  # type: ignore[assignment]
    collected: set[Tuple] = set()
    for fragments in server_fragments:
        collected |= local_join(query, fragments, domain_size)
    return collected


def _chunks(items: list, pieces: int) -> list[list]:
    """Split ``items`` into at most ``pieces`` contiguous nonempty chunks."""
    if not items:
        return []
    pieces = min(pieces, len(items))
    size, extra = divmod(len(items), pieces)
    out, start = [], 0
    for i in range(pieces):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


class MultiprocessEngine(ExecutionEngine):
    """Shards routing and local joins across a ``multiprocessing`` pool."""

    name = "mp"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers

    def _resolved_workers(self) -> int:
        if self.workers is not None:
            if self.workers < 1:
                raise ValueError("worker count must be >= 1")
            return self.workers
        return max(2, min(4, os.cpu_count() or 1))

    @staticmethod
    def _context():
        return pool_context()

    def run(
        self,
        algorithm: OneRoundAlgorithm,
        db: Database,
        p: int,
        seed: int = 0,
        compute_answers: bool = True,
        verify: bool = False,
    ) -> ExecutionResult:
        workers = self._resolved_workers()
        if workers == 1:
            return BatchedEngine().run(
                algorithm, db, p,
                seed=seed, compute_answers=compute_answers, verify=verify,
            )
        if p < 1:
            raise ValueError("cluster needs at least one server")
        query = algorithm.query
        db.validate_against(query)
        hashes = HashFamily(seed)
        plan = algorithm.routing_plan(db, p, hashes)

        tasks: list[tuple[str, list[Tuple]]] = []
        input_tuples = 0
        input_bits = 0.0
        for atom in query.atoms:
            relation = db.relation(atom.name)
            input_tuples += relation.cardinality
            input_bits += relation.bits
            for chunk in _chunks(list(relation.tuples), workers):
                tasks.append((atom.name, chunk))

        try:
            ctx = self._context()
            pool = ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(plan, query, db.domain_size, compute_answers),
            )
        except OSError:
            # No processes available (restricted sandboxes): same results,
            # computed in-process.  Errors *during* the parallel phases are
            # real failures and propagate.
            return BatchedEngine().run(
                algorithm, db, p,
                seed=seed, compute_answers=compute_answers, verify=verify,
            )
        with pool:
            routed = pool.map(_route_chunk, tasks) if tasks else []

            counts_by_relation: dict[str, dict[int, int]] = {}
            fragments: list[dict[str, set[Tuple]]] = [{} for _ in range(p)]
            for relation_name, counts, chunk_fragments in routed:
                merged = counts_by_relation.setdefault(relation_name, {})
                for server, count in counts.items():
                    merged[server] = merged.get(server, 0) + count
                for server, tuples in chunk_fragments.items():
                    fragments[server].setdefault(
                        relation_name, set()
                    ).update(tuples)

            answers: frozenset[Tuple] | None = None
            if compute_answers:
                occupied = [frag for frag in fragments if frag]
                collected: set[Tuple] = set()
                for joined in pool.map(
                    _join_chunk, _chunks(occupied, workers)
                ):
                    collected |= joined
                answers = frozenset(collected)

        per_server_tuples = [0] * p
        per_server_bits = [0.0] * p
        for atom in query.atoms:
            tuple_bits = db.relation(atom.name).tuple_bits
            for server, count in sorted(
                counts_by_relation.get(atom.name, {}).items()
            ):
                per_server_tuples[server] += count
                per_server_bits[server] += count * tuple_bits

        expected = evaluate(query, db) if verify else None
        return ExecutionResult(
            algorithm=algorithm.name,
            query=query,
            p=p,
            seed=seed,
            report=LoadReport(
                p=p,
                per_server_tuples=tuple(per_server_tuples),
                per_server_bits=tuple(per_server_bits),
                input_tuples=input_tuples,
                input_bits=input_bits,
            ),
            answers=answers,
            expected_answers=expected,
            details=dict(plan.describe()),
        )
