"""The batched engine: vectorized routing and streaming load accounting.

Differences from :class:`repro.mpc.engine.ReferenceEngine`, none of which
change the observable results:

* each relation is routed with one :meth:`RoutingPlan.destinations_batch`
  call, so plans can hoist salt formatting, bucket memoization and
  replication offsets out of the per-tuple loop (the fast paths live on
  :class:`repro.core.hypercube.HyperCubePlan` and friends);
* with ``compute_answers=False`` no fragment is materialized at all — the
  engine streams per-server *counts* through a :class:`collections.Counter`
  (C-speed) and folds bits as ``count * tuple_bits`` per relation, so load
  experiments scale to inputs far beyond what the reference engine holds in
  memory;
* with ``compute_answers=True`` tuples are interned across relations (equal
  tuples share one object) before landing in fragments, cutting the memory
  of highly replicated rounds.

Per-server bit loads are folded in atom order exactly like the reference
cluster, so the two engines agree bit for bit.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from ...obs import maybe_timed
from ...seq.join import evaluate, local_join
from ...seq.relation import Database, Tuple
from ..cluster import LoadReport
from ..execution import ExecutionResult, OneRoundAlgorithm
from ..hashing import HashFamily
from .base import ExecutionEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...obs import Observation


class BatchedEngine(ExecutionEngine):
    """Batch routing; streams loads without fragments when answers are off."""

    name = "batched"

    def _run(
        self,
        algorithm: OneRoundAlgorithm,
        db: Database,
        p: int,
        seed: int,
        compute_answers: bool,
        verify: bool,
        obs: "Observation | None",
    ) -> ExecutionResult:
        if p < 1:
            raise ValueError("cluster needs at least one server")
        query = algorithm.query
        db.validate_against(query)
        hashes = HashFamily(seed)
        with maybe_timed(obs, "engine.plan_build", algorithm=algorithm.name):
            plan = algorithm.routing_plan(db, p, hashes)

        per_server_tuples = [0] * p
        per_server_bits = [0.0] * p
        fragments: list[dict[str, set[Tuple]]] | None = (
            [{} for _ in range(p)] if compute_answers else None
        )
        interned: dict[Tuple, Tuple] = {}

        input_tuples = 0
        input_bits = 0.0
        for atom in query.atoms:
            relation = db.relation(atom.name)
            tuple_bits = relation.tuple_bits
            input_tuples += relation.cardinality
            input_bits += relation.bits
            tuples = list(relation.tuples)

            with maybe_timed(obs, "engine.route", relation=atom.name):
                if fragments is None:
                    counts = plan.destination_counts(atom.name, tuples)
                    routed = 0
                    for server, count in counts.items():
                        per_server_tuples[server] += count
                        per_server_bits[server] += count * tuple_bits
                        routed += count
                else:
                    name = atom.name
                    destinations = plan.destinations_batch(atom.name, tuples)
                    rel_counts: Counter[int] = Counter()
                    for tup, dests in zip(tuples, destinations):
                        tup = interned.setdefault(tup, tup)
                        for server in dests:
                            fragments[server].setdefault(name, set()).add(tup)
                        rel_counts.update(dests)
                    routed = 0
                    for server, count in rel_counts.items():
                        per_server_tuples[server] += count
                        per_server_bits[server] += count * tuple_bits
                        routed += count
            if obs is not None:
                obs.count(f"engine.routed_tuples.{atom.name}", routed)
                obs.count(f"engine.shipped_bits.{atom.name}",
                          routed * tuple_bits)

        answers: frozenset[Tuple] | None = None
        if fragments is not None:
            collected: set[Tuple] = set()
            with maybe_timed(obs, "engine.local_join"):
                for server_fragments in fragments:
                    if server_fragments:
                        collected |= local_join(
                            query, server_fragments, db.domain_size
                        )
            answers = frozenset(collected)

        expected = None
        if verify:
            with maybe_timed(obs, "engine.verify"):
                expected = evaluate(query, db)
        return ExecutionResult(
            algorithm=algorithm.name,
            query=query,
            p=p,
            seed=seed,
            report=LoadReport(
                p=p,
                per_server_tuples=tuple(per_server_tuples),
                per_server_bits=tuple(per_server_bits),
                input_tuples=input_tuples,
                input_bits=input_bits,
            ),
            answers=answers,
            expected_answers=expected,
            details=dict(plan.describe()),
        )
