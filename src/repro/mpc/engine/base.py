"""The :class:`ExecutionEngine` interface and engine registry.

An execution engine simulates one communication round: it builds the
algorithm's routing plan, delivers every input tuple to its destination
servers, accounts per-server loads, and (optionally) runs the local joins.
The contract is strict: **every engine must return the same answers, the
same per-server tuple counts, and bit-identical per-server bit loads** as
:class:`repro.mpc.engine.ReferenceEngine` for any algorithm and database.
``tests/test_engine_parity.py`` enforces the contract for every registered
engine; new engines should be added to :data:`ENGINES` and that test suite.

Bit-identity is achievable because all load accounting computes per-server
bits as ``received_count * tuple_bits`` per relation, folded in the query's
atom order — never as an order-dependent running float sum.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ...seq.relation import Database
from ..execution import ExecutionResult, OneRoundAlgorithm


class EngineError(ValueError):
    """Raised for unknown engine names or malformed engine configuration."""


class ExecutionEngine(ABC):
    """Simulates one MPC communication round for any one-round algorithm."""

    #: Registry key and CLI spelling of the engine.
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        algorithm: OneRoundAlgorithm,
        db: Database,
        p: int,
        seed: int = 0,
        compute_answers: bool = True,
        verify: bool = False,
    ) -> ExecutionResult:
        """Simulate one round; see :func:`repro.mpc.run_one_round`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def _registry() -> dict[str, type[ExecutionEngine]]:
    from .batched import BatchedEngine
    from .multiprocess import MultiprocessEngine
    from .reference import ReferenceEngine

    return {
        ReferenceEngine.name: ReferenceEngine,
        BatchedEngine.name: BatchedEngine,
        MultiprocessEngine.name: MultiprocessEngine,
    }


def available_engines() -> tuple[str, ...]:
    """The registered engine names, in registration order."""
    return tuple(_registry())


def resolve_engine(engine: "str | ExecutionEngine") -> ExecutionEngine:
    """An engine instance from a registry name or a ready-made instance."""
    if isinstance(engine, ExecutionEngine):
        return engine
    registry = _registry()
    try:
        factory = registry[engine]
    except (KeyError, TypeError):
        raise EngineError(
            f"unknown execution engine {engine!r}; "
            f"available: {', '.join(registry)}"
        ) from None
    return factory()
