"""The :class:`ExecutionEngine` interface and engine registry.

An execution engine simulates one communication round: it builds the
algorithm's routing plan, delivers every input tuple to its destination
servers, accounts per-server loads, and (optionally) runs the local joins.
The contract is strict: **every engine must return the same answers, the
same per-server tuple counts, and bit-identical per-server bit loads** as
:class:`repro.mpc.engine.ReferenceEngine` for any algorithm and database.
``tests/test_engine_parity.py`` enforces the contract for every registered
engine; new engines should be added to :data:`ENGINES` and that test suite.

Bit-identity is achievable because all load accounting computes per-server
bits as ``received_count * tuple_bits`` per relation, folded in the query's
atom order — never as an order-dependent running float sum.

Observability hooks on :meth:`ExecutionEngine.run`: ``run`` is a template
method — it opens the ``engine.run`` span, delegates to the
engine-specific :meth:`ExecutionEngine._run`, then records the standard
result metrics (tuples routed, bits shipped, per-server load histogram,
skew ratio) every engine must agree on.  With ``obs=None`` (the default)
the template is a plain delegation and no instrument is touched, so
disabled observability is free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from ...seq.relation import Database
from ..execution import ExecutionResult, OneRoundAlgorithm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...obs import Observation


class EngineError(ValueError):
    """Raised for unknown engine names or malformed engine configuration."""


class ExecutionEngine(ABC):
    """Simulates one MPC communication round for any one-round algorithm."""

    #: Registry key and CLI spelling of the engine.
    name: str = "abstract"

    def run(
        self,
        algorithm: OneRoundAlgorithm,
        db: Database,
        p: int,
        seed: int = 0,
        compute_answers: bool = True,
        verify: bool = False,
        obs: "Observation | None" = None,
    ) -> ExecutionResult:
        """Simulate one round; see :func:`repro.mpc.run_one_round`.

        ``obs`` (an :class:`repro.obs.Observation`) enables tracing and
        metrics for the round; the engine-independent result metrics are
        recorded here so every engine reports them identically.
        """
        if obs is None:
            return self._run(algorithm, db, p, seed, compute_answers, verify,
                             None)
        with obs.timed(
            "engine.run",
            engine=self.name, algorithm=algorithm.name, p=p, seed=seed,
        ):
            result = self._run(
                algorithm, db, p, seed, compute_answers, verify, obs
            )
        self._record_result_metrics(obs, result)
        return result

    @abstractmethod
    def _run(
        self,
        algorithm: OneRoundAlgorithm,
        db: Database,
        p: int,
        seed: int,
        compute_answers: bool,
        verify: bool,
        obs: "Observation | None",
    ) -> ExecutionResult:
        """Engine-specific round simulation (``obs`` may be None)."""

    @staticmethod
    def _record_result_metrics(
        obs: "Observation", result: ExecutionResult
    ) -> None:
        """The engine-independent metrics of a finished round.

        Everything here is a pure function of the (engine-independent)
        :class:`~repro.mpc.cluster.LoadReport`, so
        ``tests/test_obs_integration.py`` can require exact agreement
        across engines on a fixed seed.
        """
        report = result.report
        metrics = obs.metrics
        metrics.counter("engine.input_tuples").inc(report.input_tuples)
        metrics.counter("engine.input_bits").inc(report.input_bits)
        metrics.counter("engine.routed_tuples").inc(report.total_tuples)
        metrics.counter("engine.shipped_bits").inc(report.total_bits)
        load = metrics.histogram("engine.server_load_bits")
        load.extend(report.per_server_bits)
        metrics.gauge("engine.max_load_bits").set(report.max_load_bits)
        metrics.gauge("engine.max_load_tuples").set(report.max_load_tuples)
        metrics.gauge("engine.skew_ratio").set(report.balance)
        metrics.gauge("engine.replication_rate").set(report.replication_rate)
        if result.answers is not None:
            metrics.counter("engine.answers").inc(len(result.answers))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def _registry() -> dict[str, type[ExecutionEngine]]:
    from .batched import BatchedEngine
    from .multiprocess import MultiprocessEngine
    from .reference import ReferenceEngine

    return {
        ReferenceEngine.name: ReferenceEngine,
        BatchedEngine.name: BatchedEngine,
        MultiprocessEngine.name: MultiprocessEngine,
    }


def available_engines() -> tuple[str, ...]:
    """The registered engine names, in registration order."""
    return tuple(_registry())


def resolve_engine(engine: "str | ExecutionEngine") -> ExecutionEngine:
    """An engine instance from a registry name or a ready-made instance."""
    if isinstance(engine, ExecutionEngine):
        return engine
    registry = _registry()
    try:
        factory = registry[engine]
    except (KeyError, TypeError):
        raise EngineError(
            f"unknown execution engine {engine!r}; "
            f"available: {', '.join(registry)}"
        ) from None
    return factory()
