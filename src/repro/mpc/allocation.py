"""Server-range allocation for multi-part one-round plans.

The skew-aware algorithms (Sections 4.1–4.2) split the work into logical
steps — the light hash join, one cartesian grid per doubly-heavy hitter, one
partition-and-broadcast block per singly-heavy hitter — each of which gets a
block of ``p_h`` servers.  The paper notes the total may exceed ``p`` but
stays ``Theta(p)``; all steps then share the same physical ``p`` servers, at
the price of a constant-factor load increase.

:class:`ServerAllocator` hands out consecutive ranges modulo ``p`` so that
blocks of one step tile ``[0, p)`` as evenly as possible; each physical
server is hit by ``O(1)`` blocks per step.
"""

from __future__ import annotations


class ServerAllocator:
    """Allocates wrap-around ranges of servers from a pool of size ``p``."""

    def __init__(self, p: int) -> None:
        if p < 1:
            raise ValueError("p must be >= 1")
        self.p = p
        self._cursor = 0
        self._allocated = 0

    def allocate(self, count: int) -> tuple[int, ...]:
        """The next ``count`` server indices (wrapping modulo ``p``)."""
        if count < 1:
            raise ValueError("cannot allocate an empty block")
        count = min(count, self.p)
        block = tuple((self._cursor + i) % self.p for i in range(count))
        self._cursor = (self._cursor + count) % self.p
        self._allocated += count
        return block

    @property
    def total_allocated(self) -> int:
        """Total servers handed out — the paper's Theta(p) check."""
        return self._allocated

    @property
    def overcommit(self) -> float:
        """Allocated servers over pool size; Theta(1) for the paper's plans."""
        return self._allocated / self.p
