"""Seeded hash families for the MPC simulator.

The paper assumes perfectly random, independent hash functions ``h_i`` — one
per query variable (Section 3.1).  We model them with keyed BLAKE2b digests:
deterministic given ``(seed, salt, value)``, independent-looking across
salts, and uniform enough at our scales for the concentration bounds of
Lemma 3.1 to be observable (experiment E10 checks this empirically).

Hash values are cached per ``(salt, value)`` because skewed inputs hash the
same heavy value millions of times.
"""

from __future__ import annotations

import hashlib
from typing import Iterable


class HashFamily:
    """A family of independent hash functions indexed by string salts."""

    # Bulk-path memo: one {value: bucket} table per (key, salt, buckets).
    # Class-level because the digests are pure functions of those three —
    # re-running an experiment recreates HashFamily(seed) with the same key
    # and can reuse every table.  Bounded three ways — table count, entries
    # per table, and total entries — with oldest-first eviction, so
    # huge-domain load-only runs cannot pin their whole value set in a
    # process-lifetime cache and hot tables are not all dropped at once.
    _shared_tables: dict[tuple[bytes, str, int], dict[int, int]] = {}
    _MAX_SHARED_TABLES = 512
    _MAX_TABLE_ENTRIES = 1 << 20
    _MAX_TOTAL_ENTRIES = 1 << 23

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._key = seed.to_bytes(8, "little", signed=True)
        self._cache: dict[tuple[str, int], int] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def raw(self, salt: str, value: int) -> int:
        """A 64-bit hash of ``value`` under the function named ``salt``."""
        cached = self._cache.get((salt, value))
        if cached is not None:
            return cached
        payload = salt.encode() + b"\x00" + value.to_bytes(16, "little", signed=True)
        digest = hashlib.blake2b(payload, key=self._key, digest_size=8).digest()
        result = int.from_bytes(digest, "little")
        self._cache[(salt, value)] = result
        return result

    def bucket(self, salt: str, value: int, buckets: int) -> int:
        """Hash ``value`` into ``[0, buckets)`` under the function ``salt``."""
        if buckets < 1:
            raise ValueError("bucket count must be >= 1")
        if buckets == 1:
            return 0
        return self.raw(salt, value) % buckets

    def bucket_table(
        self, salt: str, values: Iterable[int], buckets: int
    ) -> dict[int, int]:
        """``{value: bucket}`` for every *distinct* value in ``values``.

        Produces exactly the digests of :meth:`bucket` (an incremental keyed
        blake2b equals the one-shot call) but amortizes the per-call Python
        overhead — salt encoding, keyed-hasher construction, cache probing —
        over a whole column.  The vectorized routing paths
        (``destinations_batch``) are built on this.
        """
        if buckets < 1:
            raise ValueError("bucket count must be >= 1")
        unique = set(values)
        if buckets == 1:
            return dict.fromkeys(unique, 0)
        shared = HashFamily._shared_tables
        table_key = (self._key, salt, buckets)
        table = shared.get(table_key)
        if table is None:
            while len(shared) >= HashFamily._MAX_SHARED_TABLES:
                del shared[next(iter(shared))]  # evict oldest
            table = shared[table_key] = {}
        missing = [value for value in unique if value not in table]
        if missing:
            prefix = salt.encode() + b"\x00"
            keyed = hashlib.blake2b(key=self._key, digest_size=8)
            from_bytes = int.from_bytes
            for value in missing:
                hasher = keyed.copy()
                hasher.update(
                    prefix + value.to_bytes(16, "little", signed=True)
                )
                table[value] = (
                    from_bytes(hasher.digest(), "little") % buckets
                )
            if len(table) > HashFamily._MAX_TABLE_ENTRIES:
                # Callers keep using the returned dict; evicting just stops
                # the cache from retaining it beyond this run.
                shared.pop(table_key, None)
            else:
                total = sum(len(t) for t in shared.values())
                while total > HashFamily._MAX_TOTAL_ENTRIES and shared:
                    oldest = next(iter(shared))
                    total -= len(shared[oldest])
                    del shared[oldest]
        return table

    def subfamily(self, label: str) -> "HashFamily":
        """An independent family derived from this one (for nested plans)."""
        derived_seed = int.from_bytes(
            hashlib.blake2b(
                label.encode(), key=self._key, digest_size=8
            ).digest(),
            "little",
            signed=True,
        )
        return HashFamily(derived_seed)
