"""Seeded hash families for the MPC simulator.

The paper assumes perfectly random, independent hash functions ``h_i`` — one
per query variable (Section 3.1).  We model them with keyed BLAKE2b digests:
deterministic given ``(seed, salt, value)``, independent-looking across
salts, and uniform enough at our scales for the concentration bounds of
Lemma 3.1 to be observable (experiment E10 checks this empirically).

Hash values are cached per ``(salt, value)`` because skewed inputs hash the
same heavy value millions of times.
"""

from __future__ import annotations

import hashlib


class HashFamily:
    """A family of independent hash functions indexed by string salts."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._key = seed.to_bytes(8, "little", signed=True)
        self._cache: dict[tuple[str, int], int] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def raw(self, salt: str, value: int) -> int:
        """A 64-bit hash of ``value`` under the function named ``salt``."""
        cached = self._cache.get((salt, value))
        if cached is not None:
            return cached
        payload = salt.encode() + b"\x00" + value.to_bytes(16, "little", signed=True)
        digest = hashlib.blake2b(payload, key=self._key, digest_size=8).digest()
        result = int.from_bytes(digest, "little")
        self._cache[(salt, value)] = result
        return result

    def bucket(self, salt: str, value: int, buckets: int) -> int:
        """Hash ``value`` into ``[0, buckets)`` under the function ``salt``."""
        if buckets < 1:
            raise ValueError("bucket count must be >= 1")
        if buckets == 1:
            return 0
        return self.raw(salt, value) % buckets

    def subfamily(self, label: str) -> "HashFamily":
        """An independent family derived from this one (for nested plans)."""
        derived_seed = int.from_bytes(
            hashlib.blake2b(
                label.encode(), key=self._key, digest_size=8
            ).digest(),
            "little",
            signed=True,
        )
        return HashFamily(derived_seed)
