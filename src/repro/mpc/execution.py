"""One-round execution of MPC algorithms.

An algorithm supplies a :class:`RoutingPlan` — a pure function from input
tuple to destination servers, computable from the database *statistics* alone
(never from other tuples; that is the essence of the one-round restriction
and of treating tuples independently, Section 2.1).  The executor:

1. routes every input tuple to its destinations, charging each server's load;
2. lets every server join its received fragments locally (servers have
   unlimited compute);
3. unions the local answers and reports loads.

Every locally produced tuple is a genuine answer (fragments are subsets of
the true relations), so correctness of an algorithm means *completeness*:
the union must equal the sequential join.  ``run_one_round(..., verify=True)``
checks exactly that.

The simulation itself is pluggable: :func:`run_one_round` delegates to an
:class:`repro.mpc.engine.ExecutionEngine` selected by the ``engine``
argument (``"reference"``, ``"batched"`` or ``"mp"``).  All engines are
answer- and load-identical; they differ only in speed and memory
(``tests/test_engine_parity.py`` enforces this).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..query.atoms import ConjunctiveQuery
from ..seq.relation import Database, Tuple
from .cluster import LoadReport
from .hashing import HashFamily

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..obs import Observation
    from .engine import ExecutionEngine


def fold_offset_counts(
    base_counts: Mapping[int, int], offsets: Sequence[int]
) -> Mapping[int, int]:
    """Fold replication ``offsets`` into per-grid-base tuple counts.

    Shared by the grid-shaped plans' ``destination_counts`` fast paths: a
    tuple at grid base ``b`` is received by servers ``b + o`` for every
    offset ``o``, so per-server counts are the offset-shifted sum of the
    (at most ``p``) distinct base counts.
    """
    if len(offsets) == 1:
        offset = offsets[0]
        if offset == 0:
            return base_counts
        return {
            base + offset: count for base, count in base_counts.items()
        }
    counts: dict[int, int] = {}
    for base, count in base_counts.items():
        for offset in offsets:
            server = base + offset
            counts[server] = counts.get(server, 0) + count
    return counts


def expand_offsets(
    bases: Sequence[int], offsets: Sequence[int]
) -> list[tuple[int, ...]]:
    """Per-tuple destination tuples from grid bases + replication offsets.

    The ``destinations_batch`` twin of :func:`fold_offset_counts`, shared by
    the grid-shaped plans: each tuple at base ``b`` goes to ``b + o`` for
    every offset ``o`` (duplicate-free because the offsets are distinct
    points of a mixed-radix grid).
    """
    if len(offsets) == 1:
        offset = offsets[0]
        if offset:
            return [(base + offset,) for base in bases]
        return [(base,) for base in bases]
    return [tuple(base + offset for offset in offsets) for base in bases]


class RoutingPlan(ABC):
    """Maps each input tuple to the servers that must receive it."""

    @abstractmethod
    def destinations(self, relation_name: str, tup: Tuple) -> Iterable[int]:
        """Server indices in ``[0, p)`` that receive ``tup``."""

    def destinations_batch(
        self, relation_name: str, tuples: Sequence[Tuple]
    ) -> list[tuple[int, ...]]:
        """Destinations for a whole batch of tuples of one relation.

        Returns one *duplicate-free* tuple of server indices per input
        tuple, in input order.  The default implementation loops the scalar
        :meth:`destinations` path (deduplicating defensively); plans with a
        vectorizable structure override it with a fast path that hoists the
        per-tuple salt formatting, bucket lookups and replication offsets
        out of the loop — that is what :class:`repro.mpc.engine.BatchedEngine`
        builds on.
        """
        out: list[tuple[int, ...]] = []
        for tup in tuples:
            dests = tuple(self.destinations(relation_name, tup))
            if len(dests) > 1:
                dests = tuple(dict.fromkeys(dests))
            out.append(dests)
        return out

    def destination_counts(
        self, relation_name: str, tuples: Sequence[Tuple]
    ) -> Mapping[int, int]:
        """Per-server received-tuple counts for a batch, answers not needed.

        Load-only simulation (``compute_answers=False``) never looks at
        *which* tuples a server received, only *how many*; plans with a grid
        structure can produce the counts without materializing a
        destination list per tuple (count the distinct grid bases, then
        fold the replication offsets).  The default derives the counts from
        :meth:`destinations_batch`.
        """
        counts: Counter[int] = Counter()
        for dests in self.destinations_batch(relation_name, tuples):
            counts.update(dests)
        return counts

    def describe(self) -> Mapping[str, object]:
        """Plan metadata surfaced in the execution result (e.g. shares)."""
        return {}


class OneRoundAlgorithm(ABC):
    """A one-round MPC algorithm for a fixed query.

    Besides the routing plan itself, every algorithm *declares* two pieces
    of planner metadata (consumed by :mod:`repro.api`):

    * :meth:`applicability` — which queries the algorithm handles, as a
      class-level predicate.  This replaces the older idiom of probing a
      constructor and catching :class:`~repro.query.atoms.QueryError`
      (still supported, but deprecated for applicability checks).
    * :meth:`predicted_load_bits` — the expected max per-server load in
      bits, computed from statistics alone.  The convention matches
      :attr:`ExecutionResult.max_load_bits`: the busiest server's *total*
      received bits, summed over relations.  Implementations use the
      skew-free expectation, refined by heavy-hitter statistics when a
      :class:`~repro.stats.heavy_hitters.HeavyHitterStatistics` is passed.
    """

    def __init__(self, query: ConjunctiveQuery, name: str) -> None:
        self.query = query
        self.name = name

    @classmethod
    def applicability(cls, query: ConjunctiveQuery) -> str | None:
        """None if the algorithm handles ``query``, else a reason string.

        The default declares the algorithm applicable to every full
        conjunctive query; restricted algorithms override this.
        """
        return None

    @classmethod
    def round_count(cls, query: ConjunctiveQuery) -> int:
        """Communication rounds used on ``query`` — always 1 here.

        The shared planner hook with
        :class:`repro.rounds.MultiRoundAlgorithm`, whose subclasses
        override it; the registry ranks one- and multi-round algorithms
        on the same ``max per-round load x rounds`` scale.
        """
        return 1

    @abstractmethod
    def routing_plan(
        self, db: Database, p: int, hashes: HashFamily
    ) -> RoutingPlan:
        """Build the routing plan for ``p`` servers.

        Implementations may consult database *statistics* (cardinalities,
        heavy hitters) but must route each tuple independently of the others.
        """

    def predicted_load_bits(self, stats: object, p: int) -> float:
        """Predicted max per-server load (bits) on a workload with ``stats``.

        ``stats`` is a :class:`~repro.stats.cardinality.SimpleStatistics`
        or a :class:`~repro.stats.heavy_hitters.HeavyHitterStatistics`
        (the latter enables skew-aware predictions).  The prediction is
        what the bounds machinery *expects* the measured
        :attr:`ExecutionResult.max_load_bits` to track, sans the paper's
        polylog factors — the planner ranks algorithms by this value.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a load prediction"
        )

    @staticmethod
    def _simple_stats(stats: object):
        """Accept Simple- or HeavyHitterStatistics; return the simple part."""
        return getattr(stats, "simple", stats)

    @staticmethod
    def _heavy_stats(stats: object, p: int):
        """``stats`` as a usable heavy-hitter provider, or None.

        The single arbiter every skew-aware cost hook (and the registry)
        shares: statistics qualify only when they satisfy the
        :class:`~repro.stats.provider.StatisticsProvider` protocol — the
        exact :class:`~repro.stats.heavy_hitters.HeavyHitterStatistics`
        and the sketched
        :class:`~repro.sketch.SketchedHeavyHitterStatistics` both do —
        *and* their hitters were thresholded against this ``p``; hitters
        computed for a different ``m/p`` threshold are unusable.
        """
        from ..stats.provider import StatisticsProvider

        if isinstance(stats, StatisticsProvider) and stats.p == p:
            return stats
        return None


@dataclass(frozen=True)
class ExecutionResult:
    """Everything measured in one simulated round."""

    algorithm: str
    query: ConjunctiveQuery
    p: int
    seed: int
    report: LoadReport
    answers: frozenset[Tuple] | None
    expected_answers: frozenset[Tuple] | None
    details: Mapping[str, object] = field(default_factory=dict)

    @property
    def answer_count(self) -> int | None:
        return None if self.answers is None else len(self.answers)

    @property
    def is_complete(self) -> bool | None:
        """True iff the algorithm found every answer (needs ``verify=True``)."""
        if self.answers is None or self.expected_answers is None:
            return None
        return self.answers == self.expected_answers

    @property
    def max_load_bits(self) -> float:
        return self.report.max_load_bits

    @property
    def max_load_tuples(self) -> int:
        return self.report.max_load_tuples


def run_one_round(
    algorithm: OneRoundAlgorithm,
    db: Database,
    p: int,
    seed: int = 0,
    compute_answers: bool = True,
    verify: bool = False,
    engine: "str | ExecutionEngine" = "batched",
    obs: "Observation | None" = None,
) -> ExecutionResult:
    """Simulate one communication round of ``algorithm`` on ``db``.

    Parameters
    ----------
    compute_answers:
        When False, skip the local joins and only measure communication —
        useful for load-focused experiments whose output would be huge.
    verify:
        When True, also run the sequential join and record it for
        :attr:`ExecutionResult.is_complete`.
    engine:
        Which execution engine simulates the round: ``"batched"`` (the
        library-wide default — vectorized routing, streams load
        accounting), ``"reference"`` (the tuple-at-a-time parity oracle),
        ``"mp"`` (multiprocessing shards), or any
        :class:`repro.mpc.engine.ExecutionEngine` instance.  All engines
        return identical answers and loads, so the default is purely a
        speed choice; ``"reference"`` remains the oracle the parity suite
        checks the others against.
    obs:
        An :class:`repro.obs.Observation` collecting nested timed spans
        (plan-build, routing, local join, verify) and metrics (tuples
        routed, bits shipped per relation, per-server load histogram,
        skew ratio) for the round.  ``None`` (the default) disables
        instrumentation entirely.
    """
    from .engine import resolve_engine  # local import: engines import us

    return resolve_engine(engine).run(
        algorithm,
        db,
        p,
        seed=seed,
        compute_answers=compute_answers,
        verify=verify,
        obs=obs,
    )
