"""One-round execution of MPC algorithms.

An algorithm supplies a :class:`RoutingPlan` — a pure function from input
tuple to destination servers, computable from the database *statistics* alone
(never from other tuples; that is the essence of the one-round restriction
and of treating tuples independently, Section 2.1).  The executor:

1. routes every input tuple to its destinations, charging each server's load;
2. lets every server join its received fragments locally (servers have
   unlimited compute);
3. unions the local answers and reports loads.

Every locally produced tuple is a genuine answer (fragments are subsets of
the true relations), so correctness of an algorithm means *completeness*:
the union must equal the sequential join.  ``run_one_round(..., verify=True)``
checks exactly that.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..query.atoms import ConjunctiveQuery
from ..seq.join import evaluate, local_join
from ..seq.relation import Database, Tuple
from .cluster import Cluster, LoadReport
from .hashing import HashFamily


class RoutingPlan(ABC):
    """Maps each input tuple to the servers that must receive it."""

    @abstractmethod
    def destinations(self, relation_name: str, tup: Tuple) -> Iterable[int]:
        """Server indices in ``[0, p)`` that receive ``tup``."""

    def describe(self) -> Mapping[str, object]:
        """Plan metadata surfaced in the execution result (e.g. shares)."""
        return {}


class OneRoundAlgorithm(ABC):
    """A one-round MPC algorithm for a fixed query."""

    def __init__(self, query: ConjunctiveQuery, name: str) -> None:
        self.query = query
        self.name = name

    @abstractmethod
    def routing_plan(
        self, db: Database, p: int, hashes: HashFamily
    ) -> RoutingPlan:
        """Build the routing plan for ``p`` servers.

        Implementations may consult database *statistics* (cardinalities,
        heavy hitters) but must route each tuple independently of the others.
        """


@dataclass(frozen=True)
class ExecutionResult:
    """Everything measured in one simulated round."""

    algorithm: str
    query: ConjunctiveQuery
    p: int
    seed: int
    report: LoadReport
    answers: frozenset[Tuple] | None
    expected_answers: frozenset[Tuple] | None
    details: Mapping[str, object] = field(default_factory=dict)

    @property
    def answer_count(self) -> int | None:
        return None if self.answers is None else len(self.answers)

    @property
    def is_complete(self) -> bool | None:
        """True iff the algorithm found every answer (needs ``verify=True``)."""
        if self.answers is None or self.expected_answers is None:
            return None
        return self.answers == self.expected_answers

    @property
    def max_load_bits(self) -> float:
        return self.report.max_load_bits

    @property
    def max_load_tuples(self) -> int:
        return self.report.max_load_tuples


def run_one_round(
    algorithm: OneRoundAlgorithm,
    db: Database,
    p: int,
    seed: int = 0,
    compute_answers: bool = True,
    verify: bool = False,
) -> ExecutionResult:
    """Simulate one communication round of ``algorithm`` on ``db``.

    Parameters
    ----------
    compute_answers:
        When False, skip the local joins and only measure communication —
        useful for load-focused experiments whose output would be huge.
    verify:
        When True, also run the sequential join and record it for
        :attr:`ExecutionResult.is_complete`.
    """
    query = algorithm.query
    db.validate_against(query)
    cluster = Cluster(p)
    hashes = HashFamily(seed)
    plan = algorithm.routing_plan(db, p, hashes)

    input_tuples = 0
    input_bits = 0.0
    for atom in query.atoms:
        relation = db.relation(atom.name)
        tuple_bits = relation.tuple_bits
        input_tuples += relation.cardinality
        input_bits += relation.bits
        for tup in relation.tuples:
            cluster.send_many(
                plan.destinations(atom.name, tup), atom.name, tup, tuple_bits
            )

    answers: frozenset[Tuple] | None = None
    if compute_answers:
        collected: set[Tuple] = set()
        for server in cluster.servers:
            if server.fragments:
                collected |= local_join(query, server.fragments, db.domain_size)
        answers = frozenset(collected)

    expected = evaluate(query, db) if verify else None
    return ExecutionResult(
        algorithm=algorithm.name,
        query=query,
        p=p,
        seed=seed,
        report=cluster.load_report(input_tuples, input_bits),
        answers=answers,
        expected_answers=expected,
        details=dict(plan.describe()),
    )
