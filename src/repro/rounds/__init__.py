"""Multi-round MPC: round sequences, two-round algorithms, tradeoffs.

The one-round model (Section 2.1) routes every tuple from statistics
alone; this package implements the multi-round extension the paper's
sequel ("Communication Cost in Parallel Query Processing", PAPERS.md)
studies — algorithms that materialize intermediates between rounds, the
two-round triangle that beats every one-round algorithm on cyclic
queries, and the round/load tradeoff curve the planner ranks against.

* :class:`MultiRoundAlgorithm` / :class:`RoundSpec` — the protocol
  (per-round shuffle + local compute over materialized intermediates);
* :class:`TwoRoundTriangle` — partial join then hash-join finish;
* :class:`RoundComposedJoin` — the generic ``l - 1``-round composition
  for connected queries;
* :func:`run_rounds` / :class:`MultiRoundResult` — execution through
  the pluggable one-round engines, bit-identical by construction;
* :func:`tradeoff` / :class:`TradeoffPoint` — predicted max-load per
  round count.
"""

from .base import (
    MultiRoundAlgorithm,
    RoundSpec,
    RoundsError,
    estimate_join_size,
    intermediate_name,
    predict_one_round,
    select_one_round,
)
from .composed import RoundComposedJoin
from .executor import ROUND_SEED_STRIDE, MultiRoundResult, run_rounds
from .tradeoff import TradeoffPoint, tradeoff
from .triangle import TwoRoundTriangle

__all__ = [
    "MultiRoundAlgorithm",
    "MultiRoundResult",
    "ROUND_SEED_STRIDE",
    "RoundComposedJoin",
    "RoundSpec",
    "RoundsError",
    "TradeoffPoint",
    "TwoRoundTriangle",
    "estimate_join_size",
    "intermediate_name",
    "predict_one_round",
    "run_rounds",
    "select_one_round",
    "tradeoff",
]
