"""The multi-round MPC protocol (Beame-Koutris-Suciu, multi-round model).

The one-round restriction (Section 2.1) is what makes cyclic queries like
the triangle provably expensive: every tuple must be routed from
statistics alone.  The multi-round model lifts it — an algorithm runs a
*sequence* of communication rounds, each a shuffle plus unrestricted
local compute, with the answers of one round materialized as an
intermediate relation that the next round reshuffles.  The cost scale is
``max per-round load x rounds`` (ties broken by total communication),
which is how the planner ranks one- and multi-round candidates together.

A :class:`MultiRoundAlgorithm` describes its rounds statically as
:class:`RoundSpec` entries — each a full conjunctive query over the
relations available in that round (base relations plus earlier
intermediates) and the name of the intermediate it produces.  Each round
is then executed as an ordinary one-round algorithm through the pluggable
engines (:func:`repro.rounds.run_rounds`), so every engine inherits
bit-identical multi-round loads from the one-round parity contract.

The matching lower bound attached here is the trivial repartition bound
``max_j M_j / p``: any algorithm in the family reshuffles each base
relation in some round, so some server receives at least a ``1/p``
fraction of its bits in that round.  It is the degenerate (round-count
independent) case of the multi-round tradeoffs of "Communication Cost in
Parallel Query Processing"; the one-round Theorem 3.6 bound does *not*
apply across rounds, which is exactly why two rounds beat it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..query.atoms import Atom, ConjunctiveQuery
from ..seq.relation import Database
from ..stats.cardinality import SimpleStatistics
from ..stats.heavy_hitters import canonical_subset
from ..stats.provider import StatisticsProvider

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpc.execution import OneRoundAlgorithm


class RoundsError(ValueError):
    """Raised for malformed round plans or unusable round inputs."""


@dataclass(frozen=True)
class RoundSpec:
    """One communication round: a one-round query plus its output name.

    Attributes
    ----------
    index:
        0-based round number.
    query:
        The round's full conjunctive query, over the relation names
        available in this round (base relations and/or intermediates of
        earlier rounds).  Its head order is the column order of the
        produced intermediate.
    output:
        Name of the intermediate relation materialized from this round's
        answers; ``None`` marks the final round (its answers are the
        query result).
    """

    index: int
    query: ConjunctiveQuery
    output: str | None

    @property
    def is_final(self) -> bool:
        return self.output is None


def intermediate_name(query: ConjunctiveQuery, index: int) -> str:
    """A relation name for round ``index``'s output, clash-free vs ``query``."""
    name = f"_J{index + 1}"
    while query.has_atom(name):
        name = "_" + name
    return name


def estimate_join_size(
    left_name: str,
    left_variables: Sequence[str],
    left_cardinality: float,
    right: Atom,
    stats: object,
    domain_size: int,
    hh: StatisticsProvider | None = None,
) -> float:
    """Estimated ``|L join R|`` for an intermediate/atom pair.

    The baseline is the independence estimate
    ``m_L * m_R / n^{|shared|}``; when heavy-hitter statistics cover both
    sides (``hh`` given and ``left_name`` is a real atom), the heavy
    assignments contribute their known ``f_L(h) * f_R(h)`` products and
    only the residual light mass goes through the independence term —
    this is what makes the round-2 prediction blow up when round 1's
    partial join is skewed on its shared variables.  Capped at the
    cross-product size.
    """
    simple: SimpleStatistics = getattr(stats, "simple", stats)
    m_left = float(left_cardinality)
    m_right = float(simple.cardinality(right.name))
    shared = canonical_subset(set(left_variables) & right.variable_set)
    cross = m_left * m_right
    if not shared or cross == 0:
        return cross
    combos = float(domain_size) ** len(shared)
    estimate = cross / combos
    if hh is not None:
        heavy_left = dict(hh.heavy_hitters(left_name, shared))
        heavy_right = dict(hh.heavy_hitters(right.name, shared))
        if heavy_left or heavy_right:
            light_left = max(0.0, m_left - sum(heavy_left.values()))
            light_right = max(0.0, m_right - sum(heavy_right.values()))
            avg_left = light_left / combos
            avg_right = light_right / combos
            estimate = light_left * light_right / combos
            for h in set(heavy_left) | set(heavy_right):
                f_left = float(heavy_left.get(h, avg_left))
                f_right = float(heavy_right.get(h, avg_right))
                estimate += f_left * f_right
    return min(cross, estimate)


def select_one_round(
    query: ConjunctiveQuery, stats: object, p: int
) -> tuple["OneRoundAlgorithm", str, float]:
    """The registry's best one-round algorithm for one round's query.

    Mirrors the planner's ranking restricted to one-round specs:
    minimum ``predicted_load_bits`` over the applicable registered
    algorithms, ties broken by registration order.  Returns the built
    instance, its registry key and its prediction — the same selection
    is used both for cost prediction and for execution, so predicted and
    executed round algorithms always agree.
    """
    # Local import: the registry registers the multi-round algorithms,
    # which import this module.
    from ..api.registry import algorithm_specs
    from ..mpc.execution import OneRoundAlgorithm

    best: tuple[float, int] | None = None
    chosen: tuple["OneRoundAlgorithm", str, float] | None = None
    for order, spec in enumerate(algorithm_specs()):
        if not issubclass(spec.algorithm_class, OneRoundAlgorithm):
            continue
        if not spec.is_applicable(query):
            continue
        algorithm = spec.build(query, stats, p)
        predicted = algorithm.predicted_load_bits(stats, p)
        rank = (predicted, order)
        if best is None or rank < best:
            best = rank
            chosen = (algorithm, spec.key, predicted)
    if chosen is None:
        raise RoundsError(
            f"no registered one-round algorithm is applicable to the "
            f"round query {query.name!r}"
        )
    return chosen


def predict_one_round(query: ConjunctiveQuery, stats: object, p: int) -> float:
    """The predicted load of :func:`select_one_round`'s pick."""
    return select_one_round(query, stats, p)[2]


class MultiRoundAlgorithm(ABC):
    """A multi-round MPC algorithm for a fixed query.

    Mirrors :class:`~repro.mpc.execution.OneRoundAlgorithm`'s planner
    surface (``applicability``, ``predicted_load_bits``) and adds the
    round structure: :meth:`round_plan` declares the round queries and
    intermediate names, :meth:`round_algorithm` picks each round's
    one-round algorithm from the live round database, and
    :meth:`predicted_round_loads` / :meth:`lower_bound_bits` supply the
    per-round cost curve and the matching multi-round lower bound.
    """

    def __init__(self, query: ConjunctiveQuery, name: str) -> None:
        self.query = query
        self.name = name

    @classmethod
    def applicability(cls, query: ConjunctiveQuery) -> str | None:
        """None if the algorithm handles ``query``, else a reason string."""
        return None

    @classmethod
    @abstractmethod
    def round_count(cls, query: ConjunctiveQuery) -> int:
        """Number of communication rounds used on ``query``."""

    @abstractmethod
    def round_plan(self) -> tuple[RoundSpec, ...]:
        """The round sequence (``round_count`` entries, last one final)."""

    def round_algorithm(
        self, spec: RoundSpec, db: Database, p: int
    ) -> "OneRoundAlgorithm":
        """The one-round algorithm executing round ``spec`` on ``db``.

        The default extracts exact heavy-hitter statistics from the
        round database and delegates to :func:`select_one_round`; the
        choice depends only on ``(db, p)``, never on the engine, which
        is what keeps multi-round runs bit-identical across engines.
        """
        from ..stats.heavy_hitters import HeavyHitterStatistics

        stats = HeavyHitterStatistics.of(spec.query, db, p)
        return select_one_round(spec.query, stats, p)[0]

    @abstractmethod
    def predicted_round_loads(
        self, stats: object, p: int
    ) -> tuple[float, ...]:
        """Predicted max per-server load (bits) of every round."""

    def predicted_load_bits(self, stats: object, p: int) -> float:
        """Max predicted per-round load — the multi-round analogue of the
        one-round hook, so the planner compares both on one scale."""
        return max(self.predicted_round_loads(stats, p))

    def lower_bound_bits(self, stats: object, p: int) -> float:
        """The trivial repartition bound ``max_j M_j / p`` (module doc)."""
        simple: SimpleStatistics = getattr(stats, "simple", stats)
        return max(simple.bits(atom.name) for atom in self.query.atoms) / p

    @staticmethod
    def _heavy_stats(stats: object, p: int) -> StatisticsProvider | None:
        """Shared arbiter with the one-round hooks (usable provider or None)."""
        if isinstance(stats, StatisticsProvider) and stats.p == p:
            return stats
        return None

    def describe(self) -> Mapping[str, object]:
        return {
            "rounds": self.round_count(self.query),
            "plan": [
                {
                    "round": spec.index,
                    "query": str(spec.query),
                    "output": spec.output,
                }
                for spec in self.round_plan()
            ],
        }
