"""The round/load tradeoff curve.

:func:`tradeoff` answers the paper's multi-round question directly: *how
does the predicted max per-round load fall as the round budget grows?*
For every round count ``r`` in ``1..rounds`` it reports the best
registered algorithm using exactly ``r`` rounds (ranked the planner's
way — ``max per-round load x rounds``, total communication, registration
order), giving the curve the CLI prints via ``repro plan --max-rounds``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..query.atoms import ConjunctiveQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observation
    from ..seq.relation import Database


@dataclass(frozen=True)
class TradeoffPoint:
    """The best algorithm at one round count (``key`` None if none)."""

    rounds: int
    key: str | None
    predicted_load_bits: float | None
    round_loads: tuple[float, ...] | None
    lower_bound_bits: float | None

    @property
    def cost_bits(self) -> float | None:
        """The planner's scale: max per-round load x rounds."""
        if self.predicted_load_bits is None:
            return None
        return self.predicted_load_bits * self.rounds

    def to_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "key": self.key,
            "predicted_load_bits": self.predicted_load_bits,
            "round_loads": (
                None if self.round_loads is None else list(self.round_loads)
            ),
            "cost_bits": self.cost_bits,
            "lower_bound_bits": self.lower_bound_bits,
        }


def tradeoff(
    query: ConjunctiveQuery | str,
    p: int = 16,
    rounds: int = 2,
    stats: object | None = None,
    db: "Database | None" = None,
    algorithms: Iterable[str] | None = None,
    stats_method: str = "exact",
    obs: "Observation | None" = None,
) -> tuple[TradeoffPoint, ...]:
    """Predicted max-load per round count, for ``1..rounds`` rounds.

    Statistics resolve exactly as in :func:`repro.api.planner.plan`
    (explicit ``stats`` beat extraction from ``db``).  Round counts with
    no applicable algorithm yield a point with ``key=None`` — e.g. a
    two-atom join has no two-round candidate, and a triangle has a
    one-round HyperCube but no one-round hash join.
    """
    from ..api.planner import plan  # local import: the registry imports us

    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    query_plan = plan(
        query,
        stats,
        p,
        db=db,
        algorithms=algorithms,
        stats_method=stats_method,
        obs=obs,
        max_rounds=rounds,
    )
    best: dict[int, "object"] = {}
    for prediction in query_plan.applicable:
        # ``applicable`` is cost-sorted, so the first entry per round
        # count is that count's winner.
        best.setdefault(prediction.rounds, prediction)
    points = []
    for r in range(1, rounds + 1):
        prediction = best.get(r)
        if prediction is None:
            points.append(TradeoffPoint(
                rounds=r,
                key=None,
                predicted_load_bits=None,
                round_loads=None,
                lower_bound_bits=None,
            ))
        else:
            points.append(TradeoffPoint(
                rounds=r,
                key=prediction.key,
                predicted_load_bits=prediction.predicted_load_bits,
                round_loads=prediction.round_loads,
                lower_bound_bits=prediction.lower_bound_bits,
            ))
    return tuple(points)
