"""Execution of multi-round algorithms through the one-round engines.

:func:`run_rounds` walks a :class:`~repro.rounds.base.MultiRoundAlgorithm`'s
round plan: each round's query runs through the selected
:class:`~repro.mpc.engine.ExecutionEngine` exactly like a one-round
experiment, and its answers are frozen into an intermediate
:class:`~repro.seq.relation.Relation` (same ``Relation`` path as base
inputs) that the next round's database includes.  Because every engine
returns identical answers and bit-identical loads for a one-round run
(the parity contract of :mod:`repro.mpc.engine`), multi-round runs are
bit-identical across engines *by construction* — the intermediates, and
hence every subsequent round's input, cannot differ.

Loads are reported per round (:attr:`MultiRoundResult.round_load_bits`)
and summarized as the max across rounds, matching the planner's
``max per-round load x rounds`` cost scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..mpc.execution import ExecutionResult
from ..obs import maybe_timed
from ..query.atoms import ConjunctiveQuery
from ..seq.join import evaluate
from ..seq.relation import Database, Relation, Tuple
from .base import MultiRoundAlgorithm, RoundSpec, RoundsError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpc.engine import ExecutionEngine
    from ..obs import Observation

#: Per-round seed decorrelation stride (a large prime, so round ``r`` uses
#: hash seed ``seed + r * stride`` deterministically on every engine).
ROUND_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class MultiRoundResult:
    """Everything measured across one multi-round execution."""

    algorithm: str
    query: ConjunctiveQuery
    p: int
    seed: int
    rounds: tuple[ExecutionResult, ...]
    answers: frozenset[Tuple] | None
    expected_answers: frozenset[Tuple] | None
    input_bits: float
    input_tuples: int
    details: Mapping[str, object] = field(default_factory=dict)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def round_load_bits(self) -> tuple[float, ...]:
        """Max per-server bits of every round, in round order."""
        return tuple(r.max_load_bits for r in self.rounds)

    @property
    def round_load_tuples(self) -> tuple[int, ...]:
        return tuple(r.max_load_tuples for r in self.rounds)

    @property
    def max_load_bits(self) -> float:
        """The busiest server of the busiest round (the cost scale's L)."""
        return max(self.round_load_bits, default=0.0)

    @property
    def max_load_tuples(self) -> int:
        return max(self.round_load_tuples, default=0)

    @property
    def total_bits(self) -> float:
        """Bits communicated across all rounds and servers."""
        return sum(r.report.total_bits for r in self.rounds)

    @property
    def replication_rate(self) -> float:
        """Total communicated bits over the *base* input bits."""
        if self.input_bits == 0:
            return 0.0
        return self.total_bits / self.input_bits

    @property
    def balance(self) -> float:
        """Balance of the round carrying the maximum load."""
        if not self.rounds:
            return 1.0
        busiest = max(self.rounds, key=lambda r: r.max_load_bits)
        return busiest.report.balance

    @property
    def answer_count(self) -> int | None:
        return None if self.answers is None else len(self.answers)

    @property
    def is_complete(self) -> bool | None:
        if self.answers is None or self.expected_answers is None:
            return None
        return self.answers == self.expected_answers

    def describe(self) -> str:
        loads = ", ".join(f"{bits:,.0f}" for bits in self.round_load_bits)
        return (
            f"{self.algorithm}: {self.round_count} rounds, "
            f"per-round load [{loads}] bits, max {self.max_load_bits:,.0f}"
        )


def _round_database(
    spec: RoundSpec,
    db: Database,
    intermediates: Mapping[str, Relation],
) -> Database:
    relations = []
    for atom in spec.query.atoms:
        if atom.name in intermediates:
            relations.append(intermediates[atom.name])
        else:
            relations.append(db.relation(atom.name))
    return Database.from_relations(relations)


def run_rounds(
    algorithm: MultiRoundAlgorithm,
    db: Database,
    p: int,
    seed: int = 0,
    compute_answers: bool = True,
    verify: bool = False,
    engine: "str | ExecutionEngine" = "batched",
    obs: "Observation | None" = None,
) -> MultiRoundResult:
    """Simulate every communication round of ``algorithm`` on ``db``.

    The multi-round twin of :func:`repro.mpc.execution.run_one_round`
    (same knobs, same engine selection).  Non-final rounds always compute
    answers — their output *is* the next round's input; the final round
    honors ``compute_answers``.  ``verify=True`` checks the final answers
    against the sequential evaluation of the *original* query on the
    *base* database, the strongest completeness check available.
    """
    from ..mpc.engine import resolve_engine  # local import: cycle guard

    db.validate_against(algorithm.query)
    resolved = resolve_engine(engine)
    plan = algorithm.round_plan()
    if not plan or plan[-1].output is not None:
        raise RoundsError(
            f"{algorithm.name}: round plan must end with a final round"
        )

    input_bits = sum(db.relation(a.name).bits for a in algorithm.query.atoms)
    input_tuples = sum(
        db.relation(a.name).cardinality for a in algorithm.query.atoms
    )

    intermediates: dict[str, Relation] = {}
    results: list[ExecutionResult] = []
    round_keys: list[str] = []
    with maybe_timed(
        obs, "rounds.run", algorithm=algorithm.name, rounds=len(plan)
    ):
        for spec in plan:
            round_db = _round_database(spec, db, intermediates)
            round_algorithm = algorithm.round_algorithm(spec, round_db, p)
            round_keys.append(round_algorithm.name)
            with maybe_timed(
                obs,
                "rounds.round",
                index=spec.index,
                algorithm=round_algorithm.name,
                query=str(spec.query),
            ):
                result = resolved.run(
                    round_algorithm,
                    round_db,
                    p,
                    seed=seed + spec.index * ROUND_SEED_STRIDE,
                    compute_answers=compute_answers or not spec.is_final,
                    verify=False,
                    obs=obs,
                )
            results.append(result)
            if obs is not None:
                obs.count("rounds.executed")
                obs.set_gauge(
                    f"rounds.load_bits.round{spec.index + 1}",
                    result.max_load_bits,
                )
            if not spec.is_final:
                assert result.answers is not None
                intermediates[spec.output] = Relation(
                    name=spec.output,
                    arity=len(spec.query.variables),
                    tuples=result.answers,
                    domain_size=db.domain_size,
                )

        expected = None
        if verify:
            with maybe_timed(obs, "rounds.verify"):
                expected = evaluate(algorithm.query, db)
        if obs is not None:
            obs.set_gauge("rounds.max_load_bits", max(
                r.max_load_bits for r in results
            ))

    return MultiRoundResult(
        algorithm=algorithm.name,
        query=algorithm.query,
        p=p,
        seed=seed,
        rounds=tuple(results),
        answers=results[-1].answers,
        expected_answers=expected,
        input_bits=input_bits,
        input_tuples=input_tuples,
        details={
            "round_algorithms": tuple(round_keys),
            "intermediate_sizes": {
                name: rel.cardinality for name, rel in intermediates.items()
            },
        },
    )
