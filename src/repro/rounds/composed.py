"""The round-composed join: one binary join per round.

A connected query of ``l`` atoms runs in ``l - 1`` rounds: round 1 joins
two atoms into an intermediate, every later round joins the accumulated
intermediate with one more atom, and the final round produces the
answers.  Each round is an ordinary one-round binary join, so the whole
machinery of Section 4 (hash join, skew-aware join) is reused per round
— this is the multi-round algorithm that makes cyclic queries like the
triangle cheap: the triangle's one-round load is ``Omega(M / p^{2/3})``
(Example 3.7) while two rounds achieve ``O(M / p)`` whenever the partial
join stays bounded.

The atom order is chosen greedily to keep intermediates small: the
starting pair minimizes the estimated join size
(:func:`~repro.rounds.base.estimate_join_size`, heavy-hitter aware), and
each extension step appends the atom whose join with the accumulated
intermediate is estimated smallest.  With no statistics the order falls
back to the query's atom order (connectivity-respecting).
"""

from __future__ import annotations

from ..query.atoms import Atom, ConjunctiveQuery
from ..stats.cardinality import SimpleStatistics
from ..stats.provider import StatisticsProvider
from .base import (
    MultiRoundAlgorithm,
    RoundSpec,
    RoundsError,
    estimate_join_size,
    intermediate_name,
    predict_one_round,
)


def _first_appearance_order(atoms: tuple[Atom, ...]) -> tuple[str, ...]:
    seen: list[str] = []
    for atom in atoms:
        for var in atom.variables:
            if var not in seen:
                seen.append(var)
    return tuple(seen)


class RoundComposedJoin(MultiRoundAlgorithm):
    """Generic ``l - 1``-round join composition for connected queries.

    Parameters
    ----------
    query:
        A connected full conjunctive query with at least three atoms
        (two-atom queries are already covered by the one-round joins).
    stats:
        Optional statistics (simple or heavy-hitter) used only to pick
        the atom order; execution re-derives per-round statistics from
        the live round databases.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        stats: object | None = None,
        name: str = "round-join",
    ) -> None:
        reason = self.applicability(query)
        if reason is not None:
            raise RoundsError(
                f"{name} is not applicable to {query.name!r}: {reason}"
            )
        super().__init__(query, name=name)
        self._order = self._order_atoms(query, stats)
        self._plan = self._build_plan()

    @classmethod
    def applicability(cls, query: ConjunctiveQuery) -> str | None:
        if query.num_atoms < 3:
            return (
                "fewer than three atoms; the one-round joins already "
                "cover this query"
            )
        if not query.is_connected():
            return (
                "query hypergraph is disconnected; compose the components "
                "with cartesian-grid instead"
            )
        return None

    @classmethod
    def round_count(cls, query: ConjunctiveQuery) -> int:
        return query.num_atoms - 1

    # ------------------------------------------------------------------
    # atom ordering
    # ------------------------------------------------------------------
    @staticmethod
    def _order_atoms(
        query: ConjunctiveQuery, stats: object | None
    ) -> tuple[Atom, ...]:
        atoms = list(query.atoms)
        if stats is None:
            order = [atoms.pop(0)]
            reached = set(order[0].variable_set)
            while atoms:
                for i, atom in enumerate(atoms):
                    if atom.variable_set & reached:
                        reached |= atom.variable_set
                        order.append(atoms.pop(i))
                        break
                else:  # pragma: no cover - applicability requires connected
                    raise RoundsError("query hypergraph is disconnected")
            return tuple(order)

        simple: SimpleStatistics = getattr(stats, "simple", stats)
        domain = simple.domain_size
        hh = stats if isinstance(stats, StatisticsProvider) else None

        best_pair: tuple[float, int, int] | None = None
        for i, left in enumerate(atoms):
            for j in range(i + 1, len(atoms)):
                right = atoms[j]
                if not (left.variable_set & right.variable_set):
                    continue
                estimate = estimate_join_size(
                    left.name,
                    left.variables,
                    simple.cardinality(left.name),
                    right,
                    simple,
                    domain,
                    hh=hh,
                )
                rank = (estimate, i, j)
                if best_pair is None or rank < best_pair:
                    best_pair = rank
        if best_pair is None:  # pragma: no cover - connected => a pair shares
            raise RoundsError("no two atoms share a variable")

        _, i, j = best_pair
        order = [atoms[i], atoms[j]]
        remaining = [a for k, a in enumerate(atoms) if k not in (i, j)]
        acc_vars = _first_appearance_order((order[0], order[1]))
        acc_size = estimate_join_size(
            order[0].name,
            order[0].variables,
            simple.cardinality(order[0].name),
            order[1],
            simple,
            domain,
            hh=hh,
        )
        acc_name = order[0].name
        while remaining:
            best_next: tuple[float, int] | None = None
            for k, atom in enumerate(remaining):
                if not (atom.variable_set & set(acc_vars)):
                    continue
                estimate = estimate_join_size(
                    acc_name, acc_vars, acc_size, atom, simple, domain, hh=hh
                )
                rank = (estimate, k)
                if best_next is None or rank < best_next:
                    best_next = rank
            if best_next is None:  # pragma: no cover - connected query
                raise RoundsError("query hypergraph is disconnected")
            _, k = best_next
            nxt = remaining.pop(k)
            acc_size = estimate_join_size(
                acc_name, acc_vars, acc_size, nxt, simple, domain, hh=hh
            )
            acc_vars = _first_appearance_order(
                (Atom("_acc", acc_vars), nxt)
            )
            acc_name = "_acc"
            order.append(nxt)
        return tuple(order)

    # ------------------------------------------------------------------
    # the round plan
    # ------------------------------------------------------------------
    def _build_plan(self) -> tuple[RoundSpec, ...]:
        rounds = self.round_count(self.query)
        specs: list[RoundSpec] = []
        left: Atom = self._order[0]
        for index in range(rounds):
            right = self._order[index + 1]
            final = index == rounds - 1
            head = (
                self.query.variables
                if final
                else _first_appearance_order((left, right))
            )
            round_query = ConjunctiveQuery(
                atoms=(left, right),
                head=head,
                name=f"{self.query.name}.r{index + 1}",
            )
            output = None if final else intermediate_name(self.query, index)
            specs.append(RoundSpec(index=index, query=round_query, output=output))
            if not final:
                left = Atom(name=output, variables=head)
        return tuple(specs)

    def round_plan(self) -> tuple[RoundSpec, ...]:
        return self._plan

    # ------------------------------------------------------------------
    # cost prediction
    # ------------------------------------------------------------------
    def predicted_round_loads(
        self, stats: object, p: int
    ) -> tuple[float, ...]:
        """Per-round predicted loads from statistics alone.

        Round 1 is costed with the full statistics (heavy-hitter aware
        when available); later rounds synthesize
        :class:`SimpleStatistics` whose intermediate cardinality is the
        (skew-refined) join-size estimate of the rounds before it.
        """
        simple: SimpleStatistics = getattr(stats, "simple", stats)
        domain = simple.domain_size
        hh = self._heavy_stats(stats, p)
        loads: list[float] = []
        acc_size: float | None = None
        for spec in self._plan:
            left, right = spec.query.atoms
            if spec.index == 0:
                loads.append(predict_one_round(spec.query, stats, p))
                acc_size = estimate_join_size(
                    left.name,
                    left.variables,
                    simple.cardinality(left.name),
                    right,
                    simple,
                    domain,
                    hh=hh,
                )
                continue
            assert acc_size is not None
            round_simple = SimpleStatistics.from_cardinalities(
                spec.query,
                {
                    left.name: max(0, round(acc_size)),
                    right.name: simple.cardinality(right.name),
                },
                domain,
            )
            loads.append(predict_one_round(spec.query, round_simple, p))
            acc_size = estimate_join_size(
                left.name, left.variables, acc_size, right, simple, domain,
                hh=hh,
            )
        return tuple(loads)
