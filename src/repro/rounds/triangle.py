"""The two-round triangle algorithm.

The triangle ``q(x,y,z) :- R(x,y), S(y,z), T(z,x)`` is the paper's
flagship hard case for one round: no variable occurs in every atom (so
the hash join is inapplicable) and HyperCube's best load is
``Theta(M / p^{2/3})`` (Example 3.7), degrading further under skew.  In
two rounds it is cheap:

* **round 1** — a partial join of the two atoms whose join is estimated
  smallest (heavy-hitter aware, so a pair sharing a skewed variable is
  avoided), executed by the best registered one-round binary join
  (skew-aware join / hash join) and materialized as a bounded
  intermediate ``_J1(x, y, z)``;
* **round 2** — a hash-join finish of ``_J1`` with the remaining atom on
  their (two) shared variables.

Whenever the intermediate stays ``O(m)``, each round's load is
``O(M / p)`` — beating every one-round algorithm's ``Omega(M / p^{2/3})``
even after the ``x 2`` round penalty of the planner's cost scale.  The
structure is the triangle specialization of
:class:`~repro.rounds.composed.RoundComposedJoin`; only the declared
applicability differs.
"""

from __future__ import annotations

from ..query.atoms import ConjunctiveQuery
from .composed import RoundComposedJoin


class TwoRoundTriangle(RoundComposedJoin):
    """Round-composed join restricted to triangle-shaped queries."""

    def __init__(
        self, query: ConjunctiveQuery, stats: object | None = None
    ) -> None:
        super().__init__(query, stats=stats, name="two-round-triangle")

    @classmethod
    def applicability(cls, query: ConjunctiveQuery) -> str | None:
        if query.num_atoms != 3:
            return "not a triangle: needs exactly three atoms"
        if query.num_variables != 3:
            return "not a triangle: needs exactly three variables"
        for atom in query.atoms:
            if atom.arity != 2 or len(atom.variable_set) != 2:
                return (
                    f"not a triangle: atom {atom} is not binary over two "
                    "distinct variables"
                )
        for var in query.variables:
            if len(query.atoms_containing(var)) != 2:
                return (
                    f"not a triangle: variable {var!r} must occur in "
                    "exactly two atoms"
                )
        return None

    @classmethod
    def round_count(cls, query: ConjunctiveQuery) -> int:
        return 2
