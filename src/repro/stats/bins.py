"""Frequency bins and bin combinations (Section 4.2).

For each relation ``S_j`` and variable subset ``x_j`` the algorithm defines
``log2 p`` heavy bins plus one light bin.  Bin ``b`` (for ``b = 1..log2 p``)
holds the heavy hitters with ``m_j / 2^(b-1) >= m_j(h_j) > m_j / 2^b``; the
light bin ``b = log2 p + 1`` holds everything else.  A bin is identified by
its *bin exponent* ``beta_b = log_p(2^(b-1))``, so ``beta_1 = 0`` and the
light bin has ``beta = 1``.

A :class:`BinCombination` ``B = (x, (beta_j)_j)`` fixes, for every relation
with ``x_j = x  intersect  vars(S_j)`` nonempty, the bin its induced
assignment falls in.  The general skew-aware algorithm solves one share LP
per bin combination and runs a HyperCube instance per combination
(`repro.core.skew_general`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import AbstractSet, Iterable, Mapping

from ..lp.fraction_utils import log_base_fraction
from ..query.atoms import ConjunctiveQuery
from .heavy_hitters import (
    Assignment,
    HeavyHitterStatistics,
    VarSubset,
    canonical_subset,
)


def num_heavy_bins(p: int) -> int:
    """``log2 p`` rounded up — the number of heavy bins."""
    if p < 1:
        raise ValueError("p must be >= 1")
    return max(1, math.ceil(math.log2(p))) if p > 1 else 1


def light_bin_index(p: int) -> int:
    """Index of the light bin (``log2 p + 1`` in the paper)."""
    return num_heavy_bins(p) + 1


def bin_index(total: int, frequency: int, p: int) -> int:
    """The bin ``b`` holding a value of ``frequency`` in a relation of
    ``total`` tuples: smallest ``b`` with ``frequency > total / 2^b``,
    clamped to the light bin."""
    if frequency <= 0:
        raise ValueError("frequency must be positive")
    if frequency > total:
        raise ValueError(f"frequency {frequency} exceeds cardinality {total}")
    light = light_bin_index(p)
    for b in range(1, light):
        if frequency > total / 2**b:
            return b
    return light


def bin_exponent(b: int, p: int) -> Fraction:
    """``beta_b = log_p(2^(b-1))``; exactly 1 for the light bin."""
    if b < 1:
        raise ValueError("bin index must be >= 1")
    if b >= light_bin_index(p):
        return Fraction(1)
    if b == 1:
        return Fraction(0)
    return log_base_fraction(float(2 ** (b - 1)), float(p))


def assignment_bin_exponent(
    stats: HeavyHitterStatistics,
    atom_name: str,
    variables: Iterable[str],
    assignment: Assignment,
) -> Fraction:
    """The bin exponent of ``assignment`` on ``(atom, variables)``.

    Light assignments (not recorded in the heavy-hitter statistics) get the
    light-bin exponent 1, matching the paper's convention.
    """
    freq = stats.frequency(atom_name, variables, assignment)
    if freq is None:
        return Fraction(1)
    total = stats.simple.cardinality(atom_name)
    return bin_exponent(bin_index(total, freq, stats.p), stats.p)


@dataclass(frozen=True)
class BinCombination:
    """``B = (x, (beta_j)_j)``: a variable set plus per-atom bin exponents.

    ``exponents`` carries entries only for atoms with ``x_j != emptyset``;
    :meth:`beta` returns 0 for the others (condition (1) of Definition 4.1).
    """

    variables: frozenset[str]
    exponents: tuple[tuple[str, Fraction], ...]  # sorted by atom name

    @classmethod
    def build(
        cls,
        variables: AbstractSet[str],
        exponents: Mapping[str, Fraction],
    ) -> "BinCombination":
        return cls(
            variables=frozenset(variables),
            exponents=tuple(sorted(exponents.items())),
        )

    @classmethod
    def empty(cls) -> "BinCombination":
        """``B_emptyset`` — the bin combination of the all-light plan."""
        return cls(variables=frozenset(), exponents=())

    @property
    def exponent_map(self) -> dict[str, Fraction]:
        return dict(self.exponents)

    def beta(self, atom_name: str) -> Fraction:
        return self.exponent_map.get(atom_name, Fraction(0))

    def atom_subset(self, query: ConjunctiveQuery, atom_name: str) -> VarSubset:
        """``x_j = x intersect vars(S_j)`` in canonical order."""
        atom = query.atom(atom_name)
        return canonical_subset(atom.variable_set & self.variables)

    def dominates(self, other: "BinCombination") -> bool:
        """The partial order ``other < self`` of Appendix D: strict variable
        containment and componentwise ``beta`` dominance."""
        if not (other.variables < self.variables):
            return False
        mine = self.exponent_map
        theirs = other.exponent_map
        names = set(mine) | set(theirs)
        return all(
            theirs.get(name, Fraction(0)) <= mine.get(name, Fraction(0))
            for name in names
        )

    def describe(self) -> str:
        exps = ", ".join(f"{name}:{float(beta):.3f}" for name, beta in self.exponents)
        return f"B(x={{{', '.join(sorted(self.variables))}}}; {exps})"


def combination_for_assignment(
    query: ConjunctiveQuery,
    stats: HeavyHitterStatistics,
    assignment: Mapping[str, int],
) -> BinCombination:
    """The bin combination *associated with* an assignment ``h`` to some
    variable set ``x`` (as used in Lemma 4.5): for each atom with
    ``x_j != emptyset``, the bin exponent of the induced assignment."""
    variables = frozenset(assignment)
    exponents: dict[str, Fraction] = {}
    for atom in query.atoms:
        subset = canonical_subset(atom.variable_set & variables)
        if not subset:
            continue
        values = tuple(assignment[var] for var in subset)
        exponents[atom.name] = assignment_bin_exponent(
            stats, atom.name, subset, values
        )
    return BinCombination.build(variables, exponents)
