"""Database statistics: cardinalities, heavy hitters, frequency bins,
degree sequences."""

from .bins import (
    BinCombination,
    assignment_bin_exponent,
    bin_exponent,
    bin_index,
    combination_for_assignment,
    light_bin_index,
    num_heavy_bins,
)
from .cardinality import SimpleStatistics, StatisticsError
from .degrees import DegreeStatistics
from .heavy_hitters import (
    MAX_SUBSET_VARIABLES,
    Assignment,
    HeavyHitterLookup,
    HeavyHitterStatistics,
    VarSubset,
    canonical_subset,
    nonempty_subsets,
)
from .provider import StatisticsProvider

__all__ = [
    "MAX_SUBSET_VARIABLES",
    "HeavyHitterLookup",
    "StatisticsProvider",
    "nonempty_subsets",
    "BinCombination",
    "assignment_bin_exponent",
    "bin_exponent",
    "bin_index",
    "combination_for_assignment",
    "light_bin_index",
    "num_heavy_bins",
    "SimpleStatistics",
    "StatisticsError",
    "DegreeStatistics",
    "Assignment",
    "HeavyHitterStatistics",
    "VarSubset",
    "canonical_subset",
]
