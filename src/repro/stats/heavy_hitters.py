"""Complex database statistics: heavy hitters and their frequencies
(Section 4).

For a relation ``S_j`` with ``|S_j| = m_j`` and a nonempty subset
``x_j subset vars(S_j)``, a partial assignment ``h_j`` to ``x_j`` is a
*heavy hitter* iff its frequency ``m_j(h_j) = |sigma_{x_j = h_j}(S_j)|``
exceeds ``m_j / p`` (Section 4.2).  There are fewer than ``p`` heavy hitters
per (relation, subset) pair, so the statistics stay ``O(p)``-sized.

The one-round algorithms assume every input server knows these statistics;
:meth:`HeavyHitterStatistics.of` extracts them exactly from a database, which
models the sampling/statistics pass of practical systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..query.atoms import ConjunctiveQuery
from ..seq.relation import Database
from .cardinality import SimpleStatistics, StatisticsError

# A subset of an atom's variables, kept sorted for canonical keying.
VarSubset = tuple[str, ...]
# Values for a VarSubset, aligned with the sorted variable order.
Assignment = tuple[int, ...]


#: Cap on the per-atom variable count before the ``2^n - 1`` subset
#: enumeration is refused.  No algorithm in the registry consults subsets
#: of more than a handful of variables, and silently materializing
#: thousands of frequency maps for a high-arity atom is a far worse
#: failure mode than a clear error.
MAX_SUBSET_VARIABLES = 12


def canonical_subset(variables: Iterable[str]) -> VarSubset:
    return tuple(sorted(set(variables)))


def nonempty_subsets(variables: VarSubset) -> list[VarSubset]:
    """Every nonempty subset of ``variables``, in mask order.

    Raises :class:`StatisticsError` beyond :data:`MAX_SUBSET_VARIABLES`
    variables — the enumeration is exponential, so a high-arity atom must
    fail loudly instead of blowing up memory.
    """
    n = len(variables)
    if n > MAX_SUBSET_VARIABLES:
        raise StatisticsError(
            f"refusing to enumerate 2^{n} - 1 variable subsets of "
            f"{variables}; heavy-hitter statistics cap atoms at "
            f"{MAX_SUBSET_VARIABLES} variables"
        )
    subsets: list[VarSubset] = []
    for mask in range(1, 1 << n):
        subsets.append(
            tuple(variables[i] for i in range(n) if mask & (1 << i))
        )
    return subsets


# Backwards-compatible private alias (pre-guard spelling).
_nonempty_subsets = nonempty_subsets


class HeavyHitterLookup:
    """The read side of heavy-hitter statistics, shared by the exact and
    the sketched providers (both satisfy
    :class:`repro.stats.provider.StatisticsProvider`).

    Implementations supply ``simple``, ``p``, ``threshold_factor`` and a
    ``hitters`` mapping ``(atom_name, subset) -> {assignment: frequency}``
    in canonical (sorted-variable) order.
    """

    simple: SimpleStatistics
    p: int
    threshold_factor: float
    hitters: Mapping[tuple[str, VarSubset], Mapping[Assignment, int]]

    def threshold(self, atom_name: str) -> float:
        """The heavy-hitter frequency threshold ``m_j / p`` (scaled)."""
        return self.threshold_factor * self.simple.cardinality(atom_name) / self.p

    def heavy_hitters(
        self, atom_name: str, variables: Iterable[str]
    ) -> Mapping[Assignment, int]:
        """Heavy assignments (and frequencies) for an atom/subset pair."""
        key = (atom_name, canonical_subset(variables))
        return self.hitters.get(key, {})

    def frequency(
        self, atom_name: str, variables: Iterable[str], assignment: Assignment
    ) -> int | None:
        """``m_j(h_j)`` if heavy; ``None`` means light (``<= m_j/p``)."""
        return self.heavy_hitters(atom_name, variables).get(tuple(assignment))

    def is_heavy(
        self, atom_name: str, variables: Iterable[str], assignment: Assignment
    ) -> bool:
        return tuple(assignment) in self.heavy_hitters(atom_name, variables)

    def frequency_or_light_bound(
        self, atom_name: str, variables: Iterable[str], assignment: Assignment
    ) -> float:
        """Known frequency for heavy hitters; the ``m_j/p`` bound otherwise."""
        freq = self.frequency(atom_name, variables, assignment)
        if freq is not None:
            return float(freq)
        return self.threshold(atom_name)

    def total_heavy_count(self) -> int:
        return sum(len(mapping) for mapping in self.hitters.values())


@dataclass(frozen=True)
class HeavyHitterStatistics(HeavyHitterLookup):
    """Exact heavy hitters of every (relation, variable-subset) pair.

    Attributes
    ----------
    simple:
        The underlying cardinality statistics.
    p:
        Number of servers the thresholds were computed against.
    threshold_factor:
        Heavy iff ``m_j(h_j) > threshold_factor * m_j / p``.  The paper uses
        factor 1; lowering it (e.g. ``1 / log p``) is an ablation knob.
    hitters:
        ``(atom_name, subset) -> {assignment: frequency}`` with subsets and
        assignments in canonical (sorted-variable) order.
    """

    simple: SimpleStatistics
    p: int
    threshold_factor: float
    hitters: Mapping[tuple[str, VarSubset], Mapping[Assignment, int]]

    @classmethod
    def of(
        cls,
        query: ConjunctiveQuery,
        db: Database,
        p: int,
        threshold_factor: float = 1.0,
    ) -> "HeavyHitterStatistics":
        """Extract exact heavy-hitter statistics for ``query`` from ``db``."""
        if p < 1:
            raise StatisticsError("p must be >= 1")
        simple = SimpleStatistics.of(db)
        hitters: dict[tuple[str, VarSubset], dict[Assignment, int]] = {}
        for atom in query.atoms:
            relation = db.relation(atom.name)
            threshold = threshold_factor * relation.cardinality / p
            atom_vars = canonical_subset(atom.variables)
            for subset in _nonempty_subsets(atom_vars):
                positions = [atom.positions_of(var)[0] for var in subset]
                frequencies = relation.frequencies(positions)
                heavy = {
                    assignment: count
                    for assignment, count in frequencies.items()
                    if count > threshold
                }
                hitters[(atom.name, subset)] = heavy
        return cls(
            simple=simple, p=p, threshold_factor=threshold_factor, hitters=hitters
        )

    @classmethod
    def estimate(
        cls,
        query: ConjunctiveQuery,
        db: Database,
        p: int,
        sample_rate: float = 0.1,
        seed: int = 0,
        threshold_factor: float = 1.0,
    ) -> "HeavyHitterStatistics":
        """Sampling-based heavy-hitter detection.

        Models the statistics pass of practical systems (the paper's
        introduction: "first detecting the heavy hitters (e.g. using
        sampling)"): scan a Bernoulli sample of each relation, scale the
        sampled frequencies by ``1/sample_rate``, and keep the assignments
        whose *estimate* crosses the threshold.  Frequencies are therefore
        approximate — which is all the algorithms need, since the Section
        4.2 bins are factor-2 coarse by design.

        The one-round algorithms stay *correct* with estimated statistics:
        routing only requires every input server to classify values
        consistently, and they all share the same statistics object.
        """
        import random

        if not 0 < sample_rate <= 1:
            raise StatisticsError("sample_rate must lie in (0, 1]")
        if p < 1:
            raise StatisticsError("p must be >= 1")
        simple = SimpleStatistics.of(db)
        rng = random.Random(f"hh-sample:{seed}")
        hitters: dict[tuple[str, VarSubset], dict[Assignment, int]] = {}
        for atom in query.atoms:
            relation = db.relation(atom.name)
            sampled = [
                t for t in sorted(relation.tuples) if rng.random() < sample_rate
            ]
            threshold = threshold_factor * relation.cardinality / p
            atom_vars = canonical_subset(atom.variables)
            for subset in _nonempty_subsets(atom_vars):
                positions = [atom.positions_of(var)[0] for var in subset]
                counts: dict[Assignment, int] = {}
                for t in sampled:
                    key = tuple(t[pos] for pos in positions)
                    counts[key] = counts.get(key, 0) + 1
                heavy = {}
                for assignment, count in counts.items():
                    estimate = count / sample_rate
                    if estimate > threshold:
                        heavy[assignment] = min(
                            relation.cardinality, round(estimate)
                        )
                hitters[(atom.name, subset)] = heavy
        return cls(
            simple=simple, p=p, threshold_factor=threshold_factor, hitters=hitters
        )
