"""The shared statistics surface the skew-aware machinery consumes.

Two implementations exist today:

* :class:`repro.stats.heavy_hitters.HeavyHitterStatistics` — exact, from a
  fully materialized :class:`~repro.seq.relation.Database`;
* :class:`repro.sketch.SketchedHeavyHitterStatistics` — estimated, from a
  single streaming pass of mergeable Count-Sketches.

Everything downstream (the Section 4 algorithms' ``applicability()`` and
``predicted_load_bits()`` hooks, the planner, the bin machinery) talks to
the :class:`StatisticsProvider` protocol instead of a concrete class, so
exact and sketched statistics are interchangeable.  The protocol is
``runtime_checkable``: the single arbiter
:meth:`repro.mpc.execution.OneRoundAlgorithm._heavy_stats` uses an
``isinstance`` check against it.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Protocol, runtime_checkable

from .cardinality import SimpleStatistics

# A subset of an atom's variables, kept sorted for canonical keying.
VarSubset = tuple[str, ...]
# Values for a VarSubset, aligned with the sorted variable order.
Assignment = tuple[int, ...]


@runtime_checkable
class StatisticsProvider(Protocol):
    """Heavy-hitter statistics, exact or estimated.

    A provider knows, for every (relation, variable-subset) pair of a
    query, which partial assignments are *heavy* (frequency above
    ``threshold_factor * m_j / p``, Section 4.2) and what their
    (possibly estimated) frequencies are.  ``p`` is the server count the
    thresholds were computed against — statistics thresholded for a
    different ``p`` are unusable, which is why the protocol carries it.
    """

    simple: SimpleStatistics
    p: int
    threshold_factor: float

    def threshold(self, atom_name: str) -> float:
        """The heavy-hitter frequency threshold ``m_j / p`` (scaled)."""
        ...

    def heavy_hitters(
        self, atom_name: str, variables: Iterable[str]
    ) -> Mapping[Assignment, int]:
        """Heavy assignments (and frequencies) for an atom/subset pair."""
        ...

    def frequency(
        self, atom_name: str, variables: Iterable[str], assignment: Assignment
    ) -> int | None:
        """``m_j(h_j)`` if heavy; ``None`` means light (``<= m_j/p``)."""
        ...

    def is_heavy(
        self, atom_name: str, variables: Iterable[str], assignment: Assignment
    ) -> bool:
        ...

    def frequency_or_light_bound(
        self, atom_name: str, variables: Iterable[str], assignment: Assignment
    ) -> float:
        """Known frequency for heavy hitters; the ``m_j/p`` bound otherwise."""
        ...

    def total_heavy_count(self) -> int:
        ...
