"""Degree statistics of type ``x`` (Section 4.3).

A *statistics of type* ``x_j`` for relation ``S_j`` is the full frequency
function ``m_j : [n]^{d_j} -> N`` on the positions of ``x_j``; for a binary
relation and ``x = {z}`` this is exactly a degree sequence.  The residual
lower bound ``L_x(u, M, p)`` of Theorem 4.7 is a sum over assignments ``h``
weighted by ``K(u, M(h)) = prod_j M_j(h_j)^{u_j}``.

Unlike :class:`~repro.stats.heavy_hitters.HeavyHitterStatistics`, these maps
are complete (they include light values); they define a *class* of databases
and appear only in lower-bound computations, never inside algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Mapping

from ..query.atoms import ConjunctiveQuery
from ..seq.relation import Database, bits_per_value
from .cardinality import StatisticsError
from .heavy_hitters import Assignment, VarSubset, canonical_subset


@dataclass(frozen=True)
class DegreeStatistics:
    """Full frequency maps for one variable set ``x``.

    Attributes
    ----------
    query:
        The query the statistics refer to.
    variables:
        The set ``x``.
    frequency_maps:
        ``atom name -> {h_j: m_j(h_j)}`` over the canonical ordering of
        ``x_j = x intersect vars(S_j)``.  Atoms with ``x_j = emptyset`` map
        the empty assignment ``()`` to their cardinality (as in the paper,
        where an ``emptyset``-statistics is a single number).
    domain_size:
        The common attribute domain size ``n``.
    """

    query: ConjunctiveQuery
    variables: frozenset[str]
    frequency_maps: Mapping[str, Mapping[Assignment, int]]
    domain_size: int

    @classmethod
    def of(
        cls, query: ConjunctiveQuery, db: Database, variables: AbstractSet[str]
    ) -> "DegreeStatistics":
        db.validate_against(query)
        var_set = frozenset(variables)
        unknown = var_set - set(query.variables)
        if unknown:
            raise StatisticsError(
                f"variables {sorted(unknown)} do not appear in {query.name}"
            )
        maps: dict[str, dict[Assignment, int]] = {}
        for atom in query.atoms:
            relation = db.relation(atom.name)
            subset = canonical_subset(atom.variable_set & var_set)
            if not subset:
                maps[atom.name] = {(): relation.cardinality}
                continue
            positions = [atom.positions_of(var)[0] for var in subset]
            maps[atom.name] = dict(relation.frequencies(positions))
        return cls(
            query=query,
            variables=var_set,
            frequency_maps=maps,
            domain_size=db.domain_size,
        )

    def subset_of(self, atom_name: str) -> VarSubset:
        atom = self.query.atom(atom_name)
        return canonical_subset(atom.variable_set & self.variables)

    def frequency(self, atom_name: str, assignment: Assignment) -> int:
        """``m_j(h_j)``; zero for assignments absent from the relation."""
        return self.frequency_maps[atom_name].get(tuple(assignment), 0)

    def bits(self, atom_name: str, assignment: Assignment) -> float:
        """``M_j(h_j) = a_j * m_j(h_j) * log2 n`` (Section 4.3)."""
        atom = self.query.atom(atom_name)
        return (
            atom.arity
            * self.frequency(atom_name, assignment)
            * bits_per_value(self.domain_size)
        )

    def cardinality(self, atom_name: str) -> int:
        """``|S_j| = sum_h m_j(h_j)`` — the statistics determine it."""
        return sum(self.frequency_maps[atom_name].values())
