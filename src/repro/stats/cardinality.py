"""Simple database statistics: relation cardinalities (Section 3).

All input servers know the cardinality vector ``m = (m_1, ..., m_l)`` and the
bit-size vector ``M = (M_1, ..., M_l)`` with ``M_j = a_j * m_j * log n``.
Both the HyperCube share optimization and the lower bounds consume these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..query.atoms import ConjunctiveQuery
from ..seq.relation import Database, bits_per_value


class StatisticsError(ValueError):
    """Raised when statistics are missing or inconsistent."""


@dataclass(frozen=True)
class SimpleStatistics:
    """Cardinalities and bit sizes of every relation, plus the domain size."""

    cardinalities: Mapping[str, int]
    arities: Mapping[str, int]
    domain_size: int

    @classmethod
    def of(cls, db: Database) -> "SimpleStatistics":
        return cls(
            cardinalities={rel.name: rel.cardinality for rel in db},
            arities={rel.name: rel.arity for rel in db},
            domain_size=db.domain_size,
        )

    @classmethod
    def from_cardinalities(
        cls,
        query: ConjunctiveQuery,
        cardinalities: Mapping[str, int],
        domain_size: int,
    ) -> "SimpleStatistics":
        """Statistics for a hypothetical database matching ``query``."""
        missing = [a.name for a in query.atoms if a.name not in cardinalities]
        if missing:
            raise StatisticsError(f"missing cardinalities for {missing}")
        return cls(
            cardinalities=dict(cardinalities),
            arities={a.name: a.arity for a in query.atoms},
            domain_size=domain_size,
        )

    def cardinality(self, name: str) -> int:
        """``m_j`` for relation ``name``."""
        try:
            return self.cardinalities[name]
        except KeyError:
            raise StatisticsError(f"no cardinality recorded for {name!r}") from None

    def arity(self, name: str) -> int:
        try:
            return self.arities[name]
        except KeyError:
            raise StatisticsError(f"no arity recorded for {name!r}") from None

    def bits(self, name: str) -> float:
        """``M_j = a_j * m_j * log2(n)``."""
        return (
            self.arity(name)
            * self.cardinality(name)
            * bits_per_value(self.domain_size)
        )

    def bits_vector(self, query: ConjunctiveQuery) -> dict[str, float]:
        """``M`` restricted (and validated) against the atoms of ``query``."""
        return {atom.name: self.bits(atom.name) for atom in query.atoms}

    def cardinality_vector(self, query: ConjunctiveQuery) -> dict[str, int]:
        return {atom.name: self.cardinality(atom.name) for atom in query.atoms}

    @property
    def total_bits(self) -> float:
        return sum(self.bits(name) for name in self.cardinalities)
