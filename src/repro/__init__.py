"""repro — a reproduction of *Skew in Parallel Query Processing*
(Beame, Koutris, Suciu, PODS 2014; arXiv:1401.1872).

The package implements the MPC model, the HyperCube algorithm with
LP-optimal shares, the skew-aware one-round algorithms of Section 4, and
the matching communication lower bounds — plus every substrate they need
(conjunctive queries, an exact rational LP solver, a cluster simulator,
workload generators, balls-into-bins analysis, and the Section 5 MapReduce
model).

The public entry point is the experiment API (:mod:`repro.api`): a
registry of one-round algorithms with declared applicability, a planner
that ranks them by the Section 3 predicted loads, and a sweep runner that
executes declarative grids through the pluggable execution engines.

Quickstart::

    from repro import Database, autoplan, plan, run_one_round
    from repro.data import uniform_relation

    q = "q(x, y, z) :- S1(x, z), S2(y, z)"
    db = Database.from_relations([
        uniform_relation("S1", 4096, 10_000, seed=1),
        uniform_relation("S2", 4096, 10_000, seed=2),
    ])
    query_plan = plan(q, db=db, p=64)       # ranked predictions + bound
    print(query_plan.explain())
    algo = query_plan.instantiate()         # minimum-predicted-load winner
    result = run_one_round(algo, db, p=64, verify=True)
    assert result.is_complete
    print(result.max_load_bits, query_plan.lower_bound_bits)

or, sweeping a grid::

    from repro import Sweep

    result = Sweep(q, workload="zipf", p_values=(8, 32),
                   skews=(0.0, 1.5)).run(max_workers=4)
    print(result.summary())

Deprecation note: probing algorithm constructors for
:class:`~repro.query.QueryError` to test applicability is deprecated;
algorithms now *declare* applicability (``Algorithm.applicability(q)``)
and the registry/planner consume the declarations.
"""

from .api import (
    AlgorithmSpec,
    Experiment,
    QueryPlan,
    RunRecord,
    Sweep,
    SweepResult,
    WorkloadSpec,
    algorithm_keys,
    algorithm_specs,
    applicable_specs,
    autoplan,
    get_spec,
    plan,
    register,
    run_cell,
    sweep,
)

from .core import (
    BinHyperCubeAlgorithm,
    BroadcastHyperCube,
    CartesianProductAlgorithm,
    HashJoinAlgorithm,
    HyperCubeAlgorithm,
    SkewAwareJoin,
    agm_bound,
    best_residual_lower_bound,
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    lower_bound,
    maximum_packing_value,
    non_dominated_packing_vertices,
    optimal_share_exponents,
    replication_rate_lower_bound,
    residual_lower_bound,
    skew_join_load_bound,
    space_exponent,
    vertex_loads,
)
from .mpc import (
    BatchedEngine,
    Cluster,
    ExecutionEngine,
    ExecutionResult,
    HashFamily,
    LoadReport,
    MultiprocessEngine,
    ReferenceEngine,
    available_engines,
    run_one_round,
)
from .obs import (
    MetricsRegistry,
    Observation,
    Tracer,
)
from .query import (
    Atom,
    ConjunctiveQuery,
    QueryError,
    parse_query,
    residual_query,
    triangle_query,
)
from .seq import Database, Relation, RelationError, count_answers, evaluate
from .sketch import (
    CountSketch,
    HierarchicalCountSketch,
    SketchConfig,
    SketchedHeavyHitterStatistics,
    sketch_fidelity,
)
from .stats import (
    DegreeStatistics,
    HeavyHitterStatistics,
    SimpleStatistics,
    StatisticsProvider,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmSpec",
    "Experiment",
    "QueryPlan",
    "RunRecord",
    "Sweep",
    "SweepResult",
    "WorkloadSpec",
    "algorithm_keys",
    "algorithm_specs",
    "applicable_specs",
    "autoplan",
    "get_spec",
    "plan",
    "register",
    "run_cell",
    "sweep",
    "BinHyperCubeAlgorithm",
    "BroadcastHyperCube",
    "CartesianProductAlgorithm",
    "HashJoinAlgorithm",
    "HyperCubeAlgorithm",
    "SkewAwareJoin",
    "agm_bound",
    "best_residual_lower_bound",
    "fractional_edge_cover_number",
    "fractional_vertex_cover_number",
    "lower_bound",
    "maximum_packing_value",
    "non_dominated_packing_vertices",
    "optimal_share_exponents",
    "replication_rate_lower_bound",
    "residual_lower_bound",
    "skew_join_load_bound",
    "space_exponent",
    "vertex_loads",
    "BatchedEngine",
    "Cluster",
    "ExecutionEngine",
    "ExecutionResult",
    "HashFamily",
    "LoadReport",
    "MultiprocessEngine",
    "ReferenceEngine",
    "available_engines",
    "run_one_round",
    "MetricsRegistry",
    "Observation",
    "Tracer",
    "Atom",
    "ConjunctiveQuery",
    "QueryError",
    "parse_query",
    "residual_query",
    "triangle_query",
    "Database",
    "Relation",
    "RelationError",
    "count_answers",
    "evaluate",
    "CountSketch",
    "HierarchicalCountSketch",
    "SketchConfig",
    "SketchedHeavyHitterStatistics",
    "sketch_fidelity",
    "DegreeStatistics",
    "HeavyHitterStatistics",
    "SimpleStatistics",
    "StatisticsProvider",
    "__version__",
]
