"""repro — a reproduction of *Skew in Parallel Query Processing*
(Beame, Koutris, Suciu, PODS 2014; arXiv:1401.1872).

The package implements the MPC model, the HyperCube algorithm with
LP-optimal shares, the skew-aware one-round algorithms of Section 4, and
the matching communication lower bounds — plus every substrate they need
(conjunctive queries, an exact rational LP solver, a cluster simulator,
workload generators, balls-into-bins analysis, and the Section 5 MapReduce
model).

Quickstart::

    from repro import (
        parse_query, Database, SimpleStatistics,
        HyperCubeAlgorithm, run_one_round, lower_bound,
    )
    from repro.data import uniform_relation

    q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
    db = Database.from_relations([
        uniform_relation("S1", 4096, 10_000, seed=1),
        uniform_relation("S2", 4096, 10_000, seed=2),
    ])
    stats = SimpleStatistics.of(db)
    algo = HyperCubeAlgorithm.with_optimal_shares(q, stats, p=64)
    result = run_one_round(algo, db, p=64, verify=True)
    assert result.is_complete
    print(result.max_load_bits, lower_bound(q, stats.bits_vector(q), 64).bits)
"""

from .core import (
    BinHyperCubeAlgorithm,
    BroadcastHyperCube,
    CartesianProductAlgorithm,
    HashJoinAlgorithm,
    HyperCubeAlgorithm,
    SkewAwareJoin,
    agm_bound,
    best_residual_lower_bound,
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    lower_bound,
    maximum_packing_value,
    non_dominated_packing_vertices,
    optimal_share_exponents,
    replication_rate_lower_bound,
    residual_lower_bound,
    skew_join_load_bound,
    space_exponent,
    vertex_loads,
)
from .mpc import (
    BatchedEngine,
    Cluster,
    ExecutionEngine,
    ExecutionResult,
    HashFamily,
    LoadReport,
    MultiprocessEngine,
    ReferenceEngine,
    available_engines,
    run_one_round,
)
from .query import (
    Atom,
    ConjunctiveQuery,
    QueryError,
    parse_query,
    residual_query,
    triangle_query,
)
from .seq import Database, Relation, RelationError, count_answers, evaluate
from .stats import (
    DegreeStatistics,
    HeavyHitterStatistics,
    SimpleStatistics,
)

__version__ = "1.0.0"

__all__ = [
    "BinHyperCubeAlgorithm",
    "BroadcastHyperCube",
    "CartesianProductAlgorithm",
    "HashJoinAlgorithm",
    "HyperCubeAlgorithm",
    "SkewAwareJoin",
    "agm_bound",
    "best_residual_lower_bound",
    "fractional_edge_cover_number",
    "fractional_vertex_cover_number",
    "lower_bound",
    "maximum_packing_value",
    "non_dominated_packing_vertices",
    "optimal_share_exponents",
    "replication_rate_lower_bound",
    "residual_lower_bound",
    "skew_join_load_bound",
    "space_exponent",
    "vertex_loads",
    "BatchedEngine",
    "Cluster",
    "ExecutionEngine",
    "ExecutionResult",
    "HashFamily",
    "LoadReport",
    "MultiprocessEngine",
    "ReferenceEngine",
    "available_engines",
    "run_one_round",
    "Atom",
    "ConjunctiveQuery",
    "QueryError",
    "parse_query",
    "residual_query",
    "triangle_query",
    "Database",
    "Relation",
    "RelationError",
    "count_answers",
    "evaluate",
    "DegreeStatistics",
    "HeavyHitterStatistics",
    "SimpleStatistics",
    "__version__",
]
