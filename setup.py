from setuptools import find_packages, setup

setup(
    name="repro-skew-parallel-query",
    version="1.1.0",
    description=(
        "Reproduction of 'Skew in Parallel Query Processing' "
        "(Beame, Koutris, Suciu, PODS 2014)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
