#!/usr/bin/env python
"""Distributed triangle listing on a hub-heavy graph.

The workload of Suri & Vassilvitskii's 'last reducer' problem, cited by the
paper [11]: counting/listing triangles of a graph whose degree distribution
has hubs.  One round of HyperCube over ``C3 = S1(x1,x2), S2(x2,x3),
S3(x3,x1)`` lists every triangle; the share choice determines whether hubs
hurt.

The script compares on a hub-heavy edge set:

* HyperCube with LP-optimal shares (p^(1/3) each for equal sizes) — the
  Afrati-Ullman/[11] one-round triangle algorithm;
* the bin-combination algorithm of Section 4.2, which isolates the hubs;
* Example 3.7's closed-form load table for the triangle query.

Run:  python examples/triangle_counting.py [--engine {reference,batched,mp}]
"""

from __future__ import annotations

import argparse

from repro import (
    Database,
    SimpleStatistics,
    available_engines,
    lower_bound,
    plan,
    run_one_round,
    vertex_loads,
)
from repro.data import graph_edges
from repro.query import triangle_query

P = 27
NODES = 1200
EDGES = 3600


def edge_db(hub_fraction: float) -> Database:
    """Three copies of a directed edge relation, one per C3 atom."""
    relations = []
    for j in (1, 2, 3):
        relations.append(
            graph_edges(
                f"S{j}", NODES, EDGES, hub_count=3,
                hub_fraction=hub_fraction, seed=40 + j,
            )
        )
    return Database.from_relations(relations)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", choices=available_engines(),
                        default="batched",
                        help="execution engine for the simulated rounds")
    args = parser.parse_args()

    query = triangle_query()
    print(f"query: {query}")
    print(f"graph: {NODES} nodes, {EDGES} edges per relation, p = {P}, "
          f"{args.engine} engine\n")

    db = edge_db(hub_fraction=0.0)
    stats = SimpleStatistics.of(db)
    bits = stats.bits_vector(query)

    print("-- Example 3.7: the four packing-vertex load expressions --")
    for packing, value in vertex_loads(query, bits, P):
        label = tuple(float(v) for v in packing.values())
        print(f"  u = {label}: L(u, M, p) = {value:,.0f} bits")
    bound = lower_bound(query, bits, P)
    print(f"  optimal load (max of the above): {bound.bits:,.0f} bits\n")

    print("-- triangle listing, uniform vs hub-heavy edges --")
    print(f"{'hubs':>6} {'algorithm':>14} {'max load':>10} {'triangles':>10} "
          f"{'complete':>9}")
    for hub_fraction in (0.0, 0.4):
        db = edge_db(hub_fraction)
        query_plan = plan(query, db=db, p=P)
        for key in ("hypercube-lp", "bin-hypercube"):
            algorithm = query_plan.instantiate(key)
            result = run_one_round(algorithm, db, P, verify=True,
                                   engine=args.engine)
            print(
                f"{hub_fraction:>6.1f} {algorithm.name:>14} "
                f"{result.max_load_tuples:>10} {result.answer_count:>10} "
                f"{str(result.is_complete):>9}"
            )
            assert result.is_complete

    print(
        "\nNote the honest takeaway: for C3 with equal cardinalities the\n"
        "LP-optimal shares are already the skew-resilient p^(1/3) cube\n"
        "(Corollary 3.2(ii)), so hubs cost HyperCube only its worst-case\n"
        "guarantee and the bin algorithm matches it within constants.\n"
        "The bin algorithm's big wins appear when the skew-free optimum\n"
        "is lopsided — e.g. the hash join of examples/skewed_join.py —\n"
        "and Theorem 4.6 is about matching the *lower bound*, which both\n"
        "do here."
    )


if __name__ == "__main__":
    main()
