#!/usr/bin/env python
"""A tour of the share-optimization machinery (Section 3).

For a catalog of query shapes and cardinality profiles, prints:

* the fractional edge packing polytope's interesting vertices ``pk(q)``,
* ``tau*`` and its dual, the fractional vertex-cover number,
* the exact LP share exponents, the closed-form optimal load, and the
  statistics-aware space exponent of Section 3.3.

This is the 'query optimizer' view of the paper: everything here is
computable from the statistics alone, before a single tuple moves.

Run:  python examples/share_optimization.py
"""

from __future__ import annotations

from repro import (
    SimpleStatistics,
    fractional_vertex_cover_number,
    lower_bound,
    maximum_packing_value,
    non_dominated_packing_vertices,
    optimal_share_exponents,
    space_exponent,
)
from repro.query import (
    chain_query,
    clique_query,
    simple_join_query,
    star_query,
    triangle_query,
)

P = 64

PROFILES = {
    "join, equal sizes": (simple_join_query(), {"S1": 2**20, "S2": 2**20}),
    "join, 16:1 sizes": (simple_join_query(), {"S1": 2**22, "S2": 2**18}),
    "triangle, equal": (
        triangle_query(),
        {"S1": 2**20, "S2": 2**20, "S3": 2**20},
    ),
    "triangle, mixed": (
        triangle_query(),
        {"S1": 2**22, "S2": 2**19, "S3": 2**14},
    ),
    "chain L3": (
        chain_query(3),
        {"S1": 2**20, "S2": 2**18, "S3": 2**20},
    ),
    "star, 3 rays": (
        star_query(3),
        {"S1": 2**20, "S2": 2**19, "S3": 2**18},
    ),
    "clique K4, equal": (
        clique_query(4),
        {f"S{i}_{j}": 2**18 for i in range(1, 5) for j in range(i + 1, 5)},
    ),
}


def main() -> None:
    for label, (query, cardinalities) in PROFILES.items():
        stats = SimpleStatistics.from_cardinalities(
            query, cardinalities, domain_size=2**24
        )
        bits = stats.bits_vector(query)

        print("=" * 72)
        print(f"{label}: {query}")
        tau = maximum_packing_value(query)
        cover = fractional_vertex_cover_number(query)
        print(f"  tau* = {tau} (= fractional vertex cover number {cover})")

        vertices = non_dominated_packing_vertices(query)
        print(f"  pk(q): {len(vertices)} non-dominated vertices")
        for vertex in vertices[:6]:
            print("    u = {" + ", ".join(
                f"{name}: {value}" for name, value in sorted(vertex.items())
                if value != 0
            ) + "}")

        solution = optimal_share_exponents(query, bits, P)
        shares = {
            var: f"p^{float(e):.3f}"
            for var, e in solution.exponents.items()
            if e != 0
        }
        print(f"  optimal shares (p={P}): {shares or 'all 1'}")
        bound = lower_bound(query, bits, P)
        print(f"  optimal load: {bound.bits:,.0f} bits "
              f"(= p^{float(solution.lam):.4f})")
        eps = space_exponent(query, bits, P)
        print(f"  space exponent: {eps:.4f} "
              f"(replication grows as p^{max(eps, 0):.3f})")
    print("=" * 72)


if __name__ == "__main__":
    main()
