#!/usr/bin/env python
"""Quickstart: optimal one-round evaluation of a join in the MPC model.

Walks the full pipeline of the paper on the running example
``q(x, y, z) = S1(x, z), S2(y, z)``:

1. build a database and collect cardinality statistics;
2. compute the exact optimal share exponents (LP (5)) and the matching
   closed-form lower bound (Theorem 3.6);
3. run HyperCube for one communication round on a simulated cluster;
4. verify completeness and compare measured load against the bound.

Run:  python examples/quickstart.py [--engine {reference,batched,mp}]
"""

from __future__ import annotations

import argparse

from repro import (
    Database,
    HyperCubeAlgorithm,
    SimpleStatistics,
    available_engines,
    lower_bound,
    optimal_share_exponents,
    parse_query,
    run_one_round,
)
from repro.data import uniform_relation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", choices=available_engines(),
                        default="batched",
                        help="execution engine for the simulated round "
                             "(answers and loads are engine-independent)")
    args = parser.parse_args()

    # 1. The query and a skew-free database.
    query = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
    db = Database.from_relations(
        [
            uniform_relation("S1", 4096, 100_000, seed=1),
            uniform_relation("S2", 1024, 100_000, seed=2),
        ]
    )
    stats = SimpleStatistics.of(db)
    p = 64

    print(f"query       : {query}")
    print(f"relations   : " + ", ".join(str(rel) for rel in db))
    print(f"servers     : p = {p}")

    # 2. Share optimization and the matching lower bound.
    bits = stats.bits_vector(query)
    exponents = optimal_share_exponents(query, bits, p)
    bound = lower_bound(query, bits, p)
    print("\n-- Theorem 3.6: L_lower == L_upper --")
    for var, e in exponents.exponents.items():
        print(f"  share exponent e_{var} = {float(e):.4f} (share ~ p^{float(e):.3f})")
    print(f"  lambda = {float(exponents.lam):.4f}")
    print(f"  L_upper = p^lambda        = {exponents.load_bits:,.0f} bits")
    print(f"  L_lower = max_u L(u,M,p)  = {bound.bits:,.0f} bits")
    print(f"  maximizing packing        = { {k: str(v) for k, v in bound.packing.items()} }")

    # 3. One communication round on the simulated cluster.
    algorithm = HyperCubeAlgorithm.with_optimal_shares(query, stats, p)
    print(f"\n-- HyperCube round (integer shares {algorithm.shares}, "
          f"{args.engine} engine) --")
    result = run_one_round(algorithm, db, p, seed=0, verify=True,
                           engine=args.engine)

    # 4. Completeness and load.
    assert result.is_complete, "HyperCube must find every answer"
    print(f"  answers found   : {result.answer_count} (complete: {result.is_complete})")
    print(f"  max server load : {result.max_load_bits:,.0f} bits "
          f"({result.max_load_tuples} tuples)")
    print(f"  load vs bound   : {result.max_load_bits / bound.bits:.2f}x")
    print(f"  replication     : {result.report.replication_rate:.2f}x input")
    print(f"  balance         : {result.report.balance:.2f} (max/mean)")


if __name__ == "__main__":
    main()
