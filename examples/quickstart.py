#!/usr/bin/env python
"""Quickstart: plan, run, and check an MPC join against its lower bound.

Walks the experiment API on the running example
``q(x, y, z) = S1(x, z), S2(y, z)``:

1. build a database and extract statistics;
2. ``plan`` — rank every registered one-round algorithm by its predicted
   load, with the Theorem 3.6 lower bound attached;
3. instantiate the winner and run one communication round on a simulated
   cluster (``autoplan`` collapses steps 2-3 into one call);
4. verify completeness and compare measured load against prediction and
   bound.

Run:  python examples/quickstart.py [--engine {reference,batched,mp}]
"""

from __future__ import annotations

import argparse

from repro import (
    Database,
    available_engines,
    plan,
    run_one_round,
)
from repro.data import uniform_relation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", choices=available_engines(),
                        default="batched",
                        help="execution engine for the simulated round "
                             "(answers and loads are engine-independent)")
    args = parser.parse_args()

    # 1. The query and a skew-free database.
    query = "q(x, y, z) :- S1(x, z), S2(y, z)"
    db = Database.from_relations(
        [
            uniform_relation("S1", 4096, 100_000, seed=1),
            uniform_relation("S2", 1024, 100_000, seed=2),
        ]
    )
    p = 64

    print(f"relations   : " + ", ".join(str(rel) for rel in db))
    print(f"servers     : p = {p}")

    # 2. The planner: predicted loads + the Theorem 3.6 lower bound.
    query_plan = plan(query, db=db, p=p)
    print("\n-- the bound-driven planner --")
    print(query_plan.explain())

    # 3. One communication round with the planner's winner.
    algorithm = query_plan.instantiate()
    print(f"\n-- one round of {algorithm.name} ({args.engine} engine) --")
    result = run_one_round(algorithm, db, p, seed=0, verify=True,
                           engine=args.engine)

    # 4. Completeness and load, against prediction and bound.
    assert result.is_complete, "the planner's winner must find every answer"
    predicted = query_plan.chosen.predicted_load_bits
    bound = query_plan.lower_bound_bits
    print(f"  answers found   : {result.answer_count} (complete: {result.is_complete})")
    print(f"  max server load : {result.max_load_bits:,.0f} bits "
          f"({result.max_load_tuples} tuples)")
    print(f"  load vs predicted: {result.max_load_bits / predicted:.2f}x")
    print(f"  load vs bound   : {result.max_load_bits / bound:.2f}x")
    print(f"  replication     : {result.report.replication_rate:.2f}x input")
    print(f"  balance         : {result.report.balance:.2f} (max/mean)")


if __name__ == "__main__":
    main()
