#!/usr/bin/env python
"""Reducer-size vs replication-rate trade-off (Section 5).

In the MapReduce model of Afrati et al. the knob is the reducer size ``L``;
the cost is the replication rate ``r``.  Theorem 5.1 lower-bounds ``r`` by
``max_u c^u K(u, M) / (L^(u-1) sum_j M_j)``; for triangles with equal sizes
this is the familiar ``Omega(sqrt(M/L))`` curve, matched by HyperCube run
as the map phase.

The script sweeps ``L`` and prints measured-vs-bound, plus the implied
minimum reducer counts (Example 5.2).

Run:  python examples/mapreduce_replication.py
"""

from __future__ import annotations

from repro import Database, SimpleStatistics, replication_rate_lower_bound
from repro.core import minimum_reducers, triangle_replication_shape
from repro.data import uniform_relation
from repro.mr import hypercube_mapreduce
from repro.query import triangle_query

M_TUPLES = 4000
DOMAIN = 12_000


def main() -> None:
    query = triangle_query()
    db = Database.from_relations(
        [
            uniform_relation("S1", M_TUPLES, DOMAIN, seed=91),
            uniform_relation("S2", M_TUPLES, DOMAIN, seed=92),
            uniform_relation("S3", M_TUPLES, DOMAIN, seed=93),
        ]
    )
    stats = SimpleStatistics.of(db)
    bits = stats.bits_vector(query)
    m_bits = bits["S1"]
    input_bits = sum(bits.values())

    print(f"query: {query}")
    print(f"input: 3 x {M_TUPLES} tuples = {input_bits:,.0f} bits\n")
    header = (
        f"{'L (bits)':>12} {'reducers':>9} {'measured r':>11} "
        f"{'bound r':>9} {'sqrt(M/L)':>10} {'min reducers':>13}"
    )
    print(header)
    print("-" * len(header))

    for divisor in (2, 8, 32, 128):
        reducer_bits = m_bits / divisor
        run = hypercube_mapreduce(query, db, reducer_bits=reducer_bits)
        bound, _packing = replication_rate_lower_bound(query, bits, reducer_bits)
        shape = triangle_replication_shape(m_bits, reducer_bits)
        needed = minimum_reducers(bound, input_bits, reducer_bits)
        print(
            f"{reducer_bits:>12,.0f} {run.reducers:>9} "
            f"{run.result.replication_rate:>11.2f} {bound:>9.2f} "
            f"{shape:>10.2f} {needed:>13.1f}"
        )

    print(
        "\nThe measured rate tracks the sqrt(M/L) shape: every 4x cut in\n"
        "reducer size roughly doubles the replication, and the reducer\n"
        "count grows like (M/L)^(3/2) — Example 5.2's 'curse of the last\n"
        "reducer' quantified."
    )


if __name__ == "__main__":
    main()
