#!/usr/bin/env python
"""Skewed joins: how the paper's algorithms tame heavy hitters.

The motivating scenario of Section 4, driven through the experiment API: a
:class:`repro.Sweep` races four one-round algorithms across a Zipf skew
grid (cells farmed over a process pool), and the planner is asked which
algorithm it *would* have picked at every skew:

* the classic parallel hash join (collapses under skew),
* HyperCube with equal shares (skew-resilient, Corollary 3.2(ii)),
* the Section 4.1 skew-aware join (near-optimal, knows the heavy hitters),
* the Section 4.2 bin-combination algorithm (general queries).

It also prints formula (10)'s load bound and the residual lower bound of
Theorem 4.7, showing the measured loads are sandwiched as the paper proves.

Run:  python examples/skewed_join.py [--engine {reference,batched,mp}]
"""

from __future__ import annotations

import argparse

from repro import (
    Sweep,
    WorkloadSpec,
    available_engines,
    plan,
    residual_lower_bound,
    run_one_round,
    skew_join_load_bound,
)
from repro.query import parse_query, simple_join_query
from repro.stats import DegreeStatistics, HeavyHitterStatistics

P = 32
M = 3000
SKEWS = (0.0, 0.5, 1.0, 1.5, 2.0)
ALGORITHMS = ("hashjoin", "hypercube-equal", "skew-join", "bin-hypercube")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", choices=available_engines(),
                        default="batched",
                        help="execution engine for the simulated rounds")
    parser.add_argument("--workers", type=int, default=4,
                        help="process-pool size for the sweep cells")
    args = parser.parse_args()

    query = simple_join_query()
    print(f"query: {query},  m = {M} tuples/relation,  p = {P} servers, "
          f"{args.engine} engine")

    # One sweep per domain regime (the seed's choice: a wider domain while
    # the skew is mild, a tighter one once heavy hitters dominate).
    records = []
    for domain, skews in ((8 * M, tuple(s for s in SKEWS if s < 1.0)),
                          (4 * M, tuple(s for s in SKEWS if s >= 1.0))):
        result = Sweep(
            query=str(query),
            workload="zipf",
            p_values=(P,),
            m_values=(M,),
            skews=skews,
            seeds=(11,),
            algorithms=list(ALGORITHMS),
            engine=args.engine,
            domain=domain,
        ).run(max_workers=args.workers)
        records.extend(result.records)
    by_cell = {
        (record.skew, record.algorithm): record for record in records
    }

    header = (
        f"{'skew':>5} {'hash-join':>10} {'hc-equal':>10} {'skew-join':>10} "
        f"{'bin-hc':>8} {'formula(10)':>12} {'thm4.7 LB':>10} {'planner':>14}"
    )
    print("\nmax load per server (tuples):")
    print(header)
    print("-" * len(header))

    for skew in SKEWS:
        domain = 8 * M if skew < 1.0 else 4 * M
        workload = WorkloadSpec("zipf", m=M, skew=skew, seed=11,
                                domain=domain)
        db = workload.build(query)
        hh_stats = HeavyHitterStatistics.of(query, db, P)
        formula10 = skew_join_load_bound(hh_stats, query, in_bits=False)["bound"]
        degree_stats = DegreeStatistics.of(query, db, {"z"})
        residual = residual_lower_bound(query, degree_stats, P)
        tuple_bits = db.relation("S1").tuple_bits
        lower_tuples = residual.bits / tuple_bits if residual else 0.0
        chosen = plan(query, hh_stats, P).chosen.key

        loads = {
            key: by_cell[(skew, key)].max_load_tuples for key in ALGORITHMS
        }
        print(
            f"{skew:>5.1f} {loads['hashjoin']:>10} "
            f"{loads['hypercube-equal']:>10} {loads['skew-join']:>10} "
            f"{loads['bin-hypercube']:>8} {formula10:>12.0f} "
            f"{lower_tuples:>10.0f} {chosen:>14}"
        )

    print(
        "\nReading the table: the hash join deteriorates as skew grows, the\n"
        "equal-share cube pays a fixed p^(1/3) replication but never\n"
        "collapses, the skew-aware algorithms track the bounds — and the\n"
        "planner's pick flips to them exactly when it starts to matter."
    )

    # Verify completeness once at the heaviest skew (outputs are large).
    db = WorkloadSpec("zipf", m=M, skew=2.0, seed=11, domain=4 * M).build(query)
    query_plan = plan(parse_query(str(query)), db=db, p=P)
    for key in ("skew-join", "bin-hypercube"):
        algorithm = query_plan.instantiate(key)
        result = run_one_round(algorithm, db, P, verify=True,
                               engine=args.engine)
        status = "complete" if result.is_complete else "INCOMPLETE"
        print(f"verification at skew=2.0: {algorithm.name} is {status} "
              f"({result.answer_count} answers)")
        assert result.is_complete


if __name__ == "__main__":
    main()
