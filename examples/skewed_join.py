#!/usr/bin/env python
"""Skewed joins: how the paper's algorithms tame heavy hitters.

The motivating scenario of Section 4: an analytics join whose key follows a
Zipf distribution (a social-network fan-out, a retail 'best-seller' key...).
The script sweeps the skew parameter and races four one-round algorithms:

* the classic parallel hash join (collapses under skew),
* HyperCube with equal shares (skew-resilient, Corollary 3.2(ii)),
* the Section 4.1 skew-aware join (near-optimal, knows the heavy hitters),
* the Section 4.2 bin-combination algorithm (general queries).

It also prints formula (10)'s load bound and the residual lower bound of
Theorem 4.7, showing the measured loads are sandwiched as the paper proves.

Run:  python examples/skewed_join.py [--engine {reference,batched,mp}]
"""

from __future__ import annotations

import argparse

from repro import (
    BinHyperCubeAlgorithm,
    Database,
    HashJoinAlgorithm,
    HyperCubeAlgorithm,
    SkewAwareJoin,
    available_engines,
    residual_lower_bound,
    run_one_round,
    skew_join_load_bound,
)
from repro.data import zipf_relation
from repro.query import simple_join_query
from repro.stats import DegreeStatistics, HeavyHitterStatistics

P = 32
M = 3000


def make_db(skew: float) -> Database:
    domain = 8 * M if skew < 1.0 else 4 * M
    return Database.from_relations(
        [
            zipf_relation("S1", M, domain, skew=skew, seed=11),
            zipf_relation("S2", M, domain, skew=skew, seed=12),
        ]
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", choices=available_engines(),
                        default="batched",
                        help="execution engine for the simulated rounds")
    args = parser.parse_args()
    engine = args.engine

    query = simple_join_query()
    print(f"query: {query},  m = {M} tuples/relation,  p = {P} servers, "
          f"{engine} engine")
    header = (
        f"{'skew':>5} {'hash-join':>10} {'hc-equal':>10} {'skew-join':>10} "
        f"{'bin-hc':>8} {'formula(10)':>12} {'thm4.7 LB':>10}"
    )
    print("\nmax load per server (tuples):")
    print(header)
    print("-" * len(header))

    for skew in (0.0, 0.5, 1.0, 1.5, 2.0):
        db = make_db(skew)
        algorithms = {
            "hash": HashJoinAlgorithm(query, P),
            "cube": HyperCubeAlgorithm.with_equal_shares(query, P),
            "skew": SkewAwareJoin(query),
            "bins": BinHyperCubeAlgorithm(query),
        }
        loads = {}
        for name, algorithm in algorithms.items():
            result = run_one_round(algorithm, db, P, compute_answers=False,
                                   engine=engine)
            loads[name] = result.max_load_tuples

        hh_stats = HeavyHitterStatistics.of(query, db, P)
        formula10 = skew_join_load_bound(hh_stats, query, in_bits=False)["bound"]
        degree_stats = DegreeStatistics.of(query, db, {"z"})
        residual = residual_lower_bound(query, degree_stats, P)
        tuple_bits = db.relation("S1").tuple_bits
        lower_tuples = residual.bits / tuple_bits if residual else 0.0

        print(
            f"{skew:>5.1f} {loads['hash']:>10} {loads['cube']:>10} "
            f"{loads['skew']:>10} {loads['bins']:>8} {formula10:>12.0f} "
            f"{lower_tuples:>10.0f}"
        )

    print(
        "\nReading the table: the hash join deteriorates as skew grows, the\n"
        "equal-share cube pays a fixed p^(1/3) replication but never\n"
        "collapses, and the skew-aware algorithms track the bounds."
    )

    # Verify completeness once at the heaviest skew (outputs are large).
    db = make_db(2.0)
    for algorithm in (SkewAwareJoin(query), BinHyperCubeAlgorithm(query)):
        result = run_one_round(algorithm, db, P, verify=True, engine=engine)
        status = "complete" if result.is_complete else "INCOMPLETE"
        print(f"verification at skew=2.0: {algorithm.name} is {status} "
              f"({result.answer_count} answers)")
        assert result.is_complete


if __name__ == "__main__":
    main()
