"""Unit tests for the Section 4.1 skew-aware join."""

import math

import pytest

from repro.core import (
    HashJoinAlgorithm,
    SkewAwareJoin,
    skew_join_load_bound,
)
from repro.data import (
    planted_heavy_relation,
    single_value_relation,
    uniform_relation,
    zipf_relation,
)
from repro.mpc import run_one_round
from repro.query import QueryError, parse_query, simple_join_query, triangle_query
from repro.seq import Database
from repro.stats import HeavyHitterStatistics


def _join_db(kind: str, m: int = 400, seed: int = 0) -> Database:
    if kind == "uniform":
        return Database.from_relations(
            [
                uniform_relation("S1", m, 4 * m, seed=seed + 1),
                uniform_relation("S2", m, 4 * m, seed=seed + 2),
            ]
        )
    if kind == "zipf":
        return Database.from_relations(
            [
                zipf_relation("S1", m, 3 * m, skew=1.2, seed=seed + 1),
                zipf_relation("S2", m, 3 * m, skew=1.2, seed=seed + 2),
            ]
        )
    if kind == "single":
        return Database.from_relations(
            [
                single_value_relation("S1", min(m, 150), 4 * m, seed=seed + 1),
                single_value_relation("S2", min(m, 150), 4 * m, seed=seed + 2),
            ]
        )
    if kind == "one-sided":
        return Database.from_relations(
            [
                planted_heavy_relation(
                    "S1", m, 4 * m, heavy_values=[0, 1], heavy_fraction=0.6,
                    seed=seed + 1,
                ),
                uniform_relation("S2", m, 4 * m, seed=seed + 2),
            ]
        )
    raise ValueError(kind)


class TestValidation:
    def test_rejects_triangle(self):
        with pytest.raises(QueryError):
            SkewAwareJoin(triangle_query())

    def test_rejects_cartesian_product(self):
        q = parse_query("q(x, y) :- S1(x), S2(y)")
        with pytest.raises(QueryError):
            SkewAwareJoin(q)


class TestCorrectness:
    @pytest.mark.parametrize("kind", ["uniform", "zipf", "single", "one-sided"])
    @pytest.mark.parametrize("p", [4, 16])
    def test_complete_on_all_skew_profiles(self, kind, p):
        q = simple_join_query()
        db = _join_db(kind)
        result = run_one_round(SkewAwareJoin(q), db, p, verify=True)
        assert result.is_complete, (kind, p)

    def test_complete_across_seeds(self):
        q = simple_join_query()
        db = _join_db("zipf", seed=100)
        for seed in range(4):
            result = run_one_round(SkewAwareJoin(q), db, 8, seed=seed, verify=True)
            assert result.is_complete

    def test_multi_variable_join_keys(self):
        """Two shared variables: heavy hitters are pairs."""
        q = parse_query("q(x, y, u, v) :- S1(x, u, v), S2(y, u, v)")
        db = Database.from_relations(
            [
                planted_heavy_relation(
                    "S1", 200, 300, heavy_values=[3], heavy_fraction=0.5,
                    heavy_position=1, arity=3, seed=5,
                ),
                uniform_relation("S2", 200, 300, arity=3, seed=6),
            ]
        )
        result = run_one_round(SkewAwareJoin(q), db, 8, verify=True)
        assert result.is_complete


class TestLoadBehaviour:
    def test_beats_hash_join_under_skew(self):
        q = simple_join_query()
        db = _join_db("single")
        p = 16
        skew_result = run_one_round(SkewAwareJoin(q), db, p, compute_answers=False)
        hash_result = run_one_round(
            HashJoinAlgorithm(q, p), db, p, compute_answers=False
        )
        assert skew_result.max_load_tuples < hash_result.max_load_tuples / 2

    def test_matches_hash_join_on_uniform(self):
        """No heavy hitters: the plan degenerates to the plain hash join."""
        q = simple_join_query()
        db = _join_db("uniform")
        p = 16
        skew_result = run_one_round(SkewAwareJoin(q), db, p, compute_answers=False)
        hash_result = run_one_round(
            HashJoinAlgorithm(q, p), db, p, compute_answers=False
        )
        assert skew_result.details["h12"] == 0
        assert skew_result.details["h1_h2"] == 0
        # Same routing family: loads in the same ballpark.
        assert (
            skew_result.max_load_tuples <= 2 * hash_result.max_load_tuples
        )

    def test_load_tracks_formula_10(self):
        """Measured load within O(log p) of max(m1/p, m2/p, L12...)."""
        q = simple_join_query()
        db = _join_db("single")
        p = 16
        stats = HeavyHitterStatistics.of(q, db, p)
        bound = skew_join_load_bound(stats, q)["bound"]
        result = run_one_round(SkewAwareJoin(q), db, p, compute_answers=False)
        assert result.max_load_bits <= bound * 6 * math.log(p)
        assert result.max_load_bits >= bound / 6

    def test_overcommit_stays_constant_factor(self):
        """The paper's Theta(p) total server allocation."""
        q = simple_join_query()
        db = _join_db("zipf")
        result = run_one_round(SkewAwareJoin(q), db, 16, compute_answers=False)
        assert result.details["overcommit"] <= 4.0


class TestLoadBoundFormula:
    def test_components_present(self):
        q = simple_join_query()
        db = _join_db("single")
        stats = HeavyHitterStatistics.of(q, db, 16)
        components = skew_join_load_bound(stats, q)
        assert set(components) == {
            "m1_over_p",
            "m2_over_p",
            "L1",
            "L2",
            "L12",
            "bound",
        }
        assert components["bound"] == max(
            v for k, v in components.items() if k != "bound"
        )

    def test_l12_dominates_for_double_skew(self):
        q = simple_join_query()
        db = _join_db("single")
        stats = HeavyHitterStatistics.of(q, db, 16)
        components = skew_join_load_bound(stats, q, in_bits=False)
        m = db.relation("S1").cardinality
        # All tuples on one value: L12 = sqrt(m^2/p) = m/sqrt(p) > m/p.
        assert math.isclose(components["L12"], m / 4.0, rel_tol=1e-9)
        assert components["bound"] == components["L12"]

    def test_uniform_case_reduces_to_m_over_p(self):
        q = simple_join_query()
        db = _join_db("uniform")
        stats = HeavyHitterStatistics.of(q, db, 16)
        components = skew_join_load_bound(stats, q, in_bits=False)
        assert components["L12"] == 0.0
        assert components["bound"] == max(
            components["m1_over_p"], components["m2_over_p"]
        )
