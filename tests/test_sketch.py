"""Tests for the Count-Sketch core (repro.sketch.count_sketch)."""

import numpy as np
import pytest

from repro.sketch import (
    CountSketch,
    HierarchicalCountSketch,
    LARGE_PRIME,
    SketchError,
    mulmod61,
)


class TestMulmod61:
    def test_matches_python_bigints_on_random_operands(self):
        rng = np.random.default_rng(11)
        a = rng.integers(0, LARGE_PRIME, size=512, dtype=np.uint64)
        b = rng.integers(0, LARGE_PRIME, size=512, dtype=np.uint64)
        got = mulmod61(a, b)
        want = np.array(
            [(int(x) * int(y)) % LARGE_PRIME for x, y in zip(a, b)],
            dtype=np.uint64,
        )
        assert np.array_equal(got, want)

    def test_edge_operands(self):
        edges = [0, 1, 2, (1 << 32) - 1, 1 << 32, 1 << 60,
                 LARGE_PRIME - 2, LARGE_PRIME - 1]
        for x in edges:
            for y in edges:
                got = int(mulmod61(np.uint64(x), np.uint64(y)))
                assert got == (x * y) % LARGE_PRIME, (x, y)

    def test_broadcasts_like_numpy(self):
        a = np.arange(5, dtype=np.uint64)[:, None]
        b = np.arange(7, dtype=np.uint64)[None, :]
        assert mulmod61(a, b).shape == (5, 7)


class TestCountSketch:
    def _stream(self):
        # item i appears 10 * (i + 1) times
        return np.repeat(np.arange(64, dtype=np.uint64),
                         10 * (np.arange(64) + 1))

    def test_estimates_track_true_frequencies(self):
        sketch = CountSketch(1024, 5, np.random.default_rng(1))
        sketch.update_batch(self._stream())
        noise = 4 * sketch.noise_scale()
        for item in (0, 31, 63):
            true = 10 * (item + 1)
            assert abs(sketch.estimate(item) - true) <= noise

    def test_update_order_is_irrelevant(self):
        items = self._stream()
        forward = CountSketch(256, 3, np.random.default_rng(2))
        forward.update_batch(items)
        backward = CountSketch(256, 3, np.random.default_rng(2))
        backward.update_batch(items[::-1])
        assert np.array_equal(forward.table, backward.table)

    def test_counts_weight_updates(self):
        weighted = CountSketch(256, 3, np.random.default_rng(3))
        weighted.update_batch(np.array([7], dtype=np.uint64),
                              np.array([5], dtype=np.int64))
        repeated = CountSketch(256, 3, np.random.default_rng(3))
        repeated.update_batch(np.full(5, 7, dtype=np.uint64))
        assert np.array_equal(weighted.table, repeated.table)

    def test_same_seed_sketches_merge_bit_identically(self):
        items = self._stream()
        whole = CountSketch(512, 5, np.random.default_rng(4))
        whole.update_batch(items)
        left = CountSketch(512, 5, np.random.default_rng(4))
        right = CountSketch(512, 5, np.random.default_rng(4))
        left.update_batch(items[: len(items) // 2])
        right.update_batch(items[len(items) // 2:])
        left.merge(right)
        assert np.array_equal(left.table, whole.table)

    def test_merge_rejects_different_seeds(self):
        a = CountSketch(512, 5, np.random.default_rng(4))
        b = CountSketch(512, 5, np.random.default_rng(5))
        with pytest.raises(SketchError, match="hash seeds"):
            a.merge(b)

    def test_merge_rejects_different_shapes(self):
        a = CountSketch(512, 5, np.random.default_rng(4))
        b = CountSketch(256, 5, np.random.default_rng(4))
        with pytest.raises(SketchError):
            a.merge(b)

    def test_coefficients_come_from_the_given_generator_only(self):
        """Same-seed sketches are identical hash functions (RNG hygiene:
        nothing global leaks in)."""
        np.random.seed(12345)  # a polluted module-global RNG must not matter
        a = CountSketch(128, 4, np.random.default_rng(9))
        np.random.seed(54321)
        b = CountSketch(128, 4, np.random.default_rng(9))
        assert a.compatible_with(b)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(SketchError):
            CountSketch(1, 5, rng)
        with pytest.raises(SketchError):
            CountSketch(16, 0, rng)


class TestHierarchicalCountSketch:
    def _heavy_stream(self, universe=10**6, seed=0):
        rng = np.random.default_rng(seed)
        return np.concatenate([
            np.repeat(np.uint64(123_456), 5_000),
            np.repeat(np.uint64(987), 3_000),
            rng.integers(0, universe, size=20_000, dtype=np.uint64),
        ])

    def test_levels_cover_the_universe(self):
        sketch = HierarchicalCountSketch(10**6, width=64, depth=3, base=10)
        assert 10 ** sketch.levels >= 10**6
        assert 10 ** (sketch.levels - 1) < 10**6

    def test_find_heavy_recovers_planted_items(self):
        sketch = HierarchicalCountSketch(10**6, width=1024, depth=5, seed=3)
        sketch.update_batch(self._heavy_stream())
        heavy = sketch.find_heavy(1_000.0, slack=3 * sketch.noise_scale())
        assert {123_456, 987} <= set(heavy)
        assert abs(heavy[123_456] - 5_000) <= 4 * sketch.noise_scale()

    def test_sharded_merge_is_bit_identical_to_single_pass(self):
        stream = self._heavy_stream()
        single = HierarchicalCountSketch(10**6, width=512, depth=4, seed=7)
        single.update_batch(stream)
        shards = [
            HierarchicalCountSketch(10**6, width=512, depth=4, seed=7)
            for _ in range(3)
        ]
        for i, shard in enumerate(shards):
            shard.update_batch(stream[i::3])
        merged = shards[0].merge(shards[1]).merge(shards[2])
        assert all(
            np.array_equal(mine, theirs)
            for mine, theirs in zip(merged.tables(), single.tables())
        )
        assert merged.update_count == single.update_count

    def test_merge_rejects_different_universes(self):
        a = HierarchicalCountSketch(10**6, width=64, depth=3, seed=1)
        b = HierarchicalCountSketch(10**5, width=64, depth=3, seed=1)
        with pytest.raises(SketchError):
            a.merge(b)

    def test_universe_beyond_hashing_domain_is_rejected(self):
        with pytest.raises(SketchError, match="2\\^61"):
            HierarchicalCountSketch(LARGE_PRIME + 1, width=64, depth=3)

    def test_empty_stream_has_no_heavy_hitters(self):
        sketch = HierarchicalCountSketch(1000, width=64, depth=3)
        assert sketch.find_heavy(1.0) == {}
        assert sketch.update_count == 0
