"""Tests for the extension features: sampled heavy-hitter statistics and the
Afrati-Ullman total-load share optimizer."""

import math

import pytest

from repro.core import (
    BinHyperCubeAlgorithm,
    SkewAwareJoin,
    afrati_ullman_share_exponents,
    optimal_share_exponents,
)
from repro.data import planted_heavy_relation, uniform_relation, zipf_relation
from repro.mpc import run_one_round
from repro.query import chain_query, simple_join_query, star_query, triangle_query
from repro.seq import Database
from repro.stats import HeavyHitterStatistics, StatisticsError


class TestSampledHeavyHitters:
    def _skewed_db(self):
        return Database.from_relations(
            [
                planted_heavy_relation(
                    "S1", 600, 1800, heavy_values=[0, 1], heavy_fraction=0.6,
                    seed=1,
                ),
                zipf_relation("S2", 600, 1800, skew=1.3, seed=2),
            ]
        )

    def test_detects_planted_heavy_values(self):
        q = simple_join_query()
        db = self._skewed_db()
        estimated = HeavyHitterStatistics.estimate(
            q, db, p=8, sample_rate=0.3, seed=0
        )
        heavy = estimated.heavy_hitters("S1", ("z",))
        assert (0,) in heavy and (1,) in heavy

    def test_estimates_close_to_truth(self):
        q = simple_join_query()
        db = self._skewed_db()
        exact = HeavyHitterStatistics.of(q, db, p=8)
        estimated = HeavyHitterStatistics.estimate(
            q, db, p=8, sample_rate=0.5, seed=3
        )
        for assignment, truth in exact.heavy_hitters("S1", ("z",)).items():
            guess = estimated.frequency("S1", ("z",), assignment)
            if guess is not None:
                assert 0.5 * truth <= guess <= 2.0 * truth

    def test_full_sample_rate_matches_exact_detection(self):
        q = simple_join_query()
        db = self._skewed_db()
        exact = HeavyHitterStatistics.of(q, db, p=8)
        full = HeavyHitterStatistics.estimate(q, db, p=8, sample_rate=1.0)
        for key, hitters in exact.hitters.items():
            assert set(full.hitters[key]) == set(hitters)

    def test_algorithms_complete_with_estimated_statistics(self):
        """Correctness only needs *consistent* statistics, not exact ones."""
        q = simple_join_query()
        db = self._skewed_db()
        p = 8
        estimated = HeavyHitterStatistics.estimate(
            q, db, p=p, sample_rate=0.2, seed=4
        )
        for algorithm in (
            SkewAwareJoin(q, stats=estimated),
            BinHyperCubeAlgorithm(q, stats=estimated),
        ):
            result = run_one_round(algorithm, db, p, verify=True)
            assert result.is_complete, algorithm.name

    def test_validation(self):
        q = simple_join_query()
        db = self._skewed_db()
        with pytest.raises(StatisticsError):
            HeavyHitterStatistics.estimate(q, db, p=8, sample_rate=0.0)
        with pytest.raises(StatisticsError):
            HeavyHitterStatistics.estimate(q, db, p=0, sample_rate=0.5)

    def test_deterministic_given_seed(self):
        q = simple_join_query()
        db = self._skewed_db()
        a = HeavyHitterStatistics.estimate(q, db, p=8, sample_rate=0.3, seed=7)
        b = HeavyHitterStatistics.estimate(q, db, p=8, sample_rate=0.3, seed=7)
        assert a.hitters == b.hitters


class TestAfratiUllmanShares:
    CASES = [
        (triangle_query(), {"S1": 2.0**20, "S2": 2.0**20, "S3": 2.0**20}),
        (triangle_query(), {"S1": 2.0**22, "S2": 2.0**18, "S3": 2.0**16}),
        (simple_join_query(), {"S1": 2.0**20, "S2": 2.0**20}),
        (chain_query(3), {"S1": 2.0**18, "S2": 2.0**18, "S3": 2.0**18}),
        (star_query(3), {"S1": 2.0**18, "S2": 2.0**18, "S3": 2.0**18}),
    ]

    def _total_load(self, query, bits, exponents, p):
        total = 0.0
        for atom in query.atoms:
            denom = p ** float(
                sum(exponents[v] for v in atom.variable_set)
            )
            total += bits[atom.name] / denom
        return total

    def test_exponents_live_on_the_simplex(self):
        for query, bits in self.CASES:
            solution = afrati_ullman_share_exponents(query, bits, 64)
            assert all(e >= 0 for e in solution.exponents.values())
            assert float(sum(solution.exponents.values())) <= 1 + 1e-6

    def test_equal_triangle_matches_lp(self):
        """Both objectives agree on the symmetric triangle: e_i = 1/3."""
        query, bits = self.CASES[0]
        au = afrati_ullman_share_exponents(query, bits, 64)
        for value in au.exponents.values():
            assert abs(float(value) - 1 / 3) < 0.02

    def test_max_load_never_beats_lp(self):
        """LP (5) minimizes the max load; [2] minimizes the total — so the
        LP's max-load objective is at least as good."""
        p = 64
        for query, bits in self.CASES:
            au = afrati_ullman_share_exponents(query, bits, p)
            lp = optimal_share_exponents(query, bits, p)
            assert float(au.lam) >= float(lp.lam) - 1e-6

    def test_total_load_never_beats_au(self):
        """Symmetrically, [2]'s total-load objective beats (or ties) LP (5)'s
        solution on the total-communication metric."""
        p = 64
        for query, bits in self.CASES:
            au = afrati_ullman_share_exponents(query, bits, p)
            lp = optimal_share_exponents(query, bits, p)
            au_total = self._total_load(query, bits, au.exponents, p)
            lp_total = self._total_load(query, bits, lp.exponents, p)
            assert au_total <= lp_total * 1.05

    def test_objectives_can_disagree(self):
        """A case where minimizing total and minimizing max differ: the
        lopsided join spreads shares under [2]."""
        query = simple_join_query()
        bits = {"S1": 2.0**22, "S2": 2.0**14}
        au = afrati_ullman_share_exponents(query, bits, 64)
        # AU gives x (S1's private variable) a real share to shrink the
        # dominant S1 term of the *sum*.
        assert float(au.exponents["x"]) > 0.05
