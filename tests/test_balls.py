"""Unit tests for balls-into-bins bounds and hashing simulations
(Appendices B and C, Lemma 3.1)."""

import math

import pytest

from repro.balls import (
    average_max_hash_load,
    hash_relation_loads,
    matching_hash_bound,
    max_hash_load,
    max_weighted_load,
    skew_free_hash_threshold,
    throw_weighted_balls,
    uniform_balls_bound,
    weighted_balls_bound,
    worst_case_hash_bound,
)
from repro.data import matching_relation, single_value_relation, uniform_relation


class TestChernoffFormulas:
    def test_uniform_balls_bound(self):
        bound = uniform_balls_bound(1000, 10)
        assert bound.threshold == 300.0
        assert bound.failure_probability == 10 * math.exp(-100)

    def test_uniform_balls_validation(self):
        with pytest.raises(ValueError):
            uniform_balls_bound(0, 10)

    def test_weighted_balls_bound_scales_with_cap(self):
        small = weighted_balls_bound(1000, 10.0, 10, delta=0.01)
        large = weighted_balls_bound(1000, 200.0, 10, delta=0.01)
        assert large.threshold > small.threshold

    def test_weighted_balls_validation(self):
        with pytest.raises(ValueError):
            weighted_balls_bound(100, 1.0, 10, delta=2.0)

    def test_matching_bound_alias(self):
        assert matching_hash_bound(500, 25).threshold == 60.0

    def test_skew_free_threshold_grows_with_arity(self):
        r1 = skew_free_hash_threshold(4096, [64])
        r2 = skew_free_hash_threshold(4096, [8, 8])
        assert r2 > r1  # the ln^r(p) factor

    def test_worst_case_bound(self):
        assert worst_case_hash_bound(1000, [4, 8]) == 250.0
        assert worst_case_hash_bound(1000, {"a": 10, "b": 2}) == 500.0


class TestWeightedSimulation:
    def test_total_weight_conserved(self):
        weights = [1.0] * 100 + [5.0] * 10
        loads = throw_weighted_balls(weights, 8, seed=1)
        assert math.isclose(sum(loads), 150.0)

    def test_max_load_within_chernoff_threshold(self):
        """Simulated maxima respect Lemma C.1 with delta = 1/p^2."""
        m, p = 5000, 16
        weights = [1.0] * m
        bound = weighted_balls_bound(m, 1.0, p, delta=1 / p**2)
        for seed in range(5):
            assert max_weighted_load(weights, p, seed=seed) <= bound.threshold

    def test_deterministic_given_seed(self):
        weights = [2.0] * 50
        assert throw_weighted_balls(weights, 4, seed=7) == throw_weighted_balls(
            weights, 4, seed=7
        )


class TestRelationHashing:
    def test_loads_sum_to_cardinality(self):
        rel = uniform_relation("R", 2000, 8000, seed=1)
        loads = hash_relation_loads(rel, [4, 4], seed=0)
        assert sum(loads.values()) == 2000

    def test_share_arity_mismatch_rejected(self):
        rel = uniform_relation("R", 100, 500, seed=2)
        with pytest.raises(ValueError):
            hash_relation_loads(rel, [4], seed=0)

    def test_matching_achieves_near_ideal(self):
        """Lemma 3.1(2): matchings get O(m/p) whp."""
        m, grid = 4096, (8, 8)
        rel = matching_relation("R", m, 3 * m, seed=3)
        p = grid[0] * grid[1]
        bound = matching_hash_bound(m, p)
        measured = average_max_hash_load(rel, grid, trials=3, seed=0)
        assert measured <= bound.threshold
        assert measured >= m / p  # cannot beat the average

    def test_uniform_relation_within_skew_free_regime(self):
        """Lemma 3.1(3): skew-free data stays within the polylog bound."""
        m, grid = 4096, (8, 8)
        rel = uniform_relation("R", m, 10 * m, seed=4)
        measured = average_max_hash_load(rel, grid, trials=3, seed=0)
        assert measured <= skew_free_hash_threshold(m, list(grid))

    def test_single_value_hits_worst_case(self):
        """Example B.2: one pinned column forces m / p_other load."""
        m = 1024
        rel = single_value_relation("R", m, 4 * m, fixed_position=0, seed=5)
        grid = (4, 8)
        measured = max_hash_load(rel, grid, seed=0)
        # All tuples share the first coordinate: at best spread over 8 bins.
        assert measured >= m / grid[1]
        assert measured <= worst_case_hash_bound(m, list(grid)) * 3

    def test_expected_load_is_m_over_p(self):
        """Lemma 3.1(1) / Lemma B.1: mean bucket load equals m/p over the
        occupied grid."""
        m, grid = 2048, (4, 4)
        rel = uniform_relation("R", m, 10 * m, seed=6)
        loads = hash_relation_loads(rel, grid, seed=1)
        p = grid[0] * grid[1]
        mean = sum(loads.values()) / p
        assert math.isclose(mean, m / p)
