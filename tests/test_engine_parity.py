"""The engine-parity contract: every execution engine must be answer- and
load-identical to the reference simulator.

The matrix is algorithms (HC equal/LP shares, hash join, skew-aware join,
bin-hypercube, broadcast, cartesian) x data generators (uniform,
zipf-skewed, single-heavy-hitter) x seeds, with both ``compute_answers``
modes.  Identity is exact: same answer sets, same per-server tuple counts,
and bit-identical per-server bit loads (all engines fold bits as
``count * tuple_bits`` per relation in atom order, so no float tolerance
is needed).
"""

from __future__ import annotations

import pytest

from repro.core import (
    BinHyperCubeAlgorithm,
    BroadcastHyperCube,
    CartesianProductAlgorithm,
    HashJoinAlgorithm,
    HyperCubeAlgorithm,
    SkewAwareJoin,
)
from repro.data import single_value_relation, uniform_relation, zipf_relation
from repro.mpc import (
    BatchedEngine,
    MultiprocessEngine,
    ReferenceEngine,
    run_one_round,
)
from repro.query import parse_query, simple_join_query
from repro.seq import Database
from repro.stats import SimpleStatistics

P = 8
M = 120
SEEDS = (0, 1)

ENGINES = {
    "batched": BatchedEngine(),
    "mp": MultiprocessEngine(workers=2),
}


def _join_db(generator: str, seed: int) -> Database:
    if generator == "uniform":
        relations = [
            uniform_relation("S1", M, 3 * M, seed=seed * 100 + 1),
            uniform_relation("S2", M, 3 * M, seed=seed * 100 + 2),
        ]
    elif generator == "zipf":
        relations = [
            zipf_relation("S1", M, 3 * M, skew=1.4, seed=seed * 100 + 1),
            zipf_relation("S2", M, 3 * M, skew=1.4, seed=seed * 100 + 2),
        ]
    else:  # one heavy hitter carrying every tuple
        relations = [
            single_value_relation("S1", M, 3 * M, seed=seed * 100 + 1),
            single_value_relation("S2", M, 3 * M, seed=seed * 100 + 2),
        ]
    return Database.from_relations(relations)


def _join_algorithms(db: Database) -> list:
    query = simple_join_query()
    stats = SimpleStatistics.of(db)
    return [
        HyperCubeAlgorithm.with_equal_shares(query, P),
        HyperCubeAlgorithm.with_optimal_shares(query, stats, P),
        HashJoinAlgorithm(query, P),
        SkewAwareJoin(query),
        BinHyperCubeAlgorithm(query),
        BroadcastHyperCube(query),
    ]


def _assert_identical(result, oracle, context: str) -> None:
    assert result.answers == oracle.answers, f"{context}: answers differ"
    assert result.report.per_server_tuples == oracle.report.per_server_tuples, (
        f"{context}: per-server tuple counts differ"
    )
    assert result.report.per_server_bits == oracle.report.per_server_bits, (
        f"{context}: per-server bit loads differ"
    )
    assert result.max_load_tuples == oracle.max_load_tuples, context
    assert result.max_load_bits == oracle.max_load_bits, context
    assert result.report.input_tuples == oracle.report.input_tuples, context
    assert result.report.input_bits == oracle.report.input_bits, context


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("generator", ["uniform", "zipf", "heavy"])
def test_join_algorithms_parity(generator, seed):
    db = _join_db(generator, seed)
    for algorithm in _join_algorithms(db):
        oracle = run_one_round(
            algorithm, db, P, seed=seed, engine="reference"
        )
        for name, engine in ENGINES.items():
            result = run_one_round(
                algorithm, db, P, seed=seed, engine=engine
            )
            _assert_identical(
                result, oracle, f"{algorithm.name}/{generator}/{name}"
            )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("generator", ["uniform", "zipf", "heavy"])
def test_cartesian_parity(generator, seed):
    query = parse_query("q(x, y) :- S1(x), S2(y)")
    if generator == "uniform":
        relations = [
            uniform_relation("S1", 60, 200, arity=1, seed=seed * 100 + 1),
            uniform_relation("S2", 40, 200, arity=1, seed=seed * 100 + 2),
        ]
    elif generator == "zipf":
        relations = [
            zipf_relation("S1", 60, 200, arity=1, skew=1.4,
                          skewed_positions=(0,), seed=seed * 100 + 1),
            zipf_relation("S2", 40, 200, arity=1, skew=1.4,
                          skewed_positions=(0,), seed=seed * 100 + 2),
        ]
    else:
        relations = [
            single_value_relation("S1", 1, 200, arity=1, fixed_position=0,
                                  seed=seed * 100 + 1),
            uniform_relation("S2", 40, 200, arity=1, seed=seed * 100 + 2),
        ]
    db = Database.from_relations(relations)
    algorithm = CartesianProductAlgorithm(query)
    oracle = run_one_round(algorithm, db, P, seed=seed, engine="reference")
    for name, engine in ENGINES.items():
        result = run_one_round(algorithm, db, P, seed=seed, engine=engine)
        _assert_identical(result, oracle, f"cartesian/{generator}/{name}")


@pytest.mark.parametrize("generator", ["uniform", "zipf", "heavy"])
def test_load_only_parity(generator):
    """compute_answers=False exercises the streaming count paths."""
    db = _join_db(generator, seed=0)
    for algorithm in _join_algorithms(db):
        oracle = run_one_round(
            algorithm, db, P, compute_answers=False, engine="reference"
        )
        assert oracle.answers is None
        for name, engine in ENGINES.items():
            result = run_one_round(
                algorithm, db, P, compute_answers=False, engine=engine
            )
            assert result.answers is None
            _assert_identical(
                result, oracle, f"{algorithm.name}/{generator}/{name}/loads"
            )


def test_seed_sensitivity_is_engine_independent():
    """Different seeds change the loads, identically for every engine."""
    db = _join_db("zipf", seed=0)
    algorithm = HyperCubeAlgorithm.with_equal_shares(simple_join_query(), P)
    per_seed = []
    for seed in (3, 4):
        oracle = run_one_round(
            algorithm, db, P, seed=seed, compute_answers=False,
            engine="reference",
        )
        batched = run_one_round(
            algorithm, db, P, seed=seed, compute_answers=False,
            engine="batched",
        )
        assert batched.report.per_server_bits == oracle.report.per_server_bits
        per_seed.append(oracle.report.per_server_tuples)
    assert per_seed[0] != per_seed[1]


def test_verify_flag_round_trips_through_engines():
    db = _join_db("uniform", seed=0)
    algorithm = SkewAwareJoin(simple_join_query())
    for engine in ("reference", "batched", "mp"):
        result = run_one_round(algorithm, db, P, verify=True, engine=engine)
        assert result.is_complete, engine


def test_engine_instances_accepted():
    db = _join_db("uniform", seed=0)
    algorithm = HyperCubeAlgorithm.with_equal_shares(simple_join_query(), P)
    oracle = run_one_round(algorithm, db, P, engine=ReferenceEngine())
    result = run_one_round(algorithm, db, P, engine=BatchedEngine())
    _assert_identical(result, oracle, "instance-passing")
