"""Unit tests for the share LP (5), its dual (8), and integer rounding."""

import math
from fractions import Fraction

import pytest

from repro.core import (
    ShareError,
    dual_share_solution,
    equal_integer_shares,
    integer_shares,
    is_edge_packing,
    optimal_share_exponents,
    shares_product,
)
from repro.query import (
    chain_query,
    simple_join_query,
    star_query,
    triangle_query,
)


class TestPrimalShareLP:
    def test_equal_triangle_shares(self):
        """Equal sizes on C3: e_i = 1/3 each, lambda = mu - 2/3."""
        q = triangle_query()
        m = 2.0**18
        bits = {"S1": m, "S2": m, "S3": m}
        p = 64
        solution = optimal_share_exponents(q, bits, p)
        for var in q.variables:
            assert solution.exponents[var] == Fraction(1, 3)
        # load = M / p^(2/3)
        assert math.isclose(
            solution.load_bits, m / p ** (2 / 3), rel_tol=1e-6
        )

    def test_join_all_budget_on_z(self):
        """Equal sizes on the join: hash join on z is optimal."""
        q = simple_join_query()
        bits = {"S1": 2.0**16, "S2": 2.0**16}
        solution = optimal_share_exponents(q, bits, 64)
        assert solution.exponents["z"] == 1
        assert solution.exponents["x"] == 0
        assert solution.exponents["y"] == 0

    def test_exponents_sum_within_budget(self):
        q = chain_query(3)
        bits = {"S1": 2.0**15, "S2": 2.0**12, "S3": 2.0**14}
        solution = optimal_share_exponents(q, bits, 32)
        assert sum(solution.exponents.values()) <= 1

    def test_atom_constraints_satisfied(self):
        q = triangle_query()
        bits = {"S1": 2.0**20, "S2": 2.0**15, "S3": 2.0**12}
        p = 64
        solution = optimal_share_exponents(q, bits, p)
        for atom in q.atoms:
            lhs = sum(solution.exponents[v] for v in atom.variable_set)
            mu = Fraction(math.log(bits[atom.name]) / math.log(p)).limit_denominator(10**9)
            assert lhs + solution.lam >= mu - Fraction(1, 10**6)

    def test_rejects_empty_relation(self):
        q = simple_join_query()
        with pytest.raises(ShareError):
            optimal_share_exponents(q, {"S1": 0.0, "S2": 10.0}, 4)

    def test_rejects_tiny_p(self):
        q = simple_join_query()
        with pytest.raises(ShareError):
            optimal_share_exponents(q, {"S1": 10.0, "S2": 10.0}, 1)

    def test_expected_atom_load(self):
        q = simple_join_query()
        bits = {"S1": 2.0**16, "S2": 2.0**16}
        solution = optimal_share_exponents(q, bits, 64)
        loads = solution.expected_atom_load(bits)
        assert math.isclose(loads["S1"], 2.0**16 / 64, rel_tol=1e-6)


class TestDuality:
    @pytest.mark.parametrize("p", [4, 16, 64])
    def test_strong_duality(self, p):
        cases = [
            (triangle_query(), {"S1": 2.0**20, "S2": 2.0**17, "S3": 2.0**14}),
            (simple_join_query(), {"S1": 2.0**16, "S2": 2.0**12}),
            (star_query(3), {"S1": 2.0**14, "S2": 2.0**13, "S3": 2.0**12}),
        ]
        for q, bits in cases:
            primal = optimal_share_exponents(q, bits, p)
            dual = dual_share_solution(q, bits, p)
            assert abs(float(primal.lam - dual.objective)) < 1e-9

    def test_induced_packing_is_feasible(self):
        """Lemma 3.8: u_j = f_j / f is an edge packing."""
        q = triangle_query()
        bits = {"S1": 2.0**20, "S2": 2.0**18, "S3": 2.0**16}
        dual = dual_share_solution(q, bits, 64)
        packing = dual.induced_packing()
        assert packing is not None
        assert is_edge_packing(q, packing)


class TestIntegerShares:
    def test_floor_strategy_product_fits(self):
        q = triangle_query()
        exponents = {v: Fraction(1, 3) for v in q.variables}
        shares = integer_shares(q, exponents, 64, strategy="floor")
        assert shares == {"x1": 4, "x2": 4, "x3": 4}

    def test_greedy_improves_on_floor(self):
        q = simple_join_query()
        bits = {"S1": 2.0**16, "S2": 2.0**16}
        # Exponents put everything on z; greedy should give z all of p.
        exponents = {"x": Fraction(0), "y": Fraction(0), "z": Fraction(1)}
        shares = integer_shares(q, exponents, 60, strategy="greedy", bits=bits)
        assert shares["z"] == 60
        assert shares_product(shares) <= 60

    def test_greedy_needs_bits(self):
        q = simple_join_query()
        with pytest.raises(ShareError):
            integer_shares(q, {v: Fraction(0) for v in q.variables}, 8)

    def test_unknown_strategy(self):
        q = simple_join_query()
        with pytest.raises(ShareError):
            integer_shares(
                q,
                {v: Fraction(0) for v in q.variables},
                8,
                strategy="nope",
                bits={"S1": 1.0, "S2": 1.0},
            )

    def test_product_never_exceeds_p(self):
        q = triangle_query()
        bits = {"S1": 2.0**20, "S2": 2.0**17, "S3": 2.0**13}
        for p in (5, 7, 12, 64, 100):
            solution = optimal_share_exponents(q, bits, p)
            shares = integer_shares(
                q, solution.exponents, p, strategy="greedy", bits=bits
            )
            assert shares_product(shares) <= p
            assert all(s >= 1 for s in shares.values())

    def test_equal_integer_shares(self):
        q = triangle_query()
        assert equal_integer_shares(q, 27) == {"x1": 3, "x2": 3, "x3": 3}
        assert equal_integer_shares(q, 26) == {"x1": 2, "x2": 2, "x3": 2}
