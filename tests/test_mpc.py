"""Unit tests for the MPC simulator: hashing, cluster, allocation,
execution."""

import math

import pytest

from repro.data import uniform_relation
from repro.mpc import (
    Cluster,
    HashFamily,
    ServerAllocator,
    run_one_round,
)
from repro.mpc.execution import OneRoundAlgorithm, RoutingPlan
from repro.query import parse_query
from repro.seq import Database, Relation


class TestHashFamily:
    def test_deterministic(self):
        h1 = HashFamily(42)
        h2 = HashFamily(42)
        assert h1.raw("a", 7) == h2.raw("a", 7)
        assert h1.bucket("a", 7, 10) == h2.bucket("a", 7, 10)

    def test_different_seeds_differ(self):
        values = [HashFamily(s).raw("a", 7) for s in range(8)]
        assert len(set(values)) == 8

    def test_different_salts_independent(self):
        h = HashFamily(0)
        buckets_a = [h.bucket("a", v, 16) for v in range(100)]
        buckets_b = [h.bucket("b", v, 16) for v in range(100)]
        assert buckets_a != buckets_b

    def test_bucket_range(self):
        h = HashFamily(1)
        for v in range(200):
            assert 0 <= h.bucket("s", v, 7) < 7

    def test_single_bucket(self):
        assert HashFamily(0).bucket("s", 123, 1) == 0

    def test_bad_bucket_count(self):
        with pytest.raises(ValueError):
            HashFamily(0).bucket("s", 1, 0)

    def test_roughly_uniform(self):
        h = HashFamily(3)
        buckets = 8
        counts = [0] * buckets
        n = 8000
        for v in range(n):
            counts[h.bucket("u", v, buckets)] += 1
        expected = n / buckets
        for count in counts:
            assert 0.85 * expected < count < 1.15 * expected

    def test_subfamily_differs(self):
        h = HashFamily(5)
        sub = h.subfamily("inner")
        assert sub.raw("a", 1) != h.raw("a", 1) or sub.seed != h.seed

    def test_negative_values_hash(self):
        h = HashFamily(0)
        assert isinstance(h.raw("s", -12), int)


class TestCluster:
    def test_send_accounts_bits(self):
        c = Cluster(4)
        c.send(0, "S", (1, 2), 8.0)
        c.send(0, "S", (3, 4), 8.0)
        report = c.load_report(input_tuples=2, input_bits=16.0)
        assert report.per_server_tuples == (2, 0, 0, 0)
        assert report.max_load_bits == 16.0
        assert report.max_load_tuples == 2

    def test_duplicate_sends_charged_once(self):
        c = Cluster(2)
        c.send(1, "S", (1, 2), 8.0)
        c.send(1, "S", (1, 2), 8.0)
        assert c.servers[1].received_tuples == 1

    def test_broadcast(self):
        c = Cluster(3)
        c.broadcast("S", (0,), 4.0)
        assert all(s.received_tuples == 1 for s in c.servers)

    def test_replication_rate(self):
        c = Cluster(2)
        c.send(0, "S", (1,), 4.0)
        c.send(1, "S", (1,), 4.0)
        report = c.load_report(input_tuples=1, input_bits=4.0)
        assert report.replication_rate == 2.0

    def test_balance(self):
        c = Cluster(2)
        c.send(0, "S", (1,), 4.0)
        report = c.load_report(1, 4.0)
        assert report.balance == 2.0  # all weight on one of two servers

    def test_out_of_range_send(self):
        c = Cluster(2)
        with pytest.raises(IndexError):
            c.send(5, "S", (1,), 1.0)

    def test_needs_a_server(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_describe_smoke(self):
        c = Cluster(2)
        c.send(0, "S", (1,), 4.0)
        assert "p=2" in c.load_report(1, 4.0).describe()


class TestServerAllocator:
    def test_wraps_modulo_p(self):
        a = ServerAllocator(4)
        assert a.allocate(3) == (0, 1, 2)
        assert a.allocate(3) == (3, 0, 1)
        assert a.total_allocated == 6
        assert a.overcommit == 1.5

    def test_clamps_to_pool(self):
        a = ServerAllocator(4)
        assert len(a.allocate(100)) == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ServerAllocator(4).allocate(0)
        with pytest.raises(ValueError):
            ServerAllocator(0)


class _RoundRobinPlan(RoutingPlan):
    def __init__(self, p):
        self.p = p

    def destinations(self, relation_name, tup):
        return (sum(tup) % self.p,)

    def describe(self):
        return {"policy": "round-robin"}


class _RoundRobin(OneRoundAlgorithm):
    """Partitions tuples by value sum — complete only for trivial queries."""

    def __init__(self, query):
        super().__init__(query, "round-robin")

    def routing_plan(self, db, p, hashes):
        return _RoundRobinPlan(p)


class TestRunOneRound:
    def _single_atom_setup(self):
        q = parse_query("q(x, y) :- S(x, y)")
        db = Database.from_relations([uniform_relation("S", 50, 64, seed=1)])
        return q, db

    def test_single_atom_query_complete(self):
        q, db = self._single_atom_setup()
        result = run_one_round(_RoundRobin(q), db, p=4, verify=True)
        assert result.is_complete
        assert result.answer_count == 50

    def test_load_accounting_matches_input(self):
        q, db = self._single_atom_setup()
        result = run_one_round(_RoundRobin(q), db, p=4)
        # Each tuple goes to exactly one server: no replication.
        assert math.isclose(result.report.replication_rate, 1.0)
        assert result.report.total_tuples == 50

    def test_compute_answers_false(self):
        q, db = self._single_atom_setup()
        result = run_one_round(_RoundRobin(q), db, p=4, compute_answers=False)
        assert result.answers is None
        assert result.answer_count is None
        assert result.is_complete is None

    def test_incomplete_algorithm_detected(self):
        """Sum-partitioning a join is wrong; verification must catch it."""
        q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
        db = Database.from_relations(
            [
                Relation.build("S1", [(0, 1), (2, 3)], domain_size=8),
                Relation.build("S2", [(1, 1), (5, 3)], domain_size=8),
            ]
        )
        result = run_one_round(_RoundRobin(q), db, p=4, verify=True)
        assert result.is_complete is False

    def test_details_from_plan(self):
        q, db = self._single_atom_setup()
        result = run_one_round(_RoundRobin(q), db, p=4)
        assert result.details == {"policy": "round-robin"}

    def test_seed_changes_nothing_for_deterministic_plans(self):
        q, db = self._single_atom_setup()
        r1 = run_one_round(_RoundRobin(q), db, p=4, seed=1)
        r2 = run_one_round(_RoundRobin(q), db, p=4, seed=2)
        assert r1.report.per_server_tuples == r2.report.per_server_tuples


class TestEngineDispatch:
    def _setup(self):
        q = parse_query("q(x, y) :- S(x, y)")
        db = Database.from_relations([uniform_relation("S", 50, 64, seed=1)])
        return q, db

    def test_available_engines(self):
        from repro.mpc import available_engines

        assert available_engines() == ("reference", "batched", "mp")

    def test_unknown_engine_rejected(self):
        from repro.mpc import EngineError

        q, db = self._setup()
        with pytest.raises(EngineError, match="unknown execution engine"):
            run_one_round(_RoundRobin(q), db, p=4, engine="warp-drive")

    def test_resolve_engine_passthrough(self):
        from repro.mpc import BatchedEngine, resolve_engine

        instance = BatchedEngine()
        assert resolve_engine(instance) is instance
        assert resolve_engine("mp").name == "mp"

    @pytest.mark.parametrize("engine", ["reference", "batched", "mp"])
    def test_custom_plan_runs_on_every_engine(self, engine):
        """Plans without a fast batch path use the scalar fallback."""
        q, db = self._setup()
        result = run_one_round(
            _RoundRobin(q), db, p=4, verify=True, engine=engine
        )
        assert result.is_complete
        assert result.details == {"policy": "round-robin"}
        assert math.isclose(result.report.replication_rate, 1.0)

    def test_default_destinations_batch_matches_scalar(self):
        plan = _RoundRobinPlan(4)
        tuples = [(1, 2), (3, 4), (0, 0)]
        batch = plan.destinations_batch("S", tuples)
        assert batch == [
            tuple(plan.destinations("S", t)) for t in tuples
        ]

    def test_default_destinations_batch_deduplicates(self):
        class Duplicating(RoutingPlan):
            def destinations(self, relation_name, tup):
                return (0, 1, 0, 1)

        plan = Duplicating()
        assert plan.destinations_batch("S", [(1,)]) == [(0, 1)]
        assert dict(plan.destination_counts("S", [(1,), (2,)])) == {
            0: 2, 1: 2,
        }

    def test_default_destination_counts_matches_batch(self):
        plan = _RoundRobinPlan(4)
        tuples = [(i, i + 1) for i in range(20)]
        counts = plan.destination_counts("S", tuples)
        expected: dict[int, int] = {}
        for dests in plan.destinations_batch("S", tuples):
            for server in dests:
                expected[server] = expected.get(server, 0) + 1
        assert dict(counts) == expected
