"""Unit tests for the sequential multiway join oracle."""

import itertools
import math

import pytest

from repro.data import uniform_relation
from repro.query import parse_query, triangle_query
from repro.seq import (
    Database,
    Relation,
    count_answers,
    evaluate,
    expected_answer_count,
    local_join,
)


def brute_force(query, db):
    """Reference join: enumerate all assignments over the active domain."""
    values = sorted(
        {v for rel in db for t in rel.tuples for v in t}
    ) or [0]
    answers = set()
    for assignment in itertools.product(values, repeat=query.num_variables):
        binding = dict(zip(query.variables, assignment))
        ok = True
        for atom in query.atoms:
            tup = tuple(binding[v] for v in atom.variables)
            if tup not in db.relation(atom.name).tuples:
                ok = False
                break
        if ok:
            answers.add(tuple(binding[v] for v in query.head))
    return frozenset(answers)


class TestEvaluate:
    def test_simple_join(self):
        q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
        db = Database.from_relations(
            [
                Relation.build("S1", [(0, 1), (1, 1), (2, 3)]),
                Relation.build("S2", [(5, 1), (6, 3)], domain_size=7),
            ]
        )
        assert evaluate(q, db) == frozenset(
            {(0, 5, 1), (1, 5, 1), (2, 6, 3)}
        )

    def test_matches_brute_force_on_random_instances(self):
        q = triangle_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 40, 12, seed=1),
                uniform_relation("S2", 40, 12, seed=2),
                uniform_relation("S3", 40, 12, seed=3),
            ]
        )
        assert evaluate(q, db) == brute_force(q, db)

    def test_chain_matches_brute_force(self):
        q = parse_query("q(a,b,c,d) :- R(a,b), S(b,c), T(c,d)")
        db = Database.from_relations(
            [
                uniform_relation("R", 30, 8, seed=4),
                uniform_relation("S", 30, 8, seed=5),
                uniform_relation("T", 30, 8, seed=6),
            ]
        )
        assert evaluate(q, db) == brute_force(q, db)

    def test_head_order_respected(self):
        q = parse_query("q(z, x) :- S(x, z)")
        db = Database.from_relations([Relation.build("S", [(1, 2)])])
        assert evaluate(q, db) == frozenset({(2, 1)})

    def test_empty_relation_gives_empty_join(self):
        q = parse_query("q(x, y) :- S(x), T(x, y)")
        db = Database.from_relations(
            [
                Relation.build("S", [], arity=1, domain_size=4),
                Relation.build("T", [(0, 1)]),
            ]
        )
        assert evaluate(q, db) == frozenset()

    def test_repeated_variable_in_atom(self):
        q = parse_query("q(x, y) :- S(x, x), T(x, y)")
        db = Database.from_relations(
            [
                Relation.build("S", [(0, 0), (1, 2)], domain_size=3),
                Relation.build("T", [(0, 2), (1, 2)], domain_size=3),
            ]
        )
        # Only (0,0) survives the S(x,x) constraint.
        assert evaluate(q, db) == frozenset({(0, 2)})

    def test_cartesian_product(self):
        q = parse_query("q(x, y) :- S(x), T(y)")
        db = Database.from_relations(
            [
                Relation.build("S", [(0,), (1,)], domain_size=3),
                Relation.build("T", [(2,)], domain_size=3),
            ]
        )
        assert evaluate(q, db) == frozenset({(0, 2), (1, 2)})

    def test_count_answers(self):
        q = parse_query("q(x, y) :- S(x), T(y)")
        db = Database.from_relations(
            [
                Relation.build("S", [(0,), (1,)], domain_size=3),
                Relation.build("T", [(0,), (2,)], domain_size=3),
            ]
        )
        assert count_answers(q, db) == 4


class TestLocalJoin:
    def test_missing_fragment_is_empty(self):
        q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
        assert local_join(q, {"S1": {(0, 1)}}, domain_size=4) == frozenset()

    def test_local_fragments_join(self):
        q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
        fragments = {"S1": {(0, 1)}, "S2": {(2, 1), (3, 0)}}
        assert local_join(q, fragments, domain_size=4) == frozenset({(0, 2, 1)})


class TestExpectedAnswerCount:
    def test_lemma_a1_formula(self):
        """E[|q(I)|] = n^(k-a) * prod m_j."""
        q = triangle_query()
        value = expected_answer_count(q, {"S1": 10, "S2": 20, "S3": 30}, 100)
        assert math.isclose(value, 100.0 ** (3 - 6) * 10 * 20 * 30)

    def test_missing_cardinality_rejected(self):
        q = triangle_query()
        with pytest.raises(Exception):
            expected_answer_count(q, {"S1": 10}, 100)

    def test_empirical_match_on_random_instances(self):
        """Average |q(I)| over random instances tracks Lemma A.1."""
        q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
        n, m = 40, 120
        predicted = expected_answer_count(q, {"S1": m, "S2": m}, n)
        total = 0
        trials = 30
        for seed in range(trials):
            db = Database.from_relations(
                [
                    uniform_relation("S1", m, n, seed=seed * 2 + 1),
                    uniform_relation("S2", m, n, seed=seed * 2 + 2),
                ]
            )
            total += count_answers(q, db)
        average = total / trials
        assert 0.8 * predicted <= average <= 1.2 * predicted
