"""Unit tests for fractional edge packings/covers and pk(q)."""

from fractions import Fraction

from repro.core import (
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    is_edge_cover,
    is_edge_packing,
    is_tight,
    maximum_packing,
    maximum_packing_value,
    minimum_edge_cover,
    non_dominated_packing_vertices,
    packing_value,
    packing_vertices,
)
from repro.query import (
    cartesian_product_query,
    chain_query,
    clique_query,
    cycle_query,
    parse_query,
    simple_join_query,
    star_query,
    triangle_query,
)


def F(a, b=1):
    return Fraction(a, b)


class TestFeasibility:
    def test_chain_l3_example_from_paper(self):
        """Section 2.2: (1, 0, 1) is a tight feasible packing of L3."""
        q = chain_query(3)
        u = {"S1": 1, "S2": 0, "S3": 1}
        assert is_edge_packing(q, u)
        assert is_tight(q, u)
        assert is_edge_cover(q, u)

    def test_triangle_half_packing(self):
        q = triangle_query()
        u = {"S1": F(1, 2), "S2": F(1, 2), "S3": F(1, 2)}
        assert is_edge_packing(q, u)
        assert is_tight(q, u)

    def test_oversubscription_rejected(self):
        q = triangle_query()
        assert not is_edge_packing(q, {"S1": 1, "S2": 1, "S3": 0})

    def test_negative_weight_rejected(self):
        q = triangle_query()
        assert not is_edge_packing(q, {"S1": -1, "S2": 0, "S3": 0})
        assert not is_edge_cover(q, {"S1": -1, "S2": 1, "S3": 1})

    def test_tight_packing_is_tight_cover(self):
        """Section 2.2: tight packings and tight covers coincide."""
        q = chain_query(2)
        u = {"S1": F(1, 2), "S2": F(1, 2)}
        # Middle variable gets 1, ends get 1/2 — packing but not tight.
        assert is_edge_packing(q, u)
        assert not is_tight(q, u)
        tight = {"S1": 1, "S2": 1}
        assert not is_edge_packing(q, tight)  # middle oversubscribed


class TestMaximumPacking:
    def test_triangle_tau_star(self):
        assert maximum_packing_value(triangle_query()) == F(3, 2)

    def test_chain_tau_star(self):
        # L3: vertices x1..x4; (1,0,1) attains 2.
        assert maximum_packing_value(chain_query(3)) == 2

    def test_star_tau_star(self):
        # All atoms share z, so tau* = 1.
        assert maximum_packing_value(star_query(4)) == 1

    def test_cartesian_product_tau_star(self):
        # Disjoint atoms: all weights can be 1.
        assert maximum_packing_value(cartesian_product_query(3)) == 3

    def test_clique_tau_star(self):
        # K4: 4 vertices, perfect fractional matching value 2.
        assert maximum_packing_value(clique_query(4)) == 2

    def test_maximum_packing_is_feasible_and_attains_value(self):
        q = triangle_query()
        u = maximum_packing(q)
        assert is_edge_packing(q, u)
        assert packing_value(u) == maximum_packing_value(q)

    def test_duality_with_vertex_cover(self):
        """tau* equals the fractional vertex covering number (Section 3.2)."""
        for q in [
            triangle_query(),
            chain_query(4),
            star_query(3),
            clique_query(4),
            simple_join_query(),
        ]:
            assert maximum_packing_value(q) == fractional_vertex_cover_number(q)


class TestVertexEnumeration:
    def test_triangle_pk_matches_example_3_7(self):
        vertices = non_dominated_packing_vertices(triangle_query())
        as_sets = {tuple(sorted(v.items())) for v in vertices}
        expected = {
            (("S1", F(1, 2)), ("S2", F(1, 2)), ("S3", F(1, 2))),
            (("S1", F(1)), ("S2", F(0)), ("S3", F(0))),
            (("S1", F(0)), ("S2", F(1)), ("S3", F(0))),
            (("S1", F(0)), ("S2", F(0)), ("S3", F(1))),
        }
        assert as_sets == expected

    def test_join_pk(self):
        """pk of the simple join: (1,0) and (0,1) (Example 4.8)."""
        vertices = non_dominated_packing_vertices(simple_join_query())
        as_sets = {tuple(sorted(v.items())) for v in vertices}
        assert as_sets == {
            (("S1", F(1)), ("S2", F(0))),
            (("S1", F(0)), ("S2", F(1))),
        }

    def test_all_vertices_include_origin(self):
        vertices = packing_vertices(triangle_query())
        assert {"S1": F(0), "S2": F(0), "S3": F(0)} in vertices

    def test_non_dominated_excludes_origin(self):
        vertices = non_dominated_packing_vertices(triangle_query())
        assert {"S1": F(0), "S2": F(0), "S3": F(0)} not in vertices

    def test_every_vertex_is_feasible(self):
        for q in [triangle_query(), chain_query(3), star_query(3)]:
            for vertex in packing_vertices(q):
                assert is_edge_packing(q, vertex)

    def test_max_value_attained_on_vertices(self):
        for q in [triangle_query(), chain_query(4), clique_query(4)]:
            best = max(
                packing_value(v) for v in non_dominated_packing_vertices(q)
            )
            assert best == maximum_packing_value(q)


class TestEdgeCovers:
    def test_triangle_rho_star(self):
        assert fractional_edge_cover_number(triangle_query()) == F(3, 2)

    def test_chain_rho_star(self):
        assert fractional_edge_cover_number(chain_query(3)) == 2

    def test_star_rho_star(self):
        # Must cover every ray variable: all atoms get weight 1.
        assert fractional_edge_cover_number(star_query(3)) == 3

    def test_minimum_edge_cover_feasible(self):
        q = triangle_query()
        cover = minimum_edge_cover(q)
        assert is_edge_cover(q, cover)

    def test_weighted_cover_prefers_cheap_atoms(self):
        q = simple_join_query()
        # S1 expensive: the cover should leans on S2... but both are needed
        # to cover x and y respectively; weights must each be >= 1.
        cover = minimum_edge_cover(q, {"S1": 10, "S2": 1})
        assert cover["S1"] >= 1 and cover["S2"] >= 1

    def test_self_loop_query_packing(self):
        """A query with a repeated variable in one atom."""
        q = parse_query("q(x, y) :- S(x, x), T(x, y)")
        assert maximum_packing_value(q) >= 1
        for vertex in packing_vertices(q):
            assert is_edge_packing(q, vertex)
