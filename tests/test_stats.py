"""Unit tests for statistics: cardinalities, heavy hitters, bins, degrees."""

import math
from fractions import Fraction

import pytest

from repro.data import single_value_relation, uniform_relation, zipf_relation
from repro.query import parse_query, simple_join_query
from repro.seq import Database, Relation
from repro.stats import (
    BinCombination,
    DegreeStatistics,
    HeavyHitterStatistics,
    SimpleStatistics,
    StatisticsError,
    assignment_bin_exponent,
    bin_exponent,
    bin_index,
    canonical_subset,
    combination_for_assignment,
    light_bin_index,
    num_heavy_bins,
)


class TestSimpleStatistics:
    def test_of_database(self):
        db = Database.from_relations(
            [Relation.build("S1", [(0, 1), (1, 2)], domain_size=16)]
        )
        stats = SimpleStatistics.of(db)
        assert stats.cardinality("S1") == 2
        assert stats.arity("S1") == 2
        assert stats.bits("S1") == 2 * 2 * 4.0

    def test_from_cardinalities(self):
        q = simple_join_query()
        stats = SimpleStatistics.from_cardinalities(
            q, {"S1": 100, "S2": 200}, domain_size=1024
        )
        assert stats.bits("S1") == 2 * 100 * 10.0
        assert stats.bits_vector(q) == {"S1": 2000.0, "S2": 4000.0}

    def test_missing_cardinality_rejected(self):
        q = simple_join_query()
        with pytest.raises(StatisticsError):
            SimpleStatistics.from_cardinalities(q, {"S1": 100}, 16)

    def test_unknown_relation_rejected(self):
        stats = SimpleStatistics(cardinalities={}, arities={}, domain_size=4)
        with pytest.raises(StatisticsError):
            stats.cardinality("S1")

    def test_total_bits(self):
        q = simple_join_query()
        stats = SimpleStatistics.from_cardinalities(
            q, {"S1": 10, "S2": 20}, domain_size=4
        )
        assert stats.total_bits == 2 * 10 * 2.0 + 2 * 20 * 2.0


class TestHeavyHitterStatistics:
    def test_single_value_relation_is_heavy(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                single_value_relation("S1", 100, 500, seed=1),
                uniform_relation("S2", 100, 500, seed=2),
            ]
        )
        stats = HeavyHitterStatistics.of(q, db, p=10)
        heavy = stats.heavy_hitters("S1", ("z",))
        assert heavy == {(0,): 100}
        assert stats.is_heavy("S1", ("z",), (0,))
        assert stats.frequency("S1", ("z",), (0,)) == 100

    def test_uniform_relation_has_no_heavy_hitters_on_single_vars(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 200, 5000, seed=3),
                uniform_relation("S2", 200, 5000, seed=4),
            ]
        )
        stats = HeavyHitterStatistics.of(q, db, p=8)
        # threshold = 200/8 = 25; uniform values over 5000 can't reach it.
        assert not stats.heavy_hitters("S1", ("z",))
        assert not stats.heavy_hitters("S2", ("z",))

    def test_light_values_return_none(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 100, 1000, seed=5),
                uniform_relation("S2", 100, 1000, seed=6),
            ]
        )
        stats = HeavyHitterStatistics.of(q, db, p=4)
        assert stats.frequency("S1", ("z",), (99999,)) is None
        assert stats.frequency_or_light_bound("S1", ("z",), (99999,)) == 25.0

    def test_pair_subsets_tracked(self):
        """Heavy hitters exist for every nonempty subset of atom variables."""
        q = simple_join_query()
        tuples = [(0, 0)] * 1 + [(i, 0) for i in range(50)] + [(0, i) for i in range(50)]
        db = Database.from_relations(
            [
                Relation.build("S1", tuples, domain_size=64),
                uniform_relation("S2", 50, 64, seed=7),
            ]
        )
        stats = HeavyHitterStatistics.of(q, db, p=4)
        assert ("S1", ("x", "z")) in stats.hitters
        assert ("S1", ("x",)) in stats.hitters
        assert ("S1", ("z",)) in stats.hitters

    def test_threshold_factor(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                zipf_relation("S1", 300, 500, skew=1.0, seed=8),
                uniform_relation("S2", 300, 5000, seed=9),
            ]
        )
        strict = HeavyHitterStatistics.of(q, db, p=8, threshold_factor=1.0)
        loose = HeavyHitterStatistics.of(q, db, p=8, threshold_factor=0.25)
        assert loose.total_heavy_count() >= strict.total_heavy_count()

    def test_bad_p_rejected(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 10, 100, seed=1),
                uniform_relation("S2", 10, 100, seed=2),
            ]
        )
        with pytest.raises(StatisticsError):
            HeavyHitterStatistics.of(q, db, p=0)

    def test_heavy_count_is_bounded(self):
        """At most p heavy hitters per (relation, subset) (Section 1)."""
        q = simple_join_query()
        db = Database.from_relations(
            [
                zipf_relation("S1", 400, 500, skew=1.5, seed=10),
                zipf_relation("S2", 400, 500, skew=1.5, seed=11),
            ]
        )
        p = 16
        stats = HeavyHitterStatistics.of(q, db, p=p)
        for (_name, _subset), hitters in stats.hitters.items():
            assert len(hitters) < p


class TestBins:
    def test_num_heavy_bins(self):
        assert num_heavy_bins(16) == 4
        assert num_heavy_bins(17) == 5
        assert light_bin_index(16) == 5

    def test_bin_index_boundaries(self):
        """Bin b holds m/2^(b-1) >= freq > m/2^b."""
        p, m = 16, 1000
        assert bin_index(m, 1000, p) == 1
        assert bin_index(m, 501, p) == 1
        assert bin_index(m, 500, p) == 2
        assert bin_index(m, 251, p) == 2
        assert bin_index(m, 250, p) == 3
        # Light values land in the light bin.
        assert bin_index(m, 10, p) == light_bin_index(p)

    def test_bin_index_validation(self):
        with pytest.raises(ValueError):
            bin_index(100, 0, 16)
        with pytest.raises(ValueError):
            bin_index(100, 101, 16)

    def test_bin_exponent_values(self):
        p = 16
        assert bin_exponent(1, p) == 0
        assert bin_exponent(light_bin_index(p), p) == 1
        # beta_2 = log_p 2 = 1/4 for p = 16.
        assert abs(float(bin_exponent(2, p)) - 0.25) < 1e-9

    def test_bin_exponents_increase(self):
        p = 64
        exponents = [bin_exponent(b, p) for b in range(1, light_bin_index(p) + 1)]
        assert exponents == sorted(exponents)
        assert exponents[0] == 0
        assert exponents[-1] == 1

    def test_assignment_bin_exponent_light_is_one(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 100, 1000, seed=12),
                uniform_relation("S2", 100, 1000, seed=13),
            ]
        )
        stats = HeavyHitterStatistics.of(q, db, p=4)
        assert assignment_bin_exponent(stats, "S1", ("z",), (5,)) == 1

    def test_combination_for_assignment(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                single_value_relation("S1", 64, 500, seed=1),
                uniform_relation("S2", 64, 5000, seed=2),
            ]
        )
        stats = HeavyHitterStatistics.of(q, db, p=8)
        combo = combination_for_assignment(q, stats, {"z": 0})
        assert combo.variables == frozenset({"z"})
        assert combo.beta("S1") == 0  # the whole relation sits on z=0
        assert combo.beta("S2") == 1  # light in S2

    def test_combination_dominance(self):
        small = BinCombination.build({"z"}, {"S1": Fraction(0)})
        large = BinCombination.build({"z", "x"}, {"S1": Fraction(1, 2)})
        assert large.dominates(small)
        assert not small.dominates(large)
        assert not large.dominates(large)

    def test_empty_combination(self):
        empty = BinCombination.empty()
        assert empty.variables == frozenset()
        assert empty.beta("anything") == 0


class TestDegreeStatistics:
    def test_degree_maps(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                Relation.build("S1", [(0, 1), (1, 1), (2, 2)], domain_size=4),
                Relation.build("S2", [(0, 1), (3, 3)], domain_size=4),
            ]
        )
        stats = DegreeStatistics.of(q, db, {"z"})
        assert stats.frequency("S1", (1,)) == 2
        assert stats.frequency("S1", (2,)) == 1
        assert stats.frequency("S1", (3,)) == 0
        assert stats.cardinality("S1") == 3

    def test_empty_subset_records_cardinality(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                Relation.build("S1", [(0, 1)], domain_size=4),
                Relation.build("S2", [(0, 1), (1, 1)], domain_size=4),
            ]
        )
        stats = DegreeStatistics.of(q, db, {"x"})
        # S2 does not contain x: its map holds () -> cardinality.
        assert stats.frequency("S2", ()) == 2
        assert stats.subset_of("S2") == ()

    def test_bits(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                Relation.build("S1", [(0, 1), (1, 1)], domain_size=16),
                Relation.build("S2", [(0, 1)], domain_size=16),
            ]
        )
        stats = DegreeStatistics.of(q, db, {"z"})
        assert math.isclose(stats.bits("S1", (1,)), 2 * 2 * 4.0)

    def test_unknown_variable_rejected(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                Relation.build("S1", [(0, 1)], domain_size=4),
                Relation.build("S2", [(0, 1)], domain_size=4),
            ]
        )
        with pytest.raises(StatisticsError):
            DegreeStatistics.of(q, db, {"w"})


class TestCanonicalSubset:
    def test_sorted_and_deduplicated(self):
        assert canonical_subset(["z", "x", "z"]) == ("x", "z")
        assert canonical_subset([]) == ()
