"""Unit tests for Friedgut's inequality and the AGM bound (Section 2.3)."""

import math
import random
from fractions import Fraction

import pytest

from repro.core import (
    agm_bound,
    check_agm,
    friedgut_gap,
    friedgut_lhs,
    friedgut_rhs,
)
from repro.data import uniform_relation
from repro.query import QueryError, parse_query, triangle_query
from repro.seq import Database


def _random_weights(query, n, density, seed, scale=1.0):
    rng = random.Random(seed)
    weights = {}
    for atom in query.atoms:
        table = {}
        for _ in range(int(density * n)):
            key = tuple(rng.randrange(n) for _ in range(atom.arity))
            table[key] = rng.random() * scale
        weights[atom.name] = table
    return weights


class TestFriedgutInequality:
    def test_triangle_paper_instance(self):
        """The C3 illustration after Eq. 3 with 0/1 weights."""
        q = triangle_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 60, 20, seed=1),
                uniform_relation("S2", 60, 20, seed=2),
                uniform_relation("S3", 60, 20, seed=3),
            ]
        )
        weights = {
            name: {t: 1.0 for t in db.relation(name).tuples}
            for name in ("S1", "S2", "S3")
        }
        cover = {"S1": Fraction(1, 2), "S2": Fraction(1, 2), "S3": Fraction(1, 2)}
        lhs, rhs = friedgut_gap(q, cover, weights)
        # lhs = |C3|, rhs = sqrt(m1 m2 m3).
        assert lhs <= rhs * (1 + 1e-9)
        assert math.isclose(rhs, math.sqrt(60**3), rel_tol=1e-9)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_weights_triangle(self, seed):
        q = triangle_query()
        weights = _random_weights(q, n=12, density=3.0, seed=seed)
        cover = {"S1": Fraction(1, 2), "S2": Fraction(1, 2), "S3": Fraction(1, 2)}
        lhs, rhs = friedgut_gap(q, cover, weights)
        assert lhs <= rhs * (1 + 1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_weights_chain(self, seed):
        q = parse_query("q(a,b,c) :- R(a,b), S(b,c)")
        weights = _random_weights(q, n=10, density=4.0, seed=seed)
        cover = {"R": 1, "S": 1}
        lhs, rhs = friedgut_gap(q, cover, weights)
        assert lhs <= rhs * (1 + 1e-9)

    def test_zero_weight_cover_atom_uses_max(self):
        """u_j = 0 contributes the max weight (the limiting norm)."""
        q = parse_query("q(a,b) :- R(a,b), S(b)")
        weights = {
            "R": {(0, 1): 2.0, (1, 1): 3.0},
            "S": {(1,): 5.0},
        }
        cover = {"R": 1, "S": 0}  # R alone covers both variables
        rhs = friedgut_rhs(q, cover, weights)
        assert math.isclose(rhs, (2.0 + 3.0) * 5.0)
        lhs = friedgut_lhs(q, weights)
        assert math.isclose(lhs, 2.0 * 5.0 + 3.0 * 5.0)
        assert lhs <= rhs

    def test_non_cover_rejected(self):
        q = triangle_query()
        weights = _random_weights(q, n=5, density=2.0, seed=0)
        with pytest.raises(QueryError):
            friedgut_rhs(q, {"S1": Fraction(1, 4), "S2": 0, "S3": 0}, weights)

    def test_negative_weight_rejected(self):
        q = parse_query("q(a) :- R(a)")
        with pytest.raises(QueryError):
            friedgut_lhs(q, {"R": {(0,): -1.0}})

    def test_missing_weights_rejected(self):
        q = triangle_query()
        with pytest.raises(QueryError):
            friedgut_lhs(q, {"S1": {}})

    def test_wrong_key_arity_rejected(self):
        q = parse_query("q(a, b) :- R(a, b)")
        with pytest.raises(QueryError):
            friedgut_lhs(q, {"R": {(0,): 1.0}})


class TestAGMBound:
    def test_triangle_closed_form(self):
        q = triangle_query()
        bound = agm_bound(q, {"S1": 100, "S2": 100, "S3": 100})
        assert math.isclose(bound, 100**1.5, rel_tol=1e-9)

    def test_join_closed_form(self):
        q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
        bound = agm_bound(q, {"S1": 50, "S2": 70})
        assert math.isclose(bound, 50 * 70, rel_tol=1e-9)

    def test_empty_relation_gives_zero(self):
        q = triangle_query()
        assert agm_bound(q, {"S1": 0, "S2": 10, "S3": 10}) == 0.0

    def test_unequal_sizes_pick_best_cover(self):
        q = triangle_query()
        # With S3 tiny, covering via S1+S2... every edge cover of C3 has
        # total weight >= 3/2; the optimum shifts weight onto small atoms.
        bound = agm_bound(q, {"S1": 10**6, "S2": 10**6, "S3": 1})
        # cover (1/2,1/2,1/2) gives 1e6; cover (1,0,1) gives 1e6 * 1.
        assert bound <= 10**6 + 1e-6

    def test_actual_never_exceeds_bound(self):
        q = triangle_query()
        for seed in range(5):
            db = Database.from_relations(
                [
                    uniform_relation("S1", 80, 25, seed=3 * seed),
                    uniform_relation("S2", 80, 25, seed=3 * seed + 1),
                    uniform_relation("S3", 80, 25, seed=3 * seed + 2),
                ]
            )
            actual, bound = check_agm(q, db)
            assert actual <= bound * (1 + 1e-9)

    def test_singleton_cardinalities(self):
        q = parse_query("q(x) :- R(x)")
        assert math.isclose(agm_bound(q, {"R": 7}), 7.0)
        assert math.isclose(agm_bound(q, {"R": 1}), 1.0)
