"""Unit tests for the conjunctive query model."""

import pytest

from repro.query import Atom, ConjunctiveQuery, QueryError
from repro.query.catalog import triangle_query


class TestAtom:
    def test_arity_counts_positions_not_distinct_variables(self):
        atom = Atom("S", ("x", "x", "y"))
        assert atom.arity == 3
        assert atom.variable_set == frozenset({"x", "y"})

    def test_positions_of_repeated_variable(self):
        atom = Atom("S", ("x", "y", "x"))
        assert atom.positions_of("x") == (0, 2)
        assert atom.positions_of("y") == (1,)
        assert atom.positions_of("z") == ()

    def test_rejects_empty_name(self):
        with pytest.raises(QueryError):
            Atom("", ("x",))

    def test_rejects_empty_variable(self):
        with pytest.raises(QueryError):
            Atom("S", ("x", ""))

    def test_str(self):
        assert str(Atom("S1", ("x", "z"))) == "S1(x, z)"

    def test_zero_arity_atom_is_allowed(self):
        atom = Atom("S", ())
        assert atom.arity == 0
        assert atom.variable_set == frozenset()


class TestConjunctiveQuery:
    def test_head_defaults_to_first_appearance_order(self):
        q = ConjunctiveQuery([Atom("S1", ("x", "z")), Atom("S2", ("y", "z"))])
        assert q.head == ("x", "z", "y")

    def test_explicit_head_reorders(self):
        q = ConjunctiveQuery(
            [Atom("S1", ("x", "z")), Atom("S2", ("y", "z"))],
            head=("x", "y", "z"),
        )
        assert q.head == ("x", "y", "z")

    def test_rejects_self_join(self):
        with pytest.raises(QueryError, match="self-join"):
            ConjunctiveQuery([Atom("S", ("x", "y")), Atom("S", ("y", "z"))])

    def test_rejects_non_full_head(self):
        with pytest.raises(QueryError, match="full"):
            ConjunctiveQuery([Atom("S", ("x", "y"))], head=("x",))

    def test_rejects_head_with_extra_variable(self):
        with pytest.raises(QueryError, match="full"):
            ConjunctiveQuery([Atom("S", ("x",))], head=("x", "w"))

    def test_rejects_duplicate_head_variable(self):
        with pytest.raises(QueryError, match="full"):
            ConjunctiveQuery([Atom("S", ("x", "y"))], head=("x", "x", "y"))

    def test_rejects_empty_body(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([])

    def test_total_arity(self):
        q = triangle_query()
        assert q.total_arity == 6
        assert q.num_variables == 3
        assert q.num_atoms == 3

    def test_atom_lookup(self):
        q = triangle_query()
        assert q.atom("S2").variables == ("x2", "x3")
        with pytest.raises(QueryError):
            q.atom("nope")

    def test_variable_position(self):
        q = triangle_query()
        assert q.variable_position("x2") == 1
        with pytest.raises(QueryError):
            q.variable_position("w")

    def test_atoms_containing(self):
        q = triangle_query()
        names = [a.name for a in q.atoms_containing("x2")]
        assert names == ["S1", "S2"]
        with pytest.raises(QueryError):
            q.atoms_containing("w")

    def test_incidence(self):
        q = ConjunctiveQuery([Atom("S1", ("x", "z")), Atom("S2", ("y", "z"))])
        inc = q.incidence()
        assert inc["z"] == ("S1", "S2")
        assert inc["x"] == ("S1",)

    def test_adjacency(self):
        q = triangle_query()
        adj = q.adjacency()
        assert adj["x1"] == frozenset({"x2", "x3"})

    def test_connectivity(self):
        q = triangle_query()
        assert q.is_connected()
        product = ConjunctiveQuery([Atom("S1", ("x",)), Atom("S2", ("y",))])
        assert not product.is_connected()

    def test_connected_components_of_product(self):
        product = ConjunctiveQuery(
            [Atom("S1", ("x", "y")), Atom("S2", ("y", "z")), Atom("S3", ("w",))]
        )
        components = product.connected_components()
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2]

    def test_equality_and_hash(self):
        q1 = triangle_query()
        q2 = triangle_query()
        assert q1 == q2
        assert hash(q1) == hash(q2)
        assert q1 != ConjunctiveQuery([Atom("S1", ("x",))])

    def test_iteration_and_len(self):
        q = triangle_query()
        assert len(q) == 3
        assert [a.name for a in q] == ["S1", "S2", "S3"]

    def test_str_roundtrips_structure(self):
        q = triangle_query()
        assert str(q) == "C3(x1, x2, x3) :- S1(x1, x2), S2(x2, x3), S3(x3, x1)"
