"""Tests for the plan introspection (explain) output."""

from repro.core import BinHyperCubeAlgorithm, SkewAwareJoin
from repro.data import single_value_relation, uniform_relation
from repro.mpc import HashFamily
from repro.query import simple_join_query
from repro.seq import Database


def _skewed_db():
    return Database.from_relations(
        [
            single_value_relation("S1", 80, 300, seed=1),
            single_value_relation("S2", 80, 300, seed=2),
        ]
    )


def _uniform_db():
    return Database.from_relations(
        [
            uniform_relation("S1", 100, 800, seed=3),
            uniform_relation("S2", 100, 800, seed=4),
        ]
    )


class TestSkewJoinExplain:
    def test_mentions_grid_for_doubly_heavy(self):
        q = simple_join_query()
        db = _skewed_db()
        plan = SkewAwareJoin(q).routing_plan(db, 8, HashFamily(0))
        text = plan.explain()
        assert "skew-aware join on z" in text
        assert "H12" in text and "cartesian grid" in text
        assert "total allocation" in text

    def test_uniform_plan_has_no_heavy_lines(self):
        q = simple_join_query()
        db = _uniform_db()
        plan = SkewAwareJoin(q).routing_plan(db, 8, HashFamily(0))
        text = plan.explain()
        assert "H12" not in text
        assert "light hitters" in text


class TestBinPlanExplain:
    def test_lists_combinations_and_budgets(self):
        q = simple_join_query()
        db = _skewed_db()
        plan = BinHyperCubeAlgorithm(q).routing_plan(db, 8, HashFamily(0))
        text = plan.explain()
        assert "bin combinations" in text
        assert "p^lambda" in text
        assert "predicted load" in text
        # The heavy value z=0 should have spawned a combination on {z}.
        assert "x={z}" in text

    def test_uniform_plan_is_single_combination(self):
        q = simple_join_query()
        db = _uniform_db()
        plan = BinHyperCubeAlgorithm(q).routing_plan(db, 8, HashFamily(0))
        assert len(plan.combo_plans) == 1
        assert "1 bin combinations" in plan.explain()
