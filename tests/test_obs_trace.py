"""Tests for the span tracer (repro.obs.trace)."""

import json

import pytest

from repro.obs import Tracer


class FakeClock:
    """A deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpanNesting:
    def test_depth_and_parent_follow_the_stack(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert outer.depth == 0 and outer.parent is None
        assert middle.depth == 1 and middle.parent is outer
        assert inner.depth == 2 and inner.parent is middle
        assert sibling.depth == 1 and sibling.parent is outer

    def test_spans_recorded_in_start_order(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [span.name for span in tracer.spans] == ["a", "b", "c"]

    def test_span_closes_on_exception(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.finished

    def test_attrs_are_kept(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("route", relation="S1", p=8) as span:
            pass
        assert span.attrs == {"relation": "S1", "p": 8}


class TestSpanTiming:
    def test_durations_are_monotone_with_the_clock(self):
        # FakeClock ticks once per read: origin=0, outer.start=1,
        # inner.start=2, inner.end=3, outer.end=4.
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start < inner.start < inner.end < outer.end
        assert inner.duration == 1.0
        assert outer.duration == 3.0
        # A child can never outlast its parent.
        assert inner.duration <= outer.duration

    def test_open_span_has_zero_duration(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.span("open")
        ctx.__enter__()
        (span,) = tracer.spans
        assert not span.finished
        assert span.duration == 0.0

    def test_real_clock_durations_are_nonnegative(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        for span in tracer.spans:
            assert span.duration >= 0.0

    def test_total_seconds_sums_same_named_spans(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        for _ in range(3):
            with tracer.span("work"):
                pass
        assert tracer.total_seconds("work") == 3.0
        assert len(tracer.finished_spans("work")) == 3
        assert tracer.finished_spans("missing") == ()


class TestChromeTraceExport:
    def test_event_shape(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("outer", p=4):
            with tracer.span("inner"):
                pass
        doc = tracer.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [event["name"] for event in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["ts"] >= 0 and event["dur"] >= 0
        # Timestamps are microseconds since tracer creation.
        outer, inner = events
        assert outer["ts"] == pytest.approx(1e6)
        assert inner["ts"] == pytest.approx(2e6)
        assert inner["dur"] == pytest.approx(1e6)
        assert outer["args"]["p"] == 4
        assert inner["args"]["parent"] == "outer"

    def test_open_spans_are_excluded(self):
        tracer = Tracer(clock=FakeClock())
        ctx = tracer.span("open")  # keep a reference: GC would close it
        ctx.__enter__()
        with tracer.span("closed"):
            pass
        names = [event["name"] for event in tracer.to_events()]
        assert names == ["closed"]

    def test_non_primitive_attrs_are_stringified(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", query=("q", "r")):
            pass
        (event,) = tracer.to_events()
        assert event["args"]["query"] == str(("q", "r"))

    def test_to_json_round_trips(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        parsed = json.loads(tracer.to_json())
        assert parsed["traceEvents"][0]["name"] == "a"
