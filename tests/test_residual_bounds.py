"""Unit tests for the residual lower bounds (Theorem 4.7, Example 4.8)."""

import math
from fractions import Fraction

from repro.core import (
    best_residual_lower_bound,
    lower_bound,
    residual_load,
    residual_lower_bound,
    saturating_packing_vertices,
)
from repro.data import degree_relation, single_value_relation, uniform_relation
from repro.query import residual_query, simple_join_query, triangle_query
from repro.seq import Database, Relation, bits_per_value
from repro.stats import DegreeStatistics


class TestSaturatingVertices:
    def test_join_z_saturation(self):
        """Example 4.8: the only saturating packing of q_{z} is (1, 1)."""
        q = simple_join_query()
        vertices = saturating_packing_vertices(q, {"z"})
        assert {"S1": Fraction(1), "S2": Fraction(1)} in vertices
        residual = residual_query(q, {"z"})
        for vertex in vertices:
            assert residual.saturates(vertex)

    def test_triangle_x1_saturation(self):
        """Example 4.8: (1, 0, 1) saturates x1 in C3."""
        q = triangle_query()
        vertices = saturating_packing_vertices(q, {"x1"})
        assert {"S1": Fraction(1), "S2": Fraction(0), "S3": Fraction(1)} in vertices
        residual = residual_query(q, {"x1"})
        for vertex in vertices:
            assert residual.saturates(vertex)

    def test_all_variables_removed(self):
        """x = all vars: the residual atoms are all nullary, u_j <= 1 caps
        keep the polytope bounded."""
        q = simple_join_query()
        vertices = saturating_packing_vertices(q, {"x", "y", "z"})
        assert vertices  # feasible: u = (1, 1)
        for vertex in vertices:
            assert all(value <= 1 for value in vertex.values())

    def test_infeasible_saturation_empty(self):
        """A variable in no atom of positive possible weight cannot happen,
        but saturation can still be infeasible for over-constrained sets."""
        q = simple_join_query()
        # x appears only in S1; saturating x forces u1 = 1.  Feasible.
        vertices = saturating_packing_vertices(q, {"x"})
        assert all(v["S1"] == 1 for v in vertices)


class TestResidualLoad:
    def test_join_degenerate_uniform_matches_simple_bound(self):
        """On uniform degrees sum_h m1(h) m2(h) ~ m^2/n: the residual bound
        is below the cardinality bound (skew does not help)."""
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 300, 600, seed=1),
                uniform_relation("S2", 300, 600, seed=2),
            ]
        )
        p = 16
        stats = DegreeStatistics.of(q, db, {"z"})
        bound = residual_lower_bound(q, stats, p)
        simple = lower_bound(
            q,
            {"S1": db.relation("S1").bits, "S2": db.relation("S2").bits},
            p,
        ).bits
        assert bound is not None
        assert bound.bits <= simple * 1.05

    def test_join_single_value_closed_form(self):
        """All tuples share z=0: sum_h M1(h) M2(h) = M1 M2, so the bound is
        sqrt(M1 M2 / p) — the cartesian-product load."""
        q = simple_join_query()
        m = 100
        db = Database.from_relations(
            [
                single_value_relation("S1", m, 256, seed=3),
                single_value_relation("S2", m, 256, seed=4),
            ]
        )
        p = 16
        stats = DegreeStatistics.of(q, db, {"z"})
        bound = residual_lower_bound(q, stats, p)
        tuple_bits = 2 * bits_per_value(256)
        expected = math.sqrt((m * tuple_bits) ** 2 / p)
        assert bound is not None
        assert math.isclose(bound.bits, expected, rel_tol=1e-9)

    def test_residual_beats_cardinality_bound_under_skew(self):
        """Theorem 4.7's point: skew makes the problem harder."""
        q = simple_join_query()
        m = 128
        db = Database.from_relations(
            [
                single_value_relation("S1", m, 256, seed=5),
                single_value_relation("S2", m, 256, seed=6),
            ]
        )
        p = 64
        stats = DegreeStatistics.of(q, db, {"z"})
        residual = residual_lower_bound(q, stats, p)
        simple = lower_bound(
            q, {"S1": db.relation("S1").bits, "S2": db.relation("S2").bits}, p
        ).bits
        # sqrt(M^2/p) = M/sqrt(p) > M/p.
        assert residual.bits > simple * 2

    def test_triangle_degree_bound(self):
        """Example 4.8's new C3 bound: sqrt(sum_h m1(h) m3(h) / p)."""
        q = triangle_query()
        degrees = {0: 60, 1: 30, 2: 10}
        db = Database.from_relations(
            [
                degree_relation("S1", degrees, 128, degree_position=0, seed=7),
                uniform_relation("S2", 100, 128, seed=8),
                degree_relation("S3", degrees, 128, degree_position=1, seed=9),
            ]
        )
        p = 16
        stats = DegreeStatistics.of(q, db, {"x1"})
        bound = residual_lower_bound(q, stats, p)
        assert bound is not None
        # Hand-compute sum_h M1(h) M3(h) over the degree maps.
        per_bit = 2 * bits_per_value(128)
        m1 = db.relation("S1").frequencies([0])
        m3 = db.relation("S3").frequencies([1])
        total = sum(
            (m1[h] * per_bit) * (m3[h] * per_bit) for h in m1 if h in m3
        )
        expected = math.sqrt(total / p)
        assert bound.bits >= expected * 0.999

    def test_zero_intersection_support(self):
        """Disjoint degree supports make the residual sum zero."""
        q = simple_join_query()
        db = Database.from_relations(
            [
                Relation.build("S1", [(0, 1), (1, 1)], domain_size=8),
                Relation.build("S2", [(0, 5), (1, 5)], domain_size=8),
            ]
        )
        stats = DegreeStatistics.of(q, db, {"z"})
        value = residual_load(q, stats, {"S1": 1, "S2": 1}, 4)
        assert value == 0.0


class TestEmptySetDegenerates:
    def test_x_empty_recovers_theorem_3_5(self):
        """With x = emptyset, L_x(u, M, p) == L(u, M, p) — the residual
        machinery strictly generalizes the simple bound."""
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 200, 500, seed=14),
                uniform_relation("S2", 120, 500, seed=15),
            ]
        )
        p = 16
        stats = DegreeStatistics.of(q, db, set())
        from repro.core import load as load_formula

        bits = {name: db.relation(name).bits for name in ("S1", "S2")}
        for packing in (
            {"S1": 1, "S2": 0},
            {"S1": 0, "S2": 1},
            {"S1": 1, "S2": 1},
        ):
            expected = load_formula(packing, bits, p)
            measured = residual_load(q, stats, packing, p)
            assert math.isclose(measured, expected, rel_tol=1e-9), packing


class TestBestResidualBound:
    def test_breakdown_covers_candidates(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                single_value_relation("S1", 64, 256, seed=10),
                single_value_relation("S2", 64, 256, seed=11),
            ]
        )
        best, breakdown = best_residual_lower_bound(q, db, 16, max_set_size=1)
        assert best is not None
        assert frozenset({"z"}) in breakdown
        assert best.bits == max(breakdown.values())

    def test_explicit_candidates(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 100, 300, seed=12),
                uniform_relation("S2", 100, 300, seed=13),
            ]
        )
        best, breakdown = best_residual_lower_bound(
            q, db, 8, candidate_sets=[{"z"}]
        )
        assert set(breakdown) == {frozenset({"z"})}
