"""Unit tests for residual queries, extended queries, and saturation."""

from fractions import Fraction

import pytest

from repro.query import (
    QueryError,
    extended_query,
    packing_slacks,
    parse_query,
    residual_query,
    simple_join_query,
    triangle_query,
)


class TestResidualQuery:
    def test_example_4_8_join(self):
        """x = {z} on the simple join: residual is S1(x), S2(y)."""
        r = residual_query(simple_join_query(), {"z"})
        assert [str(a) for a in r.query.atoms] == ["S1(x)", "S2(y)"]
        assert r.remaining == ("x", "y")

    def test_example_4_8_triangle(self):
        """x = {x1} on C3: residual is S1(x2), S2(x2,x3), S3(x3)."""
        r = residual_query(triangle_query(), {"x1"})
        assert [str(a) for a in r.query.atoms] == [
            "S1(x2)",
            "S2(x2, x3)",
            "S3(x3)",
        ]

    def test_remove_everything(self):
        r = residual_query(simple_join_query(), {"x", "y", "z"})
        assert all(a.arity == 0 for a in r.query.atoms)
        assert r.remaining == ()

    def test_remove_nothing(self):
        r = residual_query(triangle_query(), set())
        assert r.query.head == triangle_query().head

    def test_unknown_variable_rejected(self):
        with pytest.raises(QueryError):
            residual_query(triangle_query(), {"nope"})

    def test_positions(self):
        r = residual_query(simple_join_query(), {"z"})
        assert r.removed_positions("S1") == (1,)
        assert r.kept_positions("S1") == (0,)
        assert r.removed_positions("S2") == (1,)

    def test_positions_with_repeats(self):
        q = parse_query("q(x, y) :- S(x, y, x)")
        r = residual_query(q, {"x"})
        assert r.removed_positions("S") == (0, 2)
        assert r.kept_positions("S") == (1,)


class TestSaturation:
    def test_join_packing_saturates_z(self):
        """(1,1) saturates z in the simple join (Example 4.8)."""
        r = residual_query(simple_join_query(), {"z"})
        assert r.saturates({"S1": 1, "S2": 1})

    def test_join_packing_not_saturating(self):
        r = residual_query(simple_join_query(), {"z"})
        assert not r.saturates({"S1": Fraction(1, 2), "S2": Fraction(1, 4)})
        assert r.unsaturated_variables({"S1": 0, "S2": 0}) == frozenset({"z"})

    def test_triangle_saturation_from_paper(self):
        """(1,0,1) saturates x1 in C3; (0,1,0) does not (Example 4.8)."""
        r = residual_query(triangle_query(), {"x1"})
        assert r.saturates({"S1": 1, "S2": 0, "S3": 1})
        assert not r.saturates({"S1": 0, "S2": 1, "S3": 0})

    def test_missing_atoms_default_to_zero(self):
        r = residual_query(simple_join_query(), {"z"})
        assert not r.saturates({"S1": Fraction(1, 2)})
        # S1 alone saturates z because z occurs in S1 with weight 1.
        assert r.saturates({"S1": 1})


class TestExtendedQuery:
    def test_adds_one_unary_atom_per_variable(self):
        q = triangle_query()
        ext = extended_query(q)
        assert ext.num_atoms == q.num_atoms + q.num_variables
        assert ext.atom("T_x1").variables == ("x1",)

    def test_head_unchanged(self):
        q = simple_join_query()
        assert extended_query(q).head == q.head

    def test_prefix_collision_rejected(self):
        q = parse_query("q(x) :- T_x(x), S(x)")
        with pytest.raises(QueryError):
            extended_query(q)


class TestPackingSlacks:
    def test_slacks_complete_packing_to_tight(self):
        """Lemma A.5: (u, u') is tight on the extended query."""
        q = triangle_query()
        u = {"S1": Fraction(1, 2), "S2": Fraction(1, 2), "S3": Fraction(1, 2)}
        slacks = packing_slacks(q, u)
        assert all(s == 0 for s in slacks.values())

    def test_slack_values(self):
        q = simple_join_query()
        slacks = packing_slacks(q, {"S1": Fraction(1, 2), "S2": 0})
        assert slacks["x"] == Fraction(1, 2)
        assert slacks["y"] == 1
        assert slacks["z"] == Fraction(1, 2)

    def test_oversubscribed_rejected(self):
        q = simple_join_query()
        with pytest.raises(QueryError):
            packing_slacks(q, {"S1": 1, "S2": Fraction(1, 2)})
