"""Shared fixtures: the paper's running queries and small databases."""

from __future__ import annotations

import pytest

from repro.data import matching_relation, uniform_relation, zipf_relation
from repro.query import (
    chain_query,
    simple_join_query,
    star_query,
    triangle_query,
)
from repro.seq import Database


@pytest.fixture
def join_query():
    """``q(x,y,z) = S1(x,z), S2(y,z)`` (Example 3.3 / Section 4.1)."""
    return simple_join_query()


@pytest.fixture
def triangle():
    """``C3`` (Eq. 4)."""
    return triangle_query()


@pytest.fixture
def chain3():
    """``L3`` (Section 2.2)."""
    return chain_query(3)


@pytest.fixture
def star2():
    return star_query(2)


@pytest.fixture
def uniform_join_db():
    """A skew-free instance of the simple join."""
    return Database.from_relations(
        [
            uniform_relation("S1", 600, 2000, seed=11),
            uniform_relation("S2", 600, 2000, seed=12),
        ]
    )


@pytest.fixture
def matching_join_db():
    """A matching instance (the uniform databases of [4])."""
    return Database.from_relations(
        [
            matching_relation("S1", 500, 2000, seed=21),
            matching_relation("S2", 500, 2000, seed=22),
        ]
    )


@pytest.fixture
def zipf_join_db():
    """A skewed instance of the simple join (Zipf on z)."""
    return Database.from_relations(
        [
            zipf_relation("S1", 600, 1500, skew=1.2, skewed_positions=(1,), seed=31),
            zipf_relation("S2", 600, 1500, skew=1.2, skewed_positions=(1,), seed=32),
        ]
    )


@pytest.fixture
def uniform_triangle_db():
    return Database.from_relations(
        [
            uniform_relation("S1", 400, 250, seed=41),
            uniform_relation("S2", 400, 250, seed=42),
            uniform_relation("S3", 400, 250, seed=43),
        ]
    )
