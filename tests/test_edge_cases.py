"""Edge-case hardening: degenerate inputs every algorithm must survive."""

import pytest

from repro.core import (
    BinHyperCubeAlgorithm,
    BroadcastHyperCube,
    HashJoinAlgorithm,
    HyperCubeAlgorithm,
    SkewAwareJoin,
)
from repro.data import uniform_relation
from repro.mpc import run_one_round
from repro.query import parse_query, simple_join_query
from repro.seq import Database, Relation


def _algorithms(query, p):
    return [
        HyperCubeAlgorithm.with_equal_shares(query, p),
        HashJoinAlgorithm(query, p),
        SkewAwareJoin(query),
        BinHyperCubeAlgorithm(query),
        BroadcastHyperCube(query),
    ]


class TestEmptyRelations:
    def test_one_empty_relation(self):
        query = simple_join_query()
        db = Database.from_relations(
            [
                Relation.build("S1", [], arity=2, domain_size=100),
                uniform_relation("S2", 50, 100, seed=1),
            ]
        )
        for algorithm in _algorithms(query, 4):
            result = run_one_round(algorithm, db, 4, verify=True)
            assert result.is_complete, algorithm.name
            assert result.answer_count == 0

    def test_all_empty_relations(self):
        query = simple_join_query()
        db = Database.from_relations(
            [
                Relation.build("S1", [], arity=2, domain_size=10),
                Relation.build("S2", [], arity=2, domain_size=10),
            ]
        )
        for algorithm in _algorithms(query, 4):
            result = run_one_round(algorithm, db, 4, verify=True)
            assert result.is_complete, algorithm.name
            assert result.report.total_bits == 0


class TestSingleServer:
    def test_p_equals_one(self):
        query = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 60, 200, seed=2),
                uniform_relation("S2", 60, 200, seed=3),
            ]
        )
        for algorithm in _algorithms(query, 1):
            result = run_one_round(algorithm, db, 1, verify=True)
            assert result.is_complete, algorithm.name
            # One server receives everything exactly once.
            assert result.report.replication_rate == pytest.approx(1.0)


class TestTinyDomains:
    def test_domain_of_one_value(self):
        query = simple_join_query()
        db = Database.from_relations(
            [
                Relation.build("S1", [(0, 0)], domain_size=1),
                Relation.build("S2", [(0, 0)], domain_size=1),
            ]
        )
        for algorithm in _algorithms(query, 4):
            result = run_one_round(algorithm, db, 4, verify=True)
            assert result.is_complete, algorithm.name
            assert result.answers == frozenset({(0, 0, 0)})

    def test_single_tuple_relations(self):
        query = simple_join_query()
        db = Database.from_relations(
            [
                Relation.build("S1", [(3, 7)], domain_size=10),
                Relation.build("S2", [(5, 7)], domain_size=10),
            ]
        )
        for algorithm in _algorithms(query, 8):
            result = run_one_round(algorithm, db, 8, verify=True)
            assert result.is_complete, algorithm.name
            assert result.answers == frozenset({(3, 5, 7)})


class TestUnaryAtoms:
    def test_join_with_unary_atom(self):
        query = parse_query("q(x, y) :- S(x), T(x, y)")
        db = Database.from_relations(
            [
                uniform_relation("S", 30, 60, arity=1, seed=4),
                uniform_relation("T", 60, 60, arity=2, seed=5),
            ]
        )
        for algorithm in (
            HyperCubeAlgorithm.with_equal_shares(query, 4),
            BinHyperCubeAlgorithm(query),
            BroadcastHyperCube(query),
            SkewAwareJoin(query),
        ):
            result = run_one_round(algorithm, db, 4, verify=True)
            assert result.is_complete, algorithm.name

    def test_all_unary(self):
        query = parse_query("q(x) :- S(x), T(x)")
        db = Database.from_relations(
            [
                uniform_relation("S", 20, 40, arity=1, seed=6),
                uniform_relation("T", 25, 40, arity=1, seed=7),
            ]
        )
        for algorithm in (
            HyperCubeAlgorithm.with_equal_shares(query, 4),
            BinHyperCubeAlgorithm(query),
            SkewAwareJoin(query),
        ):
            result = run_one_round(algorithm, db, 4, verify=True)
            assert result.is_complete, algorithm.name


class TestPrimeServerCounts:
    """Non-power p must not break share rounding or block tiling."""

    @pytest.mark.parametrize("p", [3, 7, 13, 31])
    def test_skewed_join_prime_p(self, p):
        from repro.data import zipf_relation

        query = simple_join_query()
        db = Database.from_relations(
            [
                zipf_relation("S1", 150, 450, skew=1.4, seed=8),
                zipf_relation("S2", 150, 450, skew=1.4, seed=9),
            ]
        )
        for algorithm in _algorithms(query, p):
            result = run_one_round(algorithm, db, p, verify=True)
            assert result.is_complete, (algorithm.name, p)


ENGINES = ["reference", "batched", "mp"]


class TestEnginesOnDegenerateInputs:
    """Every engine must survive the same degenerate inputs the reference
    does, with identical results."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_p_equals_one(self, engine):
        query = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 40, 150, seed=13),
                uniform_relation("S2", 40, 150, seed=14),
            ]
        )
        for algorithm in _algorithms(query, 1):
            result = run_one_round(algorithm, db, 1, verify=True,
                                   engine=engine)
            assert result.is_complete, (algorithm.name, engine)
            assert result.report.replication_rate == pytest.approx(1.0)
            assert result.report.per_server_tuples == (80,)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_relation(self, engine):
        query = simple_join_query()
        db = Database.from_relations(
            [
                Relation.build("S1", [], arity=2, domain_size=100),
                uniform_relation("S2", 50, 100, seed=1),
            ]
        )
        for algorithm in _algorithms(query, 4):
            result = run_one_round(algorithm, db, 4, verify=True,
                                   engine=engine)
            assert result.is_complete, (algorithm.name, engine)
            assert result.answer_count == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_every_tuple_shares_one_join_value(self, engine):
        """The worst skew: a single z value carries both relations."""
        from repro.data import single_value_relation

        query = simple_join_query()
        m = 40
        db = Database.from_relations(
            [
                single_value_relation("S1", m, 200, seed=15),
                single_value_relation("S2", m, 200, seed=16),
            ]
        )
        for algorithm in _algorithms(query, 8):
            result = run_one_round(algorithm, db, 8, verify=True,
                                   engine=engine)
            assert result.is_complete, (algorithm.name, engine)
            assert result.answer_count == m * m

    @pytest.mark.parametrize("engine", ENGINES)
    def test_share_product_exceeding_p_raises(self, engine):
        """Oversubscribed grids must raise ShareError in every engine."""
        from repro.core import ShareError

        query = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 20, 60, seed=17),
                uniform_relation("S2", 20, 60, seed=18),
            ]
        )
        algorithm = HyperCubeAlgorithm(
            query, {"x": 4, "y": 4, "z": 4}, name="oversubscribed"
        )
        with pytest.raises(ShareError):
            run_one_round(algorithm, db, 4, engine=engine)
