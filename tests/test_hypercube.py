"""Unit tests for the HyperCube algorithm (Section 3.1)."""

import math

import pytest

from repro.core import HyperCubeAlgorithm, ShareError, lower_bound
from repro.data import (
    matching_relation,
    single_value_relation,
    uniform_relation,
)
from repro.mpc import HashFamily, run_one_round
from repro.query import parse_query, simple_join_query, triangle_query
from repro.seq import Database
from repro.stats import SimpleStatistics


class TestConstruction:
    def test_missing_share_rejected(self):
        q = simple_join_query()
        with pytest.raises(ShareError):
            HyperCubeAlgorithm(q, {"x": 2, "y": 2})

    def test_nonpositive_share_rejected(self):
        q = simple_join_query()
        with pytest.raises(ShareError):
            HyperCubeAlgorithm(q, {"x": 2, "y": 0, "z": 2})

    def test_grid_larger_than_p_rejected_at_plan_time(self):
        q = simple_join_query()
        algo = HyperCubeAlgorithm(q, {"x": 4, "y": 4, "z": 4})
        db = Database.from_relations(
            [
                uniform_relation("S1", 10, 32, seed=1),
                uniform_relation("S2", 10, 32, seed=2),
            ]
        )
        with pytest.raises(ShareError):
            algo.routing_plan(db, p=32, hashes=HashFamily(0))

    def test_with_equal_shares(self):
        q = triangle_query()
        algo = HyperCubeAlgorithm.with_equal_shares(q, 27)
        assert algo.shares == {"x1": 3, "x2": 3, "x3": 3}

    def test_with_optimal_shares_join(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 500, 4000, seed=1),
                uniform_relation("S2", 500, 4000, seed=2),
            ]
        )
        algo = HyperCubeAlgorithm.with_optimal_shares(
            q, SimpleStatistics.of(db), 64
        )
        # Equal-size join: the LP pushes everything onto z.
        assert algo.shares["z"] == 64
        assert algo.shares["x"] == algo.shares["y"] == 1


class TestRoutingInvariants:
    def test_tuple_replicated_along_free_dimensions(self):
        q = simple_join_query()
        algo = HyperCubeAlgorithm(q, {"x": 2, "y": 3, "z": 2})
        db = Database.from_relations(
            [
                uniform_relation("S1", 10, 32, seed=1),
                uniform_relation("S2", 10, 32, seed=2),
            ]
        )
        plan = algo.routing_plan(db, p=12, hashes=HashFamily(0))
        # S1 knows x and z, free on y: exactly 3 destinations.
        destinations = list(plan.destinations("S1", (4, 7)))
        assert len(destinations) == 3
        assert len(set(destinations)) == 3
        assert all(0 <= d < 12 for d in destinations)

    def test_fixed_dimension_consistency(self):
        """Potential answers meet at the server of their hashed coordinates."""
        q = simple_join_query()
        algo = HyperCubeAlgorithm(q, {"x": 2, "y": 2, "z": 3})
        db = Database.from_relations(
            [
                uniform_relation("S1", 10, 32, seed=1),
                uniform_relation("S2", 10, 32, seed=2),
            ]
        )
        plan = algo.routing_plan(db, p=12, hashes=HashFamily(1))
        a, b, c = 3, 9, 17  # x, y, z values
        s1_dests = set(plan.destinations("S1", (a, c)))
        s2_dests = set(plan.destinations("S2", (b, c)))
        assert s1_dests & s2_dests  # some server sees both

    def test_describe_exposes_shares(self):
        q = simple_join_query()
        algo = HyperCubeAlgorithm(q, {"x": 1, "y": 1, "z": 4})
        db = Database.from_relations(
            [
                uniform_relation("S1", 10, 32, seed=1),
                uniform_relation("S2", 10, 32, seed=2),
            ]
        )
        plan = algo.routing_plan(db, p=4, hashes=HashFamily(0))
        assert plan.describe()["shares"] == {"x": 1, "y": 1, "z": 4}
        assert plan.describe()["grid_size"] == 4


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 4, 8, 27])
    def test_complete_on_uniform_join(self, p):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 300, 900, seed=3),
                uniform_relation("S2", 300, 900, seed=4),
            ]
        )
        algo = HyperCubeAlgorithm.with_equal_shares(q, p)
        result = run_one_round(algo, db, p, verify=True)
        assert result.is_complete

    def test_complete_on_triangles(self):
        q = triangle_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 200, 120, seed=5),
                uniform_relation("S2", 200, 120, seed=6),
                uniform_relation("S3", 200, 120, seed=7),
            ]
        )
        algo = HyperCubeAlgorithm.with_equal_shares(q, 27)
        result = run_one_round(algo, db, 27, verify=True)
        assert result.is_complete

    def test_complete_under_adversarial_skew(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                single_value_relation("S1", 80, 200, seed=8),
                single_value_relation("S2", 80, 200, seed=9),
            ]
        )
        algo = HyperCubeAlgorithm.with_equal_shares(q, 8)
        result = run_one_round(algo, db, 8, verify=True)
        assert result.is_complete

    def test_complete_with_lp_shares_many_seeds(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 200, 600, seed=10),
                uniform_relation("S2", 200, 600, seed=11),
            ]
        )
        algo = HyperCubeAlgorithm.with_optimal_shares(
            q, SimpleStatistics.of(db), 16
        )
        for seed in range(5):
            assert run_one_round(algo, db, 16, seed=seed, verify=True).is_complete

    def test_repeated_variable_atom(self):
        from repro.seq import Relation

        q = parse_query("q(x, y) :- S(x, x), T(x, y)")
        db = Database.from_relations(
            [
                Relation.build("S", [(0, 0), (1, 1), (1, 2)], domain_size=4),
                Relation.build("T", [(0, 3), (1, 3)], domain_size=4),
            ]
        )
        algo = HyperCubeAlgorithm(q, {"x": 2, "y": 2})
        result = run_one_round(algo, db, 4, verify=True)
        assert result.is_complete


class TestLoadPredictions:
    def test_expected_load_formula(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 512, 4096, seed=12),
                uniform_relation("S2", 512, 4096, seed=13),
            ]
        )
        stats = SimpleStatistics.of(db)
        algo = HyperCubeAlgorithm(q, {"x": 1, "y": 1, "z": 16})
        expected = algo.expected_max_load_bits(stats)
        assert math.isclose(expected, stats.bits("S1") / 16)

    def test_worst_case_load_formula(self):
        """Corollary 3.2(ii): max_j M_j / min_(i in S_j) p_i."""
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 512, 4096, seed=12),
                uniform_relation("S2", 512, 4096, seed=13),
            ]
        )
        stats = SimpleStatistics.of(db)
        algo = HyperCubeAlgorithm(q, {"x": 2, "y": 2, "z": 4})
        assert math.isclose(
            algo.worst_case_load_bits(stats), stats.bits("S1") / 2
        )

    def test_skew_free_load_tracks_lp_bound(self):
        """Measured load within a polylog factor of L_upper (Theorem 3.4)."""
        q = simple_join_query()
        db = Database.from_relations(
            [
                matching_relation("S1", 2000, 8000, seed=14),
                matching_relation("S2", 2000, 8000, seed=15),
            ]
        )
        stats = SimpleStatistics.of(db)
        p = 16
        algo = HyperCubeAlgorithm.with_optimal_shares(q, stats, p)
        result = run_one_round(algo, db, p, compute_answers=False)
        bound = lower_bound(q, stats.bits_vector(q), p).bits
        assert result.max_load_bits >= 0.5 * bound  # can't beat the bound much
        assert result.max_load_bits <= 8 * bound  # and stays close to it
