"""Execute the doctest examples embedded in module docstrings, so the
documentation can never drift from the code."""

import doctest

import repro.query.parser
import repro.query.residual


def test_parser_doctests():
    results = doctest.testmod(repro.query.parser)
    assert results.failed == 0
    assert results.attempted > 0


def test_residual_doctests():
    results = doctest.testmod(repro.query.residual)
    assert results.failed == 0
    assert results.attempted > 0


def test_package_quickstart_docstring_runs():
    """The __init__ docstring's quickstart must actually work."""
    from repro import (
        Database,
        HyperCubeAlgorithm,
        SimpleStatistics,
        lower_bound,
        parse_query,
        run_one_round,
    )
    from repro.data import uniform_relation

    q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
    db = Database.from_relations(
        [
            uniform_relation("S1", 512, 10_000, seed=1),
            uniform_relation("S2", 512, 10_000, seed=2),
        ]
    )
    stats = SimpleStatistics.of(db)
    algo = HyperCubeAlgorithm.with_optimal_shares(q, stats, p=16)
    result = run_one_round(algo, db, p=16, verify=True)
    assert result.is_complete
    assert lower_bound(q, stats.bits_vector(q), 16).bits > 0
