"""Unit tests for the exact rational simplex."""

from fractions import Fraction

import pytest

from repro.lp import (
    INFEASIBLE,
    OPTIMAL,
    UNBOUNDED,
    LPError,
    maximize,
    minimize,
)


class TestMaximize:
    def test_textbook_lp(self):
        result = maximize([3, 5], [[1, 0], [0, 2], [3, 2]], [4, 12, 18])
        assert result.is_optimal
        assert result.objective == 36
        assert result.x == (Fraction(2), Fraction(6))

    def test_degenerate_ties_terminate(self):
        """Bland's rule must survive degeneracy."""
        result = maximize(
            [10, -57, -9, -24],
            [
                [Fraction(1, 2), Fraction(-11, 2), Fraction(-5, 2), 9],
                [Fraction(1, 2), Fraction(-3, 2), Fraction(-1, 2), 1],
                [1, 0, 0, 0],
            ],
            [0, 0, 1],
        )
        assert result.is_optimal
        assert result.objective == 1

    def test_unbounded(self):
        result = maximize([1, 1], [[1, -1]], [1])
        assert result.status == UNBOUNDED
        assert result.objective is None

    def test_infeasible(self):
        # x >= 5 and x <= 1
        result = maximize([1], [[-1], [1]], [-5, 1])
        assert result.status == INFEASIBLE

    def test_negative_rhs_feasible(self):
        # x >= 2, x <= 7, maximize -x  => x = 2
        result = maximize([-1], [[-1], [1]], [-2, 7])
        assert result.is_optimal
        assert result.x == (Fraction(2),)

    def test_equality_via_two_inequalities(self):
        # x + y = 4 encoded as <= and >=; maximize x with x <= 3.
        result = maximize(
            [1, 0], [[1, 1], [-1, -1], [1, 0]], [4, -4, 3]
        )
        assert result.is_optimal
        assert result.objective == 3
        assert result.x == (Fraction(3), Fraction(1))

    def test_zero_objective(self):
        result = maximize([0, 0], [[1, 1]], [5])
        assert result.is_optimal
        assert result.objective == 0

    def test_no_constraints_zero_is_optimal_for_negative_costs(self):
        result = maximize([-1, -2], [], [])
        assert result.is_optimal
        assert result.x == (Fraction(0), Fraction(0))

    def test_no_constraints_unbounded_for_positive_costs(self):
        result = maximize([1], [], [])
        assert result.status == UNBOUNDED

    def test_exactness_no_float_drift(self):
        """1/3-style coefficients stay exact."""
        third = Fraction(1, 3)
        result = maximize([1, 1], [[third, third]], [1])
        assert result.objective == 3

    def test_shape_validation(self):
        with pytest.raises(LPError):
            maximize([1], [[1, 2]], [1])
        with pytest.raises(LPError):
            maximize([1], [[1]], [1, 2])


class TestMinimize:
    def test_simple(self):
        # minimize x + y subject to x + y >= 3
        result = minimize([1, 1], [[-1, -1]], [-3])
        assert result.is_optimal
        assert result.objective == 3

    def test_vertex_cover_triangle(self):
        """tau* of the triangle: min sum v_i with v_i + v_j >= 1 per edge."""
        rows = [[-1, -1, 0], [0, -1, -1], [-1, 0, -1]]
        result = minimize([1, 1, 1], rows, [-1, -1, -1])
        assert result.is_optimal
        assert result.objective == Fraction(3, 2)

    def test_infeasible_propagates(self):
        result = minimize([1], [[1], [-1]], [1, -5])
        assert result.status == INFEASIBLE


class TestDegenerateArtificials:
    """Regression: an artificial left (degenerately) basic after phase 1
    must not re-inflate during phase 2 and mask a >= constraint."""

    def test_degenerate_artificial_cannot_reinflate(self):
        # maximize -x s.t. 2x <= 1 and x >= 1/2 (plus vacuous 0 <= 0 rows):
        # the unique feasible point is x = 1/2.  The buggy solver returned
        # x = 0 (objective 0), violating -4x <= -2.
        result = maximize([-1], [[0], [0], [0], [2], [-4]], [0, 0, 0, 1, -2])
        assert result.is_optimal
        assert result.x == (Fraction(1, 2),)
        assert result.objective == Fraction(-1, 2)

    def test_redundant_negated_row_dropped(self):
        # x >= 0 stated as -x <= 0 twice plus an equality-like pair; the
        # duplicate rows leave all-zero artificial rows behind.
        result = maximize([1], [[1], [1], [-1], [-1]], [2, 2, 0, 0])
        assert result.is_optimal
        assert result.objective == 2

    def test_tight_equality_pair(self):
        # x + y <= 3 and x + y >= 3 pin the sum; maximize x.
        result = maximize([1, 0], [[1, 1], [-1, -1]], [3, -3])
        assert result.is_optimal
        assert result.objective == 3
        assert sum(result.x) == 3
