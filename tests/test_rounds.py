"""The multi-round subsystem: protocol, execution parity, planner, curve.

The golden numbers below pin the skewed-triangle instance the acceptance
criteria name: the two-round triangle must beat every one-round
algorithm's predicted *and* measured max-load on it, run bit-identically
on all three engines, and be the round-aware planner's pick at
``max_rounds=2`` — while a cross-skewed instance (every pairwise join
huge) must still fall to a one-round plan.
"""

import pytest

from repro.api import Sweep
from repro.api.planner import PlanError, plan, autoplan
from repro.api.records import RecordError, RunRecord, validate_record
from repro.data.generators import planted_heavy_relation, uniform_relation
from repro.mpc.engine.base import available_engines
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.parser import parse_query
from repro.rounds import (
    MultiRoundAlgorithm,
    RoundComposedJoin,
    RoundsError,
    TwoRoundTriangle,
    estimate_join_size,
    intermediate_name,
    run_rounds,
    select_one_round,
    tradeoff,
)
from repro.seq.join import evaluate
from repro.seq.relation import Database, Relation
from repro.stats.heavy_hitters import HeavyHitterStatistics

TRIANGLE_TEXT = "q(x, y, z) :- R(x, y), S(y, z), T(z, x)"

# The pinned skewed triangle: x is heavy in R (first position) and in T
# (second position), so every one-round algorithm pays for the skew
# while the two-round plan joins the small R ⋈ S first.
M, N, P, SEED = 300, 1200, 8, 0

#: max per-server bits of each round on the instance above — identical
#: across engines by construction, so one engine drifting is a bug.
GOLDEN_ROUND_LOADS = (1759.3568147652916, 1278.6023363119853)
GOLDEN_ANSWERS = 7


def skewed_triangle_db() -> Database:
    return Database.from_relations([
        planted_heavy_relation("R", M, N, heavy_values=[0],
                               heavy_fraction=0.5, heavy_position=0, seed=1),
        uniform_relation("S", M, N, seed=2),
        planted_heavy_relation("T", M, N, heavy_values=[0],
                               heavy_fraction=0.5, heavy_position=1, seed=3),
    ])


def cross_heavy_triangle_db() -> Database:
    """Every pairwise join is quadratic: each relation is a star around
    value 0 on *both* positions, so no binary-join order is cheap and
    the one-round HyperCube must win the combined ranking."""
    half = M // 2
    star = {(0, v) for v in range(1, half + 1)}
    star |= {(u, 0) for u in range(1, half + 1)}
    return Database.from_relations([
        Relation.build(name, star, domain_size=N) for name in "RST"
    ])


def triangle_query() -> ConjunctiveQuery:
    return parse_query(TRIANGLE_TEXT)


class TestProtocol:
    def test_intermediate_name_avoids_clashes(self):
        query = triangle_query()
        assert intermediate_name(query, 0) == "_J1"
        clash = ConjunctiveQuery(
            atoms=(Atom("_J1", ("x", "y")), Atom("S", ("y", "z")),
                   Atom("T", ("z", "x"))),
        )
        assert intermediate_name(clash, 0).startswith("__J1")

    def test_triangle_applicability(self):
        assert TwoRoundTriangle.applicability(triangle_query()) is None
        two_atoms = parse_query("q(x, y, z) :- R(x, y), S(y, z)")
        assert TwoRoundTriangle.applicability(two_atoms) is not None
        star = parse_query("q(x, y, z, w) :- R(x, y), S(y, z), T(y, w)")
        assert TwoRoundTriangle.applicability(star) is not None
        with pytest.raises(RoundsError):
            TwoRoundTriangle(two_atoms)

    def test_composed_needs_three_connected_atoms(self):
        assert RoundComposedJoin.applicability(
            parse_query("q(x, y) :- R(x, y), S(x, y)")) is not None
        disconnected = parse_query("q(x, y, u, v) :- R(x, y), S(u, v), T(u, v)")
        assert "disconnected" in RoundComposedJoin.applicability(disconnected)

    def test_round_plan_shape(self):
        algo = TwoRoundTriangle(triangle_query())
        specs = algo.round_plan()
        assert [spec.index for spec in specs] == [0, 1]
        assert not specs[0].is_final and specs[1].is_final
        assert specs[0].output == "_J1"
        # The final round's head is the original query's head order.
        assert specs[1].query.head == triangle_query().variables
        assert algo.round_count(triangle_query()) == 2
        assert RoundComposedJoin.round_count(
            parse_query("q(a, b, c, d) :- R(a, b), S(b, c), T(c, d)")) == 2

    def test_estimate_join_size_caps_at_cross_product(self):
        query = triangle_query()
        stats = HeavyHitterStatistics.of(query, skewed_triangle_db(), P)
        estimate = estimate_join_size(
            "R", ("x", "y"), stats.simple.cardinality("R"),
            query.atoms[1], stats.simple, N, hh=stats,
        )
        assert 0.0 <= estimate <= M * M

    def test_select_one_round_is_deterministic(self):
        query = triangle_query()
        stats = HeavyHitterStatistics.of(query, skewed_triangle_db(), P)
        first = select_one_round(query, stats, P)
        second = select_one_round(query, stats, P)
        assert first[1] == second[1]
        assert first[2] == pytest.approx(second[2])


class TestExecution:
    def test_engine_parity_with_golden_loads(self):
        """All three engines replay the same round sequence bit for bit."""
        db = skewed_triangle_db()
        algo = TwoRoundTriangle(
            triangle_query(),
            stats=HeavyHitterStatistics.of(triangle_query(), db, P),
        )
        results = {
            engine: run_rounds(algo, db, P, seed=SEED, verify=True,
                               engine=engine)
            for engine in available_engines()
        }
        baseline = results["reference"]
        assert baseline.round_load_bits == pytest.approx(GOLDEN_ROUND_LOADS)
        assert baseline.answer_count == GOLDEN_ANSWERS
        for result in results.values():
            assert result.is_complete is True
            assert result.answers == baseline.answers
            assert result.round_count == 2
            for mine, theirs in zip(result.rounds, baseline.rounds):
                assert mine.report.per_server_bits == pytest.approx(
                    theirs.report.per_server_bits)
                assert (mine.report.per_server_tuples
                        == theirs.report.per_server_tuples)

    def test_two_round_beats_one_round_predicted_and_measured(self):
        db = skewed_triangle_db()
        query = triangle_query()
        stats = HeavyHitterStatistics.of(query, db, P)
        one_round_plan = plan(query, stats, P, max_rounds=1)
        best_one = one_round_plan.chosen
        two = TwoRoundTriangle(query, stats=stats)
        assert two.predicted_load_bits(stats, P) < best_one.predicted_load_bits

        two_result = run_rounds(two, db, P, seed=SEED, engine="batched")
        one_result_loads = []
        for prediction in one_round_plan.applicable:
            algorithm = one_round_plan.instantiate(prediction.key)
            from repro.mpc.execution import run_one_round

            result = run_one_round(algorithm, db, P, seed=SEED,
                                   engine="batched", compute_answers=False)
            one_result_loads.append(result.max_load_bits)
        assert two_result.max_load_bits < min(one_result_loads)

    def test_details_and_derived_properties(self):
        db = skewed_triangle_db()
        algo = TwoRoundTriangle(
            triangle_query(),
            stats=HeavyHitterStatistics.of(triangle_query(), db, P),
        )
        result = run_rounds(algo, db, P, seed=SEED, engine="batched")
        assert result.details["round_algorithms"] == ("hypercube-lp",
                                                      "skew-join")
        assert result.max_load_bits == max(result.round_load_bits)
        assert result.total_bits == pytest.approx(
            sum(r.report.total_bits for r in result.rounds))
        assert result.replication_rate > 0
        assert "two-round-triangle" in result.describe()

    def test_verify_against_sequential_oracle(self):
        db = skewed_triangle_db()
        algo = TwoRoundTriangle(
            triangle_query(),
            stats=HeavyHitterStatistics.of(triangle_query(), db, P),
        )
        result = run_rounds(algo, db, P, seed=SEED, verify=True,
                            engine="batched")
        assert result.answers == evaluate(triangle_query(), db)

    def test_composed_join_on_four_atom_chain(self):
        query = parse_query(
            "q(a, b, c, d, e) :- R(a, b), S(b, c), T(c, d), U(d, e)")
        db = Database.from_relations([
            uniform_relation(name, 120, 600, seed=i)
            for i, name in enumerate("RSTU")
        ])
        algo = RoundComposedJoin(
            query, stats=HeavyHitterStatistics.of(query, db, 4))
        assert algo.round_count(query) == 3
        result = run_rounds(algo, db, 4, seed=SEED, verify=True,
                            engine="batched")
        assert result.is_complete is True
        assert result.round_count == 3
        assert len(result.round_load_bits) == 3


class TestPlanner:
    def test_budget_of_one_excludes_multi_round(self):
        query = triangle_query()
        stats = HeavyHitterStatistics.of(query, skewed_triangle_db(), P)
        one = plan(query, stats, P)
        skipped = {pr.key: pr.reason for pr in one.predictions
                   if not pr.applicable}
        assert "max_rounds=1" in skipped["two-round-triangle"]
        assert one.chosen.rounds == 1

    def test_autoplan_selects_two_round_on_skew(self):
        db = skewed_triangle_db()
        algo = autoplan(TRIANGLE_TEXT, db=db, p=P, max_rounds=2)
        assert isinstance(algo, MultiRoundAlgorithm)
        assert algo.name == "two-round-triangle"

    def test_autoplan_keeps_one_round_where_it_wins(self):
        db = cross_heavy_triangle_db()
        algo = autoplan(TRIANGLE_TEXT, db=db, p=P, max_rounds=2)
        assert not isinstance(algo, MultiRoundAlgorithm)

    def test_combined_scale_and_dict_round_trip(self):
        query = triangle_query()
        stats = HeavyHitterStatistics.of(query, skewed_triangle_db(), P)
        query_plan = plan(query, stats, P, max_rounds=2)
        chosen = query_plan.chosen
        assert chosen.rounds == 2
        assert chosen.cost_bits == pytest.approx(
            chosen.predicted_load_bits * 2)
        assert len(chosen.round_loads) == 2
        document = query_plan.to_dict()
        assert document["max_rounds"] == 2
        by_key = {row["key"]: row for row in document["predictions"]}
        assert by_key["two-round-triangle"]["rounds"] == 2
        assert by_key["hypercube-lp"]["rounds"] == 1
        assert "(2 rounds)" in query_plan.explain()

    def test_multi_round_lower_bound_attached(self):
        query = triangle_query()
        stats = HeavyHitterStatistics.of(query, skewed_triangle_db(), P)
        query_plan = plan(query, stats, P, max_rounds=2)
        two = query_plan.prediction("two-round-triangle")
        one = query_plan.prediction("hypercube-lp")
        # The repartition bound max_j M_j / p, not the one-round bound.
        expected = max(stats.simple.bits(a.name) for a in query.atoms) / P
        assert two.lower_bound_bits == pytest.approx(expected)
        assert one.lower_bound_bits == pytest.approx(
            query_plan.lower_bound_bits)

    def test_bad_budget_rejected(self):
        query = triangle_query()
        stats = HeavyHitterStatistics.of(query, skewed_triangle_db(), P)
        with pytest.raises(PlanError, match="max_rounds"):
            plan(query, stats, P, max_rounds=0)


class TestTradeoff:
    def test_curve_on_the_skewed_triangle(self):
        db = skewed_triangle_db()
        points = tradeoff(TRIANGLE_TEXT, P, rounds=3, db=db)
        assert [point.rounds for point in points] == [1, 2, 3]
        one, two, three = points
        assert one.key == "hypercube-lp"
        assert two.key == "two-round-triangle"
        assert three.key is None and three.cost_bits is None
        assert two.predicted_load_bits < one.predicted_load_bits
        assert two.round_loads is not None and len(two.round_loads) == 2
        payload = two.to_dict()
        assert payload["cost_bits"] == pytest.approx(
            two.predicted_load_bits * 2)

    def test_rounds_must_be_positive(self):
        with pytest.raises(ValueError, match="rounds"):
            tradeoff(TRIANGLE_TEXT, P, rounds=0, db=skewed_triangle_db())


class TestRecordsAndSweep:
    def test_record_round_fields_validate(self):
        record = RunRecord(
            query=TRIANGLE_TEXT, workload="zipf", m=100, skew=1.0, seed=0,
            domain=400, p=8, algorithm="two-round-triangle",
            algorithm_name="two-round-triangle", engine="batched",
            predicted_load_bits=10.0, lower_bound_bits=5.0,
            max_load_bits=12.0, max_load_tuples=3, replication_rate=1.0,
            balance=1.0, wall_seconds=0.1, rounds=2,
            round_load_bits=(12.0, 8.0),
        )
        payload = record.to_dict()
        validate_record(payload)
        assert RunRecord.from_dict(payload).rounds == 2
        payload["rounds"] = 0
        with pytest.raises(RecordError, match="rounds"):
            validate_record(payload)
        payload["rounds"] = 2
        payload["round_load_bits"] = [12.0, "eight"]
        with pytest.raises(RecordError, match="round_load_bits"):
            validate_record(payload)

    def test_sweep_rounds_axis(self):
        result = Sweep(
            query=TRIANGLE_TEXT, workload="zipf", m_values=(120,),
            skews=(1.5,), seeds=(0,), p_values=(4,), algorithms="auto",
            rounds=(1, 2), verify=True,
        ).run()
        by_budget = {record.rounds: record for record in result}
        assert set(by_budget) == {1, 2}
        one, two = by_budget[1], by_budget[2]
        assert one.round_load_bits is None
        assert len(two.round_load_bits) == 2
        assert two.max_load_bits == pytest.approx(max(two.round_load_bits))
        assert one.complete is True and two.complete is True
        assert one.answer_count == two.answer_count

    def test_explicit_multi_round_key_opts_into_its_rounds(self):
        result = Sweep(
            query=TRIANGLE_TEXT, workload="zipf", m_values=(120,),
            skews=(1.0,), seeds=(0,), p_values=(4,),
            algorithms=("hypercube-lp", "two-round-triangle"),
        ).run()
        by_key = {record.algorithm: record for record in result}
        assert by_key["hypercube-lp"].rounds == 1
        assert by_key["two-round-triangle"].rounds == 2
