"""Deep checks of the residual-bound internals: the weighted support sum
against brute force, and the Section 4.2 duality between the bin LP (11)
and the residual bound of Theorem 4.7."""

import itertools
import math
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import residual_load, residual_lower_bound, solve_bin_lp
from repro.core.residual_bounds import _weighted_support_sum
from repro.data import single_value_relation
from repro.query import simple_join_query
from repro.seq import Database
from repro.stats import BinCombination, DegreeStatistics


# ---------------------------------------------------------------------------
# the weighted join-sum vs brute force
# ---------------------------------------------------------------------------
def _brute_force_sum(factors, domain):
    """Enumerate all joint assignments over the given domain."""
    variables = sorted({v for vars_, _ in factors for v in vars_})
    total = 0.0
    for values in itertools.product(range(domain), repeat=len(variables)):
        binding = dict(zip(variables, values))
        product = 1.0
        for vars_, table in factors:
            key = tuple(binding[v] for v in vars_)
            product *= table.get(key, 0.0)
        total += product
    return total


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_weighted_support_sum_matches_brute_force(data):
    domain = 4
    num_factors = data.draw(st.integers(1, 3))
    all_vars = ["u", "v", "w"]
    factors = []
    for _ in range(num_factors):
        arity = data.draw(st.integers(1, 2))
        vars_ = tuple(
            data.draw(st.permutations(all_vars))[:arity]
        )
        table = data.draw(
            st.dictionaries(
                st.tuples(*[st.integers(0, domain - 1)] * arity),
                st.floats(0.1, 5.0, allow_nan=False),
                min_size=0,
                max_size=8,
            )
        )
        factors.append((vars_, table))
    expected = _brute_force_sum(factors, domain)
    measured = _weighted_support_sum(factors)
    assert math.isclose(measured, expected, rel_tol=1e-9, abs_tol=1e-9)


def test_weighted_support_sum_empty_factors():
    assert _weighted_support_sum([]) == 1.0


def test_weighted_support_sum_disjoint_variables_multiplies():
    factors = [
        (("u",), {(0,): 2.0, (1,): 3.0}),
        (("v",), {(0,): 5.0}),
    ]
    assert math.isclose(_weighted_support_sum(factors), (2 + 3) * 5)


# ---------------------------------------------------------------------------
# Section 4.2 duality: p^lambda(B) vs the Theorem 4.7 bound
# ---------------------------------------------------------------------------
class TestBinLPDuality:
    def test_single_heavy_value_join(self):
        """For the all-on-one-value join, the bin combination that owns the
        heavy value has p^lambda(B) equal (up to rounding) to the residual
        bound sqrt(M1 M2 / p) — the duality the end of Section 4.2 invokes."""
        q = simple_join_query()
        m = 128
        db = Database.from_relations(
            [
                single_value_relation("S1", m, 512, seed=1),
                single_value_relation("S2", m, 512, seed=2),
            ]
        )
        p = 16
        bits = {name: db.relation(name).bits for name in ("S1", "S2")}

        # The bin combination owning z=0: both relations in bin 1 (beta=0),
        # a single assignment (alpha = 0).
        combo = BinCombination.build(
            {"z"}, {"S1": Fraction(0), "S2": Fraction(0)}
        )
        lp = solve_bin_lp(q, combo, Fraction(0), bits, p)
        lp_load = float(p) ** float(lp.lam)

        stats = DegreeStatistics.of(q, db, {"z"})
        bound = residual_lower_bound(q, stats, p)
        assert bound is not None
        # p^lambda(B) ~ sqrt(M1 M2 / p): equality up to LP rational rounding.
        assert math.isclose(lp_load, bound.bits, rel_tol=1e-3)

    def test_lp_never_below_residual_bound(self):
        """The residual bound is a *lower* bound; the per-combination LP
        load (the algorithm's budget for those tuples) cannot beat it."""
        q = simple_join_query()
        db = Database.from_relations(
            [
                single_value_relation("S1", 200, 512, seed=3),
                single_value_relation("S2", 50, 512, seed=4),
            ]
        )
        p = 8
        bits = {name: db.relation(name).bits for name in ("S1", "S2")}
        combo = BinCombination.build(
            {"z"}, {"S1": Fraction(0), "S2": Fraction(0)}
        )
        lp = solve_bin_lp(q, combo, Fraction(0), bits, p)
        stats = DegreeStatistics.of(q, db, {"z"})
        bound = residual_lower_bound(q, stats, p)
        assert float(p) ** float(lp.lam) >= bound.bits * 0.99

    def test_residual_load_uses_saturating_packing(self):
        """The witness packing of the single-value join is (1, 1): the
        cartesian-product bound, exactly Section 4.1's L12 term."""
        q = simple_join_query()
        db = Database.from_relations(
            [
                single_value_relation("S1", 64, 256, seed=5),
                single_value_relation("S2", 64, 256, seed=6),
            ]
        )
        stats = DegreeStatistics.of(q, db, {"z"})
        bound = residual_lower_bound(q, stats, 16)
        assert bound.packing == {"S1": Fraction(1), "S2": Fraction(1)}
        direct = residual_load(q, stats, bound.packing, 16)
        assert math.isclose(direct, bound.bits, rel_tol=1e-12)
