"""Tests for the command-line interface."""

import json

import pytest

from repro.api import validate_record
from repro.cli import main


class TestPackingsCommand:
    def test_triangle(self, capsys):
        assert main(["packings", "C3(x,y,z) :- R(x,y), S(y,z), T(z,x)"]) == 0
        out = capsys.readouterr().out
        assert "tau*" in out and "3/2" in out
        assert "4 non-dominated vertices" in out

    def test_bad_query_errors(self):
        with pytest.raises(Exception):
            main(["packings", "not a query"])


class TestBoundsCommand:
    def test_join_bounds(self, capsys):
        assert main([
            "bounds", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--cardinality", "S1=4096", "--cardinality", "S2=1024",
            "--domain", "100000", "-p", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "optimal load" in out
        assert "share exponents" in out
        assert "space exponent" in out

    def test_missing_cardinality_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["bounds", "q(x) :- S(x)", "-p", "4"])
        assert "missing cardinalities" in str(excinfo.value)

    def test_plan_missing_cardinality_is_a_clean_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "plan", "q(x,y,z) :- S1(x,z), S2(y,z)",
                "--cardinality", "S1=100", "-p", "8",
            ])
        assert "missing cardinalities" in str(excinfo.value)

    def test_malformed_cardinality(self):
        with pytest.raises(SystemExit):
            main(["bounds", "q(x) :- S(x)", "--cardinality", "S1"])

    def test_non_integer_cardinality_is_a_clean_error(self):
        """A bad count exits with a message, not a ValueError traceback."""
        with pytest.raises(SystemExit) as excinfo:
            main(["bounds", "q(x) :- S(x)", "--cardinality", "S=many"])
        assert "integer" in str(excinfo.value)
        assert "many" in str(excinfo.value)

    def test_float_cardinality_rejected(self):
        with pytest.raises(SystemExit):
            main(["bounds", "q(x) :- S(x)", "--cardinality", "S=12.5"])


class TestRaceCommand:
    def test_join_race_with_verification(self, capsys):
        assert main([
            "race", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--workload", "zipf", "--skew", "1.2",
            "-m", "200", "-p", "8", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "skew-join" in out
        assert "hashjoin" in out
        assert "False" not in out  # every algorithm complete

    def test_triangle_race_skips_binary_join_algorithms(self, capsys):
        assert main([
            "race", "C3(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "--workload", "uniform", "-m", "150", "-p", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "hypercube-lp" in out
        # skew-join is declared inapplicable (3 atoms): it must not appear
        # as a result row, only in the not-applicable footer with a reason.
        table_rows = [
            line for line in out.splitlines()
            if line.strip().startswith("skew-join")
        ]
        assert table_rows == []
        assert "not applicable:" in out
        assert "skew-join (the skew-aware join handles exactly two atoms" in out

    def test_worst_case_workload(self, capsys):
        assert main([
            "race", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--workload", "worst", "-m", "80", "-p", "8", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "False" not in out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main([
                "race", "q(x) :- S(x)", "--workload", "nope",
            ])


class TestEngineFlag:
    def test_engine_flag_in_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["race", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--engine" in out
        assert "reference" in out and "batched" in out and "mp" in out

    @pytest.mark.parametrize("engine", ["reference", "batched", "mp"])
    def test_race_with_each_engine(self, capsys, engine):
        assert main([
            "race", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--workload", "zipf", "--skew", "1.2",
            "-m", "120", "-p", "8", "--verify", "--engine", engine,
        ]) == 0
        out = capsys.readouterr().out
        assert f"engine={engine}" in out
        assert "False" not in out  # every algorithm complete

    def test_engines_report_identical_loads(self, capsys):
        """The race table (loads, replication) is engine-independent."""
        tables = {}
        for engine in ("reference", "batched"):
            assert main([
                "race", "q(x,y,z) :- S1(x,z), S2(y,z)",
                "--workload", "worst", "-m", "60", "-p", "8",
                "--engine", engine,
            ]) == 0
            out = capsys.readouterr().out
            tables[engine] = [
                line for line in out.splitlines() if "engine=" not in line
            ]
        assert tables["reference"] == tables["batched"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            main([
                "race", "q(x) :- S(x)", "--engine", "warp-drive",
            ])


class TestPlanCommand:
    def test_plan_from_workload(self, capsys):
        assert main([
            "plan", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--workload", "zipf", "--skew", "1.5", "-m", "200", "-p", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3.6 lower bound" in out
        assert "skew-join" in out
        assert "not applicable" in out  # cartesian-grid on a join query

    def test_plan_from_cardinalities(self, capsys):
        assert main([
            "plan", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--cardinality", "S1=4096", "--cardinality", "S2=1024",
            "--domain", "100000", "-p", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "declared cardinalities" in out
        assert "predicted" in out

    def test_plan_json(self, capsys):
        assert main([
            "plan", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--workload", "uniform", "-m", "150", "-p", "8", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["p"] == 8
        assert payload["lower_bound_bits"] > 0
        keys = {entry["key"] for entry in payload["predictions"]}
        assert "hypercube-lp" in keys
        chosen = payload["chosen"]
        applicable = [
            entry for entry in payload["predictions"] if entry["applicable"]
        ]
        best = min(applicable, key=lambda e: e["predicted_load_bits"])
        assert chosen == best["key"]


class TestSweepCommand:
    GRID = [
        "sweep", "q(x,y,z) :- S1(x,z), S2(y,z)",
        "--workload", "zipf", "--skew", "0.0,1.2", "--p", "4,8",
        "--m", "100",
    ]

    def test_sweep_json_records_validate(self, capsys):
        """A >= 24-cell p x skew x algorithm grid emits schema-valid JSON."""
        assert main(self.GRID + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # 2 p-values x 2 skews x 6 applicable algorithms = 24 cells.
        assert len(payload) >= 24
        for entry in payload:
            validate_record(entry)
            assert entry["engine"] == "batched"
            assert entry["predicted_load_bits"] > 0
            assert entry["max_load_bits"] > 0
            assert entry["lower_bound_bits"] > 0
            assert entry["optimality_gap"] >= 1.0

    def test_sweep_csv(self, capsys):
        assert main(self.GRID + ["--format", "csv"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert lines[0].startswith("query,workload,m,skew")
        assert len(lines) >= 25  # header + 24 cells

    def test_sweep_auto_picks_one_algorithm_per_cell(self, capsys):
        assert main([
            "sweep", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--workload", "zipf", "--skew", "0.0", "--p", "4",
            "--m", "80", "--algorithms", "auto", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1

    def test_sweep_output_file(self, capsys, tmp_path):
        target = tmp_path / "records.json"
        assert main([
            "sweep", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--workload", "uniform", "--skew", "0.0", "--p", "4",
            "--m", "60", "--algorithms", "hypercube-lp",
            "--format", "json", "--output", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert len(payload) == 1
        validate_record(payload[0])

    def test_sweep_rejects_bad_grid(self):
        with pytest.raises(SystemExit):
            main([
                "sweep", "q(x) :- S(x)", "--p", "four",
            ])

    def test_sweep_rejects_inapplicable_algorithm(self):
        with pytest.raises(SystemExit):
            main([
                "sweep", "C3(x,y,z) :- R(x,y), S(y,z), T(z,x)",
                "--algorithms", "skew-join",
            ])

    def test_sweep_stats_axis(self, capsys):
        assert main([
            "sweep", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--workload", "zipf", "--skew", "1.2", "--p", "8",
            "--m", "100", "--algorithms", "skew-join",
            "--stats", "exact,sketch", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(entry["stats"] for entry in payload) == [
            "exact", "sketch",
        ]
        for entry in payload:
            validate_record(entry)
            assert entry["max_load_bits"] > 0

    def test_sweep_rejects_unknown_stats_method(self):
        with pytest.raises(SystemExit):
            main(self.GRID + ["--stats", "psychic"])


class TestStatsCommand:
    WORKLOAD = [
        "stats", "q(x,y,z) :- S1(x,z), S2(y,z)",
        "--workload", "zipf", "--skew", "1.5", "-m", "400", "-p", "8",
    ]

    def test_fidelity_report(self, capsys):
        assert main(self.WORKLOAD) == 0
        out = capsys.readouterr().out
        assert "recall 1.000" in out
        assert "statistics pass" in out
        assert "WARNING" not in out

    def test_json_report(self, capsys):
        assert main(self.WORKLOAD + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recall"] == 1.0
        assert payload["false_negatives"] == 0
        assert payload["sketch"]["width"] == 2048
        assert payload["sketch"]["updates"] > 0
        assert payload["pairs"]

    def test_undersized_sketch_exits_nonzero(self, capsys):
        """A sketch far too narrow for the workload misses hitters and
        reports it through the exit code."""
        result = main(self.WORKLOAD + ["--width", "4", "--depth", "1"])
        out = capsys.readouterr().out
        if result == 1:
            assert "WARNING" in out
        else:
            # A tiny sketch *can* get lucky; the contract is only that
            # exit 1 <=> missed hitters.
            assert "WARNING" not in out

    def test_invalid_sketch_parameters_are_a_clean_error(self):
        with pytest.raises(SystemExit):
            main(self.WORKLOAD + ["--width", "0"])
