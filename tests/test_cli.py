"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestPackingsCommand:
    def test_triangle(self, capsys):
        assert main(["packings", "C3(x,y,z) :- R(x,y), S(y,z), T(z,x)"]) == 0
        out = capsys.readouterr().out
        assert "tau*" in out and "3/2" in out
        assert "4 non-dominated vertices" in out

    def test_bad_query_errors(self):
        with pytest.raises(Exception):
            main(["packings", "not a query"])


class TestBoundsCommand:
    def test_join_bounds(self, capsys):
        assert main([
            "bounds", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--cardinality", "S1=4096", "--cardinality", "S2=1024",
            "--domain", "100000", "-p", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "optimal load" in out
        assert "share exponents" in out
        assert "space exponent" in out

    def test_missing_cardinality_errors(self):
        with pytest.raises(Exception):
            main(["bounds", "q(x) :- S(x)", "-p", "4"])

    def test_malformed_cardinality(self):
        with pytest.raises(SystemExit):
            main(["bounds", "q(x) :- S(x)", "--cardinality", "S1"])


class TestRaceCommand:
    def test_join_race_with_verification(self, capsys):
        assert main([
            "race", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--workload", "zipf", "--skew", "1.2",
            "-m", "200", "-p", "8", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "skew-join" in out
        assert "hashjoin" in out
        assert "False" not in out  # every algorithm complete

    def test_triangle_race_skips_binary_join_algorithms(self, capsys):
        assert main([
            "race", "C3(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            "--workload", "uniform", "-m", "150", "-p", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "hypercube-lp" in out
        assert "skew-join" not in out  # not applicable to 3 atoms

    def test_worst_case_workload(self, capsys):
        assert main([
            "race", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--workload", "worst", "-m", "80", "-p", "8", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "False" not in out

    def test_unknown_workload(self):
        with pytest.raises(SystemExit):
            main([
                "race", "q(x) :- S(x)", "--workload", "nope",
            ])


class TestEngineFlag:
    def test_engine_flag_in_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["race", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--engine" in out
        assert "reference" in out and "batched" in out and "mp" in out

    @pytest.mark.parametrize("engine", ["reference", "batched", "mp"])
    def test_race_with_each_engine(self, capsys, engine):
        assert main([
            "race", "q(x,y,z) :- S1(x,z), S2(y,z)",
            "--workload", "zipf", "--skew", "1.2",
            "-m", "120", "-p", "8", "--verify", "--engine", engine,
        ]) == 0
        out = capsys.readouterr().out
        assert f"engine={engine}" in out
        assert "False" not in out  # every algorithm complete

    def test_engines_report_identical_loads(self, capsys):
        """The race table (loads, replication) is engine-independent."""
        tables = {}
        for engine in ("reference", "batched"):
            assert main([
                "race", "q(x,y,z) :- S1(x,z), S2(y,z)",
                "--workload", "worst", "-m", "60", "-p", "8",
                "--engine", engine,
            ]) == 0
            out = capsys.readouterr().out
            tables[engine] = [
                line for line in out.splitlines() if "engine=" not in line
            ]
        assert tables["reference"] == tables["batched"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            main([
                "race", "q(x) :- S(x)", "--engine", "warp-drive",
            ])
