"""The algorithm registry: declared applicability and cost hooks."""

import math

import pytest

from repro.api import (
    AlgorithmSpec,
    RegistryError,
    algorithm_keys,
    algorithm_specs,
    applicable_specs,
    get_spec,
    register,
    unregister,
)
from repro.core import HyperCubeAlgorithm
from repro.data import uniform_relation
from repro.mpc import OneRoundAlgorithm
from repro.query import parse_query
from repro.seq import Database
from repro.stats import HeavyHitterStatistics, SimpleStatistics

JOIN = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
TRIANGLE = parse_query("C3(x, y, z) :- R(x, y), S(y, z), T(z, x)")
STAR = parse_query("star(x, y, z, w) :- R(x, y), S(x, z), T(x, w)")
CARTESIAN = parse_query("q(x, y) :- R(x), S(y)")

CANONICAL = {
    "join": JOIN,
    "star": STAR,
    "triangle": TRIANGLE,
    "cartesian": CARTESIAN,
}

# The ground truth of which registered algorithm handles which query.
EXPECTED_APPLICABILITY = {
    "hypercube-lp": {"join", "star", "triangle", "cartesian"},
    "hypercube-equal": {"join", "star", "triangle", "cartesian"},
    "hypercube-broadcast": {"join", "star", "triangle", "cartesian"},
    "hashjoin": {"join", "star"},
    "skew-join": {"join"},
    "bin-hypercube": {"join", "star", "triangle", "cartesian"},
    "cartesian-grid": {"cartesian"},
}


def _db(query, m=120, seed=7):
    return Database.from_relations([
        uniform_relation(atom.name, m, 8 * m, arity=atom.arity, seed=seed + i)
        for i, atom in enumerate(query.atoms)
    ])


class TestDefaultRegistry:
    def test_every_paper_algorithm_is_registered(self):
        keys = algorithm_keys()
        assert set(EXPECTED_APPLICABILITY) <= set(keys)

    def test_declared_applicability_matches_ground_truth(self):
        for key, expected in EXPECTED_APPLICABILITY.items():
            spec = get_spec(key)
            for label, query in CANONICAL.items():
                reason = spec.applicability(query)
                if label in expected:
                    assert reason is None, (key, label, reason)
                else:
                    assert isinstance(reason, str) and reason, (key, label)

    def test_applicable_specs_filters(self):
        keys = {spec.key for spec in applicable_specs(TRIANGLE)}
        assert "skew-join" not in keys
        assert "hashjoin" not in keys
        assert "hypercube-lp" in keys

    def test_applicable_specs_round_budget(self):
        # The default budget of 1 keeps the one-round contract; raising
        # it (or lifting it with None) admits the multi-round specs.
        one_round = {spec.key for spec in applicable_specs(TRIANGLE)}
        assert "two-round-triangle" not in one_round
        two_round = {
            spec.key for spec in applicable_specs(TRIANGLE, max_rounds=2)
        }
        assert {"two-round-triangle", "round-join"} <= two_round
        assert two_round == {
            spec.key for spec in applicable_specs(TRIANGLE, max_rounds=None)
        }

    def test_build_rejects_inapplicable(self):
        stats = SimpleStatistics.of(_db(TRIANGLE))
        with pytest.raises(RegistryError, match="not applicable"):
            get_spec("skew-join").build(TRIANGLE, stats, 8)

    def test_unknown_key(self):
        with pytest.raises(RegistryError, match="unknown algorithm"):
            get_spec("warp-join")

    def test_specs_by_keys_preserve_order(self):
        specs = algorithm_specs(["skew-join", "hashjoin"])
        assert [spec.key for spec in specs] == ["skew-join", "hashjoin"]


class TestCostHooks:
    def test_predictions_are_finite_and_positive(self):
        for label, query in CANONICAL.items():
            db = _db(query)
            stats = HeavyHitterStatistics.of(query, db, 8)
            for spec in applicable_specs(query):
                predicted = spec.predicted_load_bits(query, stats, 8)
                assert math.isfinite(predicted) and predicted > 0, (
                    spec.key, label, predicted,
                )

    def test_simple_and_heavy_statistics_agree_when_skew_free(self):
        """On a matching-free uniform workload the heavy-hitter refinement
        must not move the hypercube prediction (no hitters to refine by)."""
        from repro.data import matching_relation

        db = Database.from_relations([
            matching_relation(a.name, 200, 1600, arity=a.arity, seed=i)
            for i, a in enumerate(JOIN.atoms)
        ])
        hh = HeavyHitterStatistics.of(JOIN, db, 8)
        assert hh.total_heavy_count() == 0
        spec = get_spec("hypercube-lp")
        assert spec.predicted_load_bits(JOIN, hh, 8) == pytest.approx(
            spec.predicted_load_bits(JOIN, hh.simple, 8)
        )

    def test_hashjoin_prediction_collapses_under_skew(self):
        """Example 3.3: one shared join value forces ~m tuples through one
        server; the cost hook must see it through the heavy hitters."""
        from repro.data import single_value_relation

        m, p = 200, 8
        db = Database.from_relations([
            single_value_relation("S1", m, 8 * m, fixed_position=1, seed=1),
            single_value_relation("S2", m, 8 * m, fixed_position=1, seed=2),
        ])
        hh = HeavyHitterStatistics.of(JOIN, db, p)
        spec = get_spec("hashjoin")
        skew_free = spec.predicted_load_bits(JOIN, hh.simple, p)
        skew_aware = spec.predicted_load_bits(JOIN, hh, p)
        # The skew-free estimate is ~2m/p tuples; the aware one ~m tuples.
        assert skew_aware > 3 * skew_free

    def test_predicted_load_tracks_measured(self):
        """Cost hooks are honest within small constants on every canonical
        query (skew-free): measured/predicted stays in a tight band."""
        from repro.mpc import run_one_round

        p = 8
        for label, query in CANONICAL.items():
            db = _db(query)
            stats = HeavyHitterStatistics.of(query, db, p)
            for spec in applicable_specs(query):
                predicted = spec.predicted_load_bits(query, stats, p)
                algorithm = spec.build(query, stats, p)
                measured = run_one_round(
                    algorithm, db, p, compute_answers=False
                ).max_load_bits
                ratio = measured / predicted
                assert 0.3 < ratio < 5.0, (label, spec.key, ratio)


class TestCustomRegistration:
    def test_register_and_unregister(self):
        class Everywhere(OneRoundAlgorithm):
            def __init__(self, query):
                super().__init__(query, name="everywhere")

            def routing_plan(self, db, p, hashes):  # pragma: no cover
                raise NotImplementedError

            def predicted_load_bits(self, stats, p):
                simple = self._simple_stats(stats)
                return sum(
                    simple.bits(a.name) for a in self.query.atoms
                )

        spec = AlgorithmSpec(
            key="test-everywhere",
            algorithm_class=Everywhere,
            factory=lambda query, stats, p: Everywhere(query),
            summary="broadcast everything (test)",
        )
        try:
            register(spec)
            assert "test-everywhere" in algorithm_keys()
            with pytest.raises(RegistryError, match="already registered"):
                register(spec)
            stats = SimpleStatistics.of(_db(JOIN))
            predicted = get_spec("test-everywhere").predicted_load_bits(
                JOIN, stats, 8
            )
            assert predicted == pytest.approx(
                stats.bits("S1") + stats.bits("S2")
            )
        finally:
            unregister("test-everywhere")
        assert "test-everywhere" not in algorithm_keys()

    def test_base_applicability_defaults_to_everywhere(self):
        assert HyperCubeAlgorithm.applicability(TRIANGLE) is None
        assert HyperCubeAlgorithm.applicability(CARTESIAN) is None
