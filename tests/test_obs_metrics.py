"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import Observation
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_gauge_keeps_last_value(self):
        gauge = Gauge()
        assert gauge.value is None
        gauge.set(1.0)
        gauge.set(2.5)
        assert gauge.value == 2.5

    def test_histogram_stats(self):
        histogram = Histogram([3.0, 1.0, 2.0])
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.mean == 2.0
        assert histogram.min == 1.0
        assert histogram.max == 3.0

    def test_empty_histogram_is_all_zeros(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(99) == 0.0


class TestPercentiles:
    def test_nearest_rank_on_1_to_100(self):
        histogram = Histogram(range(1, 101))
        assert histogram.percentile(50) == 50
        assert histogram.percentile(90) == 90
        assert histogram.percentile(99) == 99
        assert histogram.percentile(100) == 100
        # q=0 still returns the smallest observation (rank floor of 1).
        assert histogram.percentile(0) == 1

    def test_single_value(self):
        histogram = Histogram([7.0])
        for q in (0, 50, 99, 100):
            assert histogram.percentile(q) == 7.0

    def test_unsorted_input(self):
        histogram = Histogram([5.0, 1.0, 9.0, 3.0])
        assert histogram.percentile(50) == 3.0
        assert histogram.percentile(100) == 9.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram([1.0]).percentile(101)

    def test_summary_digest(self):
        summary = Histogram(range(1, 101)).summary()
        assert summary == {
            "count": 100, "total": 5050, "min": 1, "mean": 50.5,
            "max": 100, "p50": 50, "p90": 90, "p99": 99,
        }


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert bool(registry)
        assert not MetricsRegistry()

    def test_merge_semantics(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("n").inc(2)
        right.counter("n").inc(3)
        left.gauge("g").set(1.0)
        right.gauge("g").set(9.0)
        left.histogram("h").observe(1.0)
        right.histogram("h").extend([2.0, 3.0])
        right.gauge("unset")  # never .set(): must not clobber on merge
        left.merge(right)
        assert left.counter("n").value == 5       # counters add
        assert left.gauge("g").value == 9.0       # gauges overwrite
        assert left.histogram("h").values == [1.0, 2.0, 3.0]  # concat
        assert left.gauge("unset").value is None

    def test_snapshot_round_trip(self):
        source = MetricsRegistry()
        source.counter("tuples").inc(10)
        source.gauge("skew").set(1.5)
        source.histogram("load").extend([4.0, 8.0])
        snapshot = source.snapshot()
        # Snapshots are plain dicts of plain values (picklable/JSON-ready).
        assert snapshot == {
            "counters": {"tuples": 10},
            "gauges": {"skew": 1.5},
            "histograms": {"load": [4.0, 8.0]},
        }
        target = MetricsRegistry()
        target.counter("tuples").inc(1)
        target.merge_snapshot(snapshot)
        assert target.counter("tuples").value == 11
        assert target.gauge("skew").value == 1.5
        assert target.histogram("load").values == [4.0, 8.0]

    def test_to_dict_digests_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("h").extend([1.0, 2.0])
        digest = registry.to_dict()["histograms"]["h"]
        assert digest["count"] == 2 and digest["max"] == 2.0

    def test_render_lists_everything(self):
        registry = MetricsRegistry()
        registry.counter("routed").inc(7)
        registry.gauge("skew").set(2.0)
        registry.histogram("load").observe(1.0)
        table = registry.render()
        assert "routed" in table and "skew" in table and "load" in table


class TestObservation:
    def test_timed_records_span_and_histogram(self):
        obs = Observation.create()
        with obs.timed("phase"):
            pass
        assert len(obs.tracer.finished_spans("phase")) == 1
        assert obs.metrics.histogram("phase.seconds").count == 1

    def test_count_and_gauges(self):
        obs = Observation.create()
        obs.count("n", 3)
        obs.observe("h", 1.5)
        obs.set_gauge("g", 2.0)
        assert obs.metrics.counter("n").value == 3
        assert obs.metrics.histogram("h").values == [1.5]
        assert obs.metrics.gauge("g").value == 2.0

    def test_maybe_timed_none_is_a_noop(self):
        from repro.obs import maybe_timed

        with maybe_timed(None, "anything"):
            pass  # no tracer involved, nothing recorded anywhere
