"""Property-based tests (hypothesis) for the core invariants.

These are the paper's structural claims checked on *random* queries,
statistics, and databases rather than hand-picked examples:

* packing polytope vertices are feasible; pk(q) is non-dominated;
* strong duality: share-LP optimum == dual optimum == max over pk(q)
  (Theorem 3.6), and tau* equals the fractional vertex-cover number;
* HyperCube is complete for *any* share vector on *any* database;
* Friedgut's inequality holds for random nonnegative weights;
* the bin algorithm is complete on random skewed instances;
* simplex agrees with scipy.optimize.linprog on random LPs.
"""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BinHyperCubeAlgorithm,
    HyperCubeAlgorithm,
    dual_share_solution,
    fractional_vertex_cover_number,
    friedgut_gap,
    is_edge_packing,
    lower_bound,
    maximum_packing_value,
    non_dominated_packing_vertices,
    optimal_share_exponents,
    packing_value,
    packing_vertices,
    saturating_packing_vertices,
)
from repro.lp import maximize as exact_maximize
from repro.mpc import run_one_round
from repro.query import Atom, ConjunctiveQuery, residual_query
from repro.seq import Database, Relation


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
@st.composite
def queries(draw, max_variables=4, max_atoms=4, max_arity=3):
    """Random full self-join-free conjunctive queries."""
    k = draw(st.integers(2, max_variables))
    variables = [f"v{i}" for i in range(k)]
    num_atoms = draw(st.integers(1, max_atoms))
    atoms = []
    for j in range(num_atoms):
        arity = draw(st.integers(1, max_arity))
        chosen = draw(
            st.lists(
                st.sampled_from(variables), min_size=arity, max_size=arity
            )
        )
        atoms.append(Atom(f"S{j}", tuple(chosen)))
    return ConjunctiveQuery(atoms, name="rand")


@st.composite
def query_with_bits(draw):
    q = draw(queries())
    exponents = {
        atom.name: draw(st.integers(8, 24)) for atom in q.atoms
    }
    bits = {name: float(2**e) for name, e in exponents.items()}
    # The paper's standing assumption is m_j >= p (mu_j >= 1): with M_j < p
    # the LP clamps lambda >= 0 (one-bit loads) while L(u,M,p) dips below a
    # bit, and Theorem 3.6's equality degenerates.  Stay inside the model.
    p = 2 ** draw(st.integers(2, min(8, min(exponents.values()))))
    return q, bits, p


@st.composite
def small_databases(draw, query, max_m=60, domain=40):
    relations = []
    for atom in query.atoms:
        m = draw(st.integers(0, max_m))
        tuples = draw(
            st.lists(
                st.tuples(
                    *[st.integers(0, domain - 1) for _ in range(atom.arity)]
                ),
                min_size=0,
                max_size=m,
            )
        )
        relations.append(
            Relation(
                name=atom.name,
                arity=atom.arity,
                tuples=frozenset(tuples),
                domain_size=domain,
            )
        )
    return Database.from_relations(relations)


# ---------------------------------------------------------------------------
# packing polytope invariants
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(queries())
def test_packing_vertices_feasible(q):
    for vertex in packing_vertices(q):
        assert is_edge_packing(q, vertex)


@settings(max_examples=40, deadline=None)
@given(queries())
def test_pk_non_dominated(q):
    vertices = non_dominated_packing_vertices(q)
    for a in vertices:
        for b in vertices:
            if a is b:
                continue
            dominated = all(
                b[name] >= a[name] for name in a
            ) and a != b
            assert not dominated


@settings(max_examples=40, deadline=None)
@given(queries())
def test_tau_star_duality(q):
    assert maximum_packing_value(q) == fractional_vertex_cover_number(q)


@settings(max_examples=40, deadline=None)
@given(queries())
def test_tau_star_attained_on_vertices(q):
    tau = maximum_packing_value(q)
    best = max(
        (packing_value(v) for v in non_dominated_packing_vertices(q)),
        default=Fraction(0),
    )
    assert best == tau


# ---------------------------------------------------------------------------
# Theorem 3.6: L_lower == L_upper == dual
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(query_with_bits())
def test_theorem_3_6_equality(case):
    q, bits, p = case
    lower = lower_bound(q, bits, p).bits
    primal = optimal_share_exponents(q, bits, p)
    dual = dual_share_solution(q, bits, p)
    assert math.isclose(lower, primal.load_bits, rel_tol=1e-5)
    assert abs(float(primal.lam - dual.objective)) < 1e-7


@settings(max_examples=30, deadline=None)
@given(query_with_bits())
def test_share_exponents_feasible(case):
    q, bits, p = case
    solution = optimal_share_exponents(q, bits, p)
    assert sum(solution.exponents.values()) <= 1
    assert all(e >= 0 for e in solution.exponents.values())
    assert solution.lam >= 0


# ---------------------------------------------------------------------------
# residual saturation
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(queries(), st.data())
def test_saturating_vertices_saturate(q, data):
    subset = data.draw(
        st.sets(st.sampled_from(list(q.variables)), min_size=1)
    )
    residual = residual_query(q, subset)
    for vertex in saturating_packing_vertices(q, subset):
        assert residual.saturates(vertex)
        assert all(0 <= value <= 1 for value in vertex.values())


# ---------------------------------------------------------------------------
# HyperCube completeness for arbitrary shares and data
# ---------------------------------------------------------------------------
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.data())
def test_hypercube_always_complete(data):
    q = data.draw(queries(max_variables=3, max_atoms=3, max_arity=2))
    db = data.draw(small_databases(q))
    shares = {
        var: data.draw(st.integers(1, 3), label=f"share_{var}")
        for var in q.variables
    }
    p = math.prod(shares.values())
    algo = HyperCubeAlgorithm(q, shares)
    result = run_one_round(algo, db, p, verify=True)
    assert result.is_complete


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.data())
def test_bin_hypercube_always_complete(data):
    q = data.draw(queries(max_variables=3, max_atoms=2, max_arity=2))
    db = data.draw(small_databases(q, max_m=40, domain=10))  # dense: skew
    p = data.draw(st.sampled_from([2, 4, 8]))
    result = run_one_round(BinHyperCubeAlgorithm(q), db, p, verify=True)
    assert result.is_complete


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.data())
def test_skew_join_always_complete(data):
    """Section 4.1's algorithm on random two-atom join shapes and data."""
    from repro.core import SkewAwareJoin

    # A join with a shared variable u plus random private variables.
    private_1 = data.draw(st.integers(1, 2))
    private_2 = data.draw(st.integers(1, 2))
    atoms = [
        Atom("S1", tuple(f"a{i}" for i in range(private_1)) + ("u",)),
        Atom("S2", tuple(f"b{i}" for i in range(private_2)) + ("u",)),
    ]
    q = ConjunctiveQuery(atoms, name="rand-join")
    db = data.draw(small_databases(q, max_m=50, domain=8))  # dense: skew
    p = data.draw(st.sampled_from([1, 3, 8]))
    result = run_one_round(SkewAwareJoin(q), db, p, verify=True)
    assert result.is_complete


# ---------------------------------------------------------------------------
# Friedgut inequality on random weights
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.data())
def test_friedgut_inequality_random(data):
    q = data.draw(queries(max_variables=3, max_atoms=3, max_arity=2))
    weights = {}
    for atom in q.atoms:
        entries = data.draw(
            st.dictionaries(
                st.tuples(*[st.integers(0, 6) for _ in range(atom.arity)]),
                st.floats(0.0, 10.0, allow_nan=False),
                max_size=12,
            )
        )
        weights[atom.name] = entries
    # A valid cover always exists: weight 1 on every atom covers all
    # variables iff every variable occurs somewhere — true by construction.
    cover = {atom.name: 1 for atom in q.atoms}
    lhs, rhs = friedgut_gap(q, cover, weights)
    assert lhs <= rhs * (1 + 1e-6) + 1e-9


# ---------------------------------------------------------------------------
# simplex vs scipy
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.data())
def test_simplex_matches_scipy(data):
    scipy_optimize = pytest.importorskip("scipy.optimize")
    n = data.draw(st.integers(1, 4))
    m = data.draw(st.integers(1, 5))
    c = [data.draw(st.integers(-5, 5)) for _ in range(n)]
    a = [[data.draw(st.integers(-4, 4)) for _ in range(n)] for _ in range(m)]
    b = [data.draw(st.integers(-3, 6)) for _ in range(m)]

    ours = exact_maximize(c, a, b)
    scipy_result = scipy_optimize.linprog(
        [-x for x in c], A_ub=a, b_ub=b, bounds=[(0, None)] * n,
        method="highs",
    )
    if ours.is_optimal:
        assert scipy_result.status == 0
        assert math.isclose(
            float(ours.objective), -scipy_result.fun, rel_tol=1e-7, abs_tol=1e-7
        )
    elif ours.status == "infeasible":
        assert scipy_result.status == 2
    else:  # unbounded
        assert scipy_result.status == 3
