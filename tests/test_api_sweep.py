"""The experiment/sweep runner and the RunRecord schema."""

import json

import pytest

from repro.api import (
    Cell,
    Experiment,
    ExperimentError,
    RecordError,
    RUN_RECORD_FIELDS,
    RunRecord,
    Sweep,
    WorkloadSpec,
    records_from_json,
    records_to_csv,
    run_cell,
    validate_record,
)
from repro.mpc.engine import EngineError
from repro.query import parse_query

JOIN_TEXT = "q(x, y, z) :- S1(x, z), S2(y, z)"


class TestRegistryErrorMessages:
    """Unknown engine/algorithm names must fail fast and list the valid
    registry keys, not crash mid-run with a bare KeyError."""

    def test_unknown_engine_rejected_at_cells_time(self):
        sweep = Sweep(query=JOIN_TEXT, p_values=(4,), m_values=(20,),
                      engine="turbo")
        with pytest.raises(EngineError) as excinfo:
            sweep.cells()
        message = str(excinfo.value)
        assert "turbo" in message
        for name in ("reference", "batched", "mp"):
            assert name in message

    def test_unknown_engine_rejected_by_experiment(self):
        experiment = Experiment(query=JOIN_TEXT, p=4, engine="turbo")
        with pytest.raises(EngineError, match="batched"):
            experiment.cells()

    def test_misspelled_algorithms_keyword_lists_registry(self):
        sweep = Sweep(query=JOIN_TEXT, p_values=(4,), m_values=(20,),
                      algorithms="al")
        with pytest.raises(ExperimentError) as excinfo:
            sweep.cells()
        message = str(excinfo.value)
        assert "hashjoin" in message and "hypercube-lp" in message

    def test_unknown_algorithm_key_lists_registry(self):
        sweep = Sweep(query=JOIN_TEXT, p_values=(4,), m_values=(20,),
                      algorithms=("hashjoin-typo",))
        with pytest.raises(Exception, match="hashjoin"):
            sweep.cells()

    def test_none_algorithms_is_an_experiment_error(self):
        # Regression: this used to escape as a raw TypeError from
        # ``tuple(None)`` instead of naming the accepted forms.
        sweep = Sweep(query=JOIN_TEXT, p_values=(4,), m_values=(20,),
                      algorithms=None)
        with pytest.raises(ExperimentError) as excinfo:
            sweep.cells()
        message = str(excinfo.value)
        assert "'auto'" in message and "'applicable'" in message
        assert "None" in message and "hashjoin" in message

    def test_non_iterable_algorithms_is_an_experiment_error(self):
        sweep = Sweep(query=JOIN_TEXT, p_values=(4,), m_values=(20,),
                      algorithms=42)
        with pytest.raises(ExperimentError, match="sequence of"):
            sweep.cells()

    def test_non_string_algorithm_key_is_an_experiment_error(self):
        sweep = Sweep(query=JOIN_TEXT, p_values=(4,), m_values=(20,),
                      algorithms=("hashjoin", 7))
        with pytest.raises(ExperimentError, match="strings"):
            sweep.cells()


class TestWorkloadSpec:
    def test_build_is_deterministic(self):
        query = parse_query(JOIN_TEXT)
        spec = WorkloadSpec("zipf", m=90, skew=1.2, seed=4)
        first, second = spec.build(query), spec.build(query)
        for atom in query.atoms:
            assert first.relation(atom.name).tuples == \
                second.relation(atom.name).tuples

    def test_every_kind_builds(self):
        query = parse_query(JOIN_TEXT)
        for kind in ("uniform", "zipf", "worst", "matching"):
            db = WorkloadSpec(kind, m=40, skew=0.8, seed=1).build(query)
            assert db.relation("S1").cardinality == 40

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError, match="unknown workload"):
            WorkloadSpec("gaussian", m=10)

    def test_nonpositive_m_rejected(self):
        with pytest.raises(ExperimentError, match="m >= 1"):
            WorkloadSpec("uniform", m=0)

    def test_domain_override(self):
        query = parse_query(JOIN_TEXT)
        spec = WorkloadSpec("zipf", m=50, skew=0.5, domain=400)
        assert spec.domain_size == 400
        assert spec.build(query).domain_size == 400
        # The kind defaults survive when no override is given.
        assert WorkloadSpec("zipf", m=50).domain_size == 200
        assert WorkloadSpec("uniform", m=50).domain_size == 400


class TestRunCell:
    def test_cell_produces_valid_record(self):
        record = run_cell(Cell(
            query=JOIN_TEXT, workload="zipf", m=80, skew=1.0, seed=0,
            p=4, algorithm="hypercube-lp",
        ))
        payload = record.to_dict()
        validate_record(payload)
        assert payload["algorithm"] == "hypercube-lp"
        assert payload["max_load_bits"] > 0
        assert payload["wall_seconds"] >= 0
        assert payload["answer_count"] is None  # answers skipped by default

    def test_auto_cell_uses_planner_choice(self):
        record = run_cell(Cell(
            query=JOIN_TEXT, workload="uniform", m=80, skew=0.0, seed=0,
            p=4, algorithm="auto",
        ))
        assert record.algorithm != "auto"  # resolved to a registry key

    def test_verify_cell_checks_completeness(self):
        record = run_cell(Cell(
            query=JOIN_TEXT, workload="worst", m=40, skew=0.0, seed=0,
            p=4, algorithm="skew-join", verify=True,
        ))
        assert record.complete is True
        assert record.answer_count is not None

    def test_inapplicable_cell_is_an_error(self):
        with pytest.raises(ExperimentError, match="not applicable"):
            run_cell(Cell(
                query="C3(x,y,z) :- R(x,y), S(y,z), T(z,x)",
                workload="uniform", m=40, skew=0.0, seed=0,
                p=4, algorithm="skew-join",
            ))


class TestExperiment:
    def test_applicable_expands_to_every_algorithm(self):
        experiment = Experiment(
            JOIN_TEXT,
            workload=WorkloadSpec("uniform", m=60),
            p=4,
            algorithms="applicable",
        )
        cells = experiment.cells()
        assert {cell.algorithm for cell in cells} == {
            "hypercube-lp", "hypercube-equal", "hypercube-broadcast",
            "hashjoin", "skew-join", "bin-hypercube",
        }
        records = experiment.run()
        assert len(records) == len(cells)

    def test_explicit_inapplicable_algorithm_rejected_early(self):
        experiment = Experiment(
            "C3(x,y,z) :- R(x,y), S(y,z), T(z,x)",
            algorithms=["skew-join"],
        )
        with pytest.raises(ExperimentError, match="not applicable"):
            experiment.cells()


class TestSweep:
    def _sweep(self, **overrides):
        config = dict(
            query=JOIN_TEXT,
            workload="zipf",
            p_values=(4, 8),
            m_values=(80,),
            skews=(0.0, 1.2),
            seeds=(0,),
            algorithms="applicable",
        )
        config.update(overrides)
        return Sweep(**config)

    def test_grid_size(self):
        """p x skew x algorithm: 2 x 2 x 6 = 24 cells (acceptance floor)."""
        cells = self._sweep().cells()
        assert len(cells) == 24

    def test_sequential_run_emits_valid_exports(self):
        result = self._sweep().run()
        assert len(result) == 24
        # JSON round-trips through the schema validator.
        payload = json.loads(result.to_json())
        for entry in payload:
            validate_record(entry)
        reloaded = records_from_json(result.to_json())
        assert [r.algorithm for r in reloaded] == \
            [r.algorithm for r in result.records]
        # CSV exposes the schema's column order.
        lines = result.to_csv().splitlines()
        assert lines[0] == ",".join(RUN_RECORD_FIELDS)
        assert len(lines) == 25
        # Records carry the full predicted/measured/bound/gap story.
        for record in result:
            assert record.predicted_load_bits > 0
            assert record.max_load_bits > 0
            assert record.lower_bound_bits > 0
            assert record.optimality_gap == pytest.approx(
                record.max_load_bits / record.lower_bound_bits
            )

    def test_parallel_run_matches_sequential(self):
        """Farming cells across the process pool changes nothing but time."""
        sweep = self._sweep(skews=(1.2,))
        sequential = sweep.run()
        parallel = sweep.run(max_workers=4)

        def key(record):
            return (record.p, record.skew, record.algorithm)

        left = {key(r): r for r in sequential}
        right = {key(r): r for r in parallel}
        assert left.keys() == right.keys()
        for cell_key, record in left.items():
            other = right[cell_key]
            assert record.max_load_bits == other.max_load_bits
            assert record.max_load_tuples == other.max_load_tuples
            assert record.predicted_load_bits == other.predicted_load_bits

    def test_parallel_run_supports_the_mp_engine(self):
        """Cells running the mp engine must be able to open that engine's
        own pool inside a farm worker (non-daemonic executor processes)."""
        sweep = self._sweep(
            skews=(0.0,), p_values=(4,),
            algorithms=("hypercube-lp", "hashjoin"), engine="mp",
        )
        result = sweep.run(max_workers=2)
        assert len(result) == 2
        batched = self._sweep(
            skews=(0.0,), p_values=(4,),
            algorithms=("hypercube-lp", "hashjoin"), engine="batched",
        ).run()
        # Engine parity: the farmed mp loads equal the batched loads.
        assert [r.max_load_bits for r in result] == \
            [r.max_load_bits for r in batched]

    def test_progress_callback_sees_every_record(self):
        seen = []
        self._sweep(skews=(0.0,), p_values=(4,)).run(progress=seen.append)
        assert len(seen) == 6

    def test_best_per_cell_and_summary(self):
        result = self._sweep(skews=(1.2,), p_values=(8,)).run()
        best = result.best_per_cell()
        assert len(best) == 1
        (winner,) = best.values()
        assert winner.max_load_bits == min(
            r.max_load_bits for r in result
        )
        summary = result.summary()
        assert "predicted" in summary and "measured" in summary

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError, match="empty"):
            self._sweep(p_values=()).run()

    def test_bad_axis_values_rejected_at_cells_time(self):
        with pytest.raises(ExperimentError, match="m >= 1"):
            self._sweep(m_values=(0,)).cells()
        with pytest.raises(ExperimentError, match="p must be >= 1"):
            self._sweep(p_values=(0,)).cells()

    def test_domain_override_reaches_the_records(self):
        result = self._sweep(
            skews=(0.0,), p_values=(4,), algorithms=("hashjoin",),
            domain=500,
        ).run()
        assert result.records[0].domain == 500


class TestRecordSchema:
    def _record(self):
        return RunRecord(
            query=JOIN_TEXT, workload="zipf", m=10, skew=1.0, seed=0,
            domain=40, p=4,
            algorithm="hashjoin", algorithm_name="hashjoin", engine="batched",
            predicted_load_bits=100.0, lower_bound_bits=50.0,
            max_load_bits=120.0, max_load_tuples=12,
            replication_rate=1.0, balance=1.5, wall_seconds=0.01,
        )

    def test_roundtrip(self):
        record = self._record()
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record

    def test_derived_ratios(self):
        record = self._record()
        assert record.optimality_gap == pytest.approx(2.4)
        assert record.prediction_error == pytest.approx(1.2)

    def test_missing_field_rejected(self):
        payload = self._record().to_dict()
        del payload["max_load_bits"]
        with pytest.raises(RecordError, match="missing"):
            validate_record(payload)

    def test_unknown_field_rejected(self):
        payload = self._record().to_dict()
        payload["surprise"] = 1
        with pytest.raises(RecordError, match="unknown"):
            validate_record(payload)

    def test_wrong_type_rejected(self):
        payload = self._record().to_dict()
        payload["p"] = "four"
        with pytest.raises(RecordError, match="type"):
            validate_record(payload)

    def test_bool_is_not_an_int(self):
        payload = self._record().to_dict()
        payload["m"] = True
        with pytest.raises(RecordError, match="bool"):
            validate_record(payload)

    def test_null_only_where_nullable(self):
        payload = self._record().to_dict()
        payload["answer_count"] = None  # fine: nullable
        validate_record(payload)
        payload["engine"] = None
        with pytest.raises(RecordError, match="null"):
            validate_record(payload)

    def test_csv_renders_none_as_empty(self):
        text = records_to_csv([self._record()])
        row = text.splitlines()[1]
        assert row.endswith(",,,2.4,1.2") or ",," in row
