"""Cross-module integration tests: every algorithm, every workload shape,
always complete; loads ordered the way the theory says."""

import pytest

from repro.core import (
    BinHyperCubeAlgorithm,
    BroadcastHyperCube,
    HashJoinAlgorithm,
    HyperCubeAlgorithm,
    SkewAwareJoin,
    lower_bound,
)
from repro.data import (
    matching_relation,
    planted_heavy_relation,
    single_value_relation,
    uniform_relation,
    zipf_relation,
)
from repro.mpc import run_one_round
from repro.query import chain_query, simple_join_query, star_query, triangle_query
from repro.seq import Database
from repro.stats import SimpleStatistics


def _join_algorithms(query, p):
    return [
        HyperCubeAlgorithm.with_equal_shares(query, p),
        HashJoinAlgorithm(query, p),
        SkewAwareJoin(query),
        BinHyperCubeAlgorithm(query),
        BroadcastHyperCube(query),
    ]


def _generic_algorithms(query, p):
    return [
        HyperCubeAlgorithm.with_equal_shares(query, p),
        BinHyperCubeAlgorithm(query),
        BroadcastHyperCube(query),
    ]


JOIN_WORKLOADS = {
    "uniform": lambda: Database.from_relations(
        [
            uniform_relation("S1", 220, 2000, seed=1),
            uniform_relation("S2", 220, 2000, seed=2),
        ]
    ),
    "matching": lambda: Database.from_relations(
        [
            matching_relation("S1", 220, 2000, seed=3),
            matching_relation("S2", 220, 2000, seed=4),
        ]
    ),
    "zipf": lambda: Database.from_relations(
        [
            zipf_relation("S1", 220, 700, skew=1.3, seed=5),
            zipf_relation("S2", 220, 700, skew=1.3, seed=6),
        ]
    ),
    "single-value": lambda: Database.from_relations(
        [
            single_value_relation("S1", 90, 300, seed=7),
            single_value_relation("S2", 90, 300, seed=8),
        ]
    ),
    "asymmetric": lambda: Database.from_relations(
        [
            uniform_relation("S1", 400, 2000, seed=9),
            uniform_relation("S2", 25, 2000, seed=10),
        ]
    ),
    "one-sided-heavy": lambda: Database.from_relations(
        [
            planted_heavy_relation(
                "S1", 220, 700, heavy_values=[0, 5], heavy_fraction=0.6, seed=11
            ),
            uniform_relation("S2", 220, 700, seed=12),
        ]
    ),
}


class TestJoinAlgorithmsComplete:
    @pytest.mark.parametrize("workload", sorted(JOIN_WORKLOADS))
    @pytest.mark.parametrize("p", [5, 16])
    def test_all_complete(self, workload, p):
        query = simple_join_query()
        db = JOIN_WORKLOADS[workload]()
        for algorithm in _join_algorithms(query, p):
            result = run_one_round(algorithm, db, p, verify=True)
            assert result.is_complete, (algorithm.name, workload, p)


class TestOtherQueryShapes:
    def _db_for(self, query, m, n, seed):
        relations = [
            uniform_relation(atom.name, m, n, arity=atom.arity, seed=seed + i)
            for i, atom in enumerate(query.atoms)
        ]
        return Database.from_relations(relations)

    @pytest.mark.parametrize("p", [8, 27])
    def test_triangle(self, p):
        query = triangle_query()
        db = self._db_for(query, 150, 130, seed=20)
        for algorithm in _generic_algorithms(query, p):
            result = run_one_round(algorithm, db, p, verify=True)
            assert result.is_complete, algorithm.name

    def test_chain_4(self):
        query = chain_query(4)
        db = self._db_for(query, 120, 200, seed=30)
        p = 16
        stats = SimpleStatistics.of(db)
        algorithms = _generic_algorithms(query, p) + [
            HyperCubeAlgorithm.with_optimal_shares(query, stats, p)
        ]
        for algorithm in algorithms:
            result = run_one_round(algorithm, db, p, verify=True)
            assert result.is_complete, algorithm.name

    def test_star_3(self):
        query = star_query(3)
        db = self._db_for(query, 150, 250, seed=40)
        p = 16
        for algorithm in _generic_algorithms(query, p):
            result = run_one_round(algorithm, db, p, verify=True)
            assert result.is_complete, algorithm.name

    def test_star_with_heavy_center(self):
        query = star_query(2)
        db = Database.from_relations(
            [
                planted_heavy_relation(
                    "S1", 150, 300, heavy_values=[0], heavy_fraction=0.5,
                    heavy_position=0, seed=50,
                ),
                planted_heavy_relation(
                    "S2", 150, 300, heavy_values=[0], heavy_fraction=0.5,
                    heavy_position=0, seed=51,
                ),
            ]
        )
        p = 16
        for algorithm in _generic_algorithms(query, p):
            result = run_one_round(algorithm, db, p, verify=True)
            assert result.is_complete, algorithm.name


class TestLoadOrderings:
    def test_lower_bound_never_beaten_by_much(self):
        """No algorithm can sit far below L_lower on skew-free data.

        (Hashing variance allows small dips below the expectation.)
        """
        query = simple_join_query()
        db = JOIN_WORKLOADS["matching"]()
        p = 16
        stats = SimpleStatistics.of(db)
        bound = lower_bound(query, stats.bits_vector(query), p).bits
        for algorithm in _join_algorithms(query, p):
            result = run_one_round(algorithm, db, p, compute_answers=False)
            assert result.max_load_bits >= 0.4 * bound, algorithm.name

    def test_skew_aware_wins_under_skew(self):
        query = simple_join_query()
        db = JOIN_WORKLOADS["single-value"]()
        p = 16
        loads = {}
        for algorithm in _join_algorithms(query, p):
            result = run_one_round(algorithm, db, p, compute_answers=False)
            loads[algorithm.name] = result.max_load_tuples
        assert loads["skew-join"] < loads["hashjoin"]
        assert loads["bin-hypercube"] < loads["hashjoin"]

    def test_replication_bounded_by_grid(self):
        """HC replication <= product of free-dimension shares."""
        query = simple_join_query()
        db = JOIN_WORKLOADS["uniform"]()
        p = 27
        algo = HyperCubeAlgorithm.with_equal_shares(query, p)
        result = run_one_round(algo, db, p, compute_answers=False)
        assert result.report.replication_rate <= 3.0 + 1e-9

    def test_deterministic_across_runs(self):
        query = simple_join_query()
        db = JOIN_WORKLOADS["zipf"]()
        a = run_one_round(BinHyperCubeAlgorithm(query), db, 8, seed=3)
        b = run_one_round(BinHyperCubeAlgorithm(query), db, 8, seed=3)
        assert a.report.per_server_bits == b.report.per_server_bits
        assert a.answers == b.answers
