"""Unit tests for the workload generators."""

import pytest

from repro.data import (
    GeneratorError,
    degree_relation,
    graph_edges,
    matching_relation,
    planted_heavy_relation,
    single_value_relation,
    uniform_relation,
    zipf_relation,
)


class TestUniform:
    def test_cardinality_and_domain(self):
        rel = uniform_relation("R", 500, 1000, seed=1)
        assert rel.cardinality == 500
        assert rel.domain_size == 1000
        assert rel.arity == 2

    def test_deterministic(self):
        assert uniform_relation("R", 100, 500, seed=7).tuples == uniform_relation(
            "R", 100, 500, seed=7
        ).tuples

    def test_seed_changes_content(self):
        a = uniform_relation("R", 100, 500, seed=1).tuples
        b = uniform_relation("R", 100, 500, seed=2).tuples
        assert a != b

    def test_impossible_cardinality_rejected(self):
        with pytest.raises(GeneratorError):
            uniform_relation("R", 100, 4, arity=1)

    def test_arity_one(self):
        rel = uniform_relation("R", 10, 100, arity=1, seed=1)
        assert all(len(t) == 1 for t in rel.tuples)


class TestMatching:
    def test_each_value_once_per_column(self):
        rel = matching_relation("R", 300, 1000, seed=2)
        for position in range(rel.arity):
            freq = rel.frequencies([position])
            assert all(count == 1 for count in freq.values())

    def test_needs_large_domain(self):
        with pytest.raises(GeneratorError):
            matching_relation("R", 100, 50)


class TestZipf:
    def test_zero_skew_is_uniform_like(self):
        rel = zipf_relation("R", 200, 1000, skew=0.0, seed=3)
        assert rel.cardinality == 200

    def test_high_skew_concentrates(self):
        rel = zipf_relation("R", 500, 1000, skew=1.5, seed=4)
        freq = rel.frequencies([1])
        top = max(freq.values())
        assert top > 50  # rank-1 value dominates

    def test_skewed_position_respected(self):
        rel = zipf_relation(
            "R", 300, 600, skew=1.5, skewed_positions=(0,), seed=5
        )
        freq0 = rel.frequencies([0])
        freq1 = rel.frequencies([1])
        assert max(freq0.values()) > max(freq1.values())

    def test_bad_position_rejected(self):
        with pytest.raises(GeneratorError):
            zipf_relation("R", 10, 100, skewed_positions=(5,))

    def test_unrealizable_rejected(self):
        # Extreme skew on both positions of a tiny domain cannot produce
        # many distinct tuples.
        with pytest.raises(GeneratorError):
            zipf_relation(
                "R", 90, 10, skew=30.0, skewed_positions=(0, 1), seed=6
            )


class TestSingleValue:
    def test_pinned_column(self):
        rel = single_value_relation("R", 50, 200, fixed_position=1,
                                    fixed_value=9, seed=7)
        assert all(t[1] == 9 for t in rel.tuples)
        assert rel.cardinality == 50

    def test_too_many_rejected(self):
        with pytest.raises(GeneratorError):
            single_value_relation("R", 100, 10, arity=2)


class TestDegreeRelation:
    def test_exact_degrees(self):
        degrees = {3: 10, 5: 4, 7: 1}
        rel = degree_relation("R", degrees, 64, seed=8)
        freq = rel.frequencies([1])
        assert freq[(3,)] == 10
        assert freq[(5,)] == 4
        assert freq[(7,)] == 1
        assert rel.cardinality == 15

    def test_degree_position_zero(self):
        rel = degree_relation("R", {2: 5}, 64, degree_position=0, seed=9)
        assert rel.frequencies([0])[(2,)] == 5

    def test_validation(self):
        with pytest.raises(GeneratorError):
            degree_relation("R", {100: 1}, 64)
        with pytest.raises(GeneratorError):
            degree_relation("R", {1: 100}, 64)


class TestPlantedHeavy:
    def test_heavy_values_dominate(self):
        rel = planted_heavy_relation(
            "R", 400, 800, heavy_values=[0, 1], heavy_fraction=0.5, seed=10
        )
        freq = rel.frequencies([1])
        heavy_mass = freq.get((0,), 0) + freq.get((1,), 0)
        assert heavy_mass >= 0.4 * 400
        assert rel.cardinality == 400

    def test_zero_fraction_is_uniform(self):
        rel = planted_heavy_relation(
            "R", 100, 500, heavy_values=[0], heavy_fraction=0.0, seed=11
        )
        assert rel.cardinality == 100

    def test_validation(self):
        with pytest.raises(GeneratorError):
            planted_heavy_relation("R", 10, 100, heavy_values=[])
        with pytest.raises(GeneratorError):
            planted_heavy_relation(
                "R", 10, 100, heavy_values=[0], heavy_fraction=1.5
            )


class TestGraphEdges:
    def test_cardinality(self):
        rel = graph_edges("E", 100, 400, seed=12)
        assert rel.cardinality == 400
        assert rel.domain_size == 100

    def test_hubs_attract_edges(self):
        rel = graph_edges(
            "E", 200, 600, hub_count=2, hub_fraction=0.5, seed=13
        )
        out_deg = rel.frequencies([0])
        in_deg = rel.frequencies([1])
        hub_mass = sum(
            out_deg.get((h,), 0) + in_deg.get((h,), 0) for h in (0, 1)
        )
        assert hub_mass >= 0.4 * 600

    def test_too_many_edges_rejected(self):
        with pytest.raises(GeneratorError):
            graph_edges("E", 3, 100)
