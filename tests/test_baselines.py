"""Unit tests for the baselines: hash join, broadcast rule, cartesian grid."""

import math

import pytest

from repro.core import (
    BroadcastHyperCube,
    CartesianProductAlgorithm,
    HashJoinAlgorithm,
    cartesian_lower_bound_bits,
    default_partition_variables,
    optimal_grid,
    reduced_query,
)
from repro.data import single_value_relation, uniform_relation
from repro.mpc import run_one_round
from repro.query import (
    QueryError,
    cartesian_product_query,
    parse_query,
    simple_join_query,
    triangle_query,
)
from repro.seq import Database


class TestHashJoin:
    def test_default_partition_variables(self):
        assert default_partition_variables(simple_join_query()) == ("z",)
        assert default_partition_variables(triangle_query()) == ()

    def test_needs_partition_variables_for_triangle(self):
        with pytest.raises(QueryError):
            HashJoinAlgorithm(triangle_query(), 16)

    def test_unknown_partition_variable(self):
        with pytest.raises(QueryError):
            HashJoinAlgorithm(simple_join_query(), 16, ["nope"])

    def test_shares_concentrate_on_keys(self):
        algo = HashJoinAlgorithm(simple_join_query(), 16)
        assert algo.shares == {"x": 1, "y": 1, "z": 16}

    def test_multiple_keys_split_budget(self):
        q = parse_query("q(x, y, z) :- S1(x, y, z), S2(x, y)")
        algo = HashJoinAlgorithm(q, 16, ["x", "y"])
        assert algo.shares["x"] == algo.shares["y"] == 4

    def test_complete_on_uniform(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 300, 900, seed=1),
                uniform_relation("S2", 300, 900, seed=2),
            ]
        )
        result = run_one_round(HashJoinAlgorithm(q, 8), db, 8, verify=True)
        assert result.is_complete

    def test_collapses_under_skew_example_3_3(self):
        """All tuples share z: one server receives everything."""
        q = simple_join_query()
        m = 60
        db = Database.from_relations(
            [
                single_value_relation("S1", m, 200, seed=3),
                single_value_relation("S2", m, 200, seed=4),
            ]
        )
        result = run_one_round(HashJoinAlgorithm(q, 8), db, 8, verify=True)
        assert result.is_complete
        assert result.max_load_tuples == 2 * m  # total collapse


class TestBroadcastRule:
    def test_reduced_query_drops_atoms(self):
        q = triangle_query()
        reduced = reduced_query(q, ["S3"])
        assert [a.name for a in reduced.atoms] == ["S1", "S2"]
        assert set(reduced.head) == {"x1", "x2", "x3"}

    def test_reduced_query_keeps_largest_when_all_dropped(self):
        q = simple_join_query()
        reduced = reduced_query(q, ["S1", "S2"])
        assert reduced.num_atoms == 1

    def test_complete_with_tiny_relation(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 500, 2000, seed=5),
                uniform_relation("S2", 4, 2000, seed=6),  # tiny: broadcast
            ]
        )
        result = run_one_round(BroadcastHyperCube(q), db, 16, verify=True)
        assert result.is_complete
        assert "S2" in result.details["broadcast"]

    def test_no_broadcast_when_balanced(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 400, 2000, seed=7),
                uniform_relation("S2", 400, 2000, seed=8),
            ]
        )
        result = run_one_round(BroadcastHyperCube(q), db, 16, verify=True)
        assert result.is_complete
        assert result.details["broadcast"] == []

    def test_broadcast_load_stays_small(self):
        """Broadcasting M_j <= M/p adds at most ~M/p per server."""
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 1600, 20000, seed=9),
                uniform_relation("S2", 8, 20000, seed=10),
            ]
        )
        p = 16
        result = run_one_round(BroadcastHyperCube(q), db, p, compute_answers=False)
        m_bits = db.relation("S1").bits
        # Ideal is M/p; allow hashing slack.
        assert result.max_load_bits <= 4 * m_bits / p


class TestCartesianGrid:
    def test_rejects_shared_variables(self):
        with pytest.raises(QueryError):
            CartesianProductAlgorithm(simple_join_query())

    def test_optimal_grid_square_case(self):
        dims = optimal_grid({"S1": 1000, "S2": 1000}, 16)
        assert dims == {"S1": 4, "S2": 4}

    def test_optimal_grid_rectangular_case(self):
        """p1/p2 tracks sqrt(m1/m2) (Section 1)."""
        dims = optimal_grid({"S1": 4000, "S2": 1000}, 16)
        assert dims["S1"] == 8 and dims["S2"] == 2

    def test_optimal_grid_broadcast_regime(self):
        """m1 << m2/p: S1 is effectively broadcast (footnote 1)."""
        dims = optimal_grid({"S1": 2, "S2": 100000}, 16)
        assert dims["S1"] == 1
        assert dims["S2"] == 16

    def test_grid_product_bounded(self):
        for p in (3, 7, 16, 60):
            dims = optimal_grid({"S1": 500, "S2": 300, "S3": 100}, p)
            assert math.prod(dims.values()) <= p

    def test_complete_on_product(self):
        q = cartesian_product_query(2)
        db = Database.from_relations(
            [
                uniform_relation("S1", 40, 500, arity=1, seed=11),
                uniform_relation("S2", 25, 500, arity=1, seed=12),
            ]
        )
        result = run_one_round(CartesianProductAlgorithm(q), db, 8, verify=True)
        assert result.is_complete
        assert result.answer_count == 40 * 25

    def test_load_close_to_lower_bound(self):
        """Footnote 2: L = Theta(sqrt(m1 m2 / p))."""
        q = cartesian_product_query(2)
        db = Database.from_relations(
            [
                uniform_relation("S1", 4096, 10**6, arity=1, seed=13),
                uniform_relation("S2", 1024, 10**6, arity=1, seed=14),
            ]
        )
        p = 16
        result = run_one_round(
            CartesianProductAlgorithm(q), db, p, compute_answers=False
        )
        bits = {name: db.relation(name).bits for name in ("S1", "S2")}
        bound = cartesian_lower_bound_bits(bits, p)
        assert result.max_load_bits >= bound  # lower bound holds
        assert result.max_load_bits <= 4 * bound  # and is nearly achieved

    def test_three_way_product(self):
        q = cartesian_product_query(3)
        db = Database.from_relations(
            [
                uniform_relation("S1", 12, 100, arity=1, seed=15),
                uniform_relation("S2", 10, 100, arity=1, seed=16),
                uniform_relation("S3", 8, 100, arity=1, seed=17),
            ]
        )
        result = run_one_round(CartesianProductAlgorithm(q), db, 8, verify=True)
        assert result.is_complete
        assert result.answer_count == 12 * 10 * 8
