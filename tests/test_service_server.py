"""The HTTP service lifecycle: ``repro serve`` / ``repro submit``."""

import threading

import pytest

from repro.api import RUN_RECORD_FIELDS, validate_record
from repro.service import (
    ReproService,
    ServiceBusyError,
    ServiceClient,
    ServiceClientError,
)

JOIN_TEXT = "q(x, y, z) :- S1(x, z), S2(y, z)"

PLAN_SPEC = {
    "query": JOIN_TEXT, "p": 8,
    "workload": "zipf", "m": 60, "skew": 1.0, "seed": 0,
}

SWEEP_SPEC = {
    "query": JOIN_TEXT, "workload": "zipf",
    "p_values": [4], "m_values": [40], "skews": [0.0, 1.5],
    "algorithms": ["hashjoin"],
}


@pytest.fixture
def service():
    """One live server on an ephemeral port, always shut down."""
    instance = ReproService(port=0, job_workers=2)
    instance.serve_in_background()
    client = ServiceClient(instance.url, timeout=30.0)
    client.wait_until_healthy()
    try:
        yield instance, client
    finally:
        instance.shutdown()


@pytest.fixture
def paused_service():
    """A server whose queue never drains — deterministic backpressure."""
    instance = ReproService(port=0, job_workers=0, queue_size=2)
    instance.serve_in_background()
    client = ServiceClient(instance.url, timeout=30.0)
    client.wait_until_healthy()
    try:
        yield instance, client
    finally:
        instance.shutdown()


class TestLifecycle:
    def test_health_and_metrics(self, service):
        _, client = service
        health = client.health()
        assert health["state"] == "ok"
        assert "counters" in client.metrics()

    def test_plan_job_submit_poll_result(self, service):
        _, client = service
        job = client.submit("plan", PLAN_SPEC)
        assert job["state"] in ("queued", "running")
        final = client.wait(job["id"])
        assert final["state"] == "done"
        plan = client.result(job["id"])["result"]
        assert plan["p"] == 8
        assert plan["chosen"] in {
            prediction["key"] for prediction in plan["predictions"]
        }

    def test_stats_job(self, service):
        _, client = service
        job = client.submit("stats", PLAN_SPEC)
        client.wait(job["id"])
        stats = client.result(job["id"])["result"]
        assert stats["relations"] == {"S1": 60, "S2": 60}
        assert stats["total_heavy_count"] >= 0

    def test_sweep_job_returns_schema_valid_records(self, service):
        _, client = service
        job = client.submit("sweep", SWEEP_SPEC)
        final = client.wait(job["id"], timeout=180)
        assert final["state"] == "done"
        result = client.result(job["id"])["result"]
        assert result["count"] == 2
        assert result["failed"] == 0
        for entry in result["records"]:
            validate_record(entry)
            assert set(entry) == set(RUN_RECORD_FIELDS)
            assert entry["status"] == "ok"

    def test_result_before_done_is_409(self, paused_service):
        _, client = paused_service
        job = client.submit("plan", PLAN_SPEC)
        with pytest.raises(ServiceClientError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 409

    def test_unknown_job_is_404(self, service):
        _, client = service
        with pytest.raises(ServiceClientError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404

    def test_bad_submission_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit("race", PLAN_SPEC)
        assert excinfo.value.status == 400
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit("plan", {})
        assert excinfo.value.status == 400

    def test_failed_job_reports_error(self, service):
        _, client = service
        job = client.submit("plan", {"query": "not a query at all"})
        final = client.wait(job["id"])
        assert final["state"] == "failed"
        assert final["error"]
        with pytest.raises(ServiceClientError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 410


class TestBackpressure:
    def test_full_queue_rejects_with_429(self, paused_service):
        _, client = paused_service
        client.submit("plan", PLAN_SPEC)
        client.submit("plan", PLAN_SPEC)
        with pytest.raises(ServiceBusyError) as excinfo:
            client.submit("plan", PLAN_SPEC)
        assert excinfo.value.status == 429
        # The rejection is observable and the queue is undamaged.
        counters = client.metrics()["counters"]
        assert counters["service.jobs.rejected"] == 1
        assert counters["service.jobs.submitted"] == 2

    def test_cancel_queued_job(self, paused_service):
        _, client = paused_service
        job = client.submit("plan", PLAN_SPEC)
        assert client.cancel(job["id"]) is True
        assert client.status(job["id"])["state"] == "cancelled"
        # A cancelled slot frees queue capacity only once a worker drains
        # it, so the job table still lists the job.
        assert client.cancel(job["id"]) is False


class TestCatalogCache:
    def test_repeated_catalog_hits_the_cache(self, service):
        instance, client = service
        first = client.submit("plan", PLAN_SPEC)
        client.wait(first["id"])
        cold = client.metrics()["counters"]
        assert cold.get("service.cache.hit", 0) == 0
        assert cold["service.cache.miss"] >= 3  # query, stats, plan

        second = client.submit("plan", PLAN_SPEC)
        client.wait(second["id"])
        warm = client.metrics()["counters"]
        assert warm["service.cache.hit"] >= 3
        assert warm["service.cache.miss"] == cold["service.cache.miss"]
        assert client.result(second["id"])["result"] == \
            client.result(first["id"])["result"]
        assert instance.queue.cache.hit_rate > 0

    def test_health_exposes_cache_occupancy(self, service):
        _, client = service
        job = client.submit("plan", PLAN_SPEC)
        client.wait(job["id"])
        health = client.health()
        assert health["cache_entries"] >= 3


class TestConcurrentClients:
    def test_two_clients_submit_against_one_server(self, service):
        """The acceptance scenario: two concurrent submitters both
        complete, and the second catalog-identical request hits the
        cache."""
        instance, client = service
        outcomes = {}

        def _submit(name):
            own_client = ServiceClient(instance.url, timeout=30.0)
            job = own_client.submit("plan", PLAN_SPEC)
            final = own_client.wait(job["id"])
            outcomes[name] = (
                final["state"],
                own_client.result(job["id"])["result"]["chosen"],
            )

        threads = [
            threading.Thread(target=_submit, args=(name,))
            for name in ("first", "second")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert outcomes["first"][0] == "done"
        assert outcomes["second"][0] == "done"
        assert outcomes["first"][1] == outcomes["second"][1]
        counters = client.metrics()["counters"]
        assert counters["service.jobs.done"] == 2
        # Identical catalogs: at least one side was served from cache.
        # (Both may build if they race the first lookup; the cache
        # documents that as deterministic duplicate work.)
        assert counters["service.cache.hit"] + \
            counters["service.cache.miss"] >= 6

    def test_shutdown_endpoint_stops_the_server(self):
        instance = ReproService(port=0, job_workers=1)
        thread = instance.serve_in_background()
        client = ServiceClient(instance.url, timeout=30.0)
        client.wait_until_healthy()
        assert client.shutdown()["state"] == "shutting-down"
        # The listener goes away; subsequent requests fail to connect.
        thread.join(timeout=30)
        assert not thread.is_alive()
        with pytest.raises(ServiceClientError):
            client.health()
