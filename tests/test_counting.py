"""Unit tests for the counting lower bound (Theorem 3.5(1))."""

import math

from repro.core import (
    answers_per_server_bound,
    lower_bound,
    lower_bound_constant,
    per_packing_fraction_bounds,
    reported_fraction_bound,
)
from repro.core.counting import bits_of_cardinalities, log_p
from repro.query import simple_join_query, triangle_query


class TestConstant:
    def test_binary_relations(self):
        """c = (2 - delta) / 6 for binary atoms."""
        q = triangle_query()
        assert math.isclose(lower_bound_constant(q, delta=0.5), 1.5 / 6)

    def test_smaller_delta_larger_constant(self):
        q = triangle_query()
        assert lower_bound_constant(q, 0.1) > lower_bound_constant(q, 1.0)


class TestFractionBounds:
    def test_fraction_small_when_load_below_bound(self):
        q = triangle_query()
        bits = {"S1": 2.0**20, "S2": 2.0**20, "S3": 2.0**20}
        p = 64
        target = lower_bound(q, bits, p).bits
        # p (L / L_lower)^u with u = 3/2: a 1000x load deficit leaves only
        # 64 * 1000^-1.5 ~ 0.002 of the answers reachable.
        fraction = reported_fraction_bound(q, bits, p, load_bits=target / 1000)
        assert fraction < 0.01

    def test_fraction_capped_at_one(self):
        q = triangle_query()
        bits = {"S1": 2.0**20, "S2": 2.0**20, "S3": 2.0**20}
        fraction = reported_fraction_bound(q, bits, 64, load_bits=2.0**30)
        assert fraction == 1.0

    def test_fraction_monotone_in_load(self):
        q = simple_join_query()
        bits = {"S1": 2.0**18, "S2": 2.0**18}
        p = 64
        fractions = [
            reported_fraction_bound(q, bits, p, load_bits=2.0**e)
            for e in range(6, 16)
        ]
        assert fractions == sorted(fractions)

    def test_per_packing_breakdown(self):
        q = triangle_query()
        bits = {"S1": 2.0**20, "S2": 2.0**20, "S3": 2.0**20}
        bounds = per_packing_fraction_bounds(q, bits, 64, load_bits=2.0**10)
        assert len(bounds) == 4  # the four pk(C3) vertices
        assert all(0 <= v <= 1 for v in bounds.values())

    def test_scaling_exponent_matches_packing_value(self):
        """Halving L scales the best fraction by 2^-u at the optimal u."""
        q = triangle_query()
        bits = {"S1": 2.0**24, "S2": 2.0**24, "S3": 2.0**24}
        p = 64
        load = 2.0**12
        f1 = reported_fraction_bound(q, bits, p, load_bits=load)
        f2 = reported_fraction_bound(q, bits, p, load_bits=load / 2)
        # Optimal packing value for equal-size C3 is 3/2.
        assert math.isclose(f1 / f2, 2 ** 1.5, rel_tol=1e-6)


class TestAbsoluteBound:
    def test_answers_per_server(self):
        q = simple_join_query()
        cardinalities = {"S1": 1000, "S2": 1000}
        n = 10_000
        bits = bits_of_cardinalities(q, cardinalities, n)
        value = answers_per_server_bound(
            q, bits, p=16, load_bits=100.0, cardinalities=cardinalities,
            domain_size=n,
        )
        assert value >= 0.0
        # Full-load servers report everything.
        full = answers_per_server_bound(
            q, bits, p=16, load_bits=2.0**40, cardinalities=cardinalities,
            domain_size=n,
        )
        expected = 1000 * 1000 / n  # Lemma A.1
        assert math.isclose(full, expected, rel_tol=1e-9)


class TestHelpers:
    def test_bits_of_cardinalities(self):
        q = simple_join_query()
        bits = bits_of_cardinalities(q, {"S1": 10, "S2": 20}, 1024)
        assert bits == {"S1": 200.0, "S2": 400.0}

    def test_log_p(self):
        assert math.isclose(log_p(64.0, 4), 3.0)
