"""The bound-driven planner: ranking, instantiation, optimality gaps.

The satellite contract from the issue: on the canonical queries the
auto-planner must never instantiate an inapplicable algorithm, and its
predicted ranking must match the measured ``max_load_bits`` ordering on
skew-free workloads (near-ties excluded — hash fluctuations make loads
within a small factor of each other order-unstable by nature).
"""

import pytest

from repro.api import (
    PlanError,
    QueryPlan,
    applicable_specs,
    autoplan,
    get_spec,
    plan,
)
from repro.core import lower_bound
from repro.data import uniform_relation, zipf_relation
from repro.mpc import run_one_round
from repro.query import parse_query
from repro.seq import Database
from repro.stats import HeavyHitterStatistics, SimpleStatistics

JOIN = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
TRIANGLE = parse_query("C3(x, y, z) :- R(x, y), S(y, z), T(z, x)")
STAR = parse_query("star(x, y, z, w) :- R(x, y), S(x, z), T(x, w)")
CARTESIAN = parse_query("q(x, y) :- R(x), S(y)")
CANONICAL = {
    "join": JOIN,
    "star": STAR,
    "triangle": TRIANGLE,
    "cartesian": CARTESIAN,
}

P = 8


def _uniform_db(query, m=150, seed=11):
    return Database.from_relations([
        uniform_relation(atom.name, m, 8 * m, arity=atom.arity, seed=seed + i)
        for i, atom in enumerate(query.atoms)
    ])


class TestPlanShape:
    def test_plan_parses_textual_queries(self):
        db = _uniform_db(JOIN)
        query_plan = plan("q(x, y, z) :- S1(x, z), S2(y, z)", db=db, p=P)
        assert isinstance(query_plan, QueryPlan)
        assert query_plan.p == P

    def test_plan_attaches_theorem_36_lower_bound(self):
        db = _uniform_db(JOIN)
        stats = SimpleStatistics.of(db)
        query_plan = plan(JOIN, stats, P)
        expected = lower_bound(JOIN, stats.bits_vector(JOIN), P).bits
        assert query_plan.lower_bound_bits == pytest.approx(expected)
        for prediction in query_plan.applicable:
            assert prediction.lower_bound_bits == pytest.approx(expected)
            assert prediction.optimality_ratio == pytest.approx(
                prediction.predicted_load_bits / expected
            )

    def test_ranking_is_sorted_by_predicted_load(self):
        for query in CANONICAL.values():
            db = _uniform_db(query)
            query_plan = plan(query, db=db, p=P)
            loads = [
                pr.predicted_load_bits for pr in query_plan.applicable
            ]
            assert loads == sorted(loads)
            assert query_plan.chosen.key == query_plan.applicable[0].key

    def test_inapplicable_entries_carry_reasons(self):
        db = _uniform_db(TRIANGLE)
        query_plan = plan(TRIANGLE, db=db, p=P)
        skipped = {
            pr.key: pr.reason
            for pr in query_plan.predictions
            if not pr.applicable
        }
        assert "skew-join" in skipped and "two atoms" in skipped["skew-join"]
        assert "hashjoin" in skipped

    def test_plan_requires_statistics_or_database(self):
        with pytest.raises(PlanError, match="statistics or a database"):
            plan(JOIN, p=P)

    def test_restricting_algorithms(self):
        db = _uniform_db(JOIN)
        query_plan = plan(
            JOIN, db=db, p=P, algorithms=["hashjoin", "hypercube-equal"]
        )
        assert {pr.key for pr in query_plan.predictions} == {
            "hashjoin", "hypercube-equal",
        }

    def test_explain_mentions_every_algorithm(self):
        db = _uniform_db(JOIN)
        text = plan(JOIN, db=db, p=P).explain()
        for spec in applicable_specs(JOIN):
            assert spec.key in text
        assert "lower bound" in text


class TestAutoplan:
    @pytest.mark.parametrize("label", sorted(CANONICAL))
    def test_autoplan_never_instantiates_inapplicable(self, label):
        """The chosen algorithm's class must declare the query applicable."""
        query = CANONICAL[label]
        db = _uniform_db(query)
        algorithm = autoplan(query, db=db, p=P)
        matching = [
            spec for spec in applicable_specs(query)
            if isinstance(algorithm, spec.algorithm_class)
        ]
        assert matching, (label, type(algorithm).__name__)
        for spec in matching:
            assert spec.applicability(query) is None

    @pytest.mark.parametrize("label", sorted(CANONICAL))
    def test_autoplan_picks_minimum_predicted_load(self, label):
        query = CANONICAL[label]
        db = _uniform_db(query)
        stats = HeavyHitterStatistics.of(query, db, P)
        query_plan = plan(query, stats, P)
        best = min(
            query_plan.applicable, key=lambda pr: pr.predicted_load_bits
        )
        assert query_plan.chosen.predicted_load_bits == pytest.approx(
            best.predicted_load_bits
        )
        algorithm = autoplan(query, stats, P)
        chosen_spec = get_spec(query_plan.chosen.key)
        assert isinstance(algorithm, chosen_spec.algorithm_class)

    @pytest.mark.parametrize("label", sorted(CANONICAL))
    def test_predicted_ranking_matches_measured_on_skew_free(self, label):
        """Pairs separated by >= 1.5x in prediction must measure in the
        same order; closer pairs are legitimate near-ties."""
        query = CANONICAL[label]
        db = _uniform_db(query)
        stats = HeavyHitterStatistics.of(query, db, P)
        query_plan = plan(query, stats, P)
        measured = {}
        for prediction in query_plan.applicable:
            algorithm = query_plan.instantiate(prediction.key)
            measured[prediction.key] = run_one_round(
                algorithm, db, P, compute_answers=False
            ).max_load_bits
        ranked = query_plan.applicable
        for i, first in enumerate(ranked):
            for second in ranked[i + 1:]:
                if (second.predicted_load_bits
                        >= 1.5 * first.predicted_load_bits):
                    assert measured[first.key] <= measured[second.key], (
                        label, first.key, second.key, measured,
                    )

    def test_skew_steers_the_choice(self):
        """The planner's raison d'etre: skew-free picks a plain grid
        algorithm, heavy skew picks a skew-aware one."""
        m = 300
        skewed = Database.from_relations([
            zipf_relation("S1", m, 4 * m, skew=1.8, seed=1),
            zipf_relation("S2", m, 4 * m, skew=1.8, seed=2),
        ])
        flat = _uniform_db(JOIN, m=m)
        flat_choice = plan(JOIN, db=flat, p=16).chosen.key
        skewed_choice = plan(JOIN, db=skewed, p=16).chosen.key
        assert flat_choice in {"hypercube-lp", "hypercube-broadcast",
                               "hashjoin", "bin-hypercube", "skew-join"}
        assert skewed_choice in {"skew-join", "bin-hypercube"}
        # And the skewed choice must not be a skew-oblivious grid.
        assert skewed_choice not in {"hashjoin", "hypercube-lp"}

    def test_autoplan_runs_complete(self):
        """The planner's winner actually answers the query."""
        for query in CANONICAL.values():
            db = _uniform_db(query, m=80)
            algorithm = autoplan(query, db=db, p=4)
            result = run_one_round(algorithm, db, 4, verify=True)
            assert result.is_complete, query.name
