"""End-to-end reproductions of the paper's worked examples.

Each test class regenerates one numbered example from the paper at small
scale; the benchmark suite regenerates them at full scale.
"""

import math
from fractions import Fraction

import pytest

from repro.core import (
    HashJoinAlgorithm,
    HyperCubeAlgorithm,
    lower_bound,
    non_dominated_packing_vertices,
    replication_rate_lower_bound,
    residual_lower_bound,
    vertex_loads,
)
from repro.data import single_value_relation, uniform_relation
from repro.mpc import run_one_round
from repro.query import simple_join_query, triangle_query
from repro.seq import Database
from repro.stats import DegreeStatistics, SimpleStatistics


class TestExample33:
    """Example 3.3: two share allocations for the simple join."""

    def _skewed_db(self, m=120):
        return Database.from_relations(
            [
                single_value_relation("S1", m, 400, seed=1),
                single_value_relation("S2", m, 400, seed=2),
            ]
        )

    def _uniform_db(self, m=512):
        return Database.from_relations(
            [
                uniform_relation("S1", m, 4096, seed=3),
                uniform_relation("S2", m, 4096, seed=4),
            ]
        )

    def test_cube_shares_on_skewed_data(self):
        """Shares (p^(1/3))^3: load O(m/p^(1/3)) even under worst skew."""
        p = 27
        m = 120
        db = self._skewed_db(m)
        algo = HyperCubeAlgorithm.with_equal_shares(simple_join_query(), p)
        result = run_one_round(algo, db, p, verify=True)
        assert result.is_complete
        # Every S1 tuple replicates along y (3 copies): per-server expectation
        # is 2 * 3m / 27; the guarantee is <= 2m/p^(1/3) = 2m/3.
        assert result.max_load_tuples <= 2 * m / 3 + 40

    def test_hash_join_on_skewed_data_collapses(self):
        """Shares (1,1,p): load Omega(m) when all z values collide."""
        p = 27
        m = 120
        db = self._skewed_db(m)
        algo = HashJoinAlgorithm(simple_join_query(), p)
        result = run_one_round(algo, db, p, verify=True)
        assert result.is_complete
        assert result.max_load_tuples == 2 * m  # everything on one server

    def test_hash_join_on_uniform_data_is_ideal(self):
        """Shares (1,1,p): load O(m/p) on skew-free data."""
        p = 16
        m = 512
        db = self._uniform_db(m)
        algo = HashJoinAlgorithm(simple_join_query(), p)
        result = run_one_round(algo, db, p, verify=True)
        assert result.is_complete
        # Ideal is 2m/p = 64 tuples; allow hashing variance.
        assert result.max_load_tuples <= 4 * 2 * m / p

    def test_cube_beats_hash_join_under_skew(self):
        p = 27
        db = self._skewed_db()
        cube = run_one_round(
            HyperCubeAlgorithm.with_equal_shares(simple_join_query(), p),
            db, p, compute_answers=False,
        )
        hashed = run_one_round(
            HashJoinAlgorithm(simple_join_query(), p),
            db, p, compute_answers=False,
        )
        assert cube.max_load_tuples < hashed.max_load_tuples


class TestExample37:
    """Example 3.7: the four pk(C3) vertices and their loads."""

    def test_vertex_table(self):
        q = triangle_query()
        vertices = non_dominated_packing_vertices(q)
        assert len(vertices) == 4
        half = Fraction(1, 2)
        assert {"S1": half, "S2": half, "S3": half} in vertices

    def test_load_is_max_of_four_expressions(self):
        q = triangle_query()
        m1, m2, m3 = 2.0**22, 2.0**19, 2.0**15
        bits = {"S1": m1, "S2": m2, "S3": m3}
        p = 64
        expressions = {
            (m1 * m2 * m3) ** (1 / 3) / p ** (2 / 3),
            m1 / p,
            m2 / p,
            m3 / p,
        }
        computed = {value for _, value in vertex_loads(q, bits, p)}
        for expected in expressions:
            assert any(math.isclose(expected, c, rel_tol=1e-9) for c in computed)
        assert math.isclose(
            lower_bound(q, bits, p).bits, max(expressions), rel_tol=1e-9
        )

    def test_regime_switch(self):
        """Which vertex wins depends on the cardinalities."""
        q = triangle_query()
        p = 64
        balanced = lower_bound(q, {"S1": 2.0**20, "S2": 2.0**20, "S3": 2.0**20}, p)
        assert float(sum(balanced.packing.values())) == 1.5
        lopsided = lower_bound(q, {"S1": 2.0**30, "S2": 2.0**8, "S3": 2.0**8}, p)
        assert lopsided.packing["S1"] == 1


class TestExample48:
    """Example 4.8: residual lower bounds for the join and the triangle."""

    def test_join_residual_formula(self):
        q = simple_join_query()
        m = 90
        db = Database.from_relations(
            [
                single_value_relation("S1", m, 256, seed=5),
                single_value_relation("S2", m, 256, seed=6),
            ]
        )
        p = 16
        stats = DegreeStatistics.of(q, db, {"z"})
        bound = residual_lower_bound(q, stats, p)
        # sqrt(sum_h M1(h) M2(h) / p) with a single h carrying everything.
        bits_1 = db.relation("S1").bits
        bits_2 = db.relation("S2").bits
        assert math.isclose(
            bound.bits, math.sqrt(bits_1 * bits_2 / p), rel_tol=1e-9
        )

    def test_triangle_saturating_packing(self):
        q = triangle_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 120, 100, seed=7),
                uniform_relation("S2", 120, 100, seed=8),
                uniform_relation("S3", 120, 100, seed=9),
            ]
        )
        stats = DegreeStatistics.of(q, db, {"x1"})
        bound = residual_lower_bound(q, stats, 16)
        assert bound is not None
        # The witness packing must saturate x1 (S1 and S3 jointly).
        assert bound.packing["S1"] + bound.packing["S3"] >= 1


class TestExample52:
    """Example 5.2: triangle replication rate in the MapReduce model."""

    def test_equal_size_bound(self):
        q = triangle_query()
        M = 2.0**18
        L = 2.0**12
        value, packing = replication_rate_lower_bound(q, {"S1": M, "S2": M, "S3": M}, L)
        assert math.isclose(value, math.sqrt(M / L) / 3, rel_tol=1e-9)
        assert float(sum(packing.values())) == 1.5

    def test_unequal_sizes_still_bounded(self):
        q = triangle_query()
        value, _ = replication_rate_lower_bound(
            q, {"S1": 2.0**20, "S2": 2.0**16, "S3": 2.0**12}, 2.0**10
        )
        assert value > 0.5  # nontrivial even with very unequal sizes


class TestGoldenLoadBounds:
    """Golden numbers for the Theorem 3.4 / Corollary 3.2(ii) example
    configurations.

    These pin the *quantities* the paper's theorems are about —
    ``expected_max_load_bits`` (the skew-free expectation
    ``max_j M_j / prod_{i in S_j} p_i``) and ``worst_case_load_bits``
    (the any-data guarantee ``max_j M_j / min_{i in S_j} p_i``) — to the
    exact values the seed implementation produces, so an execution-layer or
    share-rounding refactor cannot silently shift the bounds.
    """

    def _join_stats(self):
        return SimpleStatistics.from_cardinalities(
            simple_join_query(), {"S1": 4096, "S2": 1024},
            domain_size=100_000,
        )

    def test_theorem_34_lp_shares_join(self):
        """Lopsided join, p=64: the LP puts all replication on y=1."""
        stats = self._join_stats()
        algo = HyperCubeAlgorithm.with_optimal_shares(
            simple_join_query(), stats, 64
        )
        assert algo.shares == {"x": 4, "y": 1, "z": 16}
        assert algo.expected_max_load_bits(stats) == pytest.approx(
            2126.033980727912, rel=1e-12
        )
        assert algo.worst_case_load_bits(stats) == pytest.approx(
            34016.54369164659, rel=1e-12
        )

    def test_corollary_32ii_equal_shares_join(self):
        """Equal shares p^(1/3)=4: worst case M_1 / 4 on any data."""
        stats = self._join_stats()
        algo = HyperCubeAlgorithm.with_equal_shares(simple_join_query(), 64)
        assert algo.shares == {"x": 4, "y": 4, "z": 4}
        assert algo.expected_max_load_bits(stats) == pytest.approx(
            8504.135922911648, rel=1e-12
        )
        # M_1 = 2 * 4096 * log2(1e5) bits; min share 4.
        assert algo.worst_case_load_bits(stats) == pytest.approx(
            34016.54369164659, rel=1e-12
        )

    def _triangle_stats(self):
        return SimpleStatistics.from_cardinalities(
            triangle_query(), {"S1": 4096, "S2": 4096, "S3": 4096},
            domain_size=16384,
        )

    def test_theorem_34_lp_shares_triangle(self):
        """Equal-size C3, p=64: LP shares are the 4x4x4 cube, load M/16."""
        stats = self._triangle_stats()
        algo = HyperCubeAlgorithm.with_optimal_shares(
            triangle_query(), stats, 64
        )
        assert algo.shares == {"x1": 4, "x2": 4, "x3": 4}
        assert algo.expected_max_load_bits(stats) == pytest.approx(
            7168.0, rel=1e-12
        )
        assert algo.worst_case_load_bits(stats) == pytest.approx(
            28672.0, rel=1e-12
        )

    def test_corollary_32ii_equal_shares_triangle(self):
        """C3 at p=27: the 3x3x3 cube guarantees M/3 = 38229.33... bits."""
        stats = self._triangle_stats()
        algo = HyperCubeAlgorithm.with_equal_shares(triangle_query(), 27)
        assert algo.shares == {"x1": 3, "x2": 3, "x3": 3}
        assert algo.expected_max_load_bits(stats) == pytest.approx(
            12743.111111111111, rel=1e-12
        )
        # M = 2 * 4096 * 14 = 114688 bits; 114688 / 3.
        assert algo.worst_case_load_bits(stats) == pytest.approx(
            38229.333333333336, rel=1e-12
        )


class TestSection31SharesExample:
    """The 'generalizing the example' paragraph: equal shares p^(1/k) give
    max_j M_j / p^(1/k) worst case for any query."""

    def test_triangle_worst_case_guarantee(self):
        q = triangle_query()
        p = 27
        db = Database.from_relations(
            [
                single_value_relation("S1", 100, 256, fixed_position=0, seed=10),
                single_value_relation("S2", 100, 256, fixed_position=0, seed=11),
                single_value_relation("S3", 100, 256, fixed_position=0, seed=12),
            ]
        )
        stats = SimpleStatistics.of(db)
        algo = HyperCubeAlgorithm.with_equal_shares(q, p)
        result = run_one_round(algo, db, p, compute_answers=False)
        guarantee = algo.worst_case_load_bits(stats)
        assert result.max_load_bits <= 3 * guarantee
