"""Unit tests for Relation and Database containers."""

import math

import pytest

from repro.query import parse_query
from repro.seq import Database, Relation, RelationError, bits_per_value


class TestBitsPerValue:
    def test_log2(self):
        assert bits_per_value(1024) == 10.0

    def test_degenerate_domain_clamped_to_one_bit(self):
        assert bits_per_value(1) == 1.0
        assert bits_per_value(2) == 1.0

    def test_rejects_empty_domain(self):
        with pytest.raises(RelationError):
            bits_per_value(0)


class TestRelation:
    def test_build_infers_arity_and_domain(self):
        r = Relation.build("S", [(0, 5), (1, 2)])
        assert r.arity == 2
        assert r.domain_size == 6
        assert r.cardinality == 2

    def test_build_deduplicates(self):
        r = Relation.build("S", [(0, 1), (0, 1), (1, 1)])
        assert r.cardinality == 2

    def test_empty_needs_explicit_arity(self):
        with pytest.raises(RelationError):
            Relation.build("S", [])
        r = Relation.build("S", [], arity=2, domain_size=10)
        assert r.cardinality == 0

    def test_rejects_out_of_domain(self):
        with pytest.raises(RelationError):
            Relation("S", 1, frozenset({(5,)}), domain_size=3)

    def test_rejects_wrong_arity_tuple(self):
        with pytest.raises(RelationError):
            Relation("S", 2, frozenset({(1,)}), domain_size=3)

    def test_bits_formula(self):
        """M_j = a_j * m_j * log2(n) (Section 3)."""
        r = Relation.build("S", [(0, 1), (2, 3)], domain_size=16)
        assert r.tuple_bits == 2 * 4.0
        assert r.bits == 2 * 2 * 4.0

    def test_project(self):
        r = Relation.build("S", [(0, 1), (2, 1), (2, 3)], domain_size=4)
        proj = r.project([1])
        assert proj.tuples == frozenset({(1,), (3,)})
        with pytest.raises(RelationError):
            r.project([5])

    def test_select(self):
        r = Relation.build("S", [(0, 1), (2, 1), (2, 3)], domain_size=4)
        sel = r.select({1: 1})
        assert sel.tuples == frozenset({(0, 1), (2, 1)})
        with pytest.raises(RelationError):
            r.select({9: 0})

    def test_frequencies_are_degrees(self):
        r = Relation.build("S", [(0, 1), (2, 1), (3, 1), (3, 0)], domain_size=4)
        freq = r.frequencies([1])
        assert freq[(1,)] == 3
        assert freq[(0,)] == 1
        pair_freq = r.frequencies([0, 1])
        assert pair_freq[(3, 1)] == 1

    def test_rename_and_with_domain(self):
        r = Relation.build("S", [(0, 1)], domain_size=4)
        assert r.rename("T").name == "T"
        assert r.with_domain(100).domain_size == 100
        with pytest.raises(RelationError):
            r.with_domain(1)  # value 1 no longer fits in [0, 1)

    def test_container_protocol(self):
        r = Relation.build("S", [(0, 1), (2, 3)], domain_size=4)
        assert len(r) == 2
        assert (0, 1) in r
        assert set(iter(r)) == {(0, 1), (2, 3)}


class TestDatabase:
    def test_from_relations_and_lookup(self):
        db = Database.from_relations(
            [Relation.build("S1", [(0, 1)]), Relation.build("S2", [(1, 2)])]
        )
        assert db.names == ("S1", "S2")
        assert db.relation("S1").cardinality == 1
        with pytest.raises(RelationError):
            db.relation("S3")

    def test_duplicate_names_rejected(self):
        with pytest.raises(RelationError):
            Database.from_relations(
                [Relation.build("S", [(0,)]), Relation.build("S", [(1,)])]
            )

    def test_domain_is_max(self):
        db = Database.from_relations(
            [
                Relation.build("S1", [(0,)], domain_size=5),
                Relation.build("S2", [(0,)], domain_size=50),
            ]
        )
        assert db.domain_size == 50

    def test_totals(self):
        db = Database.from_relations(
            [
                Relation.build("S1", [(0, 1), (1, 2)], domain_size=4),
                Relation.build("S2", [(3, 3)], domain_size=4),
            ]
        )
        assert db.total_tuples == 3
        assert math.isclose(db.total_bits, 3 * 2 * 2.0)

    def test_validate_against_query(self):
        db = Database.from_relations(
            [Relation.build("S1", [(0, 1)]), Relation.build("S2", [(1, 2)])]
        )
        q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
        db.validate_against(q)  # should not raise
        bad = parse_query("q(x, y, z) :- S1(x, y, z), S2(y, z)")
        with pytest.raises(RelationError):
            db.validate_against(bad)

    def test_empty_database_domain(self):
        assert Database.from_relations([]).domain_size == 1
