"""Unit tests for the query catalog."""

import pytest

from repro.query import (
    cartesian_product_query,
    chain_query,
    clique_query,
    cycle_query,
    simple_join_query,
    star_query,
    triangle_query,
    two_path_query,
)


class TestCatalogShapes:
    def test_simple_join(self):
        q = simple_join_query()
        assert q.head == ("x", "y", "z")
        assert q.atom("S1").variables == ("x", "z")
        assert q.atom("S2").variables == ("y", "z")

    def test_chain_structure(self):
        q = chain_query(3)
        assert q.num_atoms == 3
        assert q.num_variables == 4
        # Consecutive atoms share exactly one variable.
        for i in range(2):
            shared = q.atoms[i].variable_set & q.atoms[i + 1].variable_set
            assert len(shared) == 1

    def test_chain_of_one(self):
        q = chain_query(1)
        assert q.num_atoms == 1
        assert q.num_variables == 2

    def test_cycle_closes(self):
        q = cycle_query(4)
        assert q.num_atoms == 4
        assert q.num_variables == 4
        shared = q.atoms[0].variable_set & q.atoms[-1].variable_set
        assert len(shared) == 1

    def test_triangle_matches_paper_eq4(self):
        q = triangle_query()
        assert str(q) == "C3(x1, x2, x3) :- S1(x1, x2), S2(x2, x3), S3(x3, x1)"

    def test_star_center(self):
        q = star_query(3)
        assert q.num_atoms == 3
        assert all("z" in a.variable_set for a in q.atoms)
        assert q.num_variables == 4

    def test_cartesian_product_disjoint(self):
        q = cartesian_product_query(3)
        seen = set()
        for atom in q.atoms:
            assert not (atom.variable_set & seen)
            seen |= atom.variable_set

    def test_cartesian_product_arity(self):
        q = cartesian_product_query(2, arity=3)
        assert all(a.arity == 3 for a in q.atoms)

    def test_clique_pairs(self):
        q = clique_query(4)
        assert q.num_atoms == 6
        assert q.num_variables == 4

    def test_two_path(self):
        q = two_path_query()
        assert q.num_atoms == 2
        assert q.num_variables == 3

    @pytest.mark.parametrize(
        "factory, bad",
        [
            (chain_query, 0),
            (cycle_query, 1),
            (star_query, 0),
            (cartesian_product_query, 0),
            (clique_query, 1),
        ],
    )
    def test_rejects_degenerate_sizes(self, factory, bad):
        with pytest.raises(ValueError):
            factory(bad)

    def test_connectivity_of_catalog(self):
        assert triangle_query().is_connected()
        assert chain_query(5).is_connected()
        assert star_query(4).is_connected()
        assert not cartesian_product_query(2).is_connected()
