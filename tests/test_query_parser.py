"""Unit tests for the datalog-like query parser."""

import pytest

from repro.query import QueryError, parse_atom, parse_query


class TestParseAtom:
    def test_simple(self):
        atom = parse_atom("S1(x, y)")
        assert atom.name == "S1"
        assert atom.variables == ("x", "y")

    def test_whitespace_tolerance(self):
        atom = parse_atom("  S1 ( x ,y )  ")
        assert atom.variables == ("x", "y")

    def test_primed_variables(self):
        atom = parse_atom("S(x', y)")
        assert atom.variables == ("x'", "y")

    def test_nullary(self):
        assert parse_atom("S()").arity == 0

    def test_rejects_garbage(self):
        with pytest.raises(QueryError):
            parse_atom("S1[x]")

    def test_rejects_bad_variable(self):
        with pytest.raises(QueryError):
            parse_atom("S1(x, 2y)")


class TestParseQuery:
    def test_with_head(self):
        q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
        assert q.name == "q"
        assert q.head == ("x", "y", "z")
        assert [a.name for a in q.atoms] == ["S1", "S2"]

    def test_without_head(self):
        q = parse_query("S1(x, z), S2(y, z)")
        assert q.head == ("x", "z", "y")

    def test_triangle(self):
        q = parse_query("C3(x,y,z) :- R(x,y), S(y,z), T(z,x)")
        assert q.num_atoms == 3
        assert q.atom("T").variables == ("z", "x")

    def test_rejects_non_full_head(self):
        with pytest.raises(QueryError):
            parse_query("q(x) :- S(x, y)")

    def test_rejects_self_join(self):
        with pytest.raises(QueryError):
            parse_query("S(x, y), S(y, z)")

    def test_rejects_missing_comma(self):
        with pytest.raises(QueryError):
            parse_query("S(x, y) T(y, z)")

    def test_rejects_empty_body(self):
        with pytest.raises(QueryError):
            parse_query("   ")

    def test_rejects_bad_head(self):
        with pytest.raises(QueryError):
            parse_query("q(x :- S(x)")

    def test_parse_str_roundtrip(self):
        q = parse_query("q(x, y, z) :- S1(x, z), S2(y, z)")
        assert parse_query(str(q)) == q
