"""Tests for the pinned bench suite (repro.api.bench) and ``repro bench``."""

import copy
import json

import pytest

from repro.api import (
    BENCH_SUITES,
    BenchError,
    calibrate,
    compare_bench,
    rounds_gate_failures,
    run_bench,
    run_rounds_bench,
    run_sketch_bench,
    run_suite,
    sketch_gate_failures,
    suite_gate_failures,
    validate_bench,
)
from repro.cli import main


@pytest.fixture(scope="module")
def document():
    return run_bench(quick=True)


@pytest.fixture(scope="module")
def sketch_document():
    return run_sketch_bench(quick=True, repeats=1)


@pytest.fixture(scope="module")
def rounds_document():
    return run_rounds_bench(quick=True, repeats=1)


class TestRunBench:
    def test_document_is_schema_valid(self, document):
        validate_bench(document)

    def test_entries_cover_the_quick_grid(self, document):
        # 1 query x 1 p x 1 m x 2 skews x 1 seed, every applicable algorithm.
        assert len(document["entries"]) >= 2 * 2
        skews = {entry["skew"] for entry in document["entries"]}
        assert skews == {0.0, 1.2}
        ids = [entry["id"] for entry in document["entries"]]
        assert len(ids) == len(set(ids))

    def test_summary_ratios_are_sane(self, document):
        summary = document["summary"]
        assert summary["total_wall_seconds"] > 0
        assert summary["normalized_wall"] > 0
        assert summary["max_optimality_gap"] >= summary["mean_optimality_gap"] >= 1.0
        assert summary["planner_worst_regret"] >= summary["planner_mean_regret"] >= 1.0

    def test_quick_grid_is_deterministic_where_it_should_be(self, document):
        # Loads and gaps are seeded -> a rerun reproduces them exactly.
        rerun = run_bench(quick=True)
        first = {entry["id"]: entry for entry in document["entries"]}
        for entry in rerun["entries"]:
            assert entry["max_load_bits"] == first[entry["id"]]["max_load_bits"]
            assert entry["optimality_gap"] == first[entry["id"]]["optimality_gap"]

    def test_calibrate_is_positive(self):
        assert calibrate(rounds=1) > 0


class TestValidateBench:
    def test_rejects_non_object(self):
        with pytest.raises(BenchError):
            validate_bench([])

    def test_rejects_missing_field(self, document):
        broken = copy.deepcopy(document)
        del broken["calibration_seconds"]
        with pytest.raises(BenchError, match="calibration_seconds"):
            validate_bench(broken)

    def test_rejects_empty_entries(self, document):
        broken = copy.deepcopy(document)
        broken["entries"] = []
        with pytest.raises(BenchError, match="no entries"):
            validate_bench(broken)

    def test_rejects_duplicate_entry_ids(self, document):
        broken = copy.deepcopy(document)
        broken["entries"].append(broken["entries"][0])
        with pytest.raises(BenchError, match="duplicate"):
            validate_bench(broken)

    def test_rejects_bad_entry_type(self, document):
        broken = copy.deepcopy(document)
        broken["entries"][0]["max_load_bits"] = "a lot"
        with pytest.raises(BenchError, match="max_load_bits"):
            validate_bench(broken)

    def test_rejects_incomplete_summary(self, document):
        broken = copy.deepcopy(document)
        del broken["summary"]["normalized_wall"]
        with pytest.raises(BenchError, match="normalized_wall"):
            validate_bench(broken)


class TestCompareBench:
    def test_identical_documents_pass(self, document):
        assert compare_bench(document, document) == []

    def test_wall_clock_regression_is_caught(self, document):
        slower = copy.deepcopy(document)
        slower["summary"]["normalized_wall"] *= 2
        failures = compare_bench(document, slower)
        assert len(failures) == 1
        assert "wall-clock" in failures[0]

    def test_wall_clock_within_tolerance_passes(self, document):
        slower = copy.deepcopy(document)
        slower["summary"]["normalized_wall"] *= 1.1
        assert compare_bench(document, slower) == []

    def test_optimality_gap_regression_is_caught(self, document):
        worse = copy.deepcopy(document)
        worse["entries"][0]["optimality_gap"] *= 1.5
        failures = compare_bench(document, worse)
        assert any("optimality gap" in failure for failure in failures)
        assert worse["entries"][0]["id"] in " ".join(failures)

    def test_planner_regret_regression_is_caught(self, document):
        worse = copy.deepcopy(document)
        worse["summary"]["planner_worst_regret"] *= 1.5
        failures = compare_bench(document, worse)
        assert any("planner" in failure for failure in failures)

    def test_unshared_entries_are_ignored(self, document):
        current = copy.deepcopy(document)
        for entry in current["entries"]:
            entry["id"] = "other-" + entry["id"]
            entry["optimality_gap"] = (entry["optimality_gap"] or 1.0) * 100
        assert compare_bench(document, current) == []

    def test_custom_tolerance(self, document):
        slower = copy.deepcopy(document)
        slower["summary"]["normalized_wall"] *= 1.3
        assert compare_bench(document, slower, max_regression=0.5) == []
        assert compare_bench(document, slower, max_regression=0.1)

    def test_suite_mismatch_is_an_error(self, document):
        other = copy.deepcopy(document)
        other["suite"] = "micro"
        with pytest.raises(BenchError, match="suite"):
            compare_bench(document, other)


class TestSketchBench:
    def test_document_is_schema_valid(self, sketch_document):
        validate_bench(sketch_document)
        assert sketch_document["suite"] == "sketch"

    def test_entries_cover_both_stats_methods(self, sketch_document):
        methods = {entry["stats"] for entry in sketch_document["entries"]}
        assert methods == {"exact", "sketch"}
        # Same grid for both, so the split is exactly half and half.
        exact = [e for e in sketch_document["entries"]
                 if e["stats"] == "exact"]
        assert len(exact) * 2 == len(sketch_document["entries"])

    def test_sketch_entries_get_an_id_suffix(self, sketch_document):
        for entry in sketch_document["entries"]:
            assert entry["id"].endswith("-sketch") == (
                entry["stats"] == "sketch"
            )

    def test_fidelity_points_cover_the_grid(self, sketch_document):
        grid = sketch_document["grid"]
        expected = (
            len(grid["m_values"]) * len(grid["skews"])
            * len(grid["seeds"]) * len(grid["p_values"])
        )
        assert len(sketch_document["fidelity"]) == expected

    def test_gates_pass_on_a_real_run(self, sketch_document):
        assert sketch_gate_failures(sketch_document) == []
        summary = sketch_document["summary"]
        assert summary["sketch_min_recall"] == 1.0
        assert summary["merge_bit_identical"] == 1.0
        assert summary["regret_ratio"] <= 1.10

    def test_recall_gate_triggers(self, sketch_document):
        doctored = copy.deepcopy(sketch_document)
        doctored["summary"]["sketch_min_recall"] = 0.9
        failures = sketch_gate_failures(doctored)
        assert any("missed true heavy hitters" in f for f in failures)

    def test_merge_gate_triggers(self, sketch_document):
        doctored = copy.deepcopy(sketch_document)
        doctored["summary"]["merge_bit_identical"] = 0.0
        failures = sketch_gate_failures(doctored)
        assert any("bit-identical" in f for f in failures)

    def test_regret_gate_triggers(self, sketch_document):
        doctored = copy.deepcopy(sketch_document)
        doctored["summary"]["regret_ratio"] = 1.5
        failures = sketch_gate_failures(doctored)
        assert any("regret ratio" in f for f in failures)

    def test_self_compare_passes(self, sketch_document):
        assert compare_bench(sketch_document, sketch_document) == []

    def test_core_baseline_is_rejected(self, document, sketch_document):
        with pytest.raises(BenchError, match="suite"):
            compare_bench(document, sketch_document)


class TestRoundsBench:
    def test_document_is_schema_valid(self, rounds_document):
        validate_bench(rounds_document)
        assert rounds_document["suite"] == "rounds"

    def test_entries_carry_round_fields(self, rounds_document):
        seen_rounds = set()
        for entry in rounds_document["entries"]:
            seen_rounds.add(entry["rounds"])
            if entry["rounds"] > 1:
                assert len(entry["round_load_bits"]) == entry["rounds"]
            else:
                assert entry["round_load_bits"] is None
        # The suite runs the one-round field and the two-round triangle
        # side by side on every cell.
        assert seen_rounds == {1, 2}

    def test_gates_pass_on_a_real_run(self, rounds_document):
        assert rounds_gate_failures(rounds_document) == []
        summary = rounds_document["summary"]
        assert summary["two_round_min_speedup_predicted"] > 1.0
        assert summary["two_round_min_speedup_measured"] > 1.0
        assert summary["two_round_min_gap"] >= 1.0
        assert summary["planner_worst_regret"] == pytest.approx(1.0)

    def test_speedup_gate_triggers(self, rounds_document):
        doctored = copy.deepcopy(rounds_document)
        doctored["summary"]["two_round_min_speedup_measured"] = 0.8
        failures = rounds_gate_failures(doctored)
        assert any("measured" in f for f in failures)

    def test_gap_gate_triggers(self, rounds_document):
        doctored = copy.deepcopy(rounds_document)
        doctored["summary"]["two_round_min_gap"] = 0.5
        failures = rounds_gate_failures(doctored)
        assert any("lower bound" in f for f in failures)

    def test_self_compare_passes(self, rounds_document):
        assert compare_bench(rounds_document, rounds_document) == []

    def test_sketch_baseline_is_rejected(self, sketch_document,
                                         rounds_document):
        with pytest.raises(BenchError, match="suite"):
            compare_bench(rounds_document, sketch_document)


class TestSuiteDispatch:
    def test_registry_names_the_three_suites(self):
        assert list(BENCH_SUITES) == ["core", "sketch", "rounds"]

    def test_unknown_suite_lists_choices(self):
        with pytest.raises(BenchError) as excinfo:
            run_suite("quantum")
        message = str(excinfo.value)
        for name in BENCH_SUITES:
            assert name in message

    def test_gate_dispatch_by_document_suite(self, document, sketch_document,
                                             rounds_document):
        assert suite_gate_failures(document) == []
        assert suite_gate_failures(sketch_document) == []
        assert suite_gate_failures(rounds_document) == []
        doctored = copy.deepcopy(rounds_document)
        doctored["summary"]["two_round_min_speedup_predicted"] = 0.5
        assert suite_gate_failures(doctored) != []


class TestBenchCommand:
    def test_emits_schema_valid_document(self, tmp_path, capsys):
        output = tmp_path / "BENCH_core.json"
        assert main(["bench", "--quick", "--output", str(output), "-q"]) == 0
        validate_bench(json.loads(output.read_text()))

    def test_passes_against_its_own_baseline(self, tmp_path):
        output = tmp_path / "BENCH_core.json"
        assert main(["bench", "--quick", "--output", str(output), "-q"]) == 0
        # The quick grid runs in ~50ms, so raw wall-clock between two
        # back-to-back runs is scheduler noise; neutralize the wall gate
        # and let the deterministic gap/regret gates do the checking.
        baseline = json.loads(output.read_text())
        baseline["summary"]["normalized_wall"] *= 1e6
        relaxed = tmp_path / "relaxed.json"
        relaxed.write_text(json.dumps(baseline))
        assert main([
            "bench", "--quick", "--output", str(tmp_path / "second.json"),
            "--baseline", str(relaxed), "-q",
        ]) == 0

    def test_exits_nonzero_on_regression(self, tmp_path, capsys):
        output = tmp_path / "BENCH_core.json"
        assert main(["bench", "--quick", "--output", str(output), "-q"]) == 0
        baseline = json.loads(output.read_text())
        baseline["summary"]["normalized_wall"] /= 100
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(baseline))
        assert main([
            "bench", "--quick", "--output", str(tmp_path / "out.json"),
            "--baseline", str(doctored), "-q",
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_missing_baseline_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read baseline"):
            main([
                "bench", "--quick", "--output", str(tmp_path / "o.json"),
                "--baseline", str(tmp_path / "missing.json"), "-q",
            ])

    def test_stdout_output(self, capsys):
        assert main(["bench", "--quick", "--output", "-", "-q"]) == 0
        validate_bench(json.loads(capsys.readouterr().out))

    def test_sketch_suite_emits_gated_document(self, tmp_path):
        output = tmp_path / "BENCH_sketch.json"
        assert main([
            "bench", "--suite", "sketch", "--quick",
            "--output", str(output), "-q",
        ]) == 0
        payload = json.loads(output.read_text())
        validate_bench(payload)
        assert payload["suite"] == "sketch"
        assert sketch_gate_failures(payload) == []

    def test_sketch_suite_fails_on_doctored_baseline(self, tmp_path, capsys):
        output = tmp_path / "BENCH_sketch.json"
        assert main([
            "bench", "--suite", "sketch", "--quick",
            "--output", str(output), "-q",
        ]) == 0
        baseline = json.loads(output.read_text())
        baseline["summary"]["normalized_wall"] /= 100
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(baseline))
        assert main([
            "bench", "--suite", "sketch", "--quick",
            "--output", str(tmp_path / "second.json"),
            "--baseline", str(doctored), "-q",
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_rounds_suite_emits_gated_document(self, tmp_path):
        output = tmp_path / "BENCH_rounds.json"
        assert main([
            "bench", "--suite", "rounds", "--quick",
            "--output", str(output), "-q",
        ]) == 0
        payload = json.loads(output.read_text())
        validate_bench(payload)
        assert payload["suite"] == "rounds"
        assert rounds_gate_failures(payload) == []

    def test_unknown_suite_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "--suite", "quantum", "--quick", "-q"])
