"""End-to-end observability: engines, planner, sweeps, records, CLI."""

import json

import pytest

from repro.api import RunRecord, Sweep, WorkloadSpec, plan, records_from_json
from repro.cli import main
from repro.mpc import run_one_round
from repro.obs import Observation
from repro.query import parse_query

QUERY = "q(x, y, z) :- S1(x, z), S2(y, z)"

PARITY_KEYS = (
    "engine.input_tuples",
    "engine.input_bits",
    "engine.routed_tuples",
    "engine.routed_tuples.S1",
    "engine.routed_tuples.S2",
    "engine.shipped_bits",
    "engine.shipped_bits.S1",
    "engine.shipped_bits.S2",
    "engine.answers",
)


def _observed_run(engine: str) -> Observation:
    query = parse_query(QUERY)
    db = WorkloadSpec(kind="zipf", m=200, skew=1.2, seed=0).build(query)
    query_plan = plan(query, db=db, p=4)
    algorithm = query_plan.instantiate("hashjoin")
    obs = Observation.create()
    run_one_round(algorithm, db, 4, seed=0, engine=engine, obs=obs)
    return obs


class TestEngineMetricsParity:
    """All three engines must report bit-identical routing metrics."""

    @pytest.fixture(scope="class")
    def observations(self):
        return {
            engine: _observed_run(engine)
            for engine in ("reference", "batched", "mp")
        }

    @pytest.mark.parametrize("key", PARITY_KEYS)
    def test_counters_match(self, observations, key):
        values = {
            engine: obs.metrics.counter(key).value
            for engine, obs in observations.items()
        }
        assert values["reference"] == values["batched"] == values["mp"], values
        assert values["reference"] > 0

    @pytest.mark.parametrize(
        "key", ["engine.max_load_bits", "engine.skew_ratio",
                "engine.replication_rate"]
    )
    def test_gauges_match(self, observations, key):
        values = {
            engine: obs.metrics.gauge(key).value
            for engine, obs in observations.items()
        }
        assert values["reference"] == values["batched"] == values["mp"], values

    def test_server_load_histograms_match(self, observations):
        loads = {
            engine: sorted(obs.metrics.histogram("engine.server_load_bits").values)
            for engine, obs in observations.items()
        }
        assert loads["reference"] == loads["batched"] == loads["mp"]
        assert len(loads["reference"]) == 4  # one observation per server

    def test_phase_spans_are_present(self, observations):
        for obs in observations.values():
            names = {span.name for span in obs.tracer.spans}
            assert {"engine.run", "engine.route", "engine.local_join"} <= names

    def test_mp_worker_metrics_are_aggregated(self, observations):
        metrics = observations["mp"].metrics
        assert metrics.counter("mp.route_chunks").value > 0
        assert metrics.counter("mp.join_chunks").value > 0
        assert metrics.histogram("mp.worker_route.seconds").count > 0


class TestDisabledObservability:
    def test_obs_none_results_match_observed_results(self):
        query = parse_query(QUERY)
        db = WorkloadSpec(kind="zipf", m=120, skew=1.0, seed=1).build(query)
        algorithm = plan(query, db=db, p=4).instantiate("hashjoin")
        plain = run_one_round(algorithm, db, 4, seed=1)
        observed = run_one_round(
            algorithm, db, 4, seed=1, obs=Observation.create()
        )
        assert plain.max_load_bits == observed.max_load_bits
        assert sorted(plain.answers) == sorted(observed.answers)


class TestRecordMetricsBlock:
    @pytest.fixture(scope="class")
    def result(self):
        return Sweep(
            query=QUERY, workload="zipf", p_values=(4,), m_values=(120,),
            skews=(0.8,), seeds=(0,), observe=True,
        ).run()

    def test_records_carry_metrics(self, result):
        for record in result.records:
            assert record.metrics is not None
            assert record.metrics["counters"]["engine.routed_tuples"] > 0
            assert "engine.server_load_bits" in record.metrics["histograms"]

    def test_json_round_trip_preserves_metrics(self, result):
        restored = records_from_json(result.to_json())
        for before, after in zip(result.records, restored):
            assert after.metrics == before.metrics

    def test_csv_embeds_metrics_as_json_cell(self, result):
        header, first = result.to_csv().splitlines()[:2]
        index = header.split(",").index("metrics")
        assert '""counters""' in first  # CSV-escaped compact JSON

    def test_unobserved_sweep_has_no_metrics(self):
        result = Sweep(
            query=QUERY, workload="uniform", p_values=(4,), m_values=(60,),
            skews=(0.0,), seeds=(0,), algorithms=("hashjoin",),
        ).run()
        assert all(record.metrics is None for record in result.records)

    def test_round_trip_without_metrics_still_validates(self):
        record = RunRecord(
            query=QUERY, workload="zipf", m=10, skew=0.0, seed=0, domain=10,
            p=2, algorithm="hashjoin", algorithm_name="HashJoin",
            engine="batched", predicted_load_bits=1.0, lower_bound_bits=1.0,
            max_load_bits=1.0, max_load_tuples=1, replication_rate=1.0,
            balance=1.0, wall_seconds=0.0,
        )
        restored = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert restored.metrics is None


class TestCliObservability:
    RACE = ["race", QUERY, "--workload", "zipf", "--skew", "1.0",
            "-m", "120", "-p", "4"]

    def test_race_metrics_flag_prints_registry(self, capsys):
        assert main(self.RACE + ["--metrics"]) == 0
        out = capsys.readouterr().out
        assert "engine.routed_tuples" in out
        assert "engine.server_load_bits" in out

    def test_race_trace_flag_writes_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(self.RACE + ["--trace", str(trace)]) == 0
        data = json.loads(trace.read_text())
        names = {event["name"] for event in data["traceEvents"]}
        assert "engine.run" in names and "plan.build" in names

    def test_race_without_flags_prints_no_metrics(self, capsys):
        assert main(self.RACE) == 0
        assert "engine.routed_tuples" not in capsys.readouterr().out

    def test_sweep_metrics_attach_to_records(self, tmp_path, capsys):
        output = tmp_path / "records.json"
        assert main([
            "sweep", QUERY, "--workload", "zipf", "--skew", "0.5",
            "--p", "4", "--m", "80", "--metrics", "-q",
            "--output", str(output),
        ]) == 0
        records = json.loads(output.read_text())
        assert all(record["metrics"] is not None for record in records)
        # The registry table itself lands on stdout.
        assert "engine.routed_tuples" in capsys.readouterr().out

    def test_verbose_and_quiet_conflict(self):
        with pytest.raises(SystemExit):
            main(self.RACE + ["-v", "-q"])
