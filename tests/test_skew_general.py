"""Unit tests for the Section 4.2 bin-combination algorithm."""

from fractions import Fraction

import pytest

from repro.core import (
    BinHyperCubeAlgorithm,
    HashJoinAlgorithm,
    build_cprime,
    solve_bin_lp,
)
from repro.core.skew_general import _proper_supersets
from repro.data import (
    planted_heavy_relation,
    single_value_relation,
    uniform_relation,
    zipf_relation,
)
from repro.mpc import HashFamily, run_one_round
from repro.query import parse_query, simple_join_query, triangle_query
from repro.seq import Database
from repro.stats import BinCombination, HeavyHitterStatistics


class TestProperSupersets:
    def test_from_empty(self):
        out = _proper_supersets(("x", "z"), ())
        assert set(out) == {("x",), ("z",), ("x", "z")}

    def test_from_singleton(self):
        out = _proper_supersets(("x", "z"), ("z",))
        assert set(out) == {("x", "z")}

    def test_full_set_has_none(self):
        assert _proper_supersets(("x", "z"), ("x", "z")) == []


class TestBinLP:
    def test_empty_combination_equals_share_lp(self):
        """LP (11) at B_empty coincides with LP (5)."""
        from repro.core import optimal_share_exponents

        q = simple_join_query()
        bits = {"S1": 2.0**16, "S2": 2.0**16}
        lp = solve_bin_lp(q, BinCombination.empty(), Fraction(0), bits, 64)
        share = optimal_share_exponents(q, bits, 64)
        assert abs(float(lp.lam - share.lam)) < 1e-9

    def test_beta_discount_lowers_lambda(self):
        """A heavy-hitter bin exponent reduces the residual size constraint."""
        q = simple_join_query()
        bits = {"S1": 2.0**16, "S2": 2.0**16}
        combo = BinCombination.build(
            {"z"}, {"S1": Fraction(1, 2), "S2": Fraction(1, 2)}
        )
        lp_base = solve_bin_lp(q, BinCombination.empty(), Fraction(0), bits, 64)
        lp_combo = solve_bin_lp(q, combo, Fraction(0), bits, 64)
        assert lp_combo.lam <= lp_base.lam

    def test_alpha_reduces_share_budget(self):
        q = simple_join_query()
        bits = {"S1": 2.0**16, "S2": 2.0**16}
        combo = BinCombination.build({"z"}, {"S1": Fraction(0), "S2": Fraction(0)})
        lp_alpha0 = solve_bin_lp(q, combo, Fraction(0), bits, 64)
        lp_alpha1 = solve_bin_lp(q, combo, Fraction(1), bits, 64)
        assert sum(lp_alpha1.exponents.values()) == 0
        assert lp_alpha1.lam >= lp_alpha0.lam

    def test_exponents_cover_remaining_variables_only(self):
        q = simple_join_query()
        bits = {"S1": 2.0**12, "S2": 2.0**12}
        combo = BinCombination.build({"z"}, {"S1": Fraction(0), "S2": Fraction(1)})
        lp = solve_bin_lp(q, combo, Fraction(0), bits, 16)
        assert set(lp.exponents) == {"x", "y"}


class TestCPrimeConstruction:
    def _stats(self, db, p):
        q = simple_join_query()
        return q, HeavyHitterStatistics.of(q, db, p)

    def test_uniform_data_only_empty_combination(self):
        db = Database.from_relations(
            [
                uniform_relation("S1", 200, 4000, seed=1),
                uniform_relation("S2", 200, 4000, seed=2),
            ]
        )
        q, stats = self._stats(db, 8)
        bits = {"S1": stats.simple.bits("S1"), "S2": stats.simple.bits("S2")}
        combos, lps = build_cprime(q, stats, 8, bits)
        assert BinCombination.empty() in combos
        assert combos[BinCombination.empty()] == frozenset({()})
        # No heavy hitters -> nothing is overweight -> only B_empty.
        assert len(combos) == 1

    def test_single_value_data_spawns_combination(self):
        db = Database.from_relations(
            [
                single_value_relation("S1", 100, 400, seed=3),
                single_value_relation("S2", 100, 400, seed=4),
            ]
        )
        q, stats = self._stats(db, 8)
        bits = {"S1": stats.simple.bits("S1"), "S2": stats.simple.bits("S2")}
        combos, lps = build_cprime(q, stats, 8, bits)
        assert len(combos) >= 2
        # Some combination must own the heavy value z=0.
        owned = {
            assignment
            for combo, members in combos.items()
            if combo.variables == frozenset({"z"})
            for assignment in members
        }
        assert (("z", 0),) in owned

    def test_every_combo_has_an_lp(self):
        db = Database.from_relations(
            [
                zipf_relation("S1", 300, 900, skew=1.3, seed=5),
                zipf_relation("S2", 300, 900, skew=1.3, seed=6),
            ]
        )
        q, stats = self._stats(db, 16)
        bits = {"S1": stats.simple.bits("S1"), "S2": stats.simple.bits("S2")}
        combos, lps = build_cprime(q, stats, 16, bits)
        assert set(combos) == set(lps)
        for lp in lps.values():
            assert lp.lam >= 0
            assert all(e >= 0 for e in lp.exponents.values())


class TestAlgorithmCorrectness:
    @pytest.mark.parametrize("p", [4, 16])
    def test_complete_on_uniform(self, p):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 250, 2000, seed=7),
                uniform_relation("S2", 250, 2000, seed=8),
            ]
        )
        result = run_one_round(BinHyperCubeAlgorithm(q), db, p, verify=True)
        assert result.is_complete

    @pytest.mark.parametrize("p", [4, 16])
    def test_complete_on_zipf(self, p):
        q = simple_join_query()
        db = Database.from_relations(
            [
                zipf_relation("S1", 300, 900, skew=1.3, seed=9),
                zipf_relation("S2", 300, 900, skew=1.3, seed=10),
            ]
        )
        result = run_one_round(BinHyperCubeAlgorithm(q), db, p, verify=True)
        assert result.is_complete

    def test_complete_on_single_value(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                single_value_relation("S1", 80, 300, seed=11),
                single_value_relation("S2", 80, 300, seed=12),
            ]
        )
        result = run_one_round(BinHyperCubeAlgorithm(q), db, 8, verify=True)
        assert result.is_complete

    def test_complete_on_one_sided_skew(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                planted_heavy_relation(
                    "S1", 240, 720, heavy_values=[0, 1, 2],
                    heavy_fraction=0.7, seed=13,
                ),
                uniform_relation("S2", 240, 720, seed=14),
            ]
        )
        result = run_one_round(BinHyperCubeAlgorithm(q), db, 8, verify=True)
        assert result.is_complete

    def test_complete_on_skewed_triangle(self):
        q = triangle_query()
        db = Database.from_relations(
            [
                planted_heavy_relation(
                    "S1", 150, 200, heavy_values=[0], heavy_fraction=0.5,
                    heavy_position=0, seed=15,
                ),
                uniform_relation("S2", 150, 200, seed=16),
                uniform_relation("S3", 150, 200, seed=17),
            ]
        )
        result = run_one_round(BinHyperCubeAlgorithm(q), db, 8, verify=True)
        assert result.is_complete

    def test_complete_with_pair_heavy_hitters(self):
        """A heavy (x, u) pair in a ternary relation."""
        q = parse_query("q(x, u, y) :- S1(x, u), S2(u, y)")
        db = Database.from_relations(
            [
                planted_heavy_relation(
                    "S1", 200, 500, heavy_values=[7], heavy_fraction=0.6,
                    heavy_position=1, seed=18,
                ),
                planted_heavy_relation(
                    "S2", 200, 500, heavy_values=[7], heavy_fraction=0.6,
                    heavy_position=0, seed=19,
                ),
            ]
        )
        result = run_one_round(BinHyperCubeAlgorithm(q), db, 8, verify=True)
        assert result.is_complete

    def test_two_level_overweight_chain(self):
        """The paper's second challenge: a value heavy *within* a heavy
        hitter's residual (here the pair (x=0, u=7) inside the heavy x=0)
        must be chased down a two-level C' chain."""
        import random

        rng = random.Random(99)
        tuples = set()
        # 60% of S1 sits on x=0; half of that again on (x=0, u=7).
        while len(tuples) < 72:
            tuples.add((0, 7, rng.randrange(500)))
        while len(tuples) < 144:
            tuples.add((0, rng.randrange(500), rng.randrange(500)))
        while len(tuples) < 240:
            tuples.add((rng.randrange(500), rng.randrange(500), rng.randrange(500)))
        from repro.seq import Relation

        q = parse_query("q(x, u, w, y) :- S1(x, u, w), S2(x, u, y)")
        db = Database.from_relations(
            [
                Relation.build("S1", tuples, domain_size=500),
                uniform_relation("S2", 240, 500, arity=3, seed=101),
            ]
        )
        p = 8
        algo = BinHyperCubeAlgorithm(q)
        result = run_one_round(algo, db, p, verify=True)
        assert result.is_complete
        # The plan must contain a combination over two or more variables —
        # the end of the overweight chain.
        from repro.mpc import HashFamily

        plan = algo.routing_plan(db, p, HashFamily(0))
        depths = {len(c.combo.variables) for c in plan.combo_plans}
        assert max(depths) >= 2

    def test_nbc_variants_all_correct(self):
        """Correctness must hold for any Nbc (only the load changes)."""
        q = simple_join_query()
        db = Database.from_relations(
            [
                zipf_relation("S1", 250, 750, skew=1.5, seed=20),
                zipf_relation("S2", 250, 750, skew=1.5, seed=21),
            ]
        )
        for nbc in (0.25, 1.0, 4.0, 64.0):
            result = run_one_round(
                BinHyperCubeAlgorithm(q, nbc=nbc), db, 8, verify=True
            )
            assert result.is_complete, nbc


class TestAlgorithmLoad:
    def test_beats_hash_join_under_heavy_skew(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                single_value_relation("S1", 120, 500, seed=22),
                single_value_relation("S2", 120, 500, seed=23),
            ]
        )
        p = 16
        bin_result = run_one_round(
            BinHyperCubeAlgorithm(q), db, p, compute_answers=False
        )
        hash_result = run_one_round(
            HashJoinAlgorithm(q, p), db, p, compute_answers=False
        )
        assert bin_result.max_load_tuples < hash_result.max_load_tuples / 2

    def test_load_tracks_theorem_4_6(self):
        """Measured load <= polylog(p) * max_B p^lambda(B)."""
        import math

        q = simple_join_query()
        db = Database.from_relations(
            [
                zipf_relation("S1", 400, 1200, skew=1.4, seed=24),
                zipf_relation("S2", 400, 1200, skew=1.4, seed=25),
            ]
        )
        p = 16
        result = run_one_round(
            BinHyperCubeAlgorithm(q), db, p, compute_answers=False
        )
        predicted = result.details["theoretical_load_bits"]
        assert result.max_load_bits <= predicted * 4 * math.log(p) ** 2

    def test_describe_counts(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                zipf_relation("S1", 200, 600, skew=1.4, seed=26),
                zipf_relation("S2", 200, 600, skew=1.4, seed=27),
            ]
        )
        result = run_one_round(
            BinHyperCubeAlgorithm(q), db, 8, compute_answers=False
        )
        assert result.details["bin_combinations"] >= 1
        assert result.details["assignments"] >= 1


class TestStatisticsReuse:
    def test_prebuilt_statistics_accepted(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                zipf_relation("S1", 150, 450, skew=1.2, seed=28),
                zipf_relation("S2", 150, 450, skew=1.2, seed=29),
            ]
        )
        stats = HeavyHitterStatistics.of(q, db, 8)
        algo = BinHyperCubeAlgorithm(q, stats=stats)
        result = run_one_round(algo, db, 8, verify=True)
        assert result.is_complete

    def test_mismatched_p_rebuilds_statistics(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 100, 400, seed=30),
                uniform_relation("S2", 100, 400, seed=31),
            ]
        )
        stats = HeavyHitterStatistics.of(q, db, 4)
        algo = BinHyperCubeAlgorithm(q, stats=stats)
        # Run with a different p: the algorithm must rebuild stats for p=16.
        result = run_one_round(algo, db, 16, verify=True)
        assert result.is_complete
