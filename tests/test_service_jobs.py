"""The fault-isolated cell executor and the service job queue."""

import threading
import time

import pytest

from repro.api import Cell, Sweep, failure_record, validate_record
from repro.api import experiment as experiment_module
from repro.api.records import RUN_RECORD_FIELDS
from repro.api.registry import AlgorithmSpec, register, unregister
from repro.mpc.execution import OneRoundAlgorithm
from repro.obs import Observation
from repro.service import (
    BackpressureError,
    CatalogCache,
    JobQueue,
    ServiceError,
    execute_cells,
)

JOIN_TEXT = "q(x, y, z) :- S1(x, z), S2(y, z)"


class PoisonAlgorithm(OneRoundAlgorithm):
    """Passes planning, then raises when its routing plan is built."""

    def __init__(self, query):
        super().__init__(query, "poison")

    def routing_plan(self, db, p, hashes):
        raise ValueError("poisoned cell")

    def predicted_load_bits(self, stats, p):
        return 1.0


class HangAlgorithm(OneRoundAlgorithm):
    """Sleeps far past any test deadline — a hung worker stand-in."""

    def __init__(self, query):
        super().__init__(query, "hang")

    def routing_plan(self, db, p, hashes):
        time.sleep(300)
        raise AssertionError("the hang should have been killed")

    def predicted_load_bits(self, stats, p):
        return 1.0


@pytest.fixture
def poison_registry():
    """Register the poison/hang algorithms; always clean up."""
    register(AlgorithmSpec(
        key="poison", algorithm_class=PoisonAlgorithm,
        factory=lambda query, stats, p: PoisonAlgorithm(query),
        summary="test: raises while routing",
    ))
    register(AlgorithmSpec(
        key="hang", algorithm_class=HangAlgorithm,
        factory=lambda query, stats, p: HangAlgorithm(query),
        summary="test: sleeps forever",
    ))
    try:
        yield
    finally:
        unregister("poison")
        unregister("hang")


def _sweep(algorithms, **overrides):
    config = dict(
        query=JOIN_TEXT, workload="zipf", p_values=(4,), m_values=(50,),
        skews=(0.0,), seeds=(0,), algorithms=algorithms,
    )
    config.update(overrides)
    return Sweep(**config)


class TestSerialFaultIsolation:
    def test_failing_cell_yields_failed_record(self, poison_registry):
        result = _sweep(("hashjoin", "poison", "hypercube-lp")).run()
        assert [r.algorithm for r in result] == \
            ["hashjoin", "poison", "hypercube-lp"]
        statuses = [r.status for r in result]
        assert statuses[0] == "ok" and statuses[2] == "ok"
        assert statuses[1].startswith("failed:")
        assert "poisoned cell" in statuses[1]
        # Healthy rows keep real measurements; the failed row is zeroed.
        assert result.records[0].max_load_bits > 0
        assert result.records[1].max_load_bits == 0.0
        # Every row (including the failure) passes the schema.
        for record in result:
            validate_record(record.to_dict())

    def test_prepare_failure_fails_the_whole_group(self):
        # A cell with an invalid stats method slips past cells() when
        # built by hand; preparation must fail it structurally, not
        # abort the sweep.
        good = Cell(query=JOIN_TEXT, workload="zipf", m=40, skew=0.0,
                    seed=0, p=4, algorithm="hashjoin")
        bad = Cell(query=JOIN_TEXT, workload="zipf", m=40, skew=0.0,
                   seed=0, p=4, algorithm="hashjoin", stats="psychic")
        records = execute_cells([good, bad])
        assert records[0].status == "ok"
        assert records[1].status.startswith("failed:")
        assert "psychic" in records[1].status

    def test_failure_counters_reach_the_metrics(self, poison_registry):
        obs = Observation.create()
        _sweep(("hashjoin", "poison")).run(obs=obs)
        counters = {name: c.value for name, c in obs.metrics.counters.items()}
        assert counters["sweep.cells.ok"] == 1
        assert counters["sweep.cells.failed"] == 1


class TestFarmFaultIsolation:
    """The satellite regression test: one crashing worker cell must not
    lose the completed records (the old pool path dropped everything)."""

    def test_surviving_records_returned_with_failure_recorded(
        self, poison_registry
    ):
        result = _sweep(("hashjoin", "poison", "hypercube-lp",
                         "hypercube-equal")).run(max_workers=2)
        assert len(result) == 4
        by_algorithm = {r.algorithm: r for r in result}
        assert by_algorithm["poison"].status.startswith("failed:")
        assert "poisoned cell" in by_algorithm["poison"].status
        for key in ("hashjoin", "hypercube-lp", "hypercube-equal"):
            assert by_algorithm[key].status == "ok"
            assert by_algorithm[key].max_load_bits > 0
        # Grid order survives the completion order.
        assert [r.algorithm for r in result] == \
            ["hashjoin", "poison", "hypercube-lp", "hypercube-equal"]

    def test_timeout_kills_and_replaces_the_worker(self, poison_registry):
        obs = Observation.create()
        started = time.perf_counter()
        result = _sweep(("hashjoin", "hang", "hypercube-lp")).run(
            max_workers=2, cell_timeout=1.5, obs=obs,
        )
        elapsed = time.perf_counter() - started
        assert elapsed < 60, "the hung cell was not killed"
        by_algorithm = {r.algorithm: r for r in result}
        assert by_algorithm["hang"].status == "timeout"
        assert by_algorithm["hang"].wall_seconds >= 1.5
        # The replacement worker finished the rest of the grid.
        assert by_algorithm["hashjoin"].status == "ok"
        assert by_algorithm["hypercube-lp"].status == "ok"
        counters = {name: c.value for name, c in obs.metrics.counters.items()}
        assert counters["sweep.cells.timeout"] == 1
        assert counters["sweep.cells.ok"] == 2

    def test_mixed_failure_and_timeout_in_one_grid(self, poison_registry):
        """The acceptance scenario: one raising cell + one hung cell in
        the same sweep; every healthy record comes back in grid order
        with structured statuses for the bad cells."""
        result = _sweep(("hashjoin", "poison", "hang", "hypercube-lp")).run(
            max_workers=2, cell_timeout=1.5,
        )
        assert [r.algorithm for r in result] == \
            ["hashjoin", "poison", "hang", "hypercube-lp"]
        assert [r.status.split(":")[0] for r in result] == \
            ["ok", "failed", "timeout", "ok"]
        for record in result:
            validate_record(record.to_dict())

    def test_cell_timeout_forces_process_isolation(self, poison_registry):
        # Even without max_workers, a timeout must be enforceable — the
        # executor runs the farm with one worker.
        result = _sweep(("hang",)).run(cell_timeout=1.0)
        assert result.records[0].status == "timeout"

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ServiceError, match="positive"):
            execute_cells(_sweep("applicable").cells(), cell_timeout=-1)


class TestSerialGrouping:
    """Shuffled cells must not re-run workload generation + planning once
    per cell: grouping is by coordinate key, not contiguity."""

    def _interleaved_cells(self):
        cells = _sweep(("hashjoin", "hypercube-lp"),
                       skews=(0.0, 1.2)).cells()
        assert len(cells) == 4
        # Interleave the two coordinate groups: A B A B.
        return [cells[0], cells[2], cells[1], cells[3]]

    def test_prepare_runs_once_per_distinct_coordinates(self, monkeypatch):
        calls = []
        real_prepare = experiment_module._prepare

        def counting_prepare(cells, obs=None):
            calls.append(len(cells))
            return real_prepare(cells, obs=obs)

        monkeypatch.setattr(experiment_module, "_prepare", counting_prepare)
        shuffled = self._interleaved_cells()
        records = execute_cells(shuffled)
        assert len(calls) == 2, (
            f"expected one _prepare per distinct coordinate group, "
            f"got {len(calls)}"
        )
        assert calls == [2, 2]
        # Records still come back in the caller's (shuffled) order.
        assert [(r.skew, r.algorithm) for r in records] == \
            [(c.skew, c.algorithm) for c in shuffled]

    def test_shuffled_equals_sorted_results(self):
        shuffled = self._interleaved_cells()
        by_key = {
            (r.skew, r.algorithm): r.max_load_bits
            for r in execute_cells(shuffled)
        }
        sorted_by_key = {
            (r.skew, r.algorithm): r.max_load_bits
            for r in _sweep(("hashjoin", "hypercube-lp"),
                            skews=(0.0, 1.2)).run()
        }
        assert by_key == sorted_by_key

    def test_serial_cache_reuses_prepared_contexts(self, monkeypatch):
        calls = []
        real_prepare = experiment_module._prepare

        def counting_prepare(cells, obs=None):
            calls.append(len(cells))
            return real_prepare(cells, obs=obs)

        monkeypatch.setattr(experiment_module, "_prepare", counting_prepare)
        cache = CatalogCache()
        cells = _sweep(("hashjoin",)).cells()
        execute_cells(cells, cache=cache)
        execute_cells(cells, cache=cache)
        assert len(calls) == 1, "the second run should hit the cache"
        assert cache.hits == 1 and cache.misses == 1


class TestFailureRecord:
    def test_status_round_trips_the_schema(self):
        cell = Cell(query=JOIN_TEXT, workload="zipf", m=40, skew=1.0,
                    seed=0, p=4, algorithm="hashjoin")
        record = failure_record(cell, "failed:ValueError: boom",
                                wall_seconds=0.5)
        payload = record.to_dict()
        validate_record(payload)
        assert payload["status"] == "failed:ValueError: boom"
        assert payload["domain"] == 160  # zipf default 4*m
        assert not record.ok

    def test_status_column_reaches_the_csv(self):
        cell = Cell(query=JOIN_TEXT, workload="zipf", m=40, skew=1.0,
                    seed=0, p=4, algorithm="hashjoin")
        result = execute_cells([cell])
        csv_text = _sweep(("hashjoin",)).run().to_csv()
        header = csv_text.splitlines()[0].split(",")
        assert "status" in header
        assert header == list(RUN_RECORD_FIELDS)
        assert result[0].status == "ok"

    def test_bad_status_string_rejected(self):
        cell = Cell(query=JOIN_TEXT, workload="zipf", m=40, skew=1.0,
                    seed=0, p=4, algorithm="hashjoin")
        payload = failure_record(cell, "timeout").to_dict()
        validate_record(payload)
        payload["status"] = "exploded"
        with pytest.raises(Exception, match="status"):
            validate_record(payload)


class TestJobQueueUnit:
    def test_unknown_kind_rejected(self):
        queue = JobQueue(workers=0)
        with pytest.raises(ServiceError, match="unknown job kind"):
            queue.submit("race", {"query": JOIN_TEXT})
        queue.shutdown()

    def test_spec_needs_a_query(self):
        queue = JobQueue(workers=0)
        with pytest.raises(ServiceError, match="query"):
            queue.submit("plan", {})
        queue.shutdown()

    def test_backpressure_rejection_when_full(self):
        queue = JobQueue(queue_size=2, workers=0)
        queue.submit("plan", {"query": JOIN_TEXT})
        queue.submit("plan", {"query": JOIN_TEXT})
        with pytest.raises(BackpressureError, match="full"):
            queue.submit("plan", {"query": JOIN_TEXT})
        # The rejected job leaves no trace in the job table.
        assert len(queue.jobs()) == 2
        counters = queue.obs.metrics.counters
        assert counters["service.jobs.rejected"].value == 1
        queue.shutdown()

    def test_cancel_queued_job(self):
        queue = JobQueue(queue_size=4, workers=0)
        job = queue.submit("plan", {"query": JOIN_TEXT})
        assert queue.cancel(job.id) is True
        assert queue.status(job.id)["state"] == "cancelled"
        with pytest.raises(ServiceError, match="cancelled"):
            queue.result(job.id)
        # Cancelling twice is a no-op, not an error.
        assert queue.cancel(job.id) is False
        queue.shutdown()

    def test_unknown_job_id(self):
        queue = JobQueue(workers=0)
        with pytest.raises(ServiceError, match="unknown job"):
            queue.status("job-999999")
        queue.shutdown()

    def test_result_not_ready(self):
        queue = JobQueue(workers=0)
        job = queue.submit("plan", {"query": JOIN_TEXT})
        with pytest.raises(ServiceError, match="not ready"):
            queue.result(job.id)
        queue.shutdown()

    def test_bad_spec_fails_the_job_not_the_queue(self):
        queue = JobQueue(workers=1)
        bad = queue.submit("plan", {"query": "this is not a query"})
        good = queue.submit("plan", {"query": JOIN_TEXT, "p": 4, "m": 40})
        assert queue.join(timeout=60)
        assert queue.status(bad.id)["state"] == "failed"
        assert queue.status(bad.id)["error"]
        assert queue.status(good.id)["state"] == "done"
        queue.shutdown()

    def test_concurrent_submits_at_capacity(self):
        """Racing submits at a full queue: exactly ``queue_size`` win,
        every loser gets :class:`BackpressureError`, and the job table
        holds exactly the winners (no half-registered losers)."""
        queue = JobQueue(queue_size=4, workers=0)
        contenders = 12
        start = threading.Barrier(contenders)
        lock = threading.Lock()
        accepted, rejected, surprises = [], [], []

        def submit():
            start.wait(timeout=30)
            try:
                job = queue.submit("plan", {"query": JOIN_TEXT})
            except BackpressureError as exc:
                with lock:
                    rejected.append(exc)
            except Exception as exc:  # pragma: no cover - test diagnostics
                with lock:
                    surprises.append(exc)
            else:
                with lock:
                    accepted.append(job)

        threads = [threading.Thread(target=submit) for _ in range(contenders)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not surprises
        assert len(accepted) == 4
        assert len(rejected) == contenders - 4
        counters = queue.obs.metrics.counters
        assert counters["service.jobs.rejected"].value == contenders - 4
        table = queue.jobs()
        assert {entry["id"] for entry in table} == {j.id for j in accepted}
        assert all(entry["state"] == "queued" for entry in table)
        queue.shutdown()

    def _gate_runs(self, queue, gate):
        """Make every job block on ``gate`` instead of doing real work."""
        def run(job):
            gate.wait(timeout=30)
            return {"ran": job.id}
        queue._run = run

    def _wait_running(self, queue, job, timeout=30.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            if queue.status(job.id)["state"] == "running":
                return
            time.sleep(0.01)
        raise AssertionError(f"job {job.id} never started running")

    def test_backpressure_then_fifo_drain_order(self):
        """Submits past capacity are rejected without disturbing the
        queue: once the worker unblocks, the accepted jobs run in
        submission order."""
        gate = threading.Event()
        queue = JobQueue(queue_size=3, workers=1)
        self._gate_runs(queue, gate)
        blocker = queue.submit("plan", {"query": JOIN_TEXT})
        self._wait_running(queue, blocker)   # capacity is now exactly 3
        queued = [queue.submit("plan", {"query": JOIN_TEXT})
                  for _ in range(3)]
        with pytest.raises(BackpressureError, match="full"):
            queue.submit("plan", {"query": JOIN_TEXT})
        gate.set()
        assert queue.join(timeout=60)
        for job in [blocker, *queued]:
            assert queue.status(job.id)["state"] == "done"
        starts = [queue.get(job.id).started_at for job in queued]
        assert starts == sorted(starts)
        queue.shutdown()

    def test_cancel_queued_job_never_leaks_the_worker(self):
        """Cancelling a queued job must not consume the worker that
        eventually drains it: the cancelled job is skipped unstarted and
        later jobs (including post-cancel submissions) still run."""
        gate = threading.Event()
        queue = JobQueue(queue_size=8, workers=1)
        self._gate_runs(queue, gate)
        blocker = queue.submit("plan", {"query": JOIN_TEXT})
        self._wait_running(queue, blocker)
        doomed = queue.submit("plan", {"query": JOIN_TEXT})
        survivor = queue.submit("plan", {"query": JOIN_TEXT})
        assert queue.cancel(doomed.id) is True
        gate.set()
        assert queue.join(timeout=60)
        assert queue.status(blocker.id)["state"] == "done"
        assert queue.status(doomed.id)["state"] == "cancelled"
        assert queue.get(doomed.id).started_at is None  # never ran
        assert queue.status(survivor.id)["state"] == "done"
        # The worker thread survived the cancelled job and still serves.
        assert all(thread.is_alive() for thread in queue._threads)
        extra = queue.submit("plan", {"query": JOIN_TEXT})
        assert queue.join(timeout=60)
        assert queue.status(extra.id)["state"] == "done"
        queue.shutdown()

    def test_sweep_job_reports_failures(self, poison_registry):
        queue = JobQueue(workers=1)
        job = queue.submit("sweep", {
            "query": JOIN_TEXT, "workload": "zipf", "p_values": [4],
            "m_values": [40], "skews": [0.0],
            "algorithms": ["hashjoin", "poison"],
        })
        assert queue.join(timeout=120)
        result = queue.result(job.id)
        assert result["count"] == 2
        assert result["failed"] == 1
        statuses = [entry["status"] for entry in result["records"]]
        assert statuses[0] == "ok" and statuses[1].startswith("failed:")
        for entry in result["records"]:
            validate_record(entry)
        queue.shutdown()
