"""Unit tests for exact vertex enumeration and domination filtering."""

from fractions import Fraction

from repro.lp import (
    HalfSpace,
    enumerate_vertices,
    is_dominated,
    non_dominated,
    nonnegativity_constraints,
    matrix_rank,
    solve_square_system,
)


def F(a, b=1):
    return Fraction(a, b)


class TestLinalg:
    def test_solve_square_system(self):
        solution = solve_square_system(
            [[F(2), F(1)], [F(1), F(3)]], [F(5), F(10)]
        )
        assert solution == [F(1), F(3)]

    def test_singular_returns_none(self):
        assert solve_square_system([[F(1), F(2)], [F(2), F(4)]], [F(1), F(2)]) is None

    def test_rank(self):
        assert matrix_rank([[F(1), F(2)], [F(2), F(4)]]) == 1
        assert matrix_rank([[F(1), F(0)], [F(0), F(1)]]) == 2
        assert matrix_rank([]) == 0


class TestEnumerateVertices:
    def test_unit_square(self):
        constraints = [
            HalfSpace.build([1, 0], 1),
            HalfSpace.build([0, 1], 1),
        ] + nonnegativity_constraints(2)
        vertices = enumerate_vertices(constraints, 2)
        assert set(vertices) == {
            (F(0), F(0)),
            (F(0), F(1)),
            (F(1), F(0)),
            (F(1), F(1)),
        }

    def test_simplex(self):
        constraints = [HalfSpace.build([1, 1, 1], 1)] + nonnegativity_constraints(3)
        vertices = enumerate_vertices(constraints, 3)
        assert len(vertices) == 4  # origin plus three unit points

    def test_triangle_packing_polytope(self):
        """The C3 packing polytope has the 5 vertices of Example 3.7 plus 0."""
        constraints = [
            HalfSpace.build([1, 1, 0], 1),
            HalfSpace.build([0, 1, 1], 1),
            HalfSpace.build([1, 0, 1], 1),
        ] + nonnegativity_constraints(3)
        vertices = enumerate_vertices(constraints, 3)
        assert (F(1, 2), F(1, 2), F(1, 2)) in vertices
        assert len(vertices) == 5

    def test_zero_dimension(self):
        assert enumerate_vertices([], 0) == [()]

    def test_infeasible_region_has_no_vertices(self):
        constraints = [
            HalfSpace.build([1], 0),
            HalfSpace.build([-1], -1),  # x >= 1 and x <= 0
        ]
        assert enumerate_vertices(constraints, 1) == []

    def test_halfspace_satisfaction(self):
        h = HalfSpace.build([2, -1], 3)
        assert h.satisfied_by([F(1), F(0)])
        assert not h.satisfied_by([F(2), F(0)])


class TestDomination:
    def test_is_dominated(self):
        assert is_dominated((F(0), F(1)), (F(1), F(1)))
        assert not is_dominated((F(1), F(0)), (F(0), F(1)))
        assert not is_dominated((F(1), F(1)), (F(1), F(1)))  # equal: not strict

    def test_non_dominated_filters_origin(self):
        points = [
            (F(0), F(0)),
            (F(1), F(0)),
            (F(0), F(1)),
            (F(1, 2), F(1, 2)),
        ]
        survivors = non_dominated(points)
        assert (F(0), F(0)) not in survivors
        assert len(survivors) == 3

    def test_non_dominated_triangle_matches_pk(self):
        """pk(C3) = 4 vertices (Example 3.7)."""
        constraints = [
            HalfSpace.build([1, 1, 0], 1),
            HalfSpace.build([0, 1, 1], 1),
            HalfSpace.build([1, 0, 1], 1),
        ] + nonnegativity_constraints(3)
        vertices = non_dominated(enumerate_vertices(constraints, 3))
        assert set(vertices) == {
            (F(1, 2), F(1, 2), F(1, 2)),
            (F(1), F(0), F(0)),
            (F(0), F(1), F(0)),
            (F(0), F(0), F(1)),
        }
