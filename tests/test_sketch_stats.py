"""Tests for sketched heavy-hitter statistics (repro.sketch.statistics)
and their integration with the planner, sweep runner and records."""

import numpy as np
import pytest

from repro.api import Sweep, plan, resolve_statistics
from repro.api.experiment import Cell, run_cell
from repro.data import zipf_relation
from repro.obs import Observation
from repro.query import parse_query
from repro.seq import Database
from repro.sketch import (
    RelationSketchSet,
    SketchConfig,
    SketchedHeavyHitterStatistics,
    build_sketch_set,
    build_sketch_set_from_stream,
    sketch_fidelity,
)
from repro.stats import (
    HeavyHitterStatistics,
    MAX_SUBSET_VARIABLES,
    StatisticsError,
    StatisticsProvider,
    nonempty_subsets,
)

QUERY = "q(x, y, z) :- S1(x, z), S2(y, z)"


@pytest.fixture(scope="module")
def query():
    return parse_query(QUERY)


@pytest.fixture(scope="module")
def zipf_db():
    return Database.from_relations([
        zipf_relation("S1", 4000, 1600, skew=1.6, seed=1),
        zipf_relation("S2", 4000, 1600, skew=1.1, seed=2),
    ])


class TestSubsetGuard:
    def test_small_atoms_enumerate_fully(self):
        assert len(nonempty_subsets(("x", "y", "z"))) == 7

    def test_high_arity_atom_is_refused(self):
        variables = tuple(f"v{i}" for i in range(MAX_SUBSET_VARIABLES + 1))
        with pytest.raises(StatisticsError, match="refusing to enumerate"):
            nonempty_subsets(variables)

    def test_extraction_surfaces_the_guard(self):
        from repro.seq import Relation

        n = MAX_SUBSET_VARIABLES + 1
        variables = ", ".join(f"v{i}" for i in range(n))
        query = parse_query(f"q({variables}) :- R({variables})")
        db = Database.from_relations(
            [Relation.build("R", [tuple(range(n))])]
        )
        with pytest.raises(StatisticsError, match="refusing to enumerate"):
            HeavyHitterStatistics.of(query, db, p=4)


class TestSketchedStatistics:
    def test_satisfies_the_provider_protocol(self, query, zipf_db):
        sketched = SketchedHeavyHitterStatistics.of(query, zipf_db, p=8)
        assert isinstance(sketched, StatisticsProvider)

    @pytest.mark.parametrize("p", [8, 32])
    def test_zero_false_negatives_on_zipf(self, query, zipf_db, p):
        """Every true heavy hitter is recovered at the default width."""
        exact = HeavyHitterStatistics.of(query, zipf_db, p)
        sketched = SketchedHeavyHitterStatistics.of(query, zipf_db, p)
        report = sketch_fidelity(exact, sketched)
        assert report["true_heavy"] > 0  # the workload is genuinely skewed
        assert report["false_negatives"] == 0
        assert report["recall"] == 1.0

    def test_frequency_error_within_count_sketch_bound(self, query, zipf_db):
        """Estimated frequencies of true heavy hitters stay within a few
        multiples of the ||f||_2 / sqrt(width) characteristic noise."""
        p = 8
        exact = HeavyHitterStatistics.of(query, zipf_db, p)
        sketched = SketchedHeavyHitterStatistics.of(query, zipf_db, p)
        for key, true_map in exact.hitters.items():
            sketch = sketched.sketch_set.sketches[key]
            tolerance = max(1.0, 4 * sketch.noise_scale())
            est_map = sketched.hitters.get(key, {})
            for assignment, true_freq in true_map.items():
                assert assignment in est_map
                assert abs(est_map[assignment] - true_freq) <= tolerance

    def test_sharded_build_is_bit_identical(self, query, zipf_db):
        config = SketchConfig()
        single = build_sketch_set(query, zipf_db, config, workers=1)
        domains = {
            atom.name: zipf_db.relation(atom.name).domain_size
            for atom in query.atoms
        }
        shards = [
            RelationSketchSet.empty(query, domains, config) for _ in range(3)
        ]
        for name in ("S1", "S2"):
            tuples = sorted(zipf_db.relation(name).tuples)
            for i, shard in enumerate(shards):
                shard.update_relation(name, tuples[i::3])
        merged = shards[0].merge(shards[1]).merge(shards[2])
        for key, sketch in single.sketches.items():
            assert all(
                np.array_equal(mine, theirs)
                for mine, theirs in zip(sketch.tables(),
                                        merged.sketches[key].tables())
            )
        assert merged.tuple_counts == single.tuple_counts

    def test_process_parallel_build_matches_single_pass(self, query, zipf_db):
        config = SketchConfig()
        single = build_sketch_set(query, zipf_db, config, workers=1)
        pooled = build_sketch_set(query, zipf_db, config, workers=2)
        for key, sketch in single.sketches.items():
            assert all(
                np.array_equal(mine, theirs)
                for mine, theirs in zip(sketch.tables(),
                                        pooled.sketches[key].tables())
            )

    def test_merge_rejects_config_mismatch(self, query, zipf_db):
        a = build_sketch_set(query, zipf_db, SketchConfig(seed=0))
        b = build_sketch_set(query, zipf_db, SketchConfig(seed=1))
        with pytest.raises(ValueError, match="merge"):
            a.merge(b)

    def test_observation_records_the_pass(self, query, zipf_db):
        obs = Observation.create()
        sketched = SketchedHeavyHitterStatistics.of(
            query, zipf_db, p=8, obs=obs
        )
        metrics = obs.metrics.to_dict()
        assert metrics["gauges"]["sketch.width"] == sketched.config.width
        assert metrics["gauges"]["sketch.depth"] == sketched.config.depth
        assert metrics["counters"]["sketch.updates"] == sketched.update_count
        span_names = {span.name for span in obs.tracer.spans}
        assert "stats.sketch_pass" in span_names

    def test_oversized_universe_is_a_clean_error(self):
        query = parse_query("q(a, b, c, d, e, f) :- R(a, b, c, d, e, f)")
        relation = zipf_relation(
            "R", 100, 3000, arity=6, skew=0.0, seed=0
        )
        db = Database.from_relations([relation])
        with pytest.raises(StatisticsError, match="2\\^61"):
            SketchedHeavyHitterStatistics.of(query, db, p=4)


class TestStreamBuild:
    """build_sketch_set_from_stream: sketching without a Database."""

    def _streams(self, zipf_db):
        # Generators, not Relations: each is consumed exactly once.
        return {
            name: (tuple(row) for row in zipf_db.relation(name).tuples)
            for name in ("S1", "S2")
        }

    def _domains(self, zipf_db):
        return {name: zipf_db.relation(name).domain_size for name in ("S1", "S2")}

    def test_stream_build_is_bit_identical_to_materialized(
            self, query, zipf_db):
        config = SketchConfig()
        materialized = build_sketch_set(query, zipf_db, config)
        streamed = build_sketch_set_from_stream(
            query, self._streams(zipf_db), self._domains(zipf_db), config)
        assert set(streamed.sketches) == set(materialized.sketches)
        for key, mine in streamed.sketches.items():
            theirs = materialized.sketches[key]
            for level_mine, level_theirs in zip(mine.sketches,
                                                theirs.sketches):
                assert np.array_equal(level_mine.table, level_theirs.table)
        assert streamed.tuple_counts == {
            name: len(zipf_db.relation(name)) for name in ("S1", "S2")
        }

    def test_from_stream_matches_database_build(self, query, zipf_db):
        p = 16
        from_db = SketchedHeavyHitterStatistics.of(query, zipf_db, p)
        from_stream = SketchedHeavyHitterStatistics.from_stream(
            query, self._streams(zipf_db), self._domains(zipf_db), p)
        for atom in query.atoms:
            assert (from_stream.simple.cardinality(atom.name)
                    == from_db.simple.cardinality(atom.name))
        fidelity = sketch_fidelity(
            HeavyHitterStatistics.of(query, zipf_db, p), from_stream)
        assert fidelity["recall"] == 1.0

    def test_empty_stream_counts_zero(self, query):
        streams = {"S1": iter(()), "S2": iter([(0, 1)])}
        sketch_set = build_sketch_set_from_stream(
            query, streams, {"S1": 10, "S2": 10})
        assert sketch_set.tuple_counts == {"S1": 0, "S2": 1}

    def test_missing_stream_is_an_error(self, query):
        with pytest.raises(StatisticsError, match="missing relations"):
            build_sketch_set_from_stream(query, {"S1": []}, {"S1": 10,
                                                             "S2": 10})

    def test_unknown_stream_is_an_error(self, query):
        streams = {"S1": [], "S2": [], "Ghost": []}
        with pytest.raises(StatisticsError, match="not atoms"):
            build_sketch_set_from_stream(
                query, streams, {"S1": 10, "S2": 10})

    def test_missing_or_bad_domain_is_an_error(self, query):
        with pytest.raises(StatisticsError, match="domains are missing"):
            build_sketch_set_from_stream(
                query, {"S1": [], "S2": []}, {"S1": 10})
        with pytest.raises(StatisticsError, match=">= 1"):
            build_sketch_set_from_stream(
                query, {"S1": [], "S2": []}, {"S1": 10, "S2": 0})

    def test_from_stream_records_the_pass(self, query, zipf_db):
        obs = Observation.create()
        SketchedHeavyHitterStatistics.from_stream(
            query, self._streams(zipf_db), self._domains(zipf_db), 16,
            obs=obs)
        spans = [span for span in obs.tracer.spans
                 if span.name == "stats.sketch_pass"]
        assert len(spans) == 1
        assert spans[0].attrs["source"] == "stream"
        assert obs.metrics.to_dict()["counters"]["sketch.updates"] > 0


class TestPlannerIntegration:
    def test_resolve_statistics_sketch_method(self, query, zipf_db):
        stats = resolve_statistics(
            query, None, 8, zipf_db, stats_method="sketch"
        )
        assert isinstance(stats, SketchedHeavyHitterStatistics)

    def test_resolve_statistics_rejects_unknown_method(self, query, zipf_db):
        with pytest.raises(ValueError, match="stats method"):
            resolve_statistics(query, None, 8, zipf_db, stats_method="tarot")

    def test_plan_accepts_sketched_statistics(self, query, zipf_db):
        exact_plan = plan(query, db=zipf_db, p=8)
        sketch_plan = plan(query, db=zipf_db, p=8, stats_method="sketch")
        assert isinstance(sketch_plan.stats, SketchedHeavyHitterStatistics)
        exact_keys = [pr.key for pr in exact_plan.applicable]
        sketch_keys = [pr.key for pr in sketch_plan.applicable]
        assert set(exact_keys) == set(sketch_keys)
        # Skew-aware algorithms priced the sketched hitters, not the
        # skew-free fallback: predictions exist and are finite.
        for pr in sketch_plan.applicable:
            assert pr.predicted_load_bits > 0

    def test_skew_algorithms_run_from_sketched_stats(self, query, zipf_db):
        """The skew-aware join executes completely when handed sketched
        statistics (spurious hitters are safe; missed ones are not)."""
        from repro.core import SkewAwareJoin
        from repro.mpc import run_one_round

        sketched = SketchedHeavyHitterStatistics.of(query, zipf_db, p=8)
        algo = SkewAwareJoin(query, stats=sketched)
        result = run_one_round(algo, zipf_db, p=8, verify=True)
        assert result.is_complete


class TestSweepIntegration:
    def test_stats_axis_doubles_the_grid(self):
        sweep = Sweep(
            QUERY, workload="zipf", p_values=(4,), m_values=(80,),
            skews=(1.2,), algorithms=("hashjoin", "skew-join"),
            stats=("exact", "sketch"),
        )
        cells = sweep.cells()
        assert len(cells) == 4
        assert {cell.stats for cell in cells} == {"exact", "sketch"}

    def test_records_carry_the_stats_method(self):
        result = Sweep(
            QUERY, workload="zipf", p_values=(4,), m_values=(80,),
            skews=(1.2,), algorithms=("skew-join",),
            stats=("exact", "sketch"),
        ).run()
        assert [r.stats for r in result.records] == ["exact", "sketch"]
        for record in result.records:
            assert record.max_load_bits > 0

    def test_best_per_cell_separates_stats_methods(self):
        result = Sweep(
            QUERY, workload="zipf", p_values=(4,), m_values=(80,),
            skews=(1.2,), algorithms=("hashjoin", "skew-join"),
            stats=("exact", "sketch"),
        ).run()
        assert len(result.best_per_cell()) == 2

    def test_unknown_stats_method_fails_before_running(self):
        with pytest.raises(ValueError, match="stats method"):
            Sweep(QUERY, stats=("exact", "psychic")).cells()

    def test_run_cell_with_sketch_stats(self):
        record = run_cell(Cell(
            query=QUERY, workload="zipf", m=80, skew=1.2, seed=0, p=4,
            algorithm="skew-join", stats="sketch",
        ))
        assert record.stats == "sketch"
        assert record.max_load_bits > 0

    def test_sweep_obs_times_the_stats_pass(self):
        obs = Observation.create()
        Sweep(
            QUERY, workload="zipf", p_values=(4,), m_values=(80,),
            skews=(1.2,), algorithms=("skew-join",), stats="sketch",
        ).run(obs=obs)
        metrics = obs.metrics.to_dict()
        assert "stats.build.seconds" in metrics["histograms"]
