"""Unit tests for the MapReduce model and Theorem 5.1 bounds (Section 5)."""

import math

import pytest

from repro.core import (
    minimum_reducers,
    replication_rate_bound_for_packing,
    replication_rate_lower_bound,
    triangle_replication_shape,
)
from repro.data import uniform_relation
from repro.mr import choose_reducers, hypercube_mapreduce, run_mapreduce
from repro.query import parse_query, simple_join_query, triangle_query
from repro.seq import Database
from repro.stats import SimpleStatistics


def _triangle_db(m=400, n=300, seed=0):
    return Database.from_relations(
        [
            uniform_relation("S1", m, n, seed=seed + 1),
            uniform_relation("S2", m, n, seed=seed + 2),
            uniform_relation("S3", m, n, seed=seed + 3),
        ]
    )


class TestModel:
    def test_replication_rate_counts_bits(self):
        q = parse_query("q(x, y) :- S(x, y)")
        db = Database.from_relations([uniform_relation("S", 50, 64, seed=1)])
        result = run_mapreduce(
            q, db, mapper=lambda name, t: (t[0] % 2, ), num_reducers=2
        )
        assert math.isclose(result.replication_rate, 1.0)

    def test_duplicate_delivery_charged_once(self):
        q = parse_query("q(x, y) :- S(x, y)")
        db = Database.from_relations([uniform_relation("S", 20, 64, seed=2)])
        result = run_mapreduce(
            q, db, mapper=lambda name, t: (0, 0, 1), num_reducers=2
        )
        assert math.isclose(result.replication_rate, 2.0)

    def test_bad_reducer_id_rejected(self):
        q = parse_query("q(x, y) :- S(x, y)")
        db = Database.from_relations([uniform_relation("S", 5, 64, seed=3)])
        with pytest.raises(ValueError):
            run_mapreduce(q, db, mapper=lambda n, t: (99,), num_reducers=2)

    def test_needs_a_reducer(self):
        q = parse_query("q(x, y) :- S(x, y)")
        db = Database.from_relations([uniform_relation("S", 5, 64, seed=3)])
        with pytest.raises(ValueError):
            run_mapreduce(q, db, mapper=lambda n, t: (0,), num_reducers=0)

    def test_verification(self):
        q = simple_join_query()
        db = Database.from_relations(
            [
                uniform_relation("S1", 100, 300, seed=4),
                uniform_relation("S2", 100, 300, seed=5),
            ]
        )
        # Broadcast-everything is trivially complete.
        result = run_mapreduce(
            q, db, mapper=lambda n, t: range(2), num_reducers=2, verify=True
        )
        assert result.is_complete
        assert result.within_cap(result.max_reducer_bits)
        assert not result.within_cap(result.max_reducer_bits - 1)


class TestTheorem51:
    def test_triangle_equal_sizes_shape(self):
        """Example 5.2: r = Omega(sqrt(M/L)) via the (1/2,1/2,1/2) packing."""
        q = triangle_query()
        m_bits = 2.0**20
        bits = {"S1": m_bits, "S2": m_bits, "S3": m_bits}
        reducer_bits = 2.0**14
        value, packing = replication_rate_lower_bound(q, bits, reducer_bits)
        assert all(u == 0.5 for u in map(float, packing.values()))
        # r >= (L / sum M) * (M/L)^(3/2) = sqrt(M/L) / 3: the Omega(sqrt(M/L))
        # shape of [1], with the model's 1/3 constant.
        assert math.isclose(
            value,
            triangle_replication_shape(m_bits, reducer_bits) / 3,
            rel_tol=1e-9,
        )
        # And the shape scales as sqrt: quadrupling L halves the bound.
        quarter, _ = replication_rate_lower_bound(q, bits, 4 * reducer_bits)
        assert math.isclose(value / quarter, 2.0, rel_tol=1e-9)

    def test_reducer_count_shape(self):
        """Example 5.2: p >= (M/L)^(3/2) reducers for triangles."""
        m_bits = 2.0**20
        reducer_bits = 2.0**14
        rate = triangle_replication_shape(m_bits, reducer_bits)
        reducers = minimum_reducers(rate, 3 * m_bits, reducer_bits)
        assert math.isclose(
            reducers, 3 * (m_bits / reducer_bits) ** 1.5, rel_tol=1e-9
        )

    def test_unequal_sizes_supported(self):
        """The paper's extension beyond [1]: different relation sizes."""
        q = triangle_query()
        bits = {"S1": 2.0**22, "S2": 2.0**18, "S3": 2.0**14}
        value, packing = replication_rate_lower_bound(q, bits, 2.0**12)
        assert value > 0
        assert sum(map(float, packing.values())) >= 1

    def test_rate_decreases_with_reducer_size(self):
        q = triangle_query()
        bits = {"S1": 2.0**20, "S2": 2.0**20, "S3": 2.0**20}
        rates = [
            replication_rate_lower_bound(q, bits, 2.0**e)[0]
            for e in range(10, 20)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_per_packing_formula(self):
        q = simple_join_query()
        bits = {"S1": 2.0**16, "S2": 2.0**16}
        value = replication_rate_bound_for_packing(
            {"S1": 1, "S2": 0}, bits, reducer_bits=2.0**10
        )
        # u = 1: r >= M1 / (M1 + M2) = 1/2.
        assert math.isclose(value, 0.5, rel_tol=1e-9)


class TestHyperCubeAsMapReduce:
    def test_choose_reducers_monotone(self):
        q = triangle_query()
        db = _triangle_db()
        stats = SimpleStatistics.of(db)
        small = choose_reducers(q, stats, reducer_bits=2.0**9)
        large = choose_reducers(q, stats, reducer_bits=2.0**13)
        assert small >= large

    def test_run_is_complete(self):
        q = triangle_query()
        db = _triangle_db(m=200, n=150)
        run = hypercube_mapreduce(q, db, reducer_bits=4000.0, verify=True)
        assert run.result.is_complete

    def test_measured_rate_tracks_lower_bound(self):
        """HC's replication rate is within a constant of Theorem 5.1."""
        q = triangle_query()
        db = _triangle_db(m=600, n=1200, seed=50)
        stats = SimpleStatistics.of(db)
        bits = stats.bits_vector(q)
        reducer_bits = sum(bits.values()) / 12
        run = hypercube_mapreduce(q, db, reducer_bits=reducer_bits)
        bound, _ = replication_rate_lower_bound(q, bits, reducer_bits)
        measured = run.result.replication_rate
        assert measured >= bound * 0.3  # lower bound (model constants aside)
        assert measured <= bound * 12 + 3  # matched within constants
