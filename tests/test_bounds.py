"""Unit tests for the load bounds L(u, M, p) and Theorem 3.6 equivalence."""

import math
from fractions import Fraction

import pytest

from repro.core import (
    BoundError,
    K,
    broadcast_reduction,
    load,
    log2_K,
    lower_bound,
    maximum_packing_value,
    optimal_share_exponents,
    space_exponent,
    uniform_lower_bound,
    vertex_loads,
)
from repro.query import (
    chain_query,
    simple_join_query,
    star_query,
    triangle_query,
)


class TestK:
    def test_k_is_product_of_powers(self):
        bits = {"S1": 8.0, "S2": 16.0}
        u = {"S1": 1, "S2": Fraction(1, 2)}
        assert math.isclose(K(u, bits), 8.0 * 4.0)

    def test_zero_weight_ignores_empty_relation(self):
        """0^0 = 1 convention: u_j = 0 makes M_j irrelevant."""
        bits = {"S1": 0.0, "S2": 16.0}
        u = {"S1": 0, "S2": 1}
        assert math.isclose(K(u, bits), 16.0)

    def test_positive_weight_on_empty_relation_kills_k(self):
        bits = {"S1": 0.0, "S2": 16.0}
        u = {"S1": 1, "S2": 1}
        assert log2_K(u, bits) == -math.inf


class TestLoad:
    def test_equal_cardinality_closed_form(self):
        """L = M / p^(1/u) when all sizes equal (Section 3.2)."""
        bits = {"S1": 1024.0, "S2": 1024.0, "S3": 1024.0}
        u = {"S1": Fraction(1, 2), "S2": Fraction(1, 2), "S3": Fraction(1, 2)}
        p = 64
        expected = 1024.0 / p ** (1 / 1.5)
        assert math.isclose(load(u, bits, p), expected)

    def test_singleton_packing_gives_mj_over_p(self):
        bits = {"S1": 1000.0, "S2": 500.0}
        assert math.isclose(load({"S1": 1, "S2": 0}, bits, 10), 100.0)

    def test_zero_packing_rejected(self):
        with pytest.raises(BoundError):
            load({"S1": 0}, {"S1": 10.0}, 4)


class TestLowerBound:
    def test_triangle_example_3_7_table(self):
        """The four vertex expressions of Example 3.7."""
        q = triangle_query()
        m1, m2, m3 = 2.0**20, 2.0**18, 2.0**12
        bits = {"S1": m1, "S2": m2, "S3": m3}
        p = 64
        rows = {
            tuple(sorted((k, float(v)) for k, v in u.items())): value
            for u, value in vertex_loads(q, bits, p)
        }
        expected = {
            (("S1", 0.5), ("S2", 0.5), ("S3", 0.5)): (m1 * m2 * m3) ** (1 / 3)
            / p ** (2 / 3),
            (("S1", 1.0), ("S2", 0.0), ("S3", 0.0)): m1 / p,
            (("S1", 0.0), ("S2", 1.0), ("S3", 0.0)): m2 / p,
            (("S1", 0.0), ("S2", 0.0), ("S3", 1.0)): m3 / p,
        }
        assert set(rows) == set(expected)
        for key, value in expected.items():
            assert math.isclose(rows[key], value, rel_tol=1e-9)
        assert math.isclose(
            lower_bound(q, bits, p).bits, max(expected.values()), rel_tol=1e-9
        )

    def test_theorem_3_6_lower_equals_upper(self):
        """L_lower (max over pk(q)) == L_upper (share LP optimum)."""
        cases = [
            (triangle_query(), {"S1": 2.0**20, "S2": 2.0**17, "S3": 2.0**14}),
            (simple_join_query(), {"S1": 2.0**16, "S2": 2.0**12}),
            (chain_query(3), {"S1": 2.0**15, "S2": 2.0**13, "S3": 2.0**15}),
            (star_query(3), {"S1": 2.0**14, "S2": 2.0**14, "S3": 2.0**10}),
        ]
        for q, bits in cases:
            for p in (4, 16, 64, 256):
                lower = lower_bound(q, bits, p).bits
                upper = optimal_share_exponents(q, bits, p).load_bits
                assert math.isclose(lower, upper, rel_tol=1e-6), (q.name, p)

    def test_uniform_case_recovers_tau_star(self):
        """Equal sizes: L = M / p^(1/tau*) (the [4] special case)."""
        q = triangle_query()
        m = 2.0**20
        bits = {"S1": m, "S2": m, "S3": m}
        p = 64
        tau = float(maximum_packing_value(q))
        assert math.isclose(
            lower_bound(q, bits, p).bits, m / p ** (1 / tau), rel_tol=1e-9
        )
        assert math.isclose(
            uniform_lower_bound(q, m, p), m / p ** (1 / tau), rel_tol=1e-12
        )

    def test_broadcast_regime_dominated_vertex_wins(self):
        """With M_0 < M/p, the dominated vertex (0, 1) carries the maximum;
        lower_bound must still equal the LP optimum (see its docstring)."""
        from repro.query import cartesian_product_query

        q = cartesian_product_query(2)
        bits = {"S1": 64.0, "S2": 512.0}
        p = 4
        bound = lower_bound(q, bits, p)
        assert math.isclose(bound.bits, 512.0 / 4)
        assert bound.packing["S1"] == 0 and bound.packing["S2"] == 1
        upper = optimal_share_exponents(q, bits, p).load_bits
        assert math.isclose(bound.bits, upper, rel_tol=1e-9)

    def test_unequal_sizes_can_beat_tau_star_vertex(self):
        """With very skewed cardinalities a singleton vertex dominates."""
        q = triangle_query()
        bits = {"S1": 2.0**30, "S2": 2.0**10, "S3": 2.0**10}
        bound = lower_bound(q, bits, 16)
        assert bound.packing["S1"] == 1  # the (1,0,0) vertex wins
        assert math.isclose(bound.bits, 2.0**30 / 16)


class TestSpaceExponent:
    def test_matching_case(self):
        """Equal sizes: space exponent = 1 - 1/tau* (from [4])."""
        q = triangle_query()
        m = 2.0**24
        bits = {"S1": m, "S2": m, "S3": m}
        p = 256
        eps = space_exponent(q, bits, p)
        assert math.isclose(eps, 1 - 1 / 1.5, rel_tol=1e-6)

    def test_join_space_exponent(self):
        q = simple_join_query()
        m = 2.0**24
        eps = space_exponent(q, {"S1": m, "S2": m}, 256)
        assert math.isclose(eps, 0.0, abs_tol=1e-6)

    def test_empty_bits_rejected(self):
        with pytest.raises(BoundError):
            space_exponent(simple_join_query(), {"S1": 0.0, "S2": 0.0}, 4)


class TestBroadcastReduction:
    def test_small_relation_dropped(self):
        q = simple_join_query()
        bits = {"S1": 1000.0, "S2": 10.0}
        dropped, remaining = broadcast_reduction(q, bits, 100)
        assert dropped == ["S2"]
        assert list(remaining) == ["S1"]

    def test_nothing_dropped_when_balanced(self):
        q = simple_join_query()
        bits = {"S1": 1000.0, "S2": 900.0}
        dropped, remaining = broadcast_reduction(q, bits, 10)
        assert dropped == []
        assert len(remaining) == 2
