"""E3 — Example 3.3: the two share allocations for
``q(x,y,z) = S1(x,z), S2(y,z)``.

+----------------------+------------------+------------------+
| shares               | skew-free        | skewed (one z)   |
+----------------------+------------------+------------------+
| (p^1/3, p^1/3, p^1/3)| O(m/p^2/3)       | O(m/p^1/3)       |
| (1, 1, p)            | O(m/p)           | Omega(m)         |
+----------------------+------------------+------------------+

The benchmark regenerates all four cells and asserts the orderings.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.core import HashJoinAlgorithm, HyperCubeAlgorithm
from repro.data import single_value_relation, uniform_relation
from repro.mpc import run_one_round
from repro.query import simple_join_query
from repro.seq import Database

P = 27
M_UNIFORM = 2048
M_SKEWED = 220  # kept small: the skewed join output is quadratic


def _db(skewed: bool) -> Database:
    if skewed:
        return Database.from_relations(
            [
                single_value_relation("S1", M_SKEWED, 4 * M_SKEWED, seed=1),
                single_value_relation("S2", M_SKEWED, 4 * M_SKEWED, seed=2),
            ]
        )
    return Database.from_relations(
        [
            uniform_relation("S1", M_UNIFORM, 16 * M_UNIFORM, seed=3),
            uniform_relation("S2", M_UNIFORM, 16 * M_UNIFORM, seed=4),
        ]
    )


def _algorithm(kind: str):
    query = simple_join_query()
    if kind == "cube":
        return HyperCubeAlgorithm.with_equal_shares(query, P)
    return HashJoinAlgorithm(query, P)


@pytest.mark.parametrize("shares", ["cube", "hash"])
@pytest.mark.parametrize("data", ["uniform", "skewed"])
def test_example_3_3_cell(benchmark, shares, data):
    db = _db(skewed=(data == "skewed"))
    algo = _algorithm(shares)
    result = benchmark(
        lambda: run_one_round(algo, db, P, compute_answers=False)
    )
    m = db.relation("S1").cardinality
    record(
        benchmark,
        "E3",
        shares=shares,
        data=data,
        m=m,
        p=P,
        max_load_tuples=result.max_load_tuples,
        m_over_p=m / P,
        m_over_p23=m / P ** (2 / 3),
        m_over_p13=m / P ** (1 / 3),
    )


def test_example_3_3_orderings(benchmark):
    """The cross-cell claims: hash wins skew-free, cube wins under skew."""

    def run_all():
        out = {}
        for shares in ("cube", "hash"):
            for data in ("uniform", "skewed"):
                db = _db(skewed=(data == "skewed"))
                result = run_one_round(
                    _algorithm(shares), db, P, compute_answers=False
                )
                out[(shares, data)] = result.max_load_tuples
        return out

    loads = benchmark(run_all)
    record(
        benchmark,
        "E3",
        cube_uniform=loads[("cube", "uniform")],
        hash_uniform=loads[("hash", "uniform")],
        cube_skewed=loads[("cube", "skewed")],
        hash_skewed=loads[("hash", "skewed")],
    )
    # Skew-free: hash join's m/p beats the cube's m/p^(2/3) replication.
    assert loads[("hash", "uniform")] < loads[("cube", "uniform")]
    # Skewed: hash join collapses to Omega(m) while the cube stays sublinear.
    assert loads[("hash", "skewed")] == 2 * M_SKEWED
    assert loads[("cube", "skewed")] < loads[("hash", "skewed")] / 2
