"""E7 — Theorem 4.6: the general bin-combination algorithm's measured load
stays within a polylog factor of ``max_B p^(lambda(B))``, on joins and
triangles with planted heavy hitters; ablates the bin width and Nbc.
"""

from __future__ import annotations

import math

import pytest

from conftest import record
from repro.core import BinHyperCubeAlgorithm, HashJoinAlgorithm
from repro.data import planted_heavy_relation, uniform_relation
from repro.mpc import run_one_round
from repro.query import simple_join_query, triangle_query
from repro.seq import Database

P = 16


def _join_db(heavy_fraction: float) -> Database:
    return Database.from_relations(
        [
            planted_heavy_relation(
                "S1", 1200, 4000, heavy_values=[0, 1, 2],
                heavy_fraction=heavy_fraction, seed=31,
            ),
            planted_heavy_relation(
                "S2", 1200, 4000, heavy_values=[0, 7],
                heavy_fraction=heavy_fraction / 2, seed=32,
            ),
        ]
    )


def _triangle_db() -> Database:
    return Database.from_relations(
        [
            planted_heavy_relation(
                "S1", 400, 500, heavy_values=[0], heavy_fraction=0.4,
                heavy_position=0, seed=33,
            ),
            uniform_relation("S2", 400, 500, seed=34),
            planted_heavy_relation(
                "S3", 400, 500, heavy_values=[0], heavy_fraction=0.4,
                heavy_position=1, seed=35,
            ),
        ]
    )


@pytest.mark.parametrize("heavy_fraction", [0.2, 0.5, 0.8])
def test_join_load_vs_theorem(benchmark, heavy_fraction):
    query = simple_join_query()
    db = _join_db(heavy_fraction)
    algo = BinHyperCubeAlgorithm(query)
    result = benchmark(
        lambda: run_one_round(algo, db, P, compute_answers=False)
    )
    predicted = result.details["theoretical_load_bits"]
    polylog = 4 * math.log(P) ** 2
    record(
        benchmark,
        "E7",
        workload=f"join-heavy{heavy_fraction}",
        measured_bits=result.max_load_bits,
        lambda_bound_bits=predicted,
        ratio=result.max_load_bits / predicted,
        combos=result.details["bin_combinations"],
    )
    assert result.max_load_bits <= predicted * polylog


def test_triangle_load_vs_theorem(benchmark):
    query = triangle_query()
    db = _triangle_db()
    algo = BinHyperCubeAlgorithm(query)
    result = benchmark(
        lambda: run_one_round(algo, db, P, compute_answers=False)
    )
    predicted = result.details["theoretical_load_bits"]
    record(
        benchmark,
        "E7",
        workload="triangle-hub",
        measured_bits=result.max_load_bits,
        lambda_bound_bits=predicted,
        ratio=result.max_load_bits / predicted,
        combos=result.details["bin_combinations"],
    )
    assert result.max_load_bits <= predicted * 6 * math.log(P) ** 2


def test_beats_hash_join(benchmark):
    query = simple_join_query()
    db = _join_db(0.8)

    def run_pair():
        bin_load = run_one_round(
            BinHyperCubeAlgorithm(query), db, P, compute_answers=False
        ).max_load_tuples
        hash_load = run_one_round(
            HashJoinAlgorithm(query, P), db, P, compute_answers=False
        ).max_load_tuples
        return bin_load, hash_load

    bin_load, hash_load = benchmark(run_pair)
    record(benchmark, "E7", bin_hc=bin_load, hashjoin=hash_load)
    assert bin_load < hash_load


@pytest.mark.parametrize("nbc", [0.25, 1.0, 16.0])
def test_nbc_ablation(benchmark, nbc):
    """Ablation: large Nbc raises overweight thresholds — fewer dedicated
    combinations, worse balance under skew — but never breaks correctness."""
    query = simple_join_query()
    db = _join_db(0.8)
    algo = BinHyperCubeAlgorithm(query, nbc=nbc)
    result = benchmark(
        lambda: run_one_round(algo, db, P, compute_answers=False)
    )
    record(
        benchmark,
        "E7-ablation",
        nbc=nbc,
        measured_tuples=result.max_load_tuples,
        combos=result.details["bin_combinations"],
    )
    check = run_one_round(algo, db, P, verify=True)
    assert check.is_complete
