"""E12 — Section 2.3 + Lemma A.1: Friedgut's inequality, the AGM bound, and
the expected answer count on random instances.

Regenerates: |C3| vs sqrt(m1 m2 m3) on random graphs; the Friedgut gap for
random weights; and the empirical average of |q(I)| against
``n^(k-a) prod_j m_j``.
"""

from __future__ import annotations

import math
import random

import pytest

from conftest import record
from repro.core import agm_bound, check_agm, expected_answer_count, friedgut_gap
from repro.data import uniform_relation
from repro.query import simple_join_query, triangle_query
from repro.seq import Database, count_answers


def _triangle_db(m, n, seed):
    return Database.from_relations(
        [
            uniform_relation("S1", m, n, seed=seed),
            uniform_relation("S2", m, n, seed=seed + 1),
            uniform_relation("S3", m, n, seed=seed + 2),
        ]
    )


@pytest.mark.parametrize("density", ["sparse", "dense"])
def test_agm_bound_on_triangles(benchmark, density):
    m, n = (800, 2000) if density == "sparse" else (800, 80)
    query = triangle_query()
    db = _triangle_db(m, n, seed=81)
    actual, bound = benchmark(lambda: check_agm(query, db))
    record(
        benchmark,
        "E12",
        density=density,
        actual=actual,
        agm_bound=bound,
        slack=bound / max(actual, 1),
    )
    assert actual <= bound
    assert math.isclose(bound, m**1.5, rel_tol=1e-9)


def test_friedgut_gap_random_weights(benchmark):
    query = triangle_query()
    rng = random.Random(82)
    weights = {
        name: {
            (rng.randrange(15), rng.randrange(15)): rng.random() * 4
            for _ in range(60)
        }
        for name in ("S1", "S2", "S3")
    }
    cover = {"S1": 0.5, "S2": 0.5, "S3": 0.5}
    lhs, rhs = benchmark(lambda: friedgut_gap(query, cover, weights))
    record(benchmark, "E12", lhs=lhs, rhs=rhs, gap=rhs / max(lhs, 1e-12))
    assert lhs <= rhs * (1 + 1e-9)


def test_lemma_a1_expected_answers(benchmark):
    """Average |q(I)| over random instances vs n^(k-a) prod m_j."""
    query = simple_join_query()
    m, n, trials = 400, 150, 20

    def average():
        total = 0
        for seed in range(trials):
            db = Database.from_relations(
                [
                    uniform_relation("S1", m, n, seed=1000 + 2 * seed),
                    uniform_relation("S2", m, n, seed=1001 + 2 * seed),
                ]
            )
            total += count_answers(query, db)
        return total / trials

    measured = benchmark(average)
    predicted = expected_answer_count(query, {"S1": m, "S2": m}, n)
    record(
        benchmark,
        "E12",
        measured_mean=measured,
        lemma_a1=predicted,
        ratio=measured / predicted,
    )
    assert 0.85 <= measured / predicted <= 1.15


def test_agm_cover_shift_with_sizes(benchmark):
    """The minimizing cover adapts to unequal sizes (Section 2.3)."""
    query = triangle_query()

    def bounds():
        balanced = agm_bound(query, {"S1": 1000, "S2": 1000, "S3": 1000})
        lopsided = agm_bound(query, {"S1": 1000, "S2": 1000, "S3": 4})
        return balanced, lopsided

    balanced, lopsided = benchmark(bounds)
    record(benchmark, "E12", balanced=balanced, lopsided=lopsided)
    assert math.isclose(balanced, 1000**1.5, rel_tol=1e-9)
    # With S3 tiny the cover (1/2,1/2,1/2) gives sqrt(1000*1000*4) = 2000,
    # a sqrt(1000/4) ~ 16x drop from the balanced 1000^1.5 ~ 31623.
    assert math.isclose(lopsided, 2000.0, rel_tol=1e-9)
    assert lopsided < balanced / 10
