"""E1 — Theorem 3.4 + 3.6: on skew-free data, HyperCube with LP-optimal
shares achieves the closed-form optimum ``L_lower = max_u L(u, M, p)``
within a small (polylog) factor.

Regenerates, for several query shapes and unequal cardinalities, the pair
(measured max load, L_lower) whose ratio the theorem bounds.  Also ablates
the share-rounding strategy (DESIGN.md §5).

Per-phase timings (routing vs local join) are read from the metrics layer
via an :class:`~repro.obs.Observation` threaded through ``run_one_round``,
so the breakdown matches what ``repro race --metrics`` reports.
"""

from __future__ import annotations

import pytest

from conftest import phase_ms, record
from repro.core import (
    HyperCubeAlgorithm,
    integer_shares,
    lower_bound,
    optimal_share_exponents,
)
from repro.data import matching_relation, uniform_relation
from repro.mpc import run_one_round
from repro.obs import Observation
from repro.query import chain_query, simple_join_query, triangle_query
from repro.seq import Database
from repro.stats import SimpleStatistics


def _matching_db(query, cardinalities, domain):
    return Database.from_relations(
        [
            matching_relation(atom.name, cardinalities[atom.name], domain,
                              seed=100 + i)
            for i, atom in enumerate(query.atoms)
        ]
    )


CASES = [
    ("join-balanced", simple_join_query(), {"S1": 4096, "S2": 4096}, 64),
    ("join-lopsided", simple_join_query(), {"S1": 8192, "S2": 1024}, 64),
    ("triangle-balanced", triangle_query(),
     {"S1": 4096, "S2": 4096, "S3": 4096}, 64),
    ("triangle-mixed", triangle_query(),
     {"S1": 8192, "S2": 4096, "S3": 1024}, 64),
    ("chain3", chain_query(3), {"S1": 4096, "S2": 2048, "S3": 4096}, 32),
]


@pytest.mark.parametrize("label,query,cardinalities,p", CASES)
def test_hc_matches_lower_bound(benchmark, engine, label, query, cardinalities, p):
    domain = 4 * max(cardinalities.values())
    db = _matching_db(query, cardinalities, domain)
    stats = SimpleStatistics.of(db)
    algo = HyperCubeAlgorithm.with_optimal_shares(query, stats, p)

    obs = Observation.create()
    result = benchmark(
        lambda: run_one_round(algo, db, p, compute_answers=False,
                              engine=engine, obs=obs)
    )
    bound = lower_bound(query, stats.bits_vector(query), p)
    ratio = result.max_load_bits / bound.bits
    record(
        benchmark,
        "E1",
        case=label,
        p=p,
        measured_bits=result.max_load_bits,
        lower_bound_bits=bound.bits,
        ratio=ratio,
        route_ms=phase_ms(obs, "engine.route"),
        run_ms=phase_ms(obs, "engine.run"),
        shares=str(algo.shares),
    )
    # The theorem promises O(polylog p); anything within ~8x at this scale.
    assert ratio <= 8.0
    # And no algorithm can sit far below the bound (hashing variance aside).
    assert ratio >= 0.4


@pytest.mark.parametrize("strategy", ["floor", "greedy"])
def test_share_rounding_ablation(benchmark, engine, strategy):
    """Ablation: greedy rounding never loses to plain floors."""
    query = triangle_query()
    cardinalities = {"S1": 8192, "S2": 4096, "S3": 1024}
    db = _matching_db(query, cardinalities, 4 * 8192)
    stats = SimpleStatistics.of(db)
    bits = stats.bits_vector(query)
    p = 60  # deliberately not a perfect power
    exponents = optimal_share_exponents(query, bits, p)

    shares = benchmark(
        lambda: integer_shares(query, exponents.exponents, p,
                               strategy=strategy, bits=bits)
    )
    algo = HyperCubeAlgorithm(query, shares)
    result = run_one_round(algo, db, p, compute_answers=False, engine=engine)
    record(
        benchmark,
        "E1-ablation",
        strategy=strategy,
        shares=str(shares),
        measured_bits=result.max_load_bits,
        lp_bits=exponents.load_bits,
    )


def test_load_scaling_exponent(benchmark, engine):
    """The space-exponent claim: for the equal-size triangle the load scales
    as ``M / p^(1/tau*) = M / p^(2/3)``; the fitted log-log slope across a
    sweep of p must sit near -2/3."""
    import math

    query = triangle_query()
    cardinalities = {"S1": 4096, "S2": 4096, "S3": 4096}
    db = _matching_db(query, cardinalities, 4 * 4096)
    stats = SimpleStatistics.of(db)
    ps = [8, 27, 64, 216]

    def loads():
        out = []
        for p in ps:
            algo = HyperCubeAlgorithm.with_optimal_shares(query, stats, p)
            result = run_one_round(algo, db, p, compute_answers=False,
                                   engine=engine)
            out.append(result.max_load_bits)
        return out

    measured = benchmark(loads)
    xs = [math.log(p) for p in ps]
    ys = [math.log(load) for load in measured]
    n = len(xs)
    slope = (n * sum(x * y for x, y in zip(xs, ys)) - sum(xs) * sum(ys)) / (
        n * sum(x * x for x in xs) - sum(xs) ** 2
    )
    record(
        benchmark,
        "E1",
        case="p-scaling",
        loads=str([f"{v:.0f}" for v in measured]),
        fitted_slope=slope,
        predicted_slope=-2 / 3,
    )
    assert -0.9 <= slope <= -0.45  # -2/3 within hashing noise


def test_afrati_ullman_ablation(benchmark):
    """Ablation: [2]'s total-load objective vs the paper's max-load LP.

    On a lopsided join the two solutions differ; the LP never loses on the
    max-load metric (the quantity the MPC model charges)."""
    from repro.core import afrati_ullman_share_exponents

    query = simple_join_query()
    bits = {"S1": float(2**22), "S2": float(2**14)}
    p = 64

    au = benchmark(lambda: afrati_ullman_share_exponents(query, bits, p))
    lp = optimal_share_exponents(query, bits, p)
    record(
        benchmark,
        "E1-ablation",
        objective="total-vs-max",
        au_lambda=float(au.lam),
        lp_lambda=float(lp.lam),
        au_exponents=str({k: round(float(v), 3) for k, v in au.exponents.items()}),
        lp_exponents=str({k: round(float(v), 3) for k, v in lp.exponents.items()}),
    )
    assert float(au.lam) >= float(lp.lam) - 1e-6


def test_uniform_data_matches_matching_data(benchmark, engine):
    """Skew-free uniform data behaves like matchings (Lemma 3.1(2) vs (3))."""
    query = simple_join_query()
    p = 64
    db = Database.from_relations(
        [
            uniform_relation("S1", 4096, 64 * 4096, seed=7),
            uniform_relation("S2", 4096, 64 * 4096, seed=8),
        ]
    )
    stats = SimpleStatistics.of(db)
    algo = HyperCubeAlgorithm.with_optimal_shares(query, stats, p)
    obs = Observation.create()
    result = benchmark(
        lambda: run_one_round(algo, db, p, compute_answers=False,
                              engine=engine, obs=obs)
    )
    bound = lower_bound(query, stats.bits_vector(query), p)
    record(
        benchmark,
        "E1",
        case="join-uniform",
        measured_bits=result.max_load_bits,
        lower_bound_bits=bound.bits,
        ratio=result.max_load_bits / bound.bits,
        route_ms=phase_ms(obs, "engine.route"),
    )
    assert result.max_load_bits <= 8 * bound.bits
