"""E11 — Section 1's warm-up: the cartesian-product grid algorithm achieves
``Theta(sqrt(m1 m2 / p))`` and degrades to broadcast when one side is tiny
(footnotes 1 and 2).
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.core import CartesianProductAlgorithm, cartesian_lower_bound_bits
from repro.data import uniform_relation
from repro.mpc import run_one_round
from repro.query import cartesian_product_query
from repro.seq import Database

P = 16

RATIOS = [(4096, 4096), (8192, 2048), (16384, 1024)]


@pytest.mark.parametrize("m1,m2", RATIOS)
def test_two_way_grid_optimality(benchmark, m1, m2):
    query = cartesian_product_query(2)
    db = Database.from_relations(
        [
            uniform_relation("S1", m1, 10**6, arity=1, seed=71),
            uniform_relation("S2", m2, 10**6, arity=1, seed=72),
        ]
    )
    algo = CartesianProductAlgorithm(query)
    result = benchmark(
        lambda: run_one_round(algo, db, P, compute_answers=False)
    )
    bits = {name: db.relation(name).bits for name in ("S1", "S2")}
    bound = cartesian_lower_bound_bits(bits, P)
    record(
        benchmark,
        "E11",
        m1=m1,
        m2=m2,
        grid=str(result.details["grid"]),
        measured_bits=result.max_load_bits,
        bound_bits=bound,
        ratio=result.max_load_bits / bound,
    )
    assert result.max_load_bits >= bound  # footnote 2's lower bound
    assert result.max_load_bits <= 4 * bound  # and the grid nearly meets it


def test_broadcast_regime(benchmark):
    """m1 < m2/p: the grid gives S1 a single slice (= broadcast), and the
    load is ~m2/p — within 2x of any algorithm (footnote 1)."""
    query = cartesian_product_query(2)
    m1, m2 = 16, 32768
    db = Database.from_relations(
        [
            uniform_relation("S1", m1, 10**6, arity=1, seed=73),
            uniform_relation("S2", m2, 10**6, arity=1, seed=74),
        ]
    )
    algo = CartesianProductAlgorithm(query)
    result = benchmark(
        lambda: run_one_round(algo, db, P, compute_answers=False)
    )
    record(
        benchmark,
        "E11",
        grid=str(result.details["grid"]),
        measured_bits=result.max_load_bits,
        storage_bound_bits=db.relation("S2").bits / P,
    )
    assert result.details["grid"]["S1"] == 1
    assert result.max_load_bits <= 3 * db.relation("S2").bits / P


def test_three_way_product(benchmark):
    """u-way generalization: load ~ (m1 m2 m3 / p)^(1/3)."""
    query = cartesian_product_query(3)
    db = Database.from_relations(
        [
            uniform_relation("S1", 2048, 10**6, arity=1, seed=75),
            uniform_relation("S2", 2048, 10**6, arity=1, seed=76),
            uniform_relation("S3", 2048, 10**6, arity=1, seed=77),
        ]
    )
    p = 27
    algo = CartesianProductAlgorithm(query)
    result = benchmark(
        lambda: run_one_round(algo, db, p, compute_answers=False)
    )
    bits = {name: db.relation(name).bits for name in ("S1", "S2", "S3")}
    bound = cartesian_lower_bound_bits(bits, p)
    record(
        benchmark,
        "E11",
        case="three-way",
        measured_bits=result.max_load_bits,
        bound_bits=bound,
        ratio=result.max_load_bits / bound,
    )
    assert bound <= result.max_load_bits <= 6 * bound
