"""E5 — Example 3.7: the triangle's optimal load is the maximum of the four
packing-vertex expressions, and which one wins depends on the cardinality
regime.

For three regimes (balanced, one-large, two-large) the benchmark prints the
four expressions, checks the predicted winner, and verifies measured
HyperCube-LP load tracks the maximum.
"""

from __future__ import annotations

import math

import pytest

from conftest import record
from repro.core import HyperCubeAlgorithm, lower_bound, vertex_loads
from repro.data import matching_relation
from repro.mpc import run_one_round
from repro.query import triangle_query
from repro.seq import Database
from repro.stats import SimpleStatistics

P = 64

REGIMES = {
    # name: (m1, m2, m3, expected winning vertex as tuple of weights)
    "balanced": ((4096, 4096, 4096), (0.5, 0.5, 0.5)),
    "one-large": ((16384, 512, 512), (1.0, 0.0, 0.0)),
    "two-large": ((8192, 8192, 1024), (0.5, 0.5, 0.5)),
}


def _db(cardinalities):
    domain = 4 * max(cardinalities)
    return Database.from_relations(
        [
            matching_relation(f"S{j + 1}", m, domain, seed=10 + j)
            for j, m in enumerate(cardinalities)
        ]
    )


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_vertex_table_and_winner(benchmark, regime):
    cardinalities, winner = REGIMES[regime]
    query = triangle_query()
    db = _db(cardinalities)
    stats = SimpleStatistics.of(db)
    bits = stats.bits_vector(query)

    rows = benchmark(lambda: vertex_loads(query, bits, P))
    bound = lower_bound(query, bits, P)
    best = max(rows, key=lambda row: row[1])
    record(
        benchmark,
        "E5",
        regime=regime,
        cardinalities=str(cardinalities),
        table=str({
            tuple(float(v) for v in u.values()): f"{val:.0f}"
            for u, val in rows
        }),
        winner=str(tuple(float(v) for v in best[0].values())),
        bound_bits=bound.bits,
    )
    assert tuple(float(best[0][f"S{j}"]) for j in (1, 2, 3)) == winner
    assert math.isclose(best[1], bound.bits, rel_tol=1e-9)


@pytest.mark.parametrize("regime", sorted(REGIMES))
def test_measured_load_tracks_maximum(benchmark, regime):
    cardinalities, _ = REGIMES[regime]
    query = triangle_query()
    db = _db(cardinalities)
    stats = SimpleStatistics.of(db)
    algo = HyperCubeAlgorithm.with_optimal_shares(query, stats, P)
    result = benchmark(
        lambda: run_one_round(algo, db, P, compute_answers=False)
    )
    bound = lower_bound(query, stats.bits_vector(query), P)
    ratio = result.max_load_bits / bound.bits
    record(
        benchmark,
        "E5",
        regime=regime,
        shares=str(algo.shares),
        measured_bits=result.max_load_bits,
        bound_bits=bound.bits,
        ratio=ratio,
    )
    assert 0.4 <= ratio <= 8.0
