"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's index (E1-E12).
The timed body is the interesting computation (routing a round, solving the
LPs); the scientific payload — measured load vs. the paper's closed-form
bound — lands in ``benchmark.extra_info`` and is printed as a table row so
``pytest benchmarks/ --benchmark-only`` output doubles as the experiment log.
"""

from __future__ import annotations

from typing import Any


def record(benchmark: Any, experiment: str, **values: Any) -> None:
    """Stash experiment measurements and echo them as a readable row."""
    formatted = {}
    for key, value in values.items():
        if isinstance(value, float):
            formatted[key] = f"{value:.4g}"
        else:
            formatted[key] = str(value)
    benchmark.extra_info.update({"experiment": experiment, **formatted})
    row = "  ".join(f"{k}={v}" for k, v in formatted.items())
    print(f"\n[{experiment}] {row}")
