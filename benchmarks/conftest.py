"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's index (E1-E12).
The timed body is the interesting computation (routing a round, solving the
LPs); the scientific payload — measured load vs. the paper's closed-form
bound — lands in ``benchmark.extra_info`` and is printed as a table row so
``pytest benchmarks/ --benchmark-only`` output doubles as the experiment log.

The execution engine simulating the rounds is selectable::

    pytest benchmarks/bench_e1_skewfree_matching.py --engine batched

``--engine reference`` reproduces the seed's tuple-at-a-time numbers (the
loads are identical by the engine-parity contract; only the wall-clock
changes).  Benchmarks opt in by taking the ``engine`` fixture and passing
it to ``run_one_round``.

Phase timings come from the observability layer (:mod:`repro.obs`), not
ad-hoc ``perf_counter`` bracketing: benchmarks pass an
:class:`~repro.obs.Observation` into ``run_one_round``/``Sweep.run`` and
read the per-phase histograms back through :func:`phase_ms`.
"""

from __future__ import annotations

from typing import Any

import pytest

from repro.mpc import available_engines
from repro.obs import Observation


def pytest_addoption(parser: Any) -> None:
    parser.addoption(
        "--engine",
        action="store",
        default="batched",
        choices=available_engines(),
        help="execution engine for the simulated rounds "
             "(answers and loads are engine-independent)",
    )


@pytest.fixture
def engine(request: Any) -> str:
    """The ``--engine`` choice, threaded into ``run_one_round`` calls."""
    return request.config.getoption("--engine")


def phase_ms(obs: Observation, name: str) -> float:
    """Mean milliseconds of one instrumented phase (``name`` without the
    ``.seconds`` suffix), read from the metrics layer's histogram.

    The mean absorbs pytest-benchmark's repeated invocations: every round
    observes another sample into the same shared registry.
    """
    return 1e3 * obs.metrics.histogram(f"{name}.seconds").mean


def record(benchmark: Any, experiment: str, **values: Any) -> None:
    """Stash experiment measurements and echo them as a readable row."""
    formatted = {}
    for key, value in values.items():
        if isinstance(value, float):
            formatted[key] = f"{value:.4g}"
        else:
            formatted[key] = str(value)
    benchmark.extra_info.update({"experiment": experiment, **formatted})
    row = "  ".join(f"{k}={v}" for k, v in formatted.items())
    print(f"\n[{experiment}] {row}")
