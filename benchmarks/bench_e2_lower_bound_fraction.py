"""E2 — Theorem 3.5: servers capped at ``L`` bits report at most
``p (L / (c L(u,M,p)))^u`` of the expected answers.

We route a skew-free join with HyperCube, then *truncate* each server's
received fragment to a bit budget (keeping an arbitrary prefix — the
adversary cannot do better in expectation on random data), and measure the
fraction of answers still derivable.  The measured curve must stay below
the theorem's bound curve (with c = 1 the bound is loose by the model
constant, making the assertion safe)."""

from __future__ import annotations

import pytest

from conftest import record
from repro.core import HyperCubeAlgorithm, lower_bound, reported_fraction_bound
from repro.data import matching_relation
from repro.mpc import Cluster, HashFamily
from repro.query import simple_join_query
from repro.seq import Database, evaluate, local_join
from repro.stats import SimpleStatistics


def _capped_fraction(query, db, p, cap_bits, seed=0):
    """Fraction of answers found when every server keeps <= cap_bits."""
    stats = SimpleStatistics.of(db)
    algo = HyperCubeAlgorithm.with_optimal_shares(query, stats, p)
    plan = algo.routing_plan(db, p, HashFamily(seed))
    cluster = Cluster(p)
    for atom in query.atoms:
        relation = db.relation(atom.name)
        for tup in sorted(relation.tuples):
            for dest in plan.destinations(atom.name, tup):
                server = cluster.servers[dest]
                if server.received_bits + relation.tuple_bits <= cap_bits:
                    server.receive(atom.name, tup, relation.tuple_bits)
    found = set()
    for server in cluster.servers:
        if server.fragments:
            found |= local_join(query, server.fragments, db.domain_size)
    expected = evaluate(query, db)
    if not expected:
        return 1.0
    return len(found) / len(expected)


CAP_FRACTIONS = [0.05, 0.15, 0.3, 0.6, 1.0, 2.0]


@pytest.mark.parametrize("cap_fraction", CAP_FRACTIONS)
def test_capped_servers_report_bounded_fraction(benchmark, cap_fraction):
    query = simple_join_query()
    p = 16
    db = Database.from_relations(
        [
            matching_relation("S1", 2048, 8192, seed=1),
            matching_relation("S2", 2048, 8192, seed=2),
        ]
    )
    stats = SimpleStatistics.of(db)
    bits = stats.bits_vector(query)
    target = lower_bound(query, bits, p).bits
    cap = cap_fraction * target

    measured = benchmark(
        lambda: _capped_fraction(query, db, p, cap)
    )
    bound = reported_fraction_bound(query, bits, p, load_bits=cap)
    record(
        benchmark,
        "E2",
        cap_fraction=cap_fraction,
        cap_bits=cap,
        measured_fraction=measured,
        bound_fraction=bound,
    )
    assert measured <= min(1.0, bound) + 1e-9


def test_fraction_curve_is_monotone(benchmark):
    """The measured coverage grows with the cap — the bound's shape."""
    query = simple_join_query()
    p = 16
    db = Database.from_relations(
        [
            matching_relation("S1", 1024, 4096, seed=3),
            matching_relation("S2", 1024, 4096, seed=4),
        ]
    )
    stats = SimpleStatistics.of(db)
    target = lower_bound(query, stats.bits_vector(query), p).bits

    def curve():
        return [
            _capped_fraction(query, db, p, f * target)
            for f in (0.1, 0.5, 1.0, 3.0)
        ]

    fractions = benchmark(curve)
    record(
        benchmark,
        "E2",
        curve=str([f"{x:.3f}" for x in fractions]),
    )
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0  # generous caps recover everything
