"""E9 — Section 5, Theorem 5.1 and Example 5.2: replication rate in the
MapReduce model.

For the triangle query with equal sizes, sweeps the reducer budget ``L``
and regenerates (measured HC replication rate, the ``sqrt(M/L)/3`` lower
bound, reducer counts); the shapes must track each other.
"""

from __future__ import annotations

import math

import pytest

from conftest import record
from repro.core import (
    minimum_reducers,
    replication_rate_lower_bound,
    triangle_replication_shape,
)
from repro.data import uniform_relation
from repro.mr import hypercube_mapreduce
from repro.query import triangle_query
from repro.seq import Database
from repro.stats import SimpleStatistics

M_TUPLES = 3000
DOMAIN = 9000


def _db():
    return Database.from_relations(
        [
            uniform_relation("S1", M_TUPLES, DOMAIN, seed=51),
            uniform_relation("S2", M_TUPLES, DOMAIN, seed=52),
            uniform_relation("S3", M_TUPLES, DOMAIN, seed=53),
        ]
    )


BUDGET_DIVISORS = [4, 16, 64]


@pytest.mark.parametrize("divisor", BUDGET_DIVISORS)
def test_replication_sweep(benchmark, divisor):
    query = triangle_query()
    db = _db()
    stats = SimpleStatistics.of(db)
    bits = stats.bits_vector(query)
    m_bits = bits["S1"]
    reducer_bits = m_bits / divisor

    run = benchmark(
        lambda: hypercube_mapreduce(query, db, reducer_bits=reducer_bits)
    )
    bound, packing = replication_rate_lower_bound(query, bits, reducer_bits)
    shape = triangle_replication_shape(m_bits, reducer_bits)
    record(
        benchmark,
        "E9",
        L_over_M=f"1/{divisor}",
        reducers=run.reducers,
        measured_rate=run.result.replication_rate,
        bound_rate=bound,
        sqrt_shape=shape,
        min_reducers=minimum_reducers(bound, 3 * m_bits, reducer_bits),
    )
    # Shape claim: measured replication within constants of sqrt(M/L)/3.
    assert run.result.replication_rate >= bound * 0.3
    assert run.result.replication_rate <= shape * 3 + 3


def test_rate_scales_as_sqrt(benchmark):
    """Quadrupling the budget should halve the measured rate, roughly."""
    query = triangle_query()
    db = _db()
    stats = SimpleStatistics.of(db)
    m_bits = stats.bits("S1")

    def pair():
        small = hypercube_mapreduce(query, db, reducer_bits=m_bits / 64)
        large = hypercube_mapreduce(query, db, reducer_bits=m_bits / 4)
        return small.result.replication_rate, large.result.replication_rate

    tight, loose = benchmark(pair)
    record(
        benchmark,
        "E9",
        rate_L_small=tight,
        rate_L_large=loose,
        ratio=tight / loose,
        sqrt_prediction=math.sqrt(16),
    )
    # HC reducer counts move in powers of two, so allow a wide band around 4.
    assert 1.5 <= tight / loose <= 10.0


def test_reducer_count_shape(benchmark):
    """Example 5.2: reducers scale like (M/L)^(3/2)."""
    query = triangle_query()
    db = _db()
    stats = SimpleStatistics.of(db)
    m_bits = stats.bits("S1")

    def counts():
        return [
            hypercube_mapreduce(query, db, reducer_bits=m_bits / d).reducers
            for d in (4, 16, 64)
        ]

    reducer_counts = benchmark(counts)
    record(
        benchmark,
        "E9",
        reducers_by_budget=str(reducer_counts),
        shape_prediction=str([int(d ** 1.5) for d in (4, 16, 64)]),
    )
    assert reducer_counts == sorted(reducer_counts)
    # (M/L)^(3/2): from divisor 4 to 64 the count should grow ~64x,
    # modulo power-of-two rounding.
    assert reducer_counts[-1] >= 16 * reducer_counts[0]
