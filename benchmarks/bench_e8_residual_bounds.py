"""E8 — Theorem 4.7 + Example 4.8: residual lower bounds under fixed degree
sequences.

Regenerates the bound table for degree sequences of increasing skew: the
residual bound ``sqrt(sum_h m1(h) m2(h) / p)`` overtakes the cardinality
bound ``max_j M_j/p`` exactly when skew appears, and the skew-aware join's
measured load is sandwiched between bound and bound * polylog.
"""

from __future__ import annotations

import math

import pytest

from conftest import record
from repro.core import (
    SkewAwareJoin,
    best_residual_lower_bound,
    lower_bound,
    residual_lower_bound,
)
from repro.data import degree_relation
from repro.mpc import run_one_round
from repro.query import simple_join_query
from repro.seq import Database
from repro.stats import DegreeStatistics

P = 16
M = 1024
DOMAIN = 4 * M


def _zipfish_degrees(skew: float, total: int) -> dict[int, int]:
    """A deterministic degree sequence ``d(v) ~ (v+1)^-skew``.

    ``skew = 0`` is perfectly flat (average degree 4); larger exponents
    concentrate the mass on the first values.
    """
    num_values = max(1, total // 4)
    weights = [(v + 1) ** (-skew) for v in range(num_values)]
    scale = total / sum(weights)
    degrees: dict[int, int] = {}
    remaining = total
    for value, weight in enumerate(weights):
        degree = min(remaining, max(1, round(weight * scale)), DOMAIN)
        if degree <= 0:
            break
        degrees[value] = degree
        remaining -= degree
        if remaining <= 0:
            break
    return degrees


def _db(skew: float) -> Database:
    return Database.from_relations(
        [
            degree_relation("S1", _zipfish_degrees(skew, M), DOMAIN, seed=41),
            degree_relation("S2", _zipfish_degrees(skew, M), DOMAIN, seed=42),
        ]
    )


@pytest.mark.parametrize("skew", [0.0, 0.5, 1.0, 2.0])
def test_residual_vs_cardinality_bound(benchmark, skew):
    query = simple_join_query()
    db = _db(skew)
    stats = DegreeStatistics.of(query, db, {"z"})

    bound = benchmark(lambda: residual_lower_bound(query, stats, P))
    bits = {name: db.relation(name).bits for name in ("S1", "S2")}
    simple = lower_bound(query, bits, P).bits
    record(
        benchmark,
        "E8",
        skew=skew,
        residual_bits=bound.bits,
        cardinality_bits=simple,
        advantage=bound.bits / simple,
    )
    if skew >= 2.0:
        assert bound.bits > simple  # skew makes the problem harder
    elif skew <= 0.5:
        assert bound.bits <= simple * 1.4  # flat degrees: no advantage
    # skew = 1.0 sits near the crossover: recorded, not asserted.


def test_algorithm_sandwiched_by_bounds(benchmark):
    """measured load in [lower bound, polylog * lower bound]."""
    query = simple_join_query()
    db = _db(2.0)
    stats = DegreeStatistics.of(query, db, {"z"})
    bound = residual_lower_bound(query, stats, P)
    algo = SkewAwareJoin(query)

    result = benchmark(
        lambda: run_one_round(algo, db, P, compute_answers=False)
    )
    record(
        benchmark,
        "E8",
        measured_bits=result.max_load_bits,
        residual_bound_bits=bound.bits,
        ratio=result.max_load_bits / bound.bits,
    )
    assert result.max_load_bits >= 0.3 * bound.bits
    assert result.max_load_bits <= bound.bits * 10 * math.log(P)


def test_best_variable_set_search(benchmark):
    """The maximization over x finds {z} for the skewed join."""
    query = simple_join_query()
    db = _db(2.0)

    best, breakdown = benchmark(
        lambda: best_residual_lower_bound(query, db, P, max_set_size=2)
    )
    record(
        benchmark,
        "E8",
        best_x=str(sorted(best.variables)),
        best_bits=best.bits,
        candidates=len(breakdown),
    )
    assert "z" in best.variables
