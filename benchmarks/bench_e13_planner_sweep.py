"""E13 — the experiment API itself: planner accuracy and sweep throughput.

Two questions the paper's Section 3 story implies but the seed never
measured:

1. **Planner accuracy** — across a skew grid, how often does the
   minimum-*predicted*-load algorithm actually achieve (close to) the
   minimum *measured* load?  The planner is useful exactly when this
   regret stays small.
2. **Sweep throughput** — cells/second of the declarative grid runner,
   the number that bounds every larger experiment campaign.

Per-cell timings come from the observability layer: an
:class:`~repro.obs.Observation` is passed into :meth:`Sweep.run` and the
``sweep.cell.seconds`` histogram it accumulates is reported alongside the
pytest-benchmark wall clock.
"""

from __future__ import annotations

from conftest import phase_ms, record
from repro.api import Sweep
from repro.obs import Observation

QUERY = "q(x, y, z) :- S1(x, z), S2(y, z)"
P_VALUES = (8, 32)
SKEWS = (0.0, 1.0, 2.0)
M = 600


def test_planner_regret(benchmark):
    """The planner's pick measures within 2x of the best algorithm."""
    sweep = Sweep(
        query=QUERY,
        workload="zipf",
        p_values=P_VALUES,
        m_values=(M,),
        skews=SKEWS,
        algorithms="applicable",
    )

    obs = Observation.create()
    result = benchmark.pedantic(
        lambda: sweep.run(obs=obs), rounds=1, iterations=1
    )
    worst_regret = 0.0
    picked_best = 0
    cells = result.best_per_cell()
    for cell, best in cells.items():
        auto = Sweep(
            query=QUERY,
            workload="zipf",
            p_values=(best.p,),
            m_values=(best.m,),
            skews=(best.skew,),
            seeds=(best.seed,),
            algorithms="auto",
        ).run().records[0]
        regret = auto.max_load_bits / best.max_load_bits
        worst_regret = max(worst_regret, regret)
        picked_best += int(auto.algorithm == best.algorithm)
    record(
        benchmark,
        "E13",
        cells=len(cells),
        picked_best=picked_best,
        worst_regret=worst_regret,
        cell_ms=phase_ms(obs, "sweep.cell"),
    )
    assert worst_regret <= 2.0


def test_sketch_planner_regret(benchmark):
    """Estimation error -> planner regret: planning from the one-pass
    Count-Sketch statistics stays within 10% of the exact planner's
    worst-case regret, and the sketch misses no true heavy hitter."""
    from repro.sketch import (
        SketchConfig,
        SketchedHeavyHitterStatistics,
        sketch_fidelity,
    )
    from repro.stats import HeavyHitterStatistics
    from repro.api.bench import _worst_regret
    from repro.api.experiment import WorkloadSpec
    from repro.query import parse_query

    sweep = Sweep(
        query=QUERY,
        workload="zipf",
        p_values=P_VALUES,
        m_values=(M,),
        skews=SKEWS,
        algorithms="applicable",
        stats=("exact", "sketch"),
    )
    obs = Observation.create()
    result = benchmark.pedantic(
        lambda: sweep.run(obs=obs), rounds=1, iterations=1
    )
    exact_regret = _worst_regret(
        [r for r in result.records if r.stats == "exact"]
    )
    sketch_regret = _worst_regret(
        [r for r in result.records if r.stats == "sketch"]
    )

    query = parse_query(QUERY)
    min_recall = 1.0
    for skew in SKEWS:
        db = WorkloadSpec(kind="zipf", m=M, skew=skew).build(query)
        for p in P_VALUES:
            exact = HeavyHitterStatistics.of(query, db, p)
            sketched = SketchedHeavyHitterStatistics.of(
                query, db, p, config=SketchConfig()
            )
            min_recall = min(
                min_recall, sketch_fidelity(exact, sketched)["recall"]
            )
    record(
        benchmark,
        "E13",
        exact_regret=exact_regret,
        sketch_regret=sketch_regret,
        min_recall=min_recall,
        stats_pass_ms=phase_ms(obs, "stats.build"),
    )
    assert min_recall == 1.0
    assert sketch_regret <= 1.10 * exact_regret


def test_sweep_throughput(benchmark):
    """Cells/second through the batched engine (load-only cells)."""
    sweep = Sweep(
        query=QUERY,
        workload="zipf",
        p_values=P_VALUES,
        m_values=(M,),
        skews=SKEWS,
        algorithms=("hypercube-lp", "hashjoin", "skew-join"),
    )
    obs = Observation.create()
    result = benchmark(lambda: sweep.run(obs=obs))
    assert len(result) == len(P_VALUES) * len(SKEWS) * 3
    record(
        benchmark,
        "E13",
        cells=len(result),
        cell_ms=phase_ms(obs, "sweep.cell"),
        mean_gap=sum(
            r.optimality_gap for r in result if r.optimality_gap
        ) / len(result),
    )
