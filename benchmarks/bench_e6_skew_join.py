"""E6 — Section 4.1: the skew-aware join across a Zipf skew sweep.

Regenerates the load-vs-skew series for four algorithms (hash join, equal-
share HyperCube, the Section 4.1 skew join, the Section 4.2 bin algorithm)
plus the formula-(10) bound, and ablates the heavy-hitter threshold.
The paper's claim: the skew-aware algorithm tracks
``max(m1/p, m2/p, L12, ...)`` while the hash join deteriorates with skew.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.api import get_spec
from repro.core import HashJoinAlgorithm, SkewAwareJoin, skew_join_load_bound
from repro.data import zipf_relation
from repro.mpc import run_one_round
from repro.query import simple_join_query
from repro.seq import Database
from repro.stats import HeavyHitterStatistics, SimpleStatistics

P = 32
M = 2000
SKEWS = [0.0, 0.5, 1.0, 1.5, 2.0]


def _db(skew: float) -> Database:
    domain = 8 * M if skew < 1.0 else 4 * M
    return Database.from_relations(
        [
            zipf_relation("S1", M, domain, skew=skew, seed=21),
            zipf_relation("S2", M, domain, skew=skew, seed=22),
        ]
    )


def _algorithms(query, db):
    """The four racers, instantiated through the algorithm registry."""
    stats = SimpleStatistics.of(db)
    return {
        "hashjoin": get_spec("hashjoin").build(query, stats, P),
        "hc-equal": get_spec("hypercube-equal").build(query, stats, P),
        "skew-join": get_spec("skew-join").build(query, stats, P),
        "bin-hc": get_spec("bin-hypercube").build(query, stats, P),
    }


@pytest.mark.parametrize("skew", SKEWS)
def test_skew_sweep(benchmark, skew):
    query = simple_join_query()
    db = _db(skew)
    algorithms = _algorithms(query, db)

    def run_all():
        return {
            name: run_one_round(algo, db, P, compute_answers=False).max_load_tuples
            for name, algo in algorithms.items()
        }

    loads = benchmark(run_all)
    stats = HeavyHitterStatistics.of(query, db, P)
    bound = skew_join_load_bound(stats, query, in_bits=False)
    record(
        benchmark,
        "E6",
        skew=skew,
        **loads,
        formula10=bound["bound"],
        heavy_hitters=stats.total_heavy_count(),
    )
    # The skew-aware join never collapses: stays within O(log p) of (10).
    assert loads["skew-join"] <= 12 * bound["bound"] + 2 * M / P
    if skew >= 1.5:
        # Under strong skew the skew-aware join beats the hash join.
        assert loads["skew-join"] < loads["hashjoin"]


def test_crossover_series(benchmark):
    """The hash-join-to-skew-join load ratio grows with the skew."""
    query = simple_join_query()

    def series():
        ratios = []
        for skew in (0.0, 1.0, 2.0):
            db = _db(skew)
            hash_load = run_one_round(
                HashJoinAlgorithm(query, P), db, P, compute_answers=False
            ).max_load_tuples
            skew_load = run_one_round(
                SkewAwareJoin(query), db, P, compute_answers=False
            ).max_load_tuples
            ratios.append(hash_load / skew_load)
        return ratios

    ratios = benchmark(series)
    record(
        benchmark,
        "E6",
        ratio_s0=ratios[0],
        ratio_s1=ratios[1],
        ratio_s2=ratios[2],
    )
    assert ratios[-1] > ratios[0]  # skew widens the gap
    assert ratios[-1] > 2.0


@pytest.mark.parametrize("threshold_factor", [0.5, 1.0, 2.0])
def test_threshold_ablation(benchmark, threshold_factor):
    """Ablation: the m_j/p threshold scale barely moves the load."""
    query = simple_join_query()
    db = _db(1.5)
    stats = HeavyHitterStatistics.of(
        query, db, P, threshold_factor=threshold_factor
    )
    algo = SkewAwareJoin(query, stats=stats)
    result = benchmark(
        lambda: run_one_round(algo, db, P, compute_answers=False)
    )
    record(
        benchmark,
        "E6-ablation",
        threshold_factor=threshold_factor,
        max_load_tuples=result.max_load_tuples,
        heavy=stats.total_heavy_count(),
    )
    verify = run_one_round(algo, db, P, verify=True)
    assert verify.is_complete
